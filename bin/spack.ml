(* The ospack command-line interface: the spack commands of the paper over
   an in-memory context (fresh per process — installs land in the virtual
   filesystem and are reported, not persisted). *)

open Cmdliner
module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Torture = Ospack_store.Torture
module Obs = Ospack_obs.Obs
module Profile = Ospack_obs.Profile
module Json = Ospack_json.Json
module Backends = Ospack_concretize.Backends
module Cerror = Ospack_concretize.Cerror
module CI = Ospack_concretize.Concretizer_intf

(* a real-filesystem site configuration file, layered over the defaults
   when present (e.g. providers.mpi, compiler_order, externals entries) *)
let config_from_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  match Ospack_config.Config.parse content with
  | Ok cfg ->
      Ok
        (Ospack_config.Config.layer
           [ cfg; Ospack_repo.Universe.default_config ])
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let make_ctx ?config_file ?obs () =
  match config_file with
  | None ->
      Ok (Ospack.Context.create ~cache_root:"/ospack/buildcache" ?obs ())
  | Some path ->
      Result.map
        (fun config ->
          Ospack.Context.create ~config ~cache_root:"/ospack/buildcache" ?obs
            ())
        (config_from_file path)

let ctx = lazy (Ospack.Context.create ~cache_root:"/ospack/buildcache" ())

(* The in-memory context is fresh per process, so a --ccache FILE flag
   bridges the concretization cache across invocations: import the
   serialized cache (if the file exists) before the command, export it
   after. A stale or corrupted file is invalidated on import by the
   fingerprint check, never trusted. *)
let read_ccache_file = function
  | None -> None
  | Some path ->
      if Sys.file_exists path then begin
        let ic = open_in path in
        let content = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Some content
      end
      else None

let write_ccache_file ctx = function
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Ospack.Context.export_ccache ctx);
      output_char oc '\n';
      close_out oc

let ccache_arg =
  Arg.(
    value & opt (some string) None
    & info [ "ccache" ] ~docv:"FILE"
        ~doc:
          "Persist the concretization cache to $(docv) on the real \
           filesystem: imported (and fingerprint-validated) before the \
           command, exported after. Repeating a query with the same \
           $(docv) is a warm-cache run — byte-identical output, no \
           re-solving.")

let report_error e =
  Format.eprintf "==> Error: %s@." e;
  1

let backend_arg =
  Arg.(
    value
    & opt
        (enum [ ("greedy", Backends.Greedy); ("clauses", Backends.Clauses) ])
        Backends.Greedy
    & info [ "concretizer" ] ~docv:"BACKEND"
        ~doc:
          "Concretizer backend: $(b,greedy) (the paper's fixed point, the \
           default) or $(b,clauses) (the complete clause solver — agrees \
           with greedy whenever greedy succeeds, solves specs greedy \
           cannot, and explains true conflicts with an unsat core).")

let spec_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"SPEC" ~doc:"Package spec (paper Fig. 3 syntax).")

let join_spec parts = String.concat " " parts

let print_outcomes outcomes =
  List.iter
    (fun (o : Installer.outcome) ->
      let r = o.Installer.o_record in
      Format.printf "%s %s@."
        (if o.Installer.o_reused then "[reused]   "
         else if o.Installer.o_cached then "[cached]   "
         else if r.Database.r_external then "[external] "
         else "[installed]")
        (Printf.sprintf "%s/%s -> %s"
           (Concrete.node_to_string (Concrete.root_node r.Database.r_spec))
           r.Database.r_hash r.Database.r_prefix))
    outcomes;
  Format.printf "==> %s@."
    (Installer.summary_to_string (Installer.summary_of_outcomes outcomes))

let write_trace obs path =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:2 (Obs.to_chrome_trace obs));
  output_char oc '\n';
  close_out oc

let write_string_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let events_arg =
  Arg.(
    value & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Write the session as a deterministic JSONL structured-event \
           log: one JSON object per line (meta header, then \
           span_begin/span_end/instant events on the virtual clock, then \
           counter and histogram summaries). Byte-identical across \
           identical runs; validated by $(b,spack trace-validate).")

let install_cmd =
  let backtrack =
    Arg.(
      value & flag
      & info [ "backtrack" ]
          ~doc:"Fall back to the backtracking solver on greedy conflicts.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Install with $(docv) simulated parallel workers: independent \
             DAG nodes build concurrently on the virtual clock and the \
             makespan is reported against the serialized time. The \
             schedule is deterministic — every -j level produces the \
             same store and index.")
  in
  let index_out =
    Arg.(
      value & opt (some string) None
      & info [ "index-out" ] ~docv:"FILE"
          ~doc:
            "After the install, write the store's database index (the \
             on-disk index.json) to $(docv) on the real filesystem — \
             lets CI compare store state across runs and -j levels.")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a Chrome trace-event file (chrome://tracing) of the \
             install: nested spans for concretization iterations and \
             per-node stage/configure/compile/link/install phases, over \
             the deterministic virtual clock.")
  in
  let timings =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:"Print a per-phase timing table after the install.")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ]
          ~doc:
            "Always concretize against current packages and preferences: \
             skip both the installed-spec reuse (§3.2.3) and the \
             concretization cache.")
  in
  let run backtrack jobs index_out trace events timings fresh backend parts =
    let recording = trace <> None || events <> None || timings in
    let obs = if recording then Obs.create () else Obs.disabled in
    let ctx =
      if recording || backend <> Backends.Greedy then
        Ospack.Context.create ~cache_root:"/ospack/buildcache" ~obs ~backend
          ()
      else Lazy.force ctx
    in
    let write_index path =
      let db = Installer.database ctx.Ospack.Context.installer in
      let oc = open_out path in
      output_string oc (Json.to_string ~indent:2 (Database.to_json db));
      output_char oc '\n';
      close_out oc
    in
    match Ospack.install ~backtrack ~fresh ~jobs ctx (join_spec parts) with
    | Ok report ->
        Format.printf "==> concretized:@.%s@."
          (Concrete.tree_string report.Ospack.Commands.ir_spec);
        print_outcomes report.Ospack.Commands.ir_outcomes;
        (match report.Ospack.Commands.ir_parallel with
        | Some p ->
            Format.printf "==> %s@." (Installer.parallel_summary_to_string p)
        | None -> ());
        if timings then print_string (Obs.timings_table obs);
        (match trace with
        | None -> ()
        | Some path ->
            write_trace obs path;
            Format.printf "==> trace written to %s@." path);
        (match events with
        | None -> ()
        | Some path ->
            write_string_file path (Obs.to_jsonl obs);
            Format.printf "==> events written to %s@." path);
        Option.iter write_index index_out;
        0
    | Error e ->
        (* the index still reflects every node that completed *)
        Option.iter write_index index_out;
        report_error e
  in
  Cmd.v
    (Cmd.info "install" ~doc:"Concretize and install a spec.")
    Term.(
      const run $ backtrack $ jobs $ index_out $ trace $ events_arg $ timings
      $ fresh $ backend_arg $ spec_arg)

let profile_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Profile the schedule at $(docv) simulated workers (default \
             1: the serial install order).")
  in
  let width =
    Arg.(
      value & opt int 64
      & info [ "width" ] ~docv:"COLS"
          ~doc:"Timeline width in buckets (default 64).")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ]
          ~doc:
            "Concretize from scratch, bypassing the concretization cache.")
  in
  let run jobs width events fresh backend parts =
    if jobs < 1 then report_error "profile: jobs must be >= 1"
    else
      let obs = Obs.create () in
      let ctx =
        Ospack.Context.create ~cache_root:"/ospack/buildcache" ~obs ~backend
          ()
      in
      match Ospack.profile ~fresh ~jobs ctx (join_spec parts) with
      | Error e -> report_error e
      | Ok r ->
          let prof = r.Ospack.Commands.pf_profile in
          Format.printf "==> concretized:@.%s@."
            (Concrete.tree_string r.Ospack.Commands.pf_spec);
          (* the concretizer's side of the profile: greedy iteration
             counts, or the clause solver's search statistics *)
          Format.printf
            "==> concretize profile: iterations=%d decisions=%d \
             backtracks=%d@."
            (Obs.counter obs "concretize.iterations")
            (Obs.counter obs "concretize.decisions")
            (Obs.counter obs "concretize.backtracks");
          if
            List.exists
              (fun c -> Obs.counter obs c > 0)
              [
                "solver.decisions"; "solver.propagations"; "solver.conflicts";
                "solver.restarts";
              ]
          then
            Format.printf
              "==> solver profile: decisions=%d propagations=%d \
               conflicts=%d restarts=%d@."
              (Obs.counter obs "solver.decisions")
              (Obs.counter obs "solver.propagations")
              (Obs.counter obs "solver.conflicts")
              (Obs.counter obs "solver.restarts");
          print_string (Profile.summary_to_string prof);
          print_string (Profile.node_table prof);
          print_string (Profile.worker_table prof);
          print_string (Profile.timeline ~width prof);
          (match events with
          | None -> ()
          | Some path ->
              write_string_file path (Obs.to_jsonl obs ^ Profile.to_jsonl prof);
              Format.printf "==> events written to %s@." path);
          0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Install a spec on the virtual-time pool and analyze the \
          schedule's critical path: the makespan lower bound no worker \
          count can beat, per-node slack (0 on critical nodes), \
          per-worker utilization, a Gantt-style timeline, and the \
          CP-efficiency ratio. With --events, also write the JSONL \
          structured-event log including the profile.* event lines.")
    Term.(
      const run $ jobs $ width $ events_arg $ fresh $ backend_arg $ spec_arg)

let spec_cmd =
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Also print the policy decisions concretization took.")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ]
          ~doc:
            "Concretize from scratch, bypassing the concretization cache \
             (the result is byte-identical to a warm run — this flag \
             exists to prove it).")
  in
  let reuse =
    Arg.(
      value & flag
      & info [ "reuse" ]
          ~doc:
            "Prefer an already-installed concrete spec satisfying the \
             query over re-concretizing (store-aware reuse). Only \
             meaningful inside a session with installs (e.g. spack \
             script); a fresh process has an empty store.")
  in
  let run explain fresh reuse ccache backend parts =
    let ctx =
      match (ccache, backend) with
      | None, Backends.Greedy -> Lazy.force ctx
      | _ ->
          Ospack.Context.create ~cache_root:"/ospack/buildcache"
            ?ccache_json:(read_ccache_file ccache) ~backend ()
    in
    let code =
      if explain then (
        match Ospack.spec_explain ctx (join_spec parts) with
        | Ok (c, decisions) ->
            Format.printf "%s@." (Concrete.tree_string c);
            List.iter (fun d -> Format.printf "  because: %s@." d) decisions;
            0
        | Error e -> report_error e)
      else
        match Ospack.spec ~fresh ~reuse ctx (join_spec parts) with
        | Ok c ->
            Format.printf "%s@." (Concrete.tree_string c);
            0
        | Error e -> report_error e
    in
    if code = 0 then write_ccache_file ctx ccache;
    code
  in
  Cmd.v
    (Cmd.info "spec" ~doc:"Show the concretized spec without installing.")
    Term.(
      const run $ explain $ fresh $ reuse $ ccache_arg $ backend_arg
      $ spec_arg)

(* `spack solve` — run the selected backend through its full interface:
   the concrete tree (or the conflict explanation) plus solver statistics.
   Output is deterministic, so repeated runs compare byte-identical. *)
let solve_cmd =
  let run backend parts =
    let ctx =
      Ospack.Context.create ~cache_root:"/ospack/buildcache" ~backend ()
    in
    match Ospack.solve ctx (join_spec parts) with
    | Error e -> report_error e
    | Ok (name, outcome) -> (
        let stats_line = CI.stats_to_string outcome.CI.oc_stats in
        match outcome.CI.oc_result with
        | Ok c ->
            Format.printf "==> %s backend solved %s@." name (join_spec parts);
            print_string (Concrete.tree_string c);
            Format.printf "==> solver stats: %s@." stats_line;
            0
        | Error e ->
            Format.printf "==> %s backend: unsatisfiable %s@." name
              (join_spec parts);
            Format.printf "==> Error: %s@." (Cerror.to_string e);
            (match Backends.explanation backend outcome with
            | Some expl ->
                Format.printf "%s@." (Cerror.explain_to_string expl)
            | None -> ());
            Format.printf "==> solver stats: %s@." stats_line;
            1)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Concretize with the selected backend and report its decisions, \
          propagations, and conflicts; on unsatisfiable input, explain \
          why with an unsat core (clauses) or the blocked decision path \
          (greedy).")
    Term.(const run $ backend_arg $ spec_arg)

let graph_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz format.")
  in
  let run dot parts =
    let ctx = Lazy.force ctx in
    let result =
      if dot then Ospack.graph_dot ctx (join_spec parts)
      else Ospack.graph_tree ctx (join_spec parts)
    in
    match result with
    | Ok text ->
        print_string text;
        0
    | Error e -> report_error e
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Show the dependency graph of a spec.")
    Term.(const run $ dot $ spec_arg)

let providers_cmd =
  let run parts =
    let ctx = Lazy.force ctx in
    match Ospack.providers ctx (join_spec parts) with
    | Ok entries ->
        List.iter
          (fun (e : Ospack_package.Provider_index.entry) ->
            Format.printf "%s provides %s%s@."
              e.Ospack_package.Provider_index.e_provider
              (Ospack_spec.Printer.node_to_string
                 e.Ospack_package.Provider_index.e_provided)
              (match e.Ospack_package.Provider_index.e_when with
              | None -> ""
              | Some w ->
                  " when " ^ Ospack_spec.Printer.to_string w))
          entries;
        0
    | Error e -> report_error e
  in
  Cmd.v
    (Cmd.info "providers" ~doc:"List providers of a virtual interface.")
    Term.(const run $ spec_arg)

let info_cmd =
  let pkg_name =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PACKAGE" ~doc:"Package name.")
  in
  let run pkg =
    let ctx = Lazy.force ctx in
    match Ospack.info ctx pkg with
    | Ok text ->
        print_string text;
        0
    | Error e -> report_error e
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Show package metadata.")
    Term.(const run $ pkg_name)

let list_cmd =
  let substring =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"FILTER" ~doc:"Substring filter.")
  in
  let run substring =
    let ctx = Lazy.force ctx in
    List.iter print_endline (Ospack.list_packages ctx ?substring ());
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available packages.")
    Term.(const run $ substring)

let compilers_cmd =
  let run () =
    let ctx = Lazy.force ctx in
    List.iter print_endline (Ospack.compiler_list ctx);
    0
  in
  Cmd.v
    (Cmd.info "compilers" ~doc:"List registered compiler toolchains.")
    Term.(const run $ const ())

let demo_cmd =
  (* install a stack, then show find/module/view output — exercises the
     whole pipeline in one process since the context is in-memory *)
  let run parts =
    let ctx = Lazy.force ctx in
    let spec = join_spec parts in
    match Ospack.install ctx spec with
    | Error e -> report_error e
    | Ok report ->
        Format.printf "==> installed %s@."
          (Concrete.to_string report.Ospack.Commands.ir_spec);
        print_outcomes report.Ospack.Commands.ir_outcomes;
        (match Ospack.find ctx () with
        | Ok records ->
            Format.printf "@.==> spack find (%d installed):@."
              (List.length records);
            List.iter
              (fun (r : Database.record) ->
                Format.printf "    %s/%s@."
                  (Concrete.node_to_string
                     (Concrete.root_node r.Database.r_spec))
                  r.Database.r_hash)
              records
        | Error e -> Format.eprintf "find failed: %s@." e);
        (match Ospack.generate_modules ctx `Tcl with
        | Ok paths ->
            Format.printf "@.==> generated %d TCL module files@."
              (List.length paths)
        | Error e -> Format.eprintf "modules failed: %s@." e);
        0
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Install a spec and walk the post-install workflow.")
    Term.(const run $ spec_arg)

let stats_cmd =
  let slack =
    Arg.(
      value & flag
      & info [ "slack" ]
          ~doc:
            "Also run the critical-path analyzer and print the per-node \
             slack table: how long each node could slip without growing \
             the makespan lower bound (0 exactly on critical nodes).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "With --slack, attribute the schedule at $(docv) workers \
             (default 1).")
  in
  let run ccache slack jobs parts =
    let obs = Obs.create () in
    let ctx =
      Ospack.Context.create ~cache_root:"/ospack/buildcache"
        ?ccache_json:(read_ccache_file ccache) ~obs ()
    in
    if slack then
      match Ospack.profile ~jobs ctx (join_spec parts) with
      | Error e -> report_error e
      | Ok r ->
          Format.printf "==> %s@."
            (Installer.summary_to_string
               (Installer.summary_of_outcomes
                  r.Ospack.Commands.pf_report.Installer.pr_outcomes));
          print_string (Obs.timings_table obs);
          print_string (Obs.stats_table obs);
          print_string (Profile.summary_to_string r.Ospack.Commands.pf_profile);
          print_string (Profile.node_table r.Ospack.Commands.pf_profile);
          write_ccache_file ctx ccache;
          0
    else
      match Ospack.install ctx (join_spec parts) with
      | Error e -> report_error e
      | Ok report ->
          Format.printf "==> %s@."
            (Installer.summary_to_string report.Ospack.Commands.ir_summary);
          print_string (Obs.timings_table obs);
          print_string (Obs.stats_table obs);
          write_ccache_file ctx ccache;
          0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Install a spec into a fresh store with recording enabled and \
          print the per-phase timing table, counters, and histograms. \
          With --ccache, the concretization-cache counters (ccache.hits \
          / ccache.misses / ccache.invalidations) show whether the run \
          was warm. With --slack, append the critical-path summary and \
          the per-node slack table.")
    Term.(const run $ ccache_arg $ slack $ jobs $ spec_arg)

let torture_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Torture the parallel scheduler at $(docv) workers instead of \
             the serial install path (default 1).")
  in
  let every =
    Arg.(
      value & opt int 1
      & info [ "every" ] ~docv:"K"
          ~doc:
            "Kill at every $(docv)-th write barrier instead of every one \
             (default 1) — a sampling knob for quick smoke runs.")
  in
  let env =
    Arg.(
      value & flag
      & info [ "env" ]
          ~doc:
            "Torture the environment lifecycle instead of a bare install: \
             create an environment with the given specs as roots (plus a \
             view), kill it at every selected write barrier, and check \
             that the manifest and lockfile are always a complete \
             previous version (write-then-rename, never torn) and that \
             recovery converges to the reference store and lockfile.")
  in
  let run jobs every env parts =
    if env then
      match
        Ospack.Environment.torture ~jobs ~every ~name:"torture"
          ~view:"/ospack/views/torture" ~roots:parts ()
      with
      | Ok r ->
          Format.printf "==> %s@."
            (Ospack.Environment.torture_report_to_string r);
          0
      | Error e -> report_error e
    else
      let ctx = Ospack.Context.create () in
      match Ospack.spec ctx (join_spec parts) with
      | Error e -> report_error e
      | Ok concrete -> (
          match
            Torture.run ~jobs ~every ~config:ctx.Ospack.Context.config
              ~repo:ctx.Ospack.Context.repo
              ~compilers:ctx.Ospack.Context.compilers [ concrete ]
          with
          | Ok r ->
              Format.printf "==> %s@." (Torture.report_to_string r);
              0
          | Error e -> report_error e)
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Crash-consistency torture: install the spec to completion \
          counting filesystem write barriers, then replay the install \
          killing it at each selected barrier, recover the store with a \
          fresh installer, and verify the invariants — the reloaded index \
          is a prefix of the completed store, recovery leaves no \
          unindexed orphan files, and re-running converges to \
          byte-identical state. Exits nonzero naming the first kill point \
          that violates an invariant.")
    Term.(const run $ jobs $ every $ env $ spec_arg)

let trace_validate_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace-event file to validate.")
  in
  let expects =
    Arg.(
      value & opt_all string []
      & info [ "expect" ] ~docv:"NAME"
          ~doc:"Require an event with this name to be present (repeatable).")
  in
  (* the event types a JSONL structured-event log may contain: the
     session stream (Obs.to_jsonl) plus the profile analysis lines
     (Profile.to_jsonl) *)
  let known_evs =
    [
      "meta"; "span_begin"; "span_end"; "instant"; "counter"; "histogram";
      "profile.summary"; "profile.node"; "profile.worker";
    ]
  in
  let validate_jsonl file content expects =
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' content)
    in
    let exception Invalid of string in
    try
      let names = ref [] in
      let last_ts = ref neg_infinity in
      let open_spans = ref 0 in
      List.iteri
        (fun i line ->
          let fail msg = raise (Invalid (Printf.sprintf "line %d: %s" (i + 1) msg)) in
          match Json.of_string line with
          | Error e -> fail e
          | Ok j -> (
              (match Option.bind (Json.member "ev" j) Json.get_string with
              | None -> fail "no \"ev\" field"
              | Some ev ->
                  if not (List.mem ev known_evs) then
                    fail (Printf.sprintf "unknown event type %S" ev)
                  else begin
                    (match ev with
                    | "span_begin" -> incr open_spans
                    | "span_end" ->
                        if !open_spans = 0 then
                          fail "span_end with no open span"
                        else decr open_spans
                    | _ -> ())
                  end);
              (match Json.member "ts" j with
              | Some ts -> (
                  match
                    match ts with
                    | Json.Float f -> Some f
                    | Json.Int n -> Some (float_of_int n)
                    | _ -> None
                  with
                  | None -> fail "non-numeric \"ts\""
                  | Some f ->
                      if f < !last_ts then
                        fail
                          (Printf.sprintf
                             "timestamp went backwards (%g after %g)" f
                             !last_ts)
                      else last_ts := f)
              | None -> ());
              List.iter
                (fun key ->
                  match Option.bind (Json.member key j) Json.get_string with
                  | Some n -> names := n :: !names
                  | None -> ())
                [ "name"; "label" ]))
        lines;
      if lines = [] then raise (Invalid "empty event log");
      if !open_spans <> 0 then
        raise
          (Invalid (Printf.sprintf "%d span(s) never closed" !open_spans));
      match
        List.filter (fun n -> not (List.mem n !names)) expects
      with
      | [] ->
          Format.printf
            "==> %s: %d JSONL events, spans balanced, all expected names \
             present@."
            file (List.length lines);
          0
      | missing ->
          report_error
            (Printf.sprintf "%s: missing names: %s" file
               (String.concat ", " missing))
    with Invalid msg -> report_error (Printf.sprintf "%s: %s" file msg)
  in
  let run file expects =
    let ic = open_in file in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (* a JSONL event log starts with an {"ev":...} object on its first
       line; anything else takes the Chrome trace-document path *)
    let first_line =
      match String.index_opt content '\n' with
      | Some i -> String.sub content 0 i
      | None -> content
    in
    let is_jsonl =
      match Json.of_string first_line with
      | Ok (Json.Obj fields) -> List.mem_assoc "ev" fields
      | _ -> false
    in
    if is_jsonl then validate_jsonl file content expects
    else
      match Json.of_string content with
      | Error e -> report_error (Printf.sprintf "%s: %s" file e)
      | Ok j -> (
          let events =
            match Json.member "traceEvents" j with
            | Some (Json.List l) -> l
            | _ -> []
          in
          if events = [] then
            report_error (Printf.sprintf "%s: no traceEvents" file)
          else
            let names =
              List.filter_map
                (fun ev ->
                  Option.bind (Json.member "name" ev) Json.get_string)
                events
            in
            match List.filter (fun n -> not (List.mem n names)) expects with
            | [] ->
                Format.printf
                  "==> %s: %d events, all expected phases present@." file
                  (List.length events);
                0
            | missing ->
                report_error
                  (Printf.sprintf "%s: missing phases: %s" file
                     (String.concat ", " missing)))
  in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:
         "Validate a trace file — a Chrome trace-event document or a \
          JSONL structured-event log (detected by its first line) — and \
          check expected event names are present.")
    Term.(const run $ file $ expects)

(* `spack script FILE` — run a sequence of commands against one in-memory
   store, so multi-step workflows (install, find, activate, view, gc) work
   from the shell despite per-process state. Lines: `# comment`, or
   `<command> [args...]`. *)
(* "NAME [-j N]" for the env script commands *)
let env_jobs rest =
  let tokens =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' rest)
  in
  match tokens with
  | [ name ] -> Ok (name, 1)
  | [ name; "-j"; n ] -> (
      match int_of_string_opt n with
      | Some jobs when jobs >= 1 -> Ok (name, jobs)
      | _ -> Error "NAME [-j N]")
  | _ -> Error "NAME [-j N]"

let print_env_report ?(lock = "lockfile written") name
    (r : Ospack.Environment.report) =
  let nodes =
    List.length r.Ospack.Environment.er_report.Installer.pr_outcomes
  in
  Format.printf "==> %s: %d roots, %d nodes installed -j%d (%s%s)@." name
    (List.length r.Ospack.Environment.er_roots)
    nodes r.Ospack.Environment.er_report.Installer.pr_jobs lock
    (if r.Ospack.Environment.er_linked > 0 then
       Printf.sprintf ", %d files linked" r.Ospack.Environment.er_linked
     else "")

let script_cmd =
  let file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Script of spack commands, one per line.")
  in
  let config_file =
    Arg.(
      value & opt (some file) None
      & info [ "config" ] ~docv:"CONFIG"
          ~doc:"Site configuration file layered over the built-in defaults.")
  in
  let run config_file file =
    (* scripts record into an enabled sink so a final `stats` line can
       report where the session's virtual time went *)
    let ctx =
      match make_ctx ?config_file ~obs:(Obs.create ()) () with
      | Ok ctx -> ctx
      | Error e ->
          Format.eprintf "==> Error: %s@." e;
          exit 1
    in
    let ic = open_in file in
    let failures = ref 0 in
    let errf fmt =
      Format.ksprintf
        (fun s ->
          incr failures;
          Format.printf "==> Error: %s@." s)
        fmt
    in
    let show_records records =
      List.iter
        (fun (r : Database.record) ->
          Format.printf "    %s/%s%s@."
            (Concrete.node_to_string (Concrete.root_node r.Database.r_spec))
            r.Database.r_hash
            (if r.Database.r_external then " [external]" else ""))
        records
    in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line = "" || line.[0] = '#' then ()
         else begin
           Format.printf "@.spack> %s@." line;
           let cmd, rest =
             match String.index_opt line ' ' with
             | None -> (line, "")
             | Some i ->
                 ( String.sub line 0 i,
                   String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)) )
           in
           match cmd with
           | "install" -> (
               match Ospack.install ctx rest with
               | Ok report -> print_outcomes report.Ospack.Commands.ir_outcomes
               | Error e -> errf "%s" e)
           | "spec" -> (
               match Ospack.spec ctx rest with
               | Ok c -> print_string (Concrete.tree_string c)
               | Error e -> errf "%s" e)
           | "find" -> (
               let query = if rest = "" then None else Some rest in
               match Ospack.find ctx ?query () with
               | Ok records ->
                   Format.printf "==> %d installed@." (List.length records);
                   show_records records
               | Error e -> errf "%s" e)
           | "uninstall" -> (
               match Ospack.uninstall ctx rest with
               | Ok r ->
                   Format.printf "==> removed %s/%s@."
                     (Concrete.root r.Database.r_spec)
                     r.Database.r_hash
               | Error e -> errf "%s" e)
           | "gc" -> (
               match Ospack.gc ctx with
               | Ok removed ->
                   Format.printf "==> collected %d installs@."
                     (List.length removed);
                   show_records removed
               | Error e -> errf "%s" e)
           | "activate" -> (
               match Ospack.activate ctx rest with
               | Ok rels ->
                   Format.printf "==> activated %s (%d files)@." rest
                     (List.length rels)
               | Error e -> errf "%s" e)
           | "deactivate" -> (
               match Ospack.deactivate ctx rest with
               | Ok _ -> Format.printf "==> deactivated %s@." rest
               | Error e -> errf "%s" e)
           | "view" -> (
               match Ospack.view ctx ~rules:[ rest ] with
               | Ok reports ->
                   List.iter
                     (fun r ->
                       Format.printf "    %s -> %s@."
                         r.Ospack_views.View.lr_link
                         r.Ospack_views.View.lr_target)
                     reports
               | Error e -> errf "%s" e)
           | "view-merge" -> (
               match Ospack.view_merge ctx ~view_root:rest with
               | Ok report ->
                   Format.printf "==> %d files linked, %d conflicts@."
                     report.Ospack_views.View.mr_linked
                     (List.length report.Ospack_views.View.mr_conflicts)
               | Error e -> errf "%s" e)
           | "module" -> (
               let flavor =
                 match rest with
                 | "dotkit" -> Ok `Dotkit
                 | "lmod" -> Ok `Lmod
                 | "tcl" | "" -> Ok `Tcl
                 | other -> Error other
               in
               match flavor with
               | Error other -> errf "unknown module flavor %s" other
               | Ok flavor -> (
                   match Ospack.generate_modules ctx flavor with
                   | Ok paths ->
                       Format.printf "==> wrote %d module files@."
                         (List.length paths)
                   | Error e -> errf "%s" e))
           | "providers" -> (
               match Ospack.providers ctx rest with
               | Ok entries ->
                   List.iter
                     (fun (e : Ospack_package.Provider_index.entry) ->
                       Format.printf "    %s@."
                         e.Ospack_package.Provider_index.e_provider)
                     entries
               | Error e -> errf "%s" e)
           | "diff" -> (
               (* diff SPEC-A | SPEC-B *)
               match String.index_opt rest '|' with
               | None -> errf "usage: diff SPEC-A | SPEC-B"
               | Some i -> (
                   let a = String.trim (String.sub rest 0 i) in
                   let b =
                     String.trim
                       (String.sub rest (i + 1) (String.length rest - i - 1))
                   in
                   match Ospack.diff ctx a b with
                   | Ok [] -> Format.printf "==> identical configurations@."
                   | Ok lines ->
                       List.iter (fun l -> Format.printf "    %s@." l) lines
                   | Error e -> errf "%s" e))
           | "cache-push" -> (
               match Ospack.buildcache_push ctx with
               | Ok n -> Format.printf "==> %d entries in the cache@." n
               | Error e -> errf "%s" e)
           | "verify" -> (
               let query = if rest = "" then None else Some rest in
               match Ospack.verify ctx ?query () with
               | Ok reports ->
                   List.iter
                     (fun ((r : Database.record), report) ->
                       let module P = Ospack_store.Provenance in
                       if P.report_clean report then
                         Format.printf "    %s/%s: clean@."
                           (Concrete.root r.Database.r_spec)
                           r.Database.r_hash
                       else
                         Format.printf
                           "    %s/%s: %d missing, %d modified, %d extra@."
                           (Concrete.root r.Database.r_spec)
                           r.Database.r_hash
                           (List.length report.P.vr_missing)
                           (List.length report.P.vr_modified)
                           (List.length report.P.vr_extra))
                     reports
               | Error e -> errf "%s" e)
           | "env-create" -> (
               (* env-create NAME [VIEWPATH] *)
               let name, view =
                 match String.index_opt rest ' ' with
                 | None -> (rest, None)
                 | Some i ->
                     ( String.sub rest 0 i,
                       Some
                         (String.trim
                            (String.sub rest (i + 1)
                               (String.length rest - i - 1))) )
               in
               match Ospack.Environment.create ctx ~name ?view () with
               | Ok _ -> Format.printf "==> created environment %s@." name
               | Error e -> errf "%s" e)
           | "env-add" -> (
               (* env-add NAME SPEC *)
               match String.index_opt rest ' ' with
               | None -> errf "usage: env-add NAME SPEC"
               | Some i -> (
                   let name = String.sub rest 0 i in
                   let spec =
                     String.trim
                       (String.sub rest (i + 1) (String.length rest - i - 1))
                   in
                   match Ospack.Environment.load ctx ~name with
                   | Error e -> errf "%s" e
                   | Ok env -> (
                       match Ospack.Environment.add ctx env spec with
                       | Ok _ -> Format.printf "==> %s += %s@." name spec
                       | Error e -> errf "%s" e)))
           | "env-install" -> (
               (* env-install NAME [-j N] *)
               match env_jobs rest with
               | Error usage -> errf "usage: env-install %s" usage
               | Ok (name, jobs) -> (
                   match Ospack.Environment.load ctx ~name with
                   | Error e -> errf "%s" e
                   | Ok env -> (
                       match Ospack.Environment.install ~jobs ctx env with
                       | Ok r -> print_env_report name r
                       | Error e -> errf "%s" e)))
           | "env-install-locked" -> (
               (* env-install-locked NAME [-j N] *)
               match env_jobs rest with
               | Error usage -> errf "usage: env-install-locked %s" usage
               | Ok (name, jobs) -> (
                   match Ospack.Environment.load ctx ~name with
                   | Error e -> errf "%s" e
                   | Ok env -> (
                       match Ospack.Environment.install_locked ~jobs ctx env with
                       | Ok r -> print_env_report ~lock:"lockfile replayed" name r
                       | Error e ->
                           errf "%s"
                             (Ospack.Environment.locked_error_to_string e))))
           | "env-lock-export" -> (
               (* env-lock-export NAME FILE: copy the env's lockfile out to
                  the real filesystem (the cross-process bridge, like
                  --ccache) *)
               match String.index_opt rest ' ' with
               | None -> errf "usage: env-lock-export NAME FILE"
               | Some i -> (
                   let name = String.sub rest 0 i in
                   let path =
                     String.trim
                       (String.sub rest (i + 1) (String.length rest - i - 1))
                   in
                   match
                     Ospack_vfs.Vfs.read_file ctx.Ospack.Context.vfs
                       (Ospack.Environment.lock_path name)
                   with
                   | Error _ -> errf "environment %s has no lockfile" name
                   | Ok content ->
                       write_string_file path content;
                       Format.printf "==> exported %s lockfile to %s@." name
                         path))
           | "env-lock-import" -> (
               (* env-lock-import NAME FILE: adopt a lockfile written by a
                  previous process; validated (checksum + fingerprint) on
                  first use, never trusted blindly *)
               match String.index_opt rest ' ' with
               | None -> errf "usage: env-lock-import NAME FILE"
               | Some i -> (
                   let name = String.sub rest 0 i in
                   let path =
                     String.trim
                       (String.sub rest (i + 1) (String.length rest - i - 1))
                   in
                   if not (Sys.file_exists path) then
                     errf "no such file: %s" path
                   else
                     let ic = open_in path in
                     let content =
                       really_input_string ic (in_channel_length ic)
                     in
                     close_in ic;
                     match
                       Ospack_vfs.Vfs.write_file ctx.Ospack.Context.vfs
                         (Ospack.Environment.lock_path name)
                         content
                     with
                     | Ok () ->
                         Format.printf "==> imported %s lockfile from %s@."
                           name path
                     | Error e ->
                         errf "%s" (Ospack_vfs.Vfs.error_to_string e)))
           | "index-export" -> (
               (* index-export FILE: the database index as canonical JSON
                  on the real filesystem, for cross-process comparison *)
               let db =
                 Ospack_store.Installer.database
                   ctx.Ospack.Context.installer
               in
               match rest with
               | "" -> errf "usage: index-export FILE"
               | path ->
                   write_string_file path
                     (Json.to_string ~indent:2 (Database.to_json db) ^ "\n");
                   Format.printf "==> exported index (%d records) to %s@."
                     (Database.count db) path)
           | "env-status" -> (
               match Ospack.Environment.load ctx ~name:rest with
               | Error e -> errf "%s" e
               | Ok env ->
                   List.iter
                     (fun (root, installed) ->
                       Format.printf "    %-30s %s@." root
                         (if installed then "[installed]" else "[missing]"))
                     (Ospack.Environment.status ctx env))
           | "stats" ->
               print_string (Obs.timings_table ctx.Ospack.Context.obs);
               print_string (Obs.stats_table ctx.Ospack.Context.obs)
           | "echo" -> Format.printf "%s@." rest
           | other -> errf "unknown script command: %s" other
         end
       done
     with End_of_file -> close_in ic);
    if !failures = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "script"
       ~doc:"Run a file of spack commands against one in-memory store.")
    Term.(const run $ config_file $ file)

let splice_cmd =
  let replace =
    Arg.(
      required
      & opt (some string) None
      & info [ "replace" ] ~docv:"DEPSPEC"
          ~doc:
            "The dependency spec to splice in (e.g. $(b,libelf@0.8.12)): \
             concretized and installed first, then its prefix is \
             substituted into the cached binary.")
  in
  let run replace parts =
    (* fresh per-process context: install the target first so there is a
       cached binary to splice, then push and splice *)
    let ctx = Ospack.Context.create ~cache_root:"/ospack/buildcache" () in
    let text = join_spec parts in
    match Ospack.install ctx text with
    | Error e -> report_error e
    | Ok report -> (
        print_outcomes report.Ospack.Commands.ir_outcomes;
        match Ospack.buildcache_push ctx with
        | Error e -> report_error e
        | Ok pushed -> (
            Format.printf "==> pushed %d entries to the build cache@." pushed;
            match Ospack.splice ctx text ~replace with
            | Error e -> report_error e
            | Ok r ->
                Format.printf "==> spliced %s: replaced %s@."
                  (Concrete.node_to_string
                     (Concrete.root_node
                        r.Installer.sp_record.Database.r_spec))
                  r.Installer.sp_replaced;
                Format.printf "==> spliced hash differs: %s -> %s@."
                  r.Installer.sp_old_hash r.Installer.sp_new_hash;
                Format.printf "==> rewired RPATHs in %d binaries@."
                  r.Installer.sp_rewired;
                Format.printf
                  "==> loader verified: %d binaries resolve with an empty \
                   environment@."
                  r.Installer.sp_resolved;
                Format.printf "==> new prefix %s@."
                  r.Installer.sp_record.Database.r_prefix;
                0))
  in
  Cmd.v
    (Cmd.info "splice"
       ~doc:
         "Rewire the cached binary of an installed spec onto a different \
          dependency prefix without rebuilding, re-verifying that every \
          NEEDED soname still resolves with an empty environment.")
    Term.(const run $ replace $ spec_arg)

let main =
  Cmd.group
    (Cmd.info "spack" ~version:"ospack-1.0"
       ~doc:"OCaml reproduction of the Spack package manager (SC'15).")
    [
      install_cmd; profile_cmd; spec_cmd; solve_cmd; graph_cmd;
      providers_cmd; info_cmd; list_cmd; compilers_cmd; demo_cmd; stats_cmd;
      splice_cmd; torture_cmd; trace_validate_cmd; script_cmd;
    ]

let () = exit (Cmd.eval' main)
