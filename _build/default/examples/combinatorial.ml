(* Combinatorial naming (paper §4.1): maintain gperftools across
   compilers/platforms from ONE package file (Fig. 12), and mpileaks
   across MPI implementations without touching its package.

   Run with: dune exec examples/combinatorial.exe *)

module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Provenance = Ospack_store.Provenance

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  let ctx = Ospack.Context.create () in

  section "gperftools across compiler and platform combinations (§4.1)";
  (* one package definition covers every cell; the platform/compiler
     conditional logic of Fig. 12 selects patches and configure lines *)
  let cells =
    [
      "gperftools %gcc@4.9.2";
      "gperftools %gcc@4.7.3";
      "gperftools %intel@14.0.3";
      "gperftools %clang";
      "gperftools@2.4 =bgq %xl";
      "gperftools@2.4 =bgq %clang";
    ]
  in
  List.iter
    (fun spec ->
      match Ospack.install ctx spec with
      | Ok report ->
          let root =
            List.nth report.Ospack.ir_outcomes
              (List.length report.Ospack.ir_outcomes - 1)
          in
          Printf.printf "%-32s -> %s\n" spec
            root.Installer.o_record.Database.r_prefix
      | Error e -> Printf.printf "%-32s FAILED: %s\n" spec e)
    cells;

  section "Fig. 12 in action: the BG/Q + XL build applies the XL patch";
  (match Ospack.find ctx ~query:"gperftools =bgq %xl" () with
  | Ok [ r ] -> (
      match
        Provenance.read_log ctx.Ospack.Context.vfs ~prefix:r.Database.r_prefix
      with
      | Some log ->
          List.iter
            (fun line ->
              if
                Astring.String.is_infix ~affix:"configure" line
                || Astring.String.is_infix ~affix:"patch" line
              then print_endline line)
            log
      | None -> print_endline "no log")
  | Ok rs -> Printf.printf "expected 1 install, found %d\n" (List.length rs)
  | Error e -> prerr_endline e);

  section "mpileaks against every MPI at the center (§4.1)";
  List.iter
    (fun mpi ->
      match Ospack.install ctx ("mpileaks ^" ^ mpi) with
      | Ok report ->
          let built, reused =
            List.partition
              (fun o -> not o.Installer.o_reused)
              report.Ospack.ir_outcomes
          in
          Printf.printf "mpileaks ^%-10s built %d, reused %d\n" mpi
            (List.length built) (List.length reused)
      | Error e -> Printf.printf "mpileaks ^%-10s FAILED: %s\n" mpi e)
    [ "mvapich2@1.9"; "mvapich2@2.0"; "openmpi"; "mpich" ];

  section "All coexisting configurations (spack find gperftools/mpileaks)";
  (match Ospack.find ctx () with
  | Ok records ->
      List.iter
        (fun (r : Database.record) ->
          let name = Concrete.root r.Database.r_spec in
          if name = "gperftools" || name = "mpileaks" then
            Printf.printf "  %s/%s\n"
              (Concrete.node_to_string (Concrete.root_node r.Database.r_spec))
              r.Database.r_hash)
        records
  | Error e -> prerr_endline e);

  section "Simulated build time spent so far";
  Printf.printf "%.1f simulated seconds across all builds\n"
    (Installer.total_build_seconds ctx.Ospack.Context.installer)
