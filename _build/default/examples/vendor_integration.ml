(* Vendor/site integration: external packages (paper §4.4 — "exploits
   vendor- or site-supplied MPI installations"), a merged file-level view,
   hash addressing, and exact reproduction from spec.json provenance.

   Run with: dune exec examples/vendor_integration.exe *)

module Concrete = Ospack_spec.Concrete
module Config = Ospack_config.Config
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Provenance = Ospack_store.Provenance
module Vfs = Ospack_vfs.Vfs

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  (* site config: the machine's MPI is a vendor install, not built *)
  let config =
    Config.layer
      [
        Config.of_assoc
          [
            ("externals.mvapich2", "mvapich2@2.0 | /opt/vendor/mvapich2-2.0");
          ];
        Ospack_repo.Universe.default_config;
      ]
  in
  let ctx = Ospack.Context.create ~config () in

  section "Install against the vendor MPI (§4.4)";
  (match Ospack.install ctx "mpileaks" with
  | Ok report ->
      List.iter
        (fun (o : Installer.outcome) ->
          let r = o.Installer.o_record in
          Printf.printf "%-11s %-12s -> %s\n"
            (if r.Database.r_external then "[external]"
             else if o.Installer.o_reused then "[reused]"
             else "[installed]")
            (Concrete.root r.Database.r_spec)
            r.Database.r_prefix)
        report.Ospack.Commands.ir_outcomes
  | Error e -> prerr_endline e);

  section "The tool links against the vendor prefix and still runs bare";
  (match Ospack.find ctx ~query:"mpileaks" () with
  | Ok [ r ] ->
      let exe = r.Database.r_prefix ^ "/bin/mpileaks" in
      Printf.printf "%s\n  runs with empty environment: %b\n" exe
        (Ospack_buildsim.Loader.can_run ctx.Ospack.Context.vfs ~path:exe
           ~env:Ospack_buildsim.Env.empty)
  | _ -> print_endline "expected one mpileaks");

  section "Hash addressing (spack find mpileaks/<hash>)";
  (match Ospack.find ctx () with
  | Ok records ->
      List.iter
        (fun (r : Database.record) ->
          Printf.printf "  %s/%s\n"
            (Concrete.root r.Database.r_spec)
            r.Database.r_hash)
        records;
      (match records with
      | r :: _ ->
          let q =
            Printf.sprintf "/%s" (String.sub r.Database.r_hash 0 4)
          in
          (match Ospack.find ctx ~query:q () with
          | Ok found ->
              Printf.printf "query %-12s -> %d match(es)\n" q
                (List.length found)
          | Error e -> prerr_endline e)
      | [] -> ())
  | Error e -> prerr_endline e);

  section "A merged file-level view (one bin/lib/include tree)";
  (match Ospack.view_merge ctx ~view_root:"/opt/merged" with
  | Ok report ->
      Printf.printf "%d files linked, %d collisions resolved by preference\n"
        report.Ospack_views.View.mr_linked
        (List.length report.Ospack_views.View.mr_conflicts);
      (match Vfs.ls ctx.Ospack.Context.vfs "/opt/merged/bin" with
      | Ok entries ->
          Printf.printf "merged bin/: %s\n" (String.concat " " entries)
      | Error _ -> ())
  | Error e -> prerr_endline e);

  section "Exact reproduction from spec.json (§3.4.3)";
  match Ospack.find ctx ~query:"mpileaks" () with
  | Ok [ r ] -> (
      (match
         Provenance.read_spec_json ctx.Ospack.Context.vfs
           ~prefix:r.Database.r_prefix
       with
      | Ok stored ->
          Printf.printf "stored DAG: %d nodes, hash %s (matches: %b)\n"
            (Concrete.node_count stored)
            (Concrete.root_hash stored)
            (Concrete.root_hash stored = r.Database.r_hash)
      | Error e -> prerr_endline e);
      match Ospack.reproduce ctx ~prefix:r.Database.r_prefix with
      | Ok report ->
          Printf.printf "reproduce: %d outcomes, all reused: %b\n"
            (List.length report.Ospack.Commands.ir_outcomes)
            (List.for_all
               (fun o -> o.Installer.o_reused)
               report.Ospack.Commands.ir_outcomes)
      | Error e -> prerr_endline e)
  | _ -> print_endline "expected one mpileaks"
