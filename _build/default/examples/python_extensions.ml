(* Interpreted-language support (paper §4.2): Python builds from source,
   extensions install into their own prefixes, and activate/deactivate
   symlink them into the interpreter as if installed directly — with
   path-index files merged rather than conflicting.

   Run with: dune exec examples/python_extensions.exe *)

module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Vfs = Ospack_vfs.Vfs
module Pkgs_python = Ospack_repo.Pkgs_python

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  let ctx = Ospack.Context.create () in

  section "Install the Python stack";
  List.iter
    (fun spec ->
      match Ospack.install ctx spec with
      | Ok report ->
          Printf.printf "installed %s (%d nodes)\n" spec
            (Concrete.node_count report.Ospack.ir_spec)
      | Error e -> Printf.printf "%s FAILED: %s\n" spec e)
    [ "py-numpy"; "py-scipy"; "py-matplotlib" ];

  let python_prefix =
    match Ospack.find ctx ~query:"python" () with
    | Ok [ r ] -> r.Database.r_prefix
    | _ -> failwith "expected exactly one python"
  in
  Printf.printf "python prefix: %s\n" python_prefix;

  section "Each extension lives in its own prefix (combinatorial versioning)";
  (match Ospack.find ctx () with
  | Ok records ->
      List.iter
        (fun (r : Database.record) ->
          let name = Concrete.root r.Database.r_spec in
          if String.length name > 3 && String.sub name 0 3 = "py-" then
            Printf.printf "  %-40s %s\n"
              (Concrete.node_to_string (Concrete.root_node r.Database.r_spec))
              r.Database.r_prefix)
        records
  | Error e -> prerr_endline e);

  section "Activate numpy and scipy into the interpreter (§4.2)";
  List.iter
    (fun ext ->
      match Ospack.activate ctx ext with
      | Ok rels -> Printf.printf "activated %s (%d files)\n" ext (List.length rels)
      | Error e -> Printf.printf "activate %s FAILED: %s\n" ext e)
    [ "py-numpy"; "py-scipy" ];

  section "The interpreter prefix now sees both, pth files merged";
  let site = python_prefix ^ "/" ^ Pkgs_python.site_packages in
  (match Vfs.ls ctx.Ospack.Context.vfs site with
  | Ok entries ->
      List.iter (fun e -> Printf.printf "  site-packages/%s\n" e) entries
  | Error e -> prerr_endline (Vfs.error_to_string e));
  (match
     Vfs.read_file ctx.Ospack.Context.vfs
       (python_prefix ^ "/" ^ Pkgs_python.pth_file)
   with
  | Ok content ->
      print_endline "merged extensions.pth:";
      print_string content
  | Error e -> prerr_endline (Vfs.error_to_string e));

  section "Conflicting activation fails atomically";
  (match Ospack.activate ctx "py-numpy" with
  | Ok _ -> print_endline "unexpected!"
  | Error e -> Printf.printf "as expected: %s\n" e);

  section "Deactivate numpy: scipy remains, numpy's lines are gone";
  (match Ospack.deactivate ctx "py-numpy" with
  | Ok _ -> print_endline "deactivated py-numpy"
  | Error e -> prerr_endline e);
  (match
     Vfs.read_file ctx.Ospack.Context.vfs
       (python_prefix ^ "/" ^ Pkgs_python.pth_file)
   with
  | Ok content ->
      print_endline "extensions.pth after deactivation:";
      print_string content
  | Error e -> prerr_endline (Vfs.error_to_string e));

  section "Active extensions registry";
  List.iter
    (fun (name, prefix) -> Printf.printf "  %s -> %s\n" name prefix)
    (Ospack_views.Extensions.active ctx.Ospack.Context.vfs
       ~target_prefix:python_prefix)
