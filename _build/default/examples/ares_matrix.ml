(* The ARES multi-physics code (paper §4.4): the 47-package dependency DAG
   of Fig. 13 and the nightly build matrix of Table 3 — 36 configurations
   over architecture x compiler x MPI x code-configuration.

   Run with: dune exec examples/ares_matrix.exe *)

module Concrete = Ospack_spec.Concrete
module Config = Ospack_config.Config
module Concretizer = Ospack_concretize.Concretizer
module Universe = Ospack_repo.Universe
module Pkgs_ares = Ospack_repo.Pkgs_ares
module Platforms = Ospack_repo.Platforms
module Dag = Ospack_dag.Dag

let section title = Printf.printf "\n=== %s ===\n%!" title

(* Table 3 rows: architecture x compiler; columns: the machine's MPI *)
let cells =
  [
    (* arch, compiler spec, mpi provider, configurations built *)
    (Platforms.linux, "%gcc", "mvapich", [ `Current; `Previous; `Lite; `Dev ]);
    (Platforms.linux, "%gcc", "mvapich2", [ `Current; `Previous; `Lite; `Dev ]);
    (Platforms.linux, "%gcc", "openmpi", [ `Current; `Previous; `Lite; `Dev ]);
    (Platforms.linux, "%intel@14.0.3", "mvapich2", [ `Current; `Previous; `Lite; `Dev ]);
    (Platforms.linux, "%intel@15.0.1", "mvapich2", [ `Current; `Previous; `Lite; `Dev ]);
    (Platforms.linux, "%pgi", "mvapich2", [ `Dev ]);
    (Platforms.linux, "%clang", "mvapich2", [ `Current; `Previous; `Lite; `Dev ]);
    (Platforms.bgq, "%gcc", "bgq-mpi", [ `Current; `Previous; `Lite; `Dev ]);
    (Platforms.bgq, "%clang", "bgq-mpi", [ `Current; `Lite; `Dev ]);
    (Platforms.cray_xe6, "%gcc", "cray-mpi", [ `Current; `Previous; `Lite; `Dev ]);
  ]

let config_letter = function
  | `Current -> "C"
  | `Previous -> "P"
  | `Lite -> "L"
  | `Dev -> "D"

let () =
  let repo = Universe.repository () in

  section "The ARES DAG (paper Fig. 13)";
  let ctx =
    Concretizer.make_ctx ~config:Universe.default_config
      ~compilers:Universe.compilers repo
  in
  (match Concretizer.concretize_string ctx "ares" with
  | Ok c ->
      Printf.printf "%d packages in the production configuration\n"
        (Concrete.node_count c);
      let dag = Concrete.to_dag c in
      Printf.printf "direct dependencies of ares: %d\n"
        (List.length (Dag.successors dag "ares"));
      print_endline "\nDAG (tree view, shared nodes repeat):";
      let tree = Concrete.tree_string c in
      (* the full tree is long; show the first 25 lines *)
      String.split_on_char '\n' tree
      |> List.filteri (fun i _ -> i < 25)
      |> List.iter print_endline;
      print_endline "..."
  | Error e -> prerr_endline e);

  section "Table 3: the nightly configuration matrix";
  let built = ref 0 and failed = ref 0 in
  Printf.printf "%-10s %-15s %-10s %s\n" "arch" "compiler" "mpi" "configs";
  List.iter
    (fun (arch, compiler, mpi, configs) ->
      (* per-machine site policy: that machine's MPI is the provider *)
      let machine_config =
        Config.layer
          [
            Config.of_assoc
              [ ("arch", arch); ("providers.mpi", mpi) ];
            Universe.default_config;
          ]
      in
      let ctx =
        Concretizer.make_ctx ~config:machine_config
          ~compilers:Universe.compilers repo
      in
      let results =
        List.map
          (fun config ->
            let spec =
              Printf.sprintf "%s %s =%s ^%s"
                (Pkgs_ares.spec_of_config config)
                compiler arch mpi
            in
            match Concretizer.concretize_string ctx spec with
            | Ok c ->
                incr built;
                Printf.sprintf "%s(%d)" (config_letter config)
                  (Concrete.node_count c)
            | Error e ->
                incr failed;
                Printf.sprintf "%s(FAIL:%s)" (config_letter config) e)
          configs
      in
      Printf.printf "%-10s %-15s %-10s %s\n" arch compiler mpi
        (String.concat " " results))
    cells;
  Printf.printf
    "\n%d configurations concretized, %d failed (paper: 36 nightly configs)\n"
    !built !failed;

  section "What changes across code configurations";
  let ctx =
    Concretizer.make_ctx ~config:Universe.default_config
      ~compilers:Universe.compilers repo
  in
  List.iter
    (fun config ->
      match Concretizer.concretize_string ctx (Pkgs_ares.spec_of_config config) with
      | Ok c ->
          let samrai =
            match Concrete.node c "samrai" with
            | Some n -> Ospack_version.Version.to_string n.Concrete.version
            | None -> "-"
          in
          Printf.printf "%-9s %s: %2d packages, samrai@%s\n"
            (config_letter config)
            (Pkgs_ares.spec_of_config config)
            (Concrete.node_count c) samrai
      | Error e -> Printf.printf "%s: %s\n" (config_letter config) e)
    [ `Current; `Previous; `Lite; `Dev ]
