examples/environments.ml: List Ospack Ospack_spec Ospack_store Ospack_vfs Printf String
