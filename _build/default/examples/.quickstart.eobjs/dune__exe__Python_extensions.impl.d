examples/python_extensions.ml: List Ospack Ospack_repo Ospack_spec Ospack_store Ospack_vfs Ospack_views Printf String
