examples/vendor_integration.mli:
