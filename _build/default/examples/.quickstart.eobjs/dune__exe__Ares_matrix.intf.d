examples/ares_matrix.mli:
