examples/python_extensions.mli:
