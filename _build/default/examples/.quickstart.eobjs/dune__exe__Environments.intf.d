examples/environments.mli:
