examples/ares_matrix.ml: List Ospack_concretize Ospack_config Ospack_dag Ospack_repo Ospack_spec Ospack_version Printf String
