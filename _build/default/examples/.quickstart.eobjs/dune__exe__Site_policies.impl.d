examples/site_policies.ml: Astring List Ospack Ospack_config Ospack_layout Ospack_package Ospack_repo Ospack_spec Ospack_store Ospack_vfs Ospack_views Printf
