examples/combinatorial.ml: Astring List Ospack Ospack_spec Ospack_store Printf
