examples/site_policies.mli:
