examples/combinatorial.mli:
