examples/quickstart.ml: List Ospack Ospack_spec Ospack_store Printf
