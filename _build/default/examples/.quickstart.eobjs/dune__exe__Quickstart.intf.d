examples/quickstart.mli:
