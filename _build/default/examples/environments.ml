(* Environments: a manifest of root specs managed together — the
   composition of the paper's machinery (concretization, hashed installs,
   lockfile provenance like §3.4.3, merged views like §4.3.1) into the
   workflow HPC teams actually run.

   Run with: dune exec examples/environments.exe *)

module Environment = Ospack.Environment
module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Vfs = Ospack_vfs.Vfs

let section title = Printf.printf "\n=== %s ===\n%!" title

let ok = function
  | Ok x -> x
  | Error e ->
      prerr_endline e;
      exit 1

let () =
  let ctx = Ospack.Context.create () in

  section "Create a 'tools' environment with a merged view";
  let env = ok (Environment.create ctx ~name:"tools" ~view:"/opt/tools" ()) in
  let env = ok (Environment.add ctx env "stat +gui") in
  let env = ok (Environment.add ctx env "mpileaks ^mvapich2@1.9") in
  let env = ok (Environment.add ctx env "tau") in
  List.iter
    (fun (root, installed) ->
      Printf.printf "  %-28s installed=%b\n" root installed)
    (Environment.status ctx env);

  section "Install the environment (roots share sub-DAGs)";
  let reports = ok (Environment.install ctx env) in
  List.iter
    (fun r ->
      let built, reused =
        List.partition
          (fun o -> not o.Installer.o_reused)
          r.Ospack.Commands.ir_outcomes
      in
      Printf.printf "  %-45s built %2d, reused %2d\n"
        (Concrete.node_to_string (Concrete.root_node r.Ospack.Commands.ir_spec))
        (List.length built) (List.length reused))
    reports;
  List.iter
    (fun (root, installed) ->
      Printf.printf "  %-28s installed=%b\n" root installed)
    (Environment.status ctx env);

  section "The merged view is one usable tree";
  (match Vfs.ls ctx.Ospack.Context.vfs "/opt/tools/bin" with
  | Ok entries ->
      Printf.printf "/opt/tools/bin: %d tools (%s ...)\n" (List.length entries)
        (String.concat " "
           (List.filteri (fun i _ -> i < 6) entries))
  | Error _ -> ());

  section "The lockfile records the exact concrete DAGs";
  let locked = ok (Environment.locked_specs ctx env) in
  List.iter
    (fun c ->
      Printf.printf "  %s (%d nodes, hash %s)\n"
        (Concrete.node_to_string (Concrete.root_node c))
        (Concrete.node_count c) (Concrete.root_hash c))
    locked;

  section "Wipe the store; replay the lockfile byte-for-byte";
  let db = Installer.database ctx.Ospack.Context.installer in
  List.iter
    (fun (r : Database.record) ->
      if r.Database.r_explicit then
        ignore (Ospack.uninstall ctx ("/" ^ r.Database.r_hash)))
    (Database.all db);
  ignore (ok (Ospack.gc ctx));
  Printf.printf "store after gc: %d records\n" (Database.count db);
  let runs = ok (Environment.install_locked ctx env) in
  Printf.printf "locked replay reinstalled %d roots; store back to %d records\n"
    (List.length runs) (Database.count db);
  List.iter2
    (fun locked_spec run ->
      let root = List.nth run (List.length run - 1) in
      Printf.printf "  %-12s lock %s == installed %s\n"
        (Concrete.root locked_spec)
        (Concrete.root_hash locked_spec)
        root.Installer.o_record.Database.r_hash)
    locked runs
