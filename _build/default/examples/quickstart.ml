(* Quickstart: the paper's running example, end to end.

   - define a package with the DSL (paper Fig. 1),
   - parse abstract specs of increasing constraint (Fig. 2a-c, Table 2),
   - concretize them (Fig. 6 -> Fig. 7),
   - install, inspect hashes and prefixes, and demonstrate reuse.

   Run with: dune exec examples/quickstart.exe *)

module Concrete = Ospack_spec.Concrete
module Parser = Ospack_spec.Parser
module Printer = Ospack_spec.Printer
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let () =
  (* A context over the built-in universe: 245 packages, the LLNL-flavored
     site config, and the full toolchain registry. *)
  let ctx = Ospack.Context.create () in

  section "The mpileaks package (paper Fig. 1)";
  (match Ospack.info ctx "mpileaks" with
  | Ok text -> print_string text
  | Error e -> prerr_endline e);

  section "Abstract specs (paper Fig. 2, Table 2)";
  List.iter
    (fun spec ->
      match Parser.parse spec with
      | Ok ast ->
          Printf.printf "%-55s parsed as %s\n" spec (Printer.to_string ast)
      | Error e -> Printf.printf "%-55s ERROR %s\n" spec e)
    [
      "mpileaks";
      "mpileaks@1.1.2";
      "mpileaks@1.1.2 %gcc";
      "mpileaks@1.1.2 %intel@14.1 +debug";
      "mpileaks@1.1.2 =bgq";
      "mpileaks@1.1.2 ^mvapich2@1.9";
      "mpileaks @1.2:1.4 %gcc@4.7.3 -debug =bgq ^callpath @1.1 ^openmpi @1.4.7";
    ];

  section "Concretization (paper Fig. 6): abstract -> concrete";
  (match Ospack.spec ctx "mpileaks@1.0 ^callpath@1.0+debug ^libelf@0.8.12" with
  | Ok c ->
      print_string (Concrete.tree_string c);
      Printf.printf "\nroot dag hash: %s\n" (Concrete.root_hash c)
  | Error e -> prerr_endline e);

  section "Greedy conflicts are reported, not searched (paper §3.4)";
  (match Ospack.spec ctx "gerris ^mpich@1.4.1" with
  | Ok _ -> print_endline "unexpectedly concretized"
  | Error e -> Printf.printf "as expected: %s\n" e);

  section "Installation: bottom-up, hashed prefixes (paper §3.4.2)";
  (match Ospack.install ctx "mpileaks ^mvapich2@1.9" with
  | Ok report ->
      List.iter
        (fun (o : Installer.outcome) ->
          let r = o.Installer.o_record in
          Printf.printf "%-11s %-28s -> %s\n"
            (if o.Installer.o_reused then "[reused]" else "[installed]")
            (Printf.sprintf "%s/%s"
               (Concrete.root r.Database.r_spec)
               r.Database.r_hash)
            r.Database.r_prefix)
        report.Ospack.ir_outcomes
  | Error e -> prerr_endline e);

  section "A second configuration coexists; shared sub-DAGs are reused (Fig. 9)";
  (match Ospack.install ctx "mpileaks ^openmpi" with
  | Ok report ->
      List.iter
        (fun (o : Installer.outcome) ->
          let r = o.Installer.o_record in
          Printf.printf "%-11s %s/%s\n"
            (if o.Installer.o_reused then "[reused]" else "[installed]")
            (Concrete.root r.Database.r_spec)
            r.Database.r_hash)
        report.Ospack.ir_outcomes
  | Error e -> prerr_endline e);

  section "spack find";
  (match Ospack.find ctx () with
  | Ok records ->
      List.iter
        (fun (r : Database.record) ->
          Printf.printf "  %s\n"
            (Concrete.node_to_string (Concrete.root_node r.Database.r_spec)))
        records
  | Error e -> prerr_endline e);

  section "Provenance: every prefix records how it was built (§3.4.3)";
  match Ospack.find ctx ~query:"mpileaks ^openmpi" () with
  | Ok [ r ] ->
      let prefix = r.Database.r_prefix in
      (match
         Ospack_store.Provenance.read_spec ctx.Ospack.Context.vfs ~prefix
       with
      | Some line -> Printf.printf "stored spec: %s\n" line
      | None -> print_endline "no provenance?")
  | Ok rs -> Printf.printf "expected exactly one match, got %d\n" (List.length rs)
  | Error e -> prerr_endline e
