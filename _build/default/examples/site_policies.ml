(* User and site policies (paper §4.3): naming conventions (Table 1),
   concretization preferences, views with conflict resolution, module-file
   generation, and site package repositories.

   Run with: dune exec examples/site_policies.exe *)

module Concrete = Ospack_spec.Concrete
module Config = Ospack_config.Config
module Layout = Ospack_layout.Layout
module Database = Ospack_store.Database
module View = Ospack_views.View
module Vfs = Ospack_vfs.Vfs

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  let ctx = Ospack.Context.create () in

  section "Table 1: one configuration under every site's convention";
  (match Ospack.spec ctx "mpileaks ^mvapich2@1.9" with
  | Ok c ->
      List.iter
        (fun (name, scheme) ->
          let root =
            match scheme with
            | Layout.Llnl_usr_global -> "/usr/global/tools"
            | Layout.Llnl_usr_local -> "/usr/local/tools"
            | _ -> ""
          in
          Printf.printf "%-22s %s\n" name (Layout.path scheme ~root c))
        Layout.all_schemes
  | Error e -> prerr_endline e);

  section "Site policy: prefer intel, and openmpi for mpi (§3.4.4, §4.3.1)";
  let site_config =
    Config.layer
      [
        Config.of_assoc
          [
            ("compiler_order", "intel, gcc@4.9.2");
            ("providers.mpi", "openmpi");
            ("packages.libelf.version", "0.8.12");
          ];
        Ospack_repo.Universe.default_config;
      ]
  in
  let site_ctx = Ospack.Context.create ~config:site_config () in
  (match Ospack.spec site_ctx "mpileaks" with
  | Ok c -> print_string (Concrete.tree_string c)
  | Error e -> prerr_endline e);

  section "Views (§4.3.1): human-readable projections of the install tree";
  List.iter
    (fun spec -> ignore (Ospack.install ctx spec))
    [ "mpileaks ^mvapich2@1.9"; "mpileaks ^openmpi"; "mpileaks %intel ^openmpi" ];
  (match
     Ospack.view ctx
       ~rules:
         [
           "/opt/views/${PACKAGE}-${VERSION}-${MPINAME}";
           "/opt/views/${PACKAGE}";
         ]
   with
  | Ok reports ->
      List.iter
        (fun r ->
          Printf.printf "%-45s -> %s%s\n" r.View.lr_link r.View.lr_target
            (match r.View.lr_shadowed with
            | [] -> ""
            | s -> Printf.sprintf "  (shadows %d)" (List.length s)))
        reports
  | Error e -> prerr_endline e);

  section "The ambiguous /opt/views/mpileaks link obeys compiler_order";
  let pref_ctx_reports =
    let prefer_intel =
      Config.layer
        [
          Config.of_assoc [ ("compiler_order", "intel, gcc") ];
          Ospack_repo.Universe.default_config;
        ]
    in
    let ctx2 = Ospack.Context.create ~config:prefer_intel () in
    List.iter
      (fun spec -> ignore (Ospack.install ctx2 spec))
      [ "mpileaks ^openmpi"; "mpileaks %intel ^openmpi" ];
    match Ospack.view ctx2 ~rules:[ "/opt/views/${PACKAGE}" ] with
    | Ok reports -> reports
    | Error e ->
        prerr_endline e;
        []
  in
  List.iter
    (fun r ->
      Printf.printf "%s -> %s\n" r.View.lr_link r.View.lr_target)
    pref_ctx_reports;

  section "Module files (§3.5.4): dotkit, TCL, and an Lmod hierarchy";
  (match Ospack.generate_modules ctx `Lmod with
  | Ok paths ->
      List.iter
        (fun p ->
          if Astring.String.is_infix ~affix:"mpileaks" p then
            Printf.printf "  %s\n" p)
        paths
  | Error e -> prerr_endline e);

  section "A site repository shadows built-in packages (§4.3.2)";
  let site_pkg =
    Ospack_package.Package.(
      make_pkg "libelf"
        ~description:"site-patched libelf with the classified bits"
        [ version "0.8.13-llnl"; version "0.8.13" ])
  in
  let shadow_ctx = Ospack.Context.with_site_packages ctx [ site_pkg ] in
  match Ospack.spec shadow_ctx "libelf" with
  | Ok c ->
      Printf.printf "site libelf concretizes to %s (source: %s)\n"
        (Concrete.node_to_string (Concrete.root_node c))
        (match Ospack_package.Repository.find shadow_ctx.Ospack.Context.repo "libelf" with
        | Some p -> p.Ospack_package.Package.p_source
        | None -> "?")
  | Error e -> prerr_endline e
