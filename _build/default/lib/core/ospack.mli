(** ospack: an OCaml reproduction of the Spack package manager
    (Gamblin et al., SC '15).

    This is the library's entry module: {!Context} holds an instance
    (repository, configuration, compilers, concretizer, virtual filesystem
    and install store); the command layer — re-exported here — provides
    the [spack]-style operations ([install], [find], [spec], [providers],
    [activate], …). The underlying subsystems are available directly as
    the [Ospack_*] libraries. *)

module Context : module type of Context
module Commands : module type of Commands
module Environment : module type of Environment
include module type of Commands
