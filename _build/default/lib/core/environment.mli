(** Named environments: a manifest of root specs managed together, with a
    lockfile of exact concretizations and an optional merged view.

    This is the natural composition of the paper's pieces (and the shape
    Spack's own later [spack env] took): the manifest holds abstract
    specs; {!install} concretizes and installs them against one store,
    writes a lockfile of complete concrete DAGs (the environment-level
    analogue of §3.4.3's spec provenance), and synchronizes a merged
    file-level view. {!install_locked} replays the lockfile exactly,
    immune to package and preference drift. *)

type t = private {
  env_name : string;
  env_roots : string list;  (** abstract root specs, in addition order *)
  env_view : string option;  (** merged-view root, when configured *)
}

val envs_root : string
(** Where environments live on the context filesystem (["/ospack/envs"]). *)

val create :
  Context.t -> name:string -> ?view:string -> unit -> (t, string) result
(** Create and persist an empty environment. Fails if the name exists.
    Names are restricted to [A-Za-z0-9_-]. *)

val load : Context.t -> name:string -> (t, string) result

val list_envs : Context.t -> string list
(** Names of existing environments, sorted. *)

val add : Context.t -> t -> string -> (t, string) result
(** Append a root spec (parse-validated; duplicates rejected) and persist. *)

val remove_root : Context.t -> t -> string -> (t, string) result
(** Remove a root spec (exact string match) and persist. *)

val install :
  Context.t -> t -> (Commands.install_report list, string) result
(** Concretize and install every root against the context store (shared
    sub-DAGs across roots are built once), write the lockfile, and — when
    the environment has a view — synchronize the merged view. *)

val install_locked :
  Context.t -> t -> (Ospack_store.Installer.outcome list list, string) result
(** Install exactly the concrete DAGs recorded in the lockfile, without
    re-concretizing. Fails when no lockfile exists. *)

val locked_specs :
  Context.t -> t -> (Ospack_spec.Concrete.t list, string) result
(** The lockfile contents. *)

val status : Context.t -> t -> (string * bool) list
(** Each root spec paired with whether a satisfying install exists. *)
