lib/core/environment.mli: Commands Context Ospack_spec Ospack_store
