lib/core/ospack.mli: Commands Context Environment
