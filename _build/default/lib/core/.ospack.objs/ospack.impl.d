lib/core/ospack.ml: Commands Context Environment
