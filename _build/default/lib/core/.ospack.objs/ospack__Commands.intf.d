lib/core/commands.mli: Context Ospack_package Ospack_spec Ospack_store Ospack_views
