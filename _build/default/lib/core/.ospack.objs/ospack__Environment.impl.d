lib/core/environment.ml: Commands Context List Option Ospack_json Ospack_spec Ospack_store Ospack_vfs Ospack_views Printf Result String
