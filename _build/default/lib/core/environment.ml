module Vfs = Ospack_vfs.Vfs
module Json = Ospack_json.Json
module Parser = Ospack_spec.Parser
module Concrete = Ospack_spec.Concrete
module Installer = Ospack_store.Installer
module Database = Ospack_store.Database

type t = {
  env_name : string;
  env_roots : string list;
  env_view : string option;
}

let envs_root = "/ospack/envs"

let manifest_path name = Printf.sprintf "%s/%s/env.json" envs_root name
let lock_path name = Printf.sprintf "%s/%s/lock.json" envs_root name

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       name

let ( let* ) = Result.bind

let persist (ctx : Context.t) t =
  let manifest =
    Json.Obj
      [
        ("name", Json.String t.env_name);
        ("roots", Json.List (List.map (fun r -> Json.String r) t.env_roots));
        ( "view",
          match t.env_view with
          | Some v -> Json.String v
          | None -> Json.Null );
      ]
  in
  match
    Vfs.write_file ctx.Context.vfs
      (manifest_path t.env_name)
      (Json.to_string ~indent:2 manifest ^ "\n")
  with
  | Ok () -> Ok t
  | Error e -> Error (Vfs.error_to_string e)

let create (ctx : Context.t) ~name ?view () =
  if not (valid_name name) then
    Error (Printf.sprintf "invalid environment name %S" name)
  else if Vfs.exists ctx.Context.vfs (manifest_path name) then
    Error (Printf.sprintf "environment %s already exists" name)
  else persist ctx { env_name = name; env_roots = []; env_view = view }

let load (ctx : Context.t) ~name =
  match Vfs.read_file ctx.Context.vfs (manifest_path name) with
  | Error _ -> Error (Printf.sprintf "no environment named %s" name)
  | Ok content -> (
      let* j =
        Result.map_error (fun e -> "env manifest: " ^ e) (Json.of_string content)
      in
      let* roots =
        match Option.bind (Json.member "roots" j) Json.to_list with
        | Some items ->
            Ok (List.filter_map Json.get_string items)
        | None -> Error "env manifest: missing roots"
      in
      let view = Option.bind (Json.member "view" j) Json.get_string in
      Ok { env_name = name; env_roots = roots; env_view = view })

let list_envs (ctx : Context.t) =
  match Vfs.ls ctx.Context.vfs envs_root with
  | Error _ -> []
  | Ok entries ->
      List.filter
        (fun name -> Vfs.is_file ctx.Context.vfs (manifest_path name))
        entries

let add (ctx : Context.t) t spec =
  let* _ast = Parser.parse spec in
  if List.mem spec t.env_roots then
    Error (Printf.sprintf "%s is already a root of %s" spec t.env_name)
  else persist ctx { t with env_roots = t.env_roots @ [ spec ] }

let remove_root (ctx : Context.t) t spec =
  if not (List.mem spec t.env_roots) then
    Error (Printf.sprintf "%s is not a root of %s" spec t.env_name)
  else
    persist ctx
      { t with env_roots = List.filter (fun r -> r <> spec) t.env_roots }

let write_lock (ctx : Context.t) t concretes =
  let lock =
    Json.Obj
      [
        ("format", Json.Int 1);
        ("specs", Json.List (List.map Concrete.to_json concretes));
      ]
  in
  match
    Vfs.write_file ctx.Context.vfs
      (lock_path t.env_name)
      (Json.to_string ~indent:2 lock ^ "\n")
  with
  | Ok () -> Ok ()
  | Error e -> Error (Vfs.error_to_string e)

let locked_specs (ctx : Context.t) t =
  match Vfs.read_file ctx.Context.vfs (lock_path t.env_name) with
  | Error _ -> Error (Printf.sprintf "environment %s has no lockfile" t.env_name)
  | Ok content ->
      let* j =
        Result.map_error (fun e -> "lockfile: " ^ e) (Json.of_string content)
      in
      let* items =
        match Option.bind (Json.member "specs" j) Json.to_list with
        | Some items -> Ok items
        | None -> Error "lockfile: missing specs"
      in
      List.fold_left
        (fun acc item ->
          let* specs = acc in
          let* c = Concrete.of_json item in
          Ok (c :: specs))
        (Ok []) items
      |> Result.map List.rev

let sync_view (ctx : Context.t) t =
  match t.env_view with
  | None -> Ok ()
  | Some view_root ->
      Result.map (fun (_ : Ospack_views.View.merge_report) -> ())
        (Commands.view_merge ctx ~view_root)

let install (ctx : Context.t) t =
  let* reports =
    List.fold_left
      (fun acc root ->
        let* reports = acc in
        let* report = Commands.install ctx root in
        Ok (report :: reports))
      (Ok []) t.env_roots
    |> Result.map List.rev
  in
  let* () =
    write_lock ctx t (List.map (fun r -> r.Commands.ir_spec) reports)
  in
  let* () = sync_view ctx t in
  Ok reports

let install_locked (ctx : Context.t) t =
  let* specs = locked_specs ctx t in
  let* outcomes =
    List.fold_left
      (fun acc spec ->
        let* outcomes = acc in
        let* o = Installer.install ctx.Context.installer spec in
        Ok (o :: outcomes))
      (Ok []) specs
    |> Result.map List.rev
  in
  let* () = sync_view ctx t in
  Ok outcomes

let status (ctx : Context.t) t =
  let db = Installer.database ctx.Context.installer in
  List.map
    (fun root ->
      let installed =
        match Parser.parse root with
        | Error _ -> false
        | Ok ast -> Database.find_satisfying db ast <> []
      in
      (root, installed))
    t.env_roots
