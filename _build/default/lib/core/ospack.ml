module Context = Context
module Commands = Commands
module Environment = Environment
include Commands
