lib/concretize/concretizer.mli: Cerror Ospack_config Ospack_package Ospack_spec
