lib/concretize/cerror.ml: Format Ospack_spec Printf String
