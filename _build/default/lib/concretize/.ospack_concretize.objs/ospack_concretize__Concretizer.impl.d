lib/concretize/concretizer.ml: Bool Cerror Format Hashtbl List Option Ospack_config Ospack_package Ospack_spec Ospack_version Printf Queue Result Set String
