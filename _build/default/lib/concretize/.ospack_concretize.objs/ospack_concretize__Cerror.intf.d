lib/concretize/cerror.mli: Format Ospack_spec
