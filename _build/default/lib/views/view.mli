(** Package views: human-readable symlink projections of the install tree
    (paper §4.3.1).

    A view is a set of parameterized link rules like
    [/opt/${PACKAGE}-${VERSION}-${MPINAME}]. Each installed spec expands a
    rule to a link name; several installs may collide on one name (a view
    is "a projection from points in a high-dimensional space to a
    lower-dimensional space"), and the winner is chosen by site/user
    preference: [compiler_order] position first, then newer package
    version, then newer compiler, then hash — "Spack prefers newer
    versions of packages compiled with newer compilers to older packages
    built with older compilers". *)

type rule = string
(** A link-path template. Variables: [${PACKAGE}], [${VERSION}],
    [${COMPILER}], [${COMPILER_VERSION}], [${ARCH}], [${HASH}],
    [${MPINAME}], [${MPIVERSION}] (the last two from the spec's mpi
    provider, ["nompi"]/["0"] when absent). *)

val expand_rule : rule -> Ospack_spec.Concrete.t -> string
(** Expand a rule for a spec (root node parameters). Unknown [${...}]
    variables are left verbatim. *)

type link_report = {
  lr_link : string;  (** the symlink path *)
  lr_target : string;  (** chosen install prefix *)
  lr_shadowed : string list;  (** losing prefixes mapping to the same link *)
}

val sync :
  Ospack_vfs.Vfs.t ->
  config:Ospack_config.Config.t ->
  rules:rule list ->
  installed:(Ospack_spec.Concrete.t * string) list ->
  link_report list
(** Materialize the view: for every rule and installed (spec, prefix),
    compute links, resolve conflicts by preference, and (re)create the
    symlinks. Existing links are updated; reports are sorted by link
    path. *)

type merge_report = {
  mr_linked : int;  (** files linked into the view *)
  mr_conflicts : (string * string * string) list;
      (** (relative path, winning prefix, losing prefix) for files several
          installs would place at the same location *)
}

val merge :
  Ospack_vfs.Vfs.t ->
  config:Ospack_config.Config.t ->
  view_root:string ->
  installed:(Ospack_spec.Concrete.t * string) list ->
  merge_report
(** A single merged tree: every payload file of every install is symlinked
    under [view_root] at its prefix-relative path (a [bin]/[lib]/[include]
    union, like a traditional [/usr/local]). When two installs collide on
    one path, the preferred spec (same order as {!sync}) keeps the link
    and the collision is reported. Provenance directories are skipped. *)
