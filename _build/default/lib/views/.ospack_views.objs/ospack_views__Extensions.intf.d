lib/views/extensions.mli: Ospack_vfs
