lib/views/view.mli: Ospack_config Ospack_spec Ospack_vfs
