lib/views/view.ml: Buffer Hashtbl List Option Ospack_config Ospack_spec Ospack_version Ospack_vfs String
