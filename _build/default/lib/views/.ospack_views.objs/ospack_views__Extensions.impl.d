lib/views/extensions.ml: List Ospack_vfs Printf Result String
