(** Extension activation (paper §4.2).

    A package that [extends] another (Python modules extending a Python
    interpreter) installs into its own prefix like any package, but can be
    {e activated} into the extendee's prefix: every file is symlinked in,
    as if installed directly. Activation fails — changing nothing — on any
    file conflict, unless a merge hook handles the colliding path (the
    paper's "this feature merges conflicting files during activation",
    used for Python's shared path-index files). Deactivation removes the
    links and un-merges merged files, restoring the pristine prefix. *)

type merge_hook = rel:string -> existing:string -> incoming:string -> string option
(** [merge ~rel ~existing ~incoming] decides what to do when the extension
    wants to place content at relative path [rel] where [existing] content
    is already present: [Some merged] writes the merged content; [None]
    declares a hard conflict. *)

val line_union_merge : merge_hook
(** Merge hook for line-oriented path-index files: the union of the two
    files' lines, first occurrence order preserved — how Python
    [.pth]-style files combine. *)

val activate :
  Ospack_vfs.Vfs.t ->
  ?merge:(rel:string -> merge_hook option) ->
  ext_name:string ->
  ext_prefix:string ->
  target_prefix:string ->
  unit ->
  (string list, string) result
(** Link every file of [ext_prefix] (except its provenance directory) into
    [target_prefix]. Returns the relative paths linked or merged. On
    conflict, already-created links are rolled back and an error names the
    conflicting path. Fails if the extension is already active. *)

val deactivate :
  Ospack_vfs.Vfs.t ->
  ext_name:string ->
  ext_prefix:string ->
  target_prefix:string ->
  (string list, string) result
(** Remove the extension's links (and its lines from merged files). Fails
    if the extension is not active. *)

val active : Ospack_vfs.Vfs.t -> target_prefix:string -> (string * string) list
(** [(name, prefix)] of extensions currently activated in a prefix. *)
