module Vfs = Ospack_vfs.Vfs
module Vpath = Ospack_vfs.Vpath

type merge_hook =
  rel:string -> existing:string -> incoming:string -> string option

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let unlines ls = String.concat "\n" ls ^ "\n"

let line_union_merge ~rel:_ ~existing ~incoming =
  let have = lines existing in
  let extra =
    List.filter (fun l -> not (List.mem l have)) (lines incoming)
  in
  Some (unlines (have @ extra))

let registry target_prefix = target_prefix ^ "/.spack/extensions"

let active vfs ~target_prefix =
  match Vfs.read_file vfs (registry target_prefix) with
  | Error _ -> []
  | Ok content ->
      lines content
      |> List.filter_map (fun line ->
             match String.index_opt line ' ' with
             | None -> None
             | Some i ->
                 Some
                   ( String.sub line 0 i,
                     String.sub line (i + 1) (String.length line - i - 1) ))

let write_registry vfs ~target_prefix entries =
  let content =
    match entries with
    | [] -> ""
    | _ ->
        unlines (List.map (fun (n, p) -> n ^ " " ^ p) entries)
  in
  match Vfs.write_file vfs (registry target_prefix) content with
  | Ok () -> ()
  | Error e -> invalid_arg ("Extensions: " ^ Vfs.error_to_string e)

(* relative paths of all regular files and symlinks under a prefix,
   excluding the provenance/bookkeeping directory *)
let payload_files vfs prefix =
  Vfs.walk vfs prefix
  |> List.filter_map (fun (path, kind) ->
         match kind with
         | Vfs.Dir -> None
         | Vfs.File | Vfs.Symlink ->
             let plen = String.length prefix + 1 in
             let rel = String.sub path plen (String.length path - plen) in
             if String.length rel >= 6 && String.sub rel 0 6 = ".spack" then
               None
             else Some rel)

let ( let* ) = Result.bind

let activate vfs ?(merge = fun ~rel:_ -> None) ~ext_name ~ext_prefix
    ~target_prefix () =
  if List.mem_assoc ext_name (active vfs ~target_prefix) then
    Error (Printf.sprintf "extension %s is already activated" ext_name)
  else begin
    let rels = payload_files vfs ext_prefix in
    let created = ref [] in
    let merged = ref [] in
    (* merged : (path, previous state) — a merged path may previously have
       been a plain file or a symlink into another extension's prefix; a
       link must be replaced by a real merged file (never written through,
       which would corrupt the other extension's install) and restored on
       rollback *)
    let rollback () =
      List.iter (fun link -> ignore (Vfs.remove vfs link)) !created;
      List.iter
        (fun (path, previous) ->
          ignore (Vfs.remove vfs path);
          match previous with
          | `File original -> ignore (Vfs.write_file vfs path original)
          | `Link target -> ignore (Vfs.symlink vfs ~target ~link:path))
        !merged
    in
    let rec link_all = function
      | [] -> Ok ()
      | rel :: rest -> (
          let src = Vpath.join ext_prefix rel in
          let dst = Vpath.join target_prefix rel in
          match Vfs.kind_of vfs dst with
          | None -> (
              match Vfs.symlink vfs ~target:src ~link:dst with
              | Ok () ->
                  created := dst :: !created;
                  link_all rest
              | Error e -> Error (Vfs.error_to_string e))
          | Some kind -> (
              match merge ~rel with
              | None ->
                  Error
                    (Printf.sprintf
                       "cannot activate %s: file conflict on %s" ext_name rel)
              | Some hook -> (
                  let existing =
                    Result.value (Vfs.read_file vfs dst) ~default:""
                  in
                  let incoming =
                    Result.value (Vfs.read_file vfs src) ~default:""
                  in
                  match hook ~rel ~existing ~incoming with
                  | None ->
                      Error
                        (Printf.sprintf
                           "cannot activate %s: unmergeable conflict on %s"
                           ext_name rel)
                  | Some content -> (
                      let previous =
                        match kind with
                        | Vfs.Symlink ->
                            let target =
                              Result.value (Vfs.readlink vfs dst) ~default:""
                            in
                            ignore (Vfs.remove vfs dst);
                            `Link target
                        | _ -> `File existing
                      in
                      match Vfs.write_file vfs dst content with
                      | Ok () ->
                          merged := (dst, previous) :: !merged;
                          link_all rest
                      | Error e -> Error (Vfs.error_to_string e)))))
    in
    match link_all rels with
    | Error e ->
        rollback ();
        Error e
    | Ok () ->
        write_registry vfs ~target_prefix
          (active vfs ~target_prefix @ [ (ext_name, ext_prefix) ]);
        Ok rels
  end

let deactivate vfs ~ext_name ~ext_prefix ~target_prefix =
  let entries = active vfs ~target_prefix in
  if not (List.mem_assoc ext_name entries) then
    Error (Printf.sprintf "extension %s is not activated" ext_name)
  else begin
    let rels = payload_files vfs ext_prefix in
    let* () =
      List.fold_left
        (fun acc rel ->
          let* () = acc in
          let src = Vpath.join ext_prefix rel in
          let dst = Vpath.join target_prefix rel in
          match Vfs.kind_of vfs dst with
          | Some Vfs.Symlink -> (
              match Vfs.readlink vfs dst with
              | Ok target when Vpath.join (Vpath.dirname dst) target = src ->
                  ignore (Vfs.remove vfs dst);
                  Ok ()
              | _ -> Ok () (* link now owned by someone else *))
          | Some Vfs.File -> (
              (* merged file: remove this extension's lines *)
              match (Vfs.read_file vfs dst, Vfs.read_file vfs src) with
              | Ok existing, Ok incoming ->
                  let mine = lines incoming in
                  let remaining =
                    List.filter (fun l -> not (List.mem l mine)) (lines existing)
                  in
                  let result =
                    if remaining = [] then Vfs.remove vfs dst
                    else Vfs.write_file vfs dst (unlines remaining)
                  in
                  Result.map_error Vfs.error_to_string result
              | _ -> Ok ())
          | _ -> Ok ())
        (Ok ()) rels
    in
    write_registry vfs ~target_prefix
      (List.filter (fun (n, _) -> n <> ext_name) entries);
    Ok rels
  end
