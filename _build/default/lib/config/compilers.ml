module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist
module Ast = Ospack_spec.Ast

type toolchain = {
  tc_name : string;
  tc_version : Version.t;
  tc_cc : string;
  tc_cxx : string;
  tc_f77 : string;
  tc_fc : string;
  tc_archs : string list;
  tc_features : string list;
}

let vendor_drivers = function
  | "gcc" -> ("gcc", "g++", "gfortran", "gfortran")
  | "intel" -> ("icc", "icpc", "ifort", "ifort")
  | "clang" -> ("clang", "clang++", "gfortran", "gfortran")
  | "xl" -> ("xlc", "xlC", "xlf", "xlf90")
  | "pgi" -> ("pgcc", "pgc++", "pgf77", "pgf90")
  | "cray" -> ("cc", "CC", "ftn", "ftn")
  | name -> (name ^ "cc", name ^ "c++", name ^ "f77", name ^ "f90")

let toolchain ?cc ?cxx ?f77 ?fc ?(archs = []) ?(features = []) name version =
  let dcc, dcxx, df77, dfc = vendor_drivers name in
  {
    tc_name = name;
    tc_version = Version.of_string version;
    tc_cc = Option.value cc ~default:dcc;
    tc_cxx = Option.value cxx ~default:dcxx;
    tc_f77 = Option.value f77 ~default:df77;
    tc_fc = Option.value fc ~default:dfc;
    tc_archs = archs;
    tc_features = features;
  }

let has_features tc requested =
  List.for_all (fun f -> List.mem f tc.tc_features) requested

type t = toolchain list (* sorted: by name, then newest first *)

let compare_tc a b =
  match String.compare a.tc_name b.tc_name with
  | 0 -> Version.compare b.tc_version a.tc_version
  | c -> c

let create toolchains =
  let sorted = List.sort compare_tc toolchains in
  let rec check = function
    | a :: b :: _
      when a.tc_name = b.tc_name && Version.equal a.tc_version b.tc_version ->
        invalid_arg
          (Printf.sprintf "Compilers.create: duplicate toolchain %s at %s"
             a.tc_name
             (Version.to_string a.tc_version))
    | _ :: rest -> check rest
    | [] -> ()
  in
  check sorted;
  sorted

let all t = t

let supports tc ~arch = tc.tc_archs = [] || List.mem arch tc.tc_archs

let available t ~arch = List.filter (supports ~arch) t

let satisfying t ~arch (req : Ast.compiler_req) =
  available t ~arch
  |> List.filter (fun tc ->
         tc.tc_name = req.Ast.c_name
         && Vlist.mem tc.tc_version req.Ast.c_versions)

let find t ~name ~version =
  List.find_opt
    (fun tc -> tc.tc_name = name && Version.equal tc.tc_version version)
    t
