lib/config/policy.mli: Compilers Config Ospack_spec Ospack_version
