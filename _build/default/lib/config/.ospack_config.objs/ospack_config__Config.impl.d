lib/config/config.ml: List Map Printf String
