lib/config/config.mli:
