lib/config/policy.ml: Compilers Config List Option Ospack_spec Ospack_version Printf String
