lib/config/compilers.mli: Ospack_spec Ospack_version
