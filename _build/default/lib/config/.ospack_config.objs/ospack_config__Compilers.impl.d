lib/config/compilers.ml: List Option Ospack_spec Ospack_version Printf String
