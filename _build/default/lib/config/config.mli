(** Layered site and user configuration (paper §3.4.4, §4.3.1).

    Configuration is a flat key/value store with dotted keys, parsed from a
    simple INI-ish text format:

    {v
    # comment
    arch = linux-x86_64
    compiler_order = icc, gcc@4.4.7

    [providers]
    mpi = mvapich2, openmpi

    [packages.python]
    version = 2.7.9
    v}

    A [\[section\]] header prefixes subsequent keys with ["section."].
    Layers combine with earlier layers winning ("site and user policies",
    §3.4: defaults < site < user < command line). *)

type t

val empty : t

val parse : string -> (t, string) result
(** Parse the text format above. Errors name the offending line. *)

val parse_exn : string -> t

val of_assoc : (string * string) list -> t

val layer : t list -> t
(** Earlier layers take precedence for every key. *)

val get : t -> string -> string option

val get_list : t -> string -> string list
(** Comma-separated value, trimmed; [[]] when the key is absent. *)

val keys : t -> string list
(** All defined keys, sorted. *)
