(** Site/user policy decisions used by the concretizer to resolve the
    parameters an abstract spec leaves open (paper §3.4, "Spack consults
    site and user policies to select the best possible provider", and
    §4.3.1's [compiler_order]).

    Recognized configuration keys:
    - [arch] — default target architecture.
    - [compiler_order] — comma-separated compiler preferences, each in
      spec syntax ([icc, gcc@4.4.7]); earlier entries win. Toolchains not
      listed rank after all listed ones (§4.3.1).
    - [providers.<virtual>] — provider preference for a virtual interface,
      e.g. [mpi = mvapich2, openmpi].
    - [packages.<name>.version] — preferred version list for a package.
    - [packages.<name>.variants] — variant defaults in spec syntax,
      e.g. [+debug~shared]. *)

val default_arch : Config.t -> string
(** The [arch] key; ["linux-x86_64"] when unset. *)

val compiler_order : Config.t -> Ospack_spec.Ast.compiler_req list
(** Parsed [compiler_order] entries, highest preference first. Entries
    that fail to parse are ignored. *)

val choose_toolchain :
  Config.t ->
  Compilers.t ->
  arch:string ->
  ?features:string list ->
  req:Ospack_spec.Ast.compiler_req option ->
  unit ->
  Compilers.toolchain option
(** The best toolchain on [arch] satisfying [req] (if any) and supporting
    every requested [features] entry (§4.5 compiler features): first by
    [compiler_order] position, then by a built-in vendor order
    (gcc, intel, clang, xl, pgi, cray, then alphabetical), then newest
    version first. [None] when no toolchain qualifies. *)

val provider_order : Config.t -> virtual_:string -> string list

val rank_provider : Config.t -> virtual_:string -> string -> int
(** Position in [providers.<virtual>] (0-based); [max_int] when unlisted,
    so unlisted providers sort after listed ones. *)

val preferred_versions :
  Config.t -> package:string -> Ospack_version.Vlist.t option
(** The [packages.<name>.version] preference as a version list. *)

val choose_version :
  Config.t ->
  package:string ->
  candidates:Ospack_version.Version.t list ->
  constraint_:Ospack_version.Vlist.t ->
  Ospack_version.Version.t option
(** The version the concretizer pins: the newest candidate satisfying both
    the constraint and the site preference when one matches; otherwise the
    newest candidate satisfying the constraint; otherwise — when the
    constraint demands one exact version that is not a known candidate —
    that version itself (the paper's URL-extrapolation of unknown
    versions, §3.2.3). [None] when nothing qualifies. *)

val variant_preference : Config.t -> package:string -> (string * bool) list
(** Parsed [packages.<name>.variants] settings, e.g.
    [[("debug", true); ("shared", false)]]. *)

val external_for :
  Config.t -> package:string -> (Ospack_spec.Ast.t * string) option
(** The [externals.<name>] declaration, if any: a vendor- or site-supplied
    installation outside the store (paper §4.4, "exploits vendor- or
    site-supplied MPI installations"). The value format is
    [<spec> | <prefix>], e.g.
    [externals.mvapich2 = mvapich2@1.9%gcc@4.9.2 | /opt/vendor/mvapich2].
    The installer uses the prefix instead of building when the concretized
    package satisfies the spec. Returns [None] on missing or malformed
    entries. *)
