module Smap = Map.Make (String)

type t = string Smap.t

let empty = Smap.empty

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go section acc lineno = function
    | [] -> Ok acc
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then go section acc (lineno + 1) rest
        else if String.length line > 1 && line.[0] = '[' then
          if line.[String.length line - 1] = ']' then
            let name = String.trim (String.sub line 1 (String.length line - 2)) in
            go (if name = "" then "" else name ^ ".") acc (lineno + 1) rest
          else Error (Printf.sprintf "line %d: unterminated section header" lineno)
        else
          match String.index_opt line '=' with
          | None ->
              Error (Printf.sprintf "line %d: expected 'key = value'" lineno)
          | Some i ->
              let key = String.trim (String.sub line 0 i) in
              let value =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              if key = "" then
                Error (Printf.sprintf "line %d: empty key" lineno)
              else
                go section (Smap.add (section ^ key) value acc) (lineno + 1) rest)
  in
  go "" Smap.empty 1 lines

let parse_exn text =
  match parse text with Ok t -> t | Error e -> invalid_arg ("Config.parse: " ^ e)

let of_assoc kvs =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty kvs

let layer layers =
  List.fold_left
    (fun acc l -> Smap.union (fun _ high _low -> Some high) acc l)
    Smap.empty layers

let get t key = Smap.find_opt key t

let get_list t key =
  match get t key with
  | None -> []
  | Some v ->
      String.split_on_char ',' v |> List.map String.trim
      |> List.filter (fun s -> s <> "")

let keys t = Smap.bindings t |> List.map fst
