(** The compiler (toolchain) registry.

    A Spack "compiler" names a full toolchain — C, C++, Fortran 77/90
    drivers of one vendor at one version (paper §3.2.3, "Compilers").
    Real Spack auto-detects toolchains in [PATH] or reads them from a
    configuration file; here the registry is constructed from site
    configuration. Toolchains may be restricted to architectures — the
    registry for a Blue Gene/Q front-end offers xl and clang for [=bgq]
    but not icc (paper Table 3). *)

type toolchain = {
  tc_name : string;  (** e.g. ["gcc"], ["intel"], ["xl"] *)
  tc_version : Ospack_version.Version.t;
  tc_cc : string;  (** C driver command, e.g. ["gcc"] or ["icc"] *)
  tc_cxx : string;
  tc_f77 : string;
  tc_fc : string;
  tc_archs : string list;  (** supported target architectures; [[]] = any *)
  tc_features : string list;
      (** language/runtime features the toolchain supports, e.g. ["cxx11"],
          ["openmp4"], ["cuda"] — the paper's §4.5 future work: "packages
          depend on particular compiler features … like C++11 language
          features, OpenMP versions, and GPU compute capabilities" *)
}

val toolchain :
  ?cc:string ->
  ?cxx:string ->
  ?f77:string ->
  ?fc:string ->
  ?archs:string list ->
  ?features:string list ->
  string ->
  string ->
  toolchain
(** [toolchain name version] with driver names defaulting to the vendor's
    conventional spellings for known vendors ([gcc]/[g++]/[gfortran],
    [icc]/[icpc]/[ifort], [xlc]/[xlC]/[xlf], [clang]/[clang++], [pgcc]…)
    and to [<name>cc]-style names otherwise. *)

val has_features : toolchain -> string list -> bool
(** Does the toolchain support every requested feature? *)

type t

val create : toolchain list -> t
(** Raises [Invalid_argument] on duplicate (name, version) pairs. *)

val all : t -> toolchain list
(** Sorted by name, then newest version first. *)

val supports : toolchain -> arch:string -> bool

val available : t -> arch:string -> toolchain list
(** Toolchains usable on an architecture, sorted newest-first per name. *)

val satisfying :
  t -> arch:string -> Ospack_spec.Ast.compiler_req -> toolchain list
(** Toolchains on [arch] matching a [%name\[@versions\]] requirement,
    newest version first. *)

val find :
  t -> name:string -> version:Ospack_version.Version.t -> toolchain option
