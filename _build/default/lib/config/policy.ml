module Ast = Ospack_spec.Ast
module Parser = Ospack_spec.Parser
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist

let default_arch cfg =
  Option.value (Config.get cfg "arch") ~default:"linux-x86_64"

(* "icc, gcc@4.4.7" — each entry is an anonymous-or-named compiler spec;
   we accept either "gcc@4.4.7" (a name with a version) or "%gcc@4.4.7". *)
let compiler_order cfg =
  Config.get_list cfg "compiler_order"
  |> List.filter_map (fun entry ->
         let entry =
           if String.length entry > 0 && entry.[0] = '%' then entry
           else "%" ^ entry
         in
         match Parser.parse_node entry with
         | Ok node -> node.Ast.compiler
         | Error _ -> None)

let toolchain_matches (req : Ast.compiler_req) (tc : Compilers.toolchain) =
  tc.Compilers.tc_name = req.Ast.c_name
  && Vlist.mem tc.Compilers.tc_version req.Ast.c_versions

let builtin_vendor_rank = [ "gcc"; "intel"; "clang"; "xl"; "pgi"; "cray" ]

let rank_in_list order item =
  let rec go i = function
    | [] -> max_int
    | x :: rest -> if x = item then i else go (i + 1) rest
  in
  go 0 order

let choose_toolchain cfg compilers ~arch ?(features = []) ~req () =
  let candidates =
    (match req with
    | Some r -> Compilers.satisfying compilers ~arch r
    | None -> Compilers.available compilers ~arch)
    |> List.filter (fun tc -> Compilers.has_features tc features)
  in
  let order = compiler_order cfg in
  let order_rank tc =
    let rec go i = function
      | [] -> max_int
      | entry :: rest -> if toolchain_matches entry tc then i else go (i + 1) rest
    in
    go 0 order
  in
  let key tc =
    ( order_rank tc,
      rank_in_list builtin_vendor_rank tc.Compilers.tc_name,
      tc.Compilers.tc_name )
  in
  let better a b =
    let ka = key a and kb = key b in
    if ka < kb then true
    else if ka > kb then false
    else Version.compare a.Compilers.tc_version b.Compilers.tc_version > 0
  in
  List.fold_left
    (fun best tc ->
      match best with
      | None -> Some tc
      | Some b -> if better tc b then Some tc else best)
    None candidates

let provider_order cfg ~virtual_ =
  Config.get_list cfg ("providers." ^ virtual_)

let rank_provider cfg ~virtual_ name =
  rank_in_list (provider_order cfg ~virtual_) name

let preferred_versions cfg ~package =
  match Config.get cfg (Printf.sprintf "packages.%s.version" package) with
  | None -> None
  | Some body -> (
      match Vlist.of_string body with
      | vl -> Some vl
      | exception Invalid_argument _ -> None)

let newest satisfying versions =
  List.fold_left
    (fun best v ->
      if not (satisfying v) then best
      else
        match best with
        | None -> Some v
        | Some b -> if Version.compare v b > 0 then Some v else best)
    None versions

let choose_version cfg ~package ~candidates ~constraint_ =
  let in_constraint v = Vlist.mem v constraint_ in
  let preferred = preferred_versions cfg ~package in
  let with_pref =
    match preferred with
    | None -> None
    | Some pref ->
        newest (fun v -> in_constraint v && Vlist.mem v pref) candidates
  in
  match with_pref with
  | Some v -> Some v
  | None -> (
      match newest in_constraint candidates with
      | Some v -> Some v
      | None ->
          (* unknown exact version requested: extrapolate (paper §3.2.3) *)
          Vlist.concrete constraint_)

let external_for cfg ~package =
  match Config.get cfg ("externals." ^ package) with
  | None -> None
  | Some value -> (
      match String.index_opt value '|' with
      | None -> None
      | Some i ->
          let spec = String.trim (String.sub value 0 i) in
          let prefix =
            String.trim
              (String.sub value (i + 1) (String.length value - i - 1))
          in
          if prefix = "" then None
          else
            (match Parser.parse spec with
            | Ok ast when ast.Ast.root.Ast.name = package -> Some (ast, prefix)
            | _ -> None))

let variant_preference cfg ~package =
  match Config.get cfg (Printf.sprintf "packages.%s.variants" package) with
  | None -> []
  | Some body -> (
      match Parser.parse_node body with
      | Ok node -> Ast.Smap.bindings node.Ast.variants
      | Error _ -> [])
