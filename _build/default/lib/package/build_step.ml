type t =
  | Configure of string list
  | Cmake of string list
  | Make of string list
  | Python_setup of string list
  | Apply_patch of string
  | Install_file of { rel : string; content : string }
  | Set_env of string * string
  | Note of string

let to_string = function
  | Configure args -> String.concat " " ("./configure" :: args)
  | Cmake args -> String.concat " " ("cmake" :: args)
  | Make args -> String.concat " " ("make" :: args)
  | Python_setup args -> String.concat " " ("python" :: "setup.py" :: args)
  | Apply_patch p -> "patch -p1 < " ^ p
  | Install_file { rel; content = _ } -> "install-file " ^ rel
  | Set_env (k, v) -> Printf.sprintf "export %s=%s" k v
  | Note s -> "# " ^ s

let pp fmt t = Format.pp_print_string fmt (to_string t)
