module Smap = Map.Make (String)

type t = { repo_name : string; packages : Package.t Smap.t }

let create ?(name = "builtin") packages =
  let add m (p : Package.t) =
    if Smap.mem p.p_name m then
      invalid_arg
        (Printf.sprintf "repository %s: duplicate package %s" name p.p_name)
    else
      let p = Package.with_source p (name ^ ":" ^ p.p_name) in
      Smap.add p.Package.p_name p m
  in
  { repo_name = name; packages = List.fold_left add Smap.empty packages }

let layered repos =
  let name = String.concat "+" (List.map (fun r -> r.repo_name) repos) in
  let packages =
    List.fold_left
      (fun acc r ->
        Smap.union (fun _ high _low -> Some high) acc r.packages)
      Smap.empty repos
  in
  { repo_name = name; packages }

let name t = t.repo_name
let find t pkg = Smap.find_opt pkg t.packages
let find_exn t pkg = Smap.find pkg t.packages
let mem t pkg = Smap.mem pkg t.packages
let package_names t = Smap.bindings t.packages |> List.map fst
let all_packages t = Smap.bindings t.packages |> List.map snd
let count t = Smap.cardinal t.packages

(* two-row Levenshtein *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let closest t query =
  let budget = max 2 (String.length query / 3) in
  let best =
    Smap.fold
      (fun name _ acc ->
        let d = edit_distance query name in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> if d <= budget then Some (name, d) else acc)
      t.packages None
  in
  Option.map fst best
