(** Per-package cost model for the build simulator.

    The paper's Figures 10/11 compare build times of seven real packages
    under different environments. We cannot run `make`, so each package
    carries a model of the *shape* of its build: how many compiler
    invocations it makes, how header-heavy each compile is, how much
    filesystem-metadata churn its configure stage causes, and how much
    pure compile time each unit represents. The simulator charges wrapper
    overhead per compiler invocation and filesystem latency per metadata
    operation — the two effects the paper measures. *)

type build_system = Autotools | Cmake | Makefile_only | Python_setup

type t = {
  system : build_system;
  source_files : int;  (** compiler invocations in the build *)
  headers_per_compile : int;  (** include-file opens per invocation *)
  configure_checks : int;
      (** configure/cmake probe steps; each is several small file ops *)
  link_steps : int;
  compile_seconds : float;  (** pure compile time per source file *)
  install_files : int;
      (** files written at install time (Python byte-compiles thousands of
          stdlib modules — the dominant NFS cost of its install) *)
}

val make :
  ?system:build_system ->
  ?source_files:int ->
  ?headers_per_compile:int ->
  ?configure_checks:int ->
  ?link_steps:int ->
  ?compile_seconds:float ->
  ?install_files:int ->
  unit ->
  t

val default_for : string -> t
(** A deterministic model derived from the package name, for the hundreds
    of synthetic universe packages that have no hand-tuned model. *)
