(** Reverse index from virtual interfaces to their providers
    (paper §3.3 and §3.4: "Spack replaces it with a suitable interface
    provider by building a reverse index from virtual packages to providers
    using the provides-when directives").

    A virtual name is any name that appears in some package's [provides]
    directive. Interfaces are versioned: mvapich2@1.9 provides [mpi@:2.2],
    mvapich2@2.0 provides [mpi@:3.0] (Fig. 5), so a requirement [mpi@2:]
    constrains which provider versions qualify. *)

type entry = {
  e_provider : string;  (** providing package name *)
  e_provided : Ospack_spec.Ast.node;
      (** the virtual interface node: name + provided version set *)
  e_when : Ospack_spec.Ast.t option;
      (** provider-side condition, e.g. [@1.9] *)
}

type t

val build : Repository.t -> t
(** Index every package of the repository. Raises [Invalid_argument] when
    a name is both a real package and a virtual interface. *)

val is_virtual : t -> string -> bool

val virtual_names : t -> string list
(** All virtual interface names, sorted. *)

val providers : t -> string -> entry list
(** All provider entries for a virtual name, sorted by provider name.
    Empty for non-virtual names. *)

val providers_satisfying : t -> Ospack_spec.Ast.node -> entry list
(** Provider entries whose provided version set intersects the
    requirement's version constraint (the requirement node's name is the
    virtual name). *)
