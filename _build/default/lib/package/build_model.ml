type build_system = Autotools | Cmake | Makefile_only | Python_setup

type t = {
  system : build_system;
  source_files : int;
  headers_per_compile : int;
  configure_checks : int;
  link_steps : int;
  compile_seconds : float;
  install_files : int;
}

let make ?(system = Autotools) ?(source_files = 40) ?(headers_per_compile = 12)
    ?(configure_checks = 150) ?(link_steps = 2) ?(compile_seconds = 0.35)
    ?install_files () =
  {
    system;
    source_files;
    headers_per_compile;
    configure_checks;
    link_steps;
    compile_seconds;
    install_files =
      (match install_files with Some n -> n | None -> source_files / 2);
  }

(* A cheap deterministic string hash (32-bit FNV-1a) drives the synthetic
   models. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let default_for name =
  let h = fnv1a name in
  let system =
    match h mod 4 with
    | 0 -> Autotools
    | 1 -> Cmake
    | 2 -> Makefile_only
    | _ -> Autotools
  in
  make ~system
    ~source_files:(20 + (h / 7 mod 120))
    ~headers_per_compile:(6 + (h / 11 mod 20))
    ~configure_checks:(match system with Makefile_only -> 0 | _ -> 80 + (h / 13 mod 200))
    ~link_steps:(1 + (h / 17 mod 4))
    ~compile_seconds:(0.15 +. (float_of_int (h / 19 mod 100) /. 250.0))
    ()
