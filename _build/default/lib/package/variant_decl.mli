(** Declared build variants (paper §3.2.3, "Variants").

    A variant is a named boolean build option (e.g. [debug], [mpi],
    [shared]). Packages declare the variants they understand together with
    a default; constraining an undeclared variant is a concretization
    error. *)

type t = { v_name : string; v_default : bool; v_description : string }

val make : ?default:bool -> descr:string -> string -> t
(** [default] is [false] when omitted, like Spack's [variant()]. *)
