module Ast = Ospack_spec.Ast
module Vlist = Ospack_version.Vlist
module Smap = Map.Make (String)

type entry = {
  e_provider : string;
  e_provided : Ast.node;
  e_when : Ast.t option;
}

type t = { by_virtual : entry list Smap.t }

let build repo =
  let add m (pkg : Package.t) =
    List.fold_left
      (fun m (p : Package.provide) ->
        let vname = p.pv_spec.Ast.name in
        if Repository.mem repo vname then
          invalid_arg
            (Printf.sprintf
               "%s is both a real package and a virtual interface (provided \
                by %s)"
               vname pkg.p_name)
        else
          let entry =
            { e_provider = pkg.p_name; e_provided = p.pv_spec; e_when = p.pv_when }
          in
          Smap.update vname
            (function None -> Some [ entry ] | Some es -> Some (entry :: es))
            m)
      m pkg.p_provides
  in
  let by_virtual =
    List.fold_left add Smap.empty (Repository.all_packages repo)
    |> Smap.map (fun entries ->
           List.stable_sort
             (fun a b -> String.compare a.e_provider b.e_provider)
             (List.rev entries))
  in
  { by_virtual }

let is_virtual t name = Smap.mem name t.by_virtual
let virtual_names t = Smap.bindings t.by_virtual |> List.map fst

let providers t name =
  match Smap.find_opt name t.by_virtual with None -> [] | Some es -> es

let providers_satisfying t (req : Ast.node) =
  providers t req.Ast.name
  |> List.filter (fun e ->
         Vlist.intersects e.e_provided.Ast.versions req.Ast.versions)
