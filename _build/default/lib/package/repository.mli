(** Package repositories (paper §4.3.2).

    A repository is a named collection of packages. Repositories layer:
    a site repository placed in front of the built-in one shadows packages
    by name, which is how sites ship proprietary packages and local tweaks
    without touching the mainline. *)

type t

val create : ?name:string -> Package.t list -> t
(** A single-layer repository. Raises [Invalid_argument] on duplicate
    package names within the layer. Each package's [p_source] is rewritten
    to ["<repo-name>:<package>"] for provenance. *)

val layered : t list -> t
(** Combine repositories; earlier ones take precedence. *)

val name : t -> string

val find : t -> string -> Package.t option
(** Highest-precedence package with the given name. *)

val find_exn : t -> string -> Package.t
(** Raises [Not_found]. *)

val mem : t -> string -> bool

val package_names : t -> string list
(** All visible (post-shadowing) package names, sorted. *)

val all_packages : t -> Package.t list
(** All visible packages, sorted by name. *)

val count : t -> int

val closest : t -> string -> string option
(** The package name nearest to a (presumably misspelled) query by edit
    distance, when one is reasonably close (distance ≤ 2, or ≤ a third of
    the query length for long names) — used for "did you mean" hints. *)
