(** Build steps produced by a package's [install] recipe and interpreted by
    the build simulator.

    Spack's [install] methods call [configure]/[make]/[cmake] as shell
    functions (paper Fig. 1); here a recipe returns the same invocations as
    data, so the simulator can run them against the virtual filesystem and
    cost model, and tests can assert on the exact command lines a spec
    produces (paper Fig. 12). *)

type t =
  | Configure of string list  (** ./configure with arguments *)
  | Cmake of string list
  | Make of string list  (** [make] with targets/arguments *)
  | Python_setup of string list  (** python setup.py ... *)
  | Apply_patch of string  (** patch file name *)
  | Install_file of { rel : string; content : string }
      (** write an extra file at [<prefix>/<rel>] — how Python extensions
          install site-packages payloads and path-index files (§4.2) *)
  | Set_env of string * string  (** extra build-environment variable *)
  | Note of string  (** free-form line recorded in the build log *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
