type t = { v_name : string; v_default : bool; v_description : string }

let make ?(default = false) ~descr name =
  { v_name = name; v_default = default; v_description = descr }
