lib/package/repository.mli: Package
