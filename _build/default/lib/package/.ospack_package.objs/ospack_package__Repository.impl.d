lib/package/repository.ml: Array List Map Option Package Printf String
