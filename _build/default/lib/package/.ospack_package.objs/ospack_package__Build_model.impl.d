lib/package/build_model.ml: Char String
