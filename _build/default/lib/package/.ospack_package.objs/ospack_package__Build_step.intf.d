lib/package/build_step.mli: Format
