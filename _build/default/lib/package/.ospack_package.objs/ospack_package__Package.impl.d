lib/package/package.ml: Build_model Build_step List Option Ospack_spec Ospack_version Printf Variant_decl
