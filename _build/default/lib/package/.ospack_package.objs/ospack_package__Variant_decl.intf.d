lib/package/variant_decl.mli:
