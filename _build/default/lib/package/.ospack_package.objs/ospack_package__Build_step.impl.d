lib/package/build_step.ml: Format Printf String
