lib/package/variant_decl.ml:
