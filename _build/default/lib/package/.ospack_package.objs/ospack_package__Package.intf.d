lib/package/package.mli: Build_model Build_step Ospack_spec Ospack_version Variant_decl
