lib/package/provider_index.mli: Ospack_spec Repository
