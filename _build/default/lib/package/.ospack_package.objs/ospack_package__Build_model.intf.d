lib/package/build_model.mli:
