lib/package/provider_index.ml: List Map Ospack_spec Ospack_version Package Printf Repository String
