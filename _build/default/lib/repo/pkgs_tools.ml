open Ospack_package.Package

let simple name ~descr versions deps =
  make_pkg name ~description:descr
    (List.map (fun v -> version v) versions
    @ List.map (fun d -> depends_on d) deps)

(* --- GNU toolchain substrate --- *)

let m4 = simple "m4" ~descr:"GNU macro processor." [ "1.4.17" ] []
let autoconf = simple "autoconf" ~descr:"GNU configure generator." [ "2.69" ] [ "m4" ]
let automake = simple "automake" ~descr:"GNU makefile generator." [ "1.14.1" ] [ "autoconf" ]
let libtool = simple "libtool" ~descr:"GNU shared-library support script." [ "2.4.2" ] [ "m4" ]
let pkg_config = simple "pkg-config" ~descr:"Library metadata tool." [ "0.28" ] []
let bison = simple "bison" ~descr:"GNU parser generator." [ "3.0.2" ] [ "m4" ]
let flex = simple "flex" ~descr:"Fast lexical analyzer." [ "2.5.39" ] [ "bison" ]
let tar = simple "tar" ~descr:"GNU tape archiver." [ "1.28" ] []

let gmp = simple "gmp" ~descr:"GNU multiple-precision arithmetic." [ "6.0.0a"; "5.1.3" ] []
let mpfr = simple "mpfr" ~descr:"Multiple-precision floats with rounding." [ "3.1.2" ] [ "gmp" ]
let mpc = simple "mpc" ~descr:"Multiple-precision complex arithmetic." [ "1.0.2" ] [ "gmp"; "mpfr" ]
let isl = simple "isl" ~descr:"Integer set library for polyhedral analysis." [ "0.14" ] [ "gmp" ]

let binutils =
  make_pkg "binutils"
    ~description:"GNU binary utilities (as, ld, objdump)."
    [
      version "2.25"; version "2.24";
      variant "gold" ~descr:"Build the gold linker";
      depends_on "flex" ~when_:"+gold";
      depends_on "bison" ~when_:"+gold";
    ]

let elfutils =
  simple "elfutils" ~descr:"ELF object manipulation tools (alternative to \
                            libelf)." [ "0.163" ] [ "m4" ]

let llvm =
  make_pkg "llvm"
    ~description:"The LLVM compiler infrastructure."
    [
      version "3.5.1"; version "3.4.2";
      depends_on "cmake" ~kind:Build;
      depends_on "python" ~kind:Build;
      requires_compiler_feature "cxx11";
      build_model
        (Ospack_package.Build_model.make
           ~system:Ospack_package.Build_model.Cmake ~source_files:900
           ~headers_per_compile:30 ~configure_checks:200 ~link_steps:12
           ~compile_seconds:0.9 ());
    ]

(* --- utility libraries --- *)

let pcre = simple "pcre" ~descr:"Perl-compatible regular expressions." [ "8.36" ] []
let swig = simple "swig" ~descr:"Interface-wrapper generator." [ "3.0.2" ] [ "pcre" ]
let libxml2 = simple "libxml2" ~descr:"XML parser library." [ "2.9.2" ] [ "zlib" ]

let curl =
  simple "curl" ~descr:"URL transfer library." [ "7.40.0" ]
    [ "openssl"; "zlib" ]

let git =
  simple "git" ~descr:"Distributed version control." [ "2.2.1" ]
    [ "curl"; "openssl"; "zlib"; "pcre" ]

let expat = simple "expat" ~descr:"Stream-oriented XML parser." [ "2.1.0" ] []

(* --- the STAT debugging-tool stack (LLNL) --- *)

let graphlib =
  simple "graphlib" ~descr:"Graph merging library for tree-based overlay \
                            networks (LLNL)." [ "2.0.0"; "1.5.1" ] []

let launchmon =
  simple "launchmon" ~descr:"Scalable tool-daemon launching (LLNL)."
    [ "1.0.1" ] [ "autoconf"; "automake"; "libtool" ]

let mrnet =
  make_pkg "mrnet"
    ~description:"Multicast/reduction overlay network for tools."
    [
      version "4.1.0"; version "4.0.0";
      variant "lwthreads" ~descr:"Lightweight threading support";
      depends_on "boost";
    ]

let stat =
  make_pkg "stat"
    ~description:"The Stack Trace Analysis Tool: scalable lightweight \
                  debugging (LLNL)."
    [
      version "2.1.0"; version "2.0.0";
      variant "gui" ~descr:"Build the GUI (needs python)";
      depends_on "dyninst";
      depends_on "graphlib";
      depends_on "launchmon";
      depends_on "mrnet";
      depends_on "mpi";
      depends_on "swig" ~when_:"+gui";
      depends_on "python" ~when_:"+gui";
    ]

(* --- the SCR checkpoint/restart stack (LLNL) --- *)

let lwgrp =
  simple "lwgrp" ~descr:"Lightweight group representation for MPI (LLNL)."
    [ "1.0.2" ] [ "mpi" ]

let dtcmp =
  simple "dtcmp" ~descr:"Datatype comparison operations for MPI (LLNL)."
    [ "1.0.3" ] [ "mpi"; "lwgrp" ]

let pdsh = simple "pdsh" ~descr:"Parallel remote shell." [ "2.31" ] []

let scr =
  make_pkg "scr"
    ~description:"Scalable checkpoint/restart for MPI (LLNL)."
    [
      version "1.1-7"; version "1.1.8";
      depends_on "mpi";
      depends_on "pdsh";
      depends_on "dtcmp";
    ]

(* --- performance tools --- *)

let adept_utils =
  simple "adept-utils" ~descr:"Utility libraries for LLNL performance tools."
    [ "1.0.1"; "1.0" ] [ "boost"; "mpi" ]

let automaded =
  simple "automaded" ~descr:"AutomaDeD: MPI debugging via progress-dependence \
                             analysis (LLNL)." [ "1.0" ]
    [ "mpi"; "boost"; "callpath" ]

let pdt =
  simple "pdt" ~descr:"Program database toolkit for source analysis."
    [ "3.20" ] []

let tau =
  make_pkg "tau"
    ~description:"Tuning and Analysis Utilities: parallel profiling."
    [
      version "2.23.1";
      variant "mpi" ~default:true ~descr:"Profile MPI";
      depends_on "pdt";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "papi";
    ]

let memaxes =
  simple "memaxes" ~descr:"Memory-access visualization (LLNL)." [ "0.5" ]
    [ "cmake" ]

let ravel =
  simple "ravel" ~descr:"Parallel trace visualization by logical time \
                         (LLNL)." [ "1.0" ] [ "cmake"; "mpi" ]

let packages =
  [
    m4; autoconf; automake; libtool; pkg_config; bison; flex; tar; gmp; mpfr;
    mpc; isl; binutils; elfutils; llvm; pcre; swig; libxml2; curl; git; expat;
    graphlib; launchmon; mrnet; stat; lwgrp; dtcmp; pdsh; scr; adept_utils;
    automaded; pdt; tau; memaxes; ravel;
  ]
