(** The Python interpreter and its extension packages (paper §4.2).

    [python] is extendable; the py-* packages use the [extends] directive,
    install their payload under [lib/python2.7/site-packages/], and share a
    path-index file ([extensions.pth]) that exercises the merge-on-activate
    mechanism. Python carries the paper's §3.2.4 Blue Gene/Q patches. *)

val packages : Ospack_package.Package.t list

val pth_file : string
(** Relative path of the shared path-index file every extension installs
    (the merge-conflict case of §4.2). *)

val site_packages : string
(** Relative site-packages directory under a python (or extension)
    prefix. *)
