open Ospack_package.Package

(* a typical proxy app: serial core, +mpi and +openmp variants, the
   OpenMP build needs a toolchain with the right feature *)
let proxy name ~descr ~versions ?(deps = []) ?(omp_feature = "openmp3") () =
  make_pkg name ~description:descr
    (List.map (fun v -> version v) versions
    @ [
        variant "mpi" ~default:true ~descr:"Distributed-memory build";
        variant "openmp" ~descr:"Threaded build";
        depends_on "mpi" ~when_:"+mpi";
        requires_compiler_feature omp_feature ~when_:"+openmp";
      ]
    @ List.map (fun d -> depends_on d) deps)

let lulesh =
  proxy "lulesh" ~descr:"Livermore unstructured Lagrange explicit shock \
                         hydrodynamics proxy app."
    ~versions:[ "2.0.3"; "1.0" ] ()

let kripke =
  proxy "kripke" ~descr:"3D Sn deterministic particle transport proxy \
                         (LLNL)."
    ~versions:[ "1.1"; "1.0" ]
    ~deps:[ "cmake" ] ()

let amg2013 =
  proxy "amg2013" ~descr:"Algebraic multigrid proxy derived from hypre."
    ~versions:[ "2013" ] ()

let umt2013 =
  proxy "umt2013" ~descr:"Unstructured-mesh deterministic radiation \
                          transport proxy (LLNL)."
    ~versions:[ "2013" ]
    ~deps:[ "python"; "boost" ] ()

let minife =
  proxy "minife" ~descr:"Finite-element assembly/solve miniapp (Mantevo)."
    ~versions:[ "2.0.1" ] ()

let hpccg =
  proxy "hpccg" ~descr:"Conjugate-gradient miniapp (Mantevo)."
    ~versions:[ "1.0" ] ()

let comd =
  proxy "comd" ~descr:"Classical molecular dynamics proxy (ExMatEx)."
    ~versions:[ "1.1" ] ()

let snap_proxy =
  proxy "snap-proxy" ~descr:"Sn transport proxy for PARTISN (LANL)."
    ~versions:[ "1.05" ] ()

let xsbench =
  proxy "xsbench" ~descr:"Monte Carlo macroscopic-cross-section lookup \
                          kernel (ANL)."
    ~versions:[ "13" ] ()

let nekbone =
  proxy "nekbone" ~descr:"Spectral-element poisson-solve proxy for Nek5000."
    ~versions:[ "2.3.4" ] ()

let hpl =
  make_pkg "hpl"
    ~description:"High-Performance Linpack (the Top500 benchmark of §1)."
    [
      version "2.1";
      depends_on "mpi";
      depends_on "blas";
    ]

let graph500 =
  make_pkg "graph500"
    ~description:"The Graph500 BFS benchmark (§1: Sequoia ranked second)."
    [ version "2.1.4"; depends_on "mpi" ]

let stream =
  make_pkg "stream"
    ~description:"McCalpin STREAM memory-bandwidth benchmark."
    [
      version "5.10";
      variant "openmp" ~default:true ~descr:"Threaded build";
      requires_compiler_feature "openmp3" ~when_:"+openmp";
    ]

let ior =
  make_pkg "ior"
    ~description:"Parallel filesystem I/O benchmark."
    [ version "3.0.1"; depends_on "mpi"; depends_on "hdf5" ]

let mdtest =
  make_pkg "mdtest"
    ~description:"Metadata-heavy filesystem benchmark (the access pattern \
                  behind Fig. 10's NFS penalty)."
    [ version "1.9.3"; depends_on "mpi" ]

let packages =
  [
    lulesh; kripke; amg2013; umt2013; minife; hpccg; comd; snap_proxy;
    xsbench; nekbone; hpl; graph500; stream; ior; mdtest;
  ]
