open Ospack_package.Package

(* name-seeded pseudo-randomness (32-bit FNV-1a): stable across runs *)
let fnv s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let pick h k = h mod k

let layer_sizes count =
  let a = max 1 (count * 4 / 10) in
  let b = max 1 (count * 3 / 10) in
  let c = max 1 (count * 2 / 10) in
  let d = max 0 (count - a - b - c) in
  (a, b, c, d)

let name_of layer i = Printf.sprintf "syn-%c%03d" layer i

let versions_for name =
  let h = fnv (name ^ ":v") in
  let vs = [ version "1.0"; version "1.1" ] in
  if pick h 3 = 0 then version "2.0" :: vs else vs

let variant_for name =
  let h = fnv (name ^ ":var") in
  if pick h 4 = 0 then
    [ variant "shared" ~default:true ~descr:"Build shared libraries" ]
  else []

let deps_from pool name ~fanout =
  if pool = [||] then []
  else
    let h = fnv (name ^ ":deps") in
    let n = 1 + pick h fanout in
    List.init n (fun i ->
        pool.(pick (fnv (Printf.sprintf "%s:%d" name i)) (Array.length pool)))
    |> List.sort_uniq String.compare
    |> List.map (fun d -> depends_on d)

(* synthetic virtual interfaces: a few layer-c packages provide them, and
   some layer-d packages consume them, so virtual resolution is exercised
   across the whole of Fig. 8's sweep, not just for mpi/blas *)
let synth_virtual k = Printf.sprintf "syn-iface-%d" k

let generate ~count =
  let na, nb, nc, nd = layer_sizes count in
  let names l n = Array.init n (name_of l) in
  let a_names = names 'a' na
  and b_names = names 'b' nb
  and c_names = names 'c' nc
  and d_names = names 'd' nd in
  let mk layer_char pool ~fanout ~extra ?(more = fun _ _ -> []) name =
    let h = fnv name in
    let extra_deps =
      List.filter_map
        (fun (p, m) -> if pick (h / 3) m = 0 then Some (depends_on p) else None)
        extra
    in
    make_pkg name
      ~description:
        (Printf.sprintf "Synthetic layer-%c package (universe filler)."
           layer_char)
      (versions_for name @ variant_for name
      @ deps_from pool name ~fanout
      @ extra_deps @ more name h)
  in
  let a_pkgs =
    Array.to_list a_names
    |> List.map (mk 'a' [||] ~fanout:1 ~extra:[])
  in
  let b_pkgs =
    Array.to_list b_names
    |> List.map (mk 'b' a_names ~fanout:3 ~extra:[ ("zlib", 5) ])
  in
  let c_pkgs =
    Array.to_list c_names
    |> List.mapi (fun i name ->
           mk 'c' b_names ~fanout:3
             ~extra:[ ("boost", 6); ("libelf", 7); ("gsl", 8) ]
             ~more:(fun _ _ ->
               (* every seventh layer-c package provides a synthetic
                  versioned interface; the index-round-robin guarantees
                  each of the three interfaces has a provider whenever the
                  layer has at least 15 packages *)
               if i mod 7 = 0 then
                 [ provides (synth_virtual (i / 7 mod 3) ^ "@:2") ]
               else [])
             name)
  in
  let synth_virtual_available k =
    Array.length c_names >= (((k + 1) * 7) - 6) + 1
    (* provider for iface k exists at c index 7k *)
    && 7 * k < Array.length c_names
  in
  let d_pkgs =
    Array.to_list d_names
    |> List.map
         (mk 'd' c_names ~fanout:4
            ~extra:[ ("mpi", 3); ("hdf5", 5); ("python", 7); ("lapack", 6) ]
            ~more:(fun name h ->
              (* some layer-d packages consume a synthetic interface (only
                 ones that provably have a provider), and packages that
                 declared the shared variant gain a conditional dependency
                 gated on it *)
              let k = pick (h / 11) 3 in
              let iface =
                if pick (h / 7) 3 = 0 && synth_virtual_available k then
                  [ depends_on (synth_virtual k) ]
                else []
              in
              let conditional =
                (* only packages that actually declared the variant *)
                if pick (fnv (name ^ ":var")) 4 = 0 then
                  [ depends_on "zlib" ~when_:"+shared" ]
                else []
              in
              iface @ conditional))
  in
  a_pkgs @ b_pkgs @ c_pkgs @ d_pkgs
