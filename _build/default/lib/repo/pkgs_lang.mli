(** The other extendable interpreters of §4.2's closing remark: "this
    design could also be used with other languages with similar extension
    models, such as R, Ruby, or Lua" — each with a couple of extension
    packages that install into their own prefixes and activate into the
    interpreter. *)

val packages : Ospack_package.Package.t list

val r_site_library : string
(** Relative site-library directory under an R (or R-extension) prefix. *)

val lua_share : string
(** Relative Lua module directory. *)
