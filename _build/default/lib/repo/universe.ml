module Repository = Ospack_package.Repository
module Config = Ospack_config.Config

let target_size = 245

let build () =
  let fixed =
    Pkgs_core.packages @ Pkgs_python.packages @ Pkgs_ares.packages
    @ Pkgs_tools.packages @ Pkgs_solvers.packages @ Pkgs_apps.packages
    @ Pkgs_lang.packages
  in
  let missing = max 0 (target_size - List.length fixed) in
  Repository.create ~name:"builtin" (fixed @ Pkgs_synth.generate ~count:missing)

let memo = ref None

let repository () =
  match !memo with
  | Some repo -> repo
  | None ->
      let repo = build () in
      memo := Some repo;
      repo

let compilers = Platforms.toolchains

let default_config =
  Config.of_assoc
    [
      ("arch", Platforms.linux);
      ("compiler_order", "gcc@4.9.2, intel, clang");
      ("providers.mpi", "mvapich2, openmpi, mpich, mvapich");
      ("providers.blas", "netlib-blas, atlas, mkl");
      ("providers.lapack-interface", "lapack");
    ]
