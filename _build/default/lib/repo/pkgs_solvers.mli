(** The numerical solver / math-library stack of the Spack era: BLAS
    providers, sparse-matrix orderings (metis/parmetis/scotch), direct and
    iterative solvers (superlu-dist, mumps, petsc), frameworks (trilinos),
    and scientific I/O (netcdf, exodusii). These are the deepest real DAGs
    in the universe after ares. *)

val packages : Ospack_package.Package.t list
