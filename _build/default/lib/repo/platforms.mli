(** The mock machine fleet: architectures and compiler toolchains, modeled
    on LLNL's clusters as used in paper Table 3 (Linux commodity clusters,
    Blue Gene/Q, Cray XE6). *)

val linux : string
(** ["linux-x86_64"] — commodity Linux cluster. *)

val bgq : string
(** ["bgq"] — Blue Gene/Q (lightweight kernel; only gcc/clang/xl). *)

val cray_xe6 : string
(** ["cray_xe6"] — Cielo-class Cray. *)

val all : string list

val toolchains : Ospack_config.Compilers.t
(** The full registry: gcc 4.4.7/4.7.3/4.9.2 everywhere; intel 14.0.3 and
    15.0.1 on Linux and Cray; pgi 14.7 on Linux and Cray; clang 3.5.0 on
    Linux and BG/Q; xl 12.1 on BG/Q only — matching the rows and columns
    of Table 3. Each toolchain declares period-accurate language features
    (c99/cxx11/cxx14/openmp/cuda) for §4.5 feature requirements. *)
