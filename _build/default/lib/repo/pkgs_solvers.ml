open Ospack_package.Package

let simple name ~descr versions deps =
  make_pkg name ~description:descr
    (List.map (fun v -> version v) versions
    @ List.map (fun d -> depends_on d) deps)

let openblas =
  make_pkg "openblas"
    ~description:"Optimized BLAS based on GotoBLAS2."
    [ version "0.2.13"; version "0.2.12"; provides "blas" ]

let netlib_scalapack =
  simple "netlib-scalapack" ~descr:"Distributed-memory dense linear algebra."
    [ "1.8.0" ]
    [ "mpi"; "blas"; "lapack" ]

let fftw =
  make_pkg "fftw"
    ~description:"Fastest Fourier Transform in the West."
    [
      version "3.3.4"; version "3.3.3";
      variant "mpi" ~default:true ~descr:"Distributed transforms";
      variant "float" ~descr:"Single-precision build";
      depends_on "mpi" ~when_:"+mpi";
    ]

let metis =
  simple "metis" ~descr:"Serial graph partitioning and fill-reducing \
                         orderings." [ "5.1.0"; "4.0.3" ] [ "cmake" ]

let parmetis =
  simple "parmetis" ~descr:"Parallel graph partitioning." [ "4.0.3" ]
    [ "cmake"; "metis"; "mpi" ]

let scotch =
  make_pkg "scotch"
    ~description:"Graph/mesh partitioning and sparse ordering."
    [
      version "6.0.3"; version "5.1.10b";
      variant "mpi" ~default:true ~descr:"Build PT-Scotch";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "flex" ~kind:Build;
      depends_on "bison" ~kind:Build;
    ]

let superlu_dist =
  simple "superlu-dist" ~descr:"Distributed sparse direct solver."
    [ "3.3" ]
    [ "mpi"; "blas"; "parmetis"; "metis" ]

let mumps =
  make_pkg "mumps"
    ~description:"Multifrontal massively parallel sparse direct solver."
    [
      version "5.0.0";
      variant "mpi" ~default:true ~descr:"Parallel solver";
      depends_on "blas";
      depends_on "scotch";
      depends_on "metis";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "netlib-scalapack" ~when_:"+mpi";
    ]

let sundials =
  simple "sundials" ~descr:"ODE/DAE integrators with sensitivity analysis."
    [ "2.5.0" ]
    [ "mpi"; "blas"; "lapack" ]

let arpack_ng =
  simple "arpack-ng" ~descr:"Large-scale eigenvalue solver." [ "3.2.0" ]
    [ "blas"; "lapack"; "mpi" ]

let suite_sparse =
  simple "suite-sparse" ~descr:"Sparse matrix algorithms (CHOLMOD, UMFPACK)."
    [ "4.2.1" ]
    [ "blas"; "lapack"; "metis" ]

let eigen =
  make_pkg "eigen"
    ~description:"C++ template library for linear algebra."
    [
      version "3.2.7";
      variant "suitesparse" ~descr:"SuiteSparse support";
      depends_on "suite-sparse" ~when_:"+suitesparse";
      depends_on "fftw";
      requires_compiler_feature "cxx11" ~when_:"@3.3:";
    ]

let petsc =
  make_pkg "petsc"
    ~description:"Portable Extensible Toolkit for Scientific Computation."
    [
      version "3.5.3"; version "3.5.2"; version "3.4.4";
      variant "hypre" ~default:true ~descr:"Hypre preconditioners";
      variant "superlu" ~default:true ~descr:"SuperLU_DIST solver";
      variant "metis" ~default:true ~descr:"Metis/ParMetis orderings";
      depends_on "mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "hypre" ~when_:"+hypre";
      depends_on "superlu-dist" ~when_:"+superlu";
      depends_on "parmetis" ~when_:"+metis";
      depends_on "python" ~kind:Build;
    ]

let netcdf =
  make_pkg "netcdf"
    ~description:"Network Common Data Form scientific I/O."
    [
      version "4.3.3";
      variant "mpi" ~default:true ~descr:"Parallel I/O via HDF5";
      depends_on "hdf5" ~when_:"+mpi";
      depends_on "zlib";
      depends_on "curl";
      depends_on "m4" ~kind:Build;
    ]

let netcdf_fortran =
  simple "netcdf-fortran" ~descr:"Fortran bindings for NetCDF." [ "4.4.1" ]
    [ "netcdf" ]

let exodusii =
  simple "exodusii" ~descr:"Finite-element data model on NetCDF." [ "6.09" ]
    [ "cmake"; "netcdf" ]

let zoltan =
  simple "zoltan" ~descr:"Dynamic load balancing and partitioning."
    [ "3.81" ] [ "mpi" ]

let trilinos =
  make_pkg "trilinos"
    ~description:"Sandia's framework of scientific solver packages."
    [
      version "12.0.1"; version "11.14.3";
      variant "mpi" ~default:true ~descr:"Parallel build";
      depends_on "cmake" ~kind:Build;
      depends_on "blas";
      depends_on "lapack";
      depends_on "boost";
      depends_on "netcdf";
      depends_on "exodusii";
      depends_on "metis";
      depends_on "parmetis";
      depends_on "zoltan";
      depends_on "mpi" ~when_:"+mpi";
      requires_compiler_feature "cxx11" ~when_:"@12:";
      build_model
        (Ospack_package.Build_model.make
           ~system:Ospack_package.Build_model.Cmake ~source_files:1200
           ~headers_per_compile:35 ~configure_checks:400 ~link_steps:20
           ~compile_seconds:0.7 ());
    ]

let glm = simple "glm" ~descr:"OpenGL mathematics (header-only)." [ "0.9.6.3" ] [ "cmake" ]

let packages =
  [
    openblas; netlib_scalapack; fftw; metis; parmetis; scotch; superlu_dist;
    mumps; sundials; arpack_ng; suite_sparse; eigen; petsc; netcdf;
    netcdf_fortran; exodusii; zoltan; trilinos; glm;
  ]
