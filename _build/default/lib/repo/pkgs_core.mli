(** The packages named throughout the paper: the mpileaks tool-stack of
    Figs. 1–2 and 7, the MPI implementations and virtual-provider examples
    of Fig. 5, the gperftools package of Fig. 12, the seven build-overhead
    packages of Figs. 10–11, and common HPC libraries (BLAS providers,
    boost, HDF5, Silo, HYPRE, …). *)

val packages : Ospack_package.Package.t list
