lib/repo/pkgs_synth.mli: Ospack_package
