lib/repo/platforms.ml: Ospack_config
