lib/repo/platforms.mli: Ospack_config
