lib/repo/pkgs_solvers.ml: List Ospack_package
