lib/repo/pkgs_python.ml: List Ospack_package Printf String
