lib/repo/universe.ml: List Ospack_config Ospack_package Pkgs_apps Pkgs_ares Pkgs_core Pkgs_lang Pkgs_python Pkgs_solvers Pkgs_synth Pkgs_tools Platforms
