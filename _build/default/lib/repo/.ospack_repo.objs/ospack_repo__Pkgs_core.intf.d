lib/repo/pkgs_core.mli: Ospack_package
