lib/repo/pkgs_solvers.mli: Ospack_package
