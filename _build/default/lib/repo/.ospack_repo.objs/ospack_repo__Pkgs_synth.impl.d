lib/repo/pkgs_synth.ml: Array Char List Ospack_package Printf String
