lib/repo/pkgs_lang.ml: List Ospack_package Printf String
