lib/repo/pkgs_ares.ml: List Ospack_package
