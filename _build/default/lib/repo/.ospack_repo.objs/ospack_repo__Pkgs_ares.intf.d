lib/repo/pkgs_ares.mli: Ospack_package
