lib/repo/pkgs_apps.mli: Ospack_package
