lib/repo/pkgs_python.mli: Ospack_package
