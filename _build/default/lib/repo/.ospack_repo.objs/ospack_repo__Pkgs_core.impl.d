lib/repo/pkgs_core.ml: List Ospack_package
