lib/repo/pkgs_lang.mli: Ospack_package
