lib/repo/universe.mli: Ospack_config Ospack_package
