lib/repo/pkgs_tools.mli: Ospack_package
