lib/repo/pkgs_apps.ml: List Ospack_package
