lib/repo/pkgs_tools.ml: List Ospack_package
