(** Developer-tool and LLNL tool-stack packages of the Spack era: the STAT
    debugging stack (dyninst/graphlib/launchmon/mrnet — the tools Spack was
    originally built to manage), the SCR checkpointing stack, compiler
    infrastructure (llvm, binutils, the GNU autotools chain), and common
    utility libraries. These give the universe realistic mid-size DAGs. *)

val packages : Ospack_package.Package.t list
