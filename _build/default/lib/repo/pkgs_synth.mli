(** Deterministic synthetic packages filling the universe out to the
    paper's repository size (245 packages, §3.4.1 / Fig. 8).

    Packages are generated in four dependency layers (leaves up to
    application-like roots that also pull real packages such as boost,
    zlib and mpi), with name-seeded pseudo-random fan-out, so concretized
    DAG sizes spread across the 1–50-node range of Fig. 8's x-axis. The
    generator is a pure function of the requested count. *)

val generate : count:int -> Ospack_package.Package.t list
