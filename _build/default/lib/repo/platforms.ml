module Compilers = Ospack_config.Compilers

let linux = "linux-x86_64"
let bgq = "bgq"
let cray_xe6 = "cray_xe6"
let all = [ linux; bgq; cray_xe6 ]

let toolchains =
  Compilers.create
    [
      Compilers.toolchain "gcc" "4.4.7" ~features:[ "c99"; "openmp3" ];
      Compilers.toolchain "gcc" "4.7.3"
        ~features:[ "c99"; "cxx11"; "openmp3" ];
      Compilers.toolchain "gcc" "4.9.2"
        ~features:[ "c99"; "cxx11"; "cxx14"; "openmp4" ];
      Compilers.toolchain "intel" "14.0.3" ~archs:[ linux; cray_xe6 ]
        ~features:[ "c99"; "cxx11"; "openmp3" ];
      Compilers.toolchain "intel" "15.0.1" ~archs:[ linux; cray_xe6 ]
        ~features:[ "c99"; "cxx11"; "cxx14"; "openmp4" ];
      Compilers.toolchain "pgi" "14.7" ~archs:[ linux; cray_xe6 ]
        ~features:[ "c99"; "openmp3"; "cuda" ];
      Compilers.toolchain "clang" "3.5.0" ~archs:[ linux; bgq ]
        ~features:[ "c99"; "cxx11"; "cxx14" ];
      Compilers.toolchain "xl" "12.1" ~archs:[ bgq ]
        ~features:[ "c99"; "openmp3" ];
    ]
