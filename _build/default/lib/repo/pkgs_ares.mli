(** The ARES multi-physics code and its LLNL-internal dependency stack —
    the full 47-package DAG of paper Fig. 13 and the nightly build matrix
    of Table 3.

    ARES models the four tested code configurations as versions and a
    variant: the development line ([@2015.06]), current production
    ([@2015.03]), previous production ([@2014.11]), and the [lite] variant
    that drops the laser/radiation physics stack and the Python tool
    chain. Conditional [when=] dependencies reproduce "each configuration
    requires a slightly different set of dependencies" (§4.4). *)

val packages : Ospack_package.Package.t list
(** ARES plus every LLNL physics/math/utility package of Fig. 13 that the
    core repository does not already provide. *)

val version_of_config : [ `Current | `Previous | `Lite | `Dev ] -> string
(** The ARES version string standing for each Table 3 configuration
    ([`Lite] shares the current version and sets the [lite] variant). *)

val spec_of_config : [ `Current | `Previous | `Lite | `Dev ] -> string
(** A full ares spec string for a configuration, e.g.
    ["ares@2015.03 ~lite"]. *)

val expected_node_census : int
(** Node count of the concretized full (non-lite) development DAG — 47 in
    the paper. *)
