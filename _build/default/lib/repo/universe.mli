(** The built-in package universe: every package of the paper plus
    synthetic fill, sized to the 245 packages of the paper's Fig. 8
    concretization experiment. *)

val target_size : int
(** 245, the repository size reported in §3.4.1. *)

val repository : unit -> Ospack_package.Repository.t
(** The assembled (memoized) repository: core + python + ares packages,
    padded with synthetic packages to exactly {!target_size}. *)

val compilers : Ospack_config.Compilers.t
(** {!Platforms.toolchains}. *)

val default_config : Ospack_config.Config.t
(** LLNL-flavored site defaults: linux architecture, mvapich2-then-openmpi
    MPI preference, netlib-blas BLAS preference, gcc-first compilers. *)
