(** Era-accurate HPC proxy applications and production-adjacent codes
    (the DOE co-design miniapps of the early 2010s: LULESH, Kripke,
    AMG2013, miniFE, CoMD, …). They sit at the top of real dependency
    stacks, carry MPI/OpenMP variants, and use compiler-feature
    requirements (§4.5) for their OpenMP builds. *)

val packages : Ospack_package.Package.t list
