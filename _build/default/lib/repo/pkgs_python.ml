open Ospack_package.Package
module Build_model = Ospack_package.Build_model

let site_packages = "lib/python2.7/site-packages"
let pth_file = site_packages ^ "/extensions.pth"

let python =
  make_pkg "python"
    ~description:"The Python interpreter (built from source so it runs on \
                  machines whose native stack does not support it, §4.4)."
    [
      homepage "https://www.python.org";
      version "2.7.9" ~preferred:true;
      version "2.7.8";
      version "2.6.9";
      version "3.4.2";
      depends_on "bzip2";
      depends_on "ncurses";
      depends_on "readline";
      depends_on "sqlite";
      depends_on "openssl";
      depends_on "zlib";
      (* paper §3.2.4: platform/compiler-specific patches on BG/Q *)
      patch "python-bgq-xlc.patch" ~when_:"=bgq%xl";
      patch "python-bgq-clang.patch" ~when_:"=bgq%clang";
      (* configure-heavy, and installing/byte-compiling thousands of stdlib
         modules makes the install phase very sensitive to NFS latency *)
      build_model
        (Build_model.make ~system:Build_model.Autotools ~source_files:300
           ~headers_per_compile:20 ~configure_checks:1300 ~link_steps:4
           ~compile_seconds:0.13 ~install_files:3500 ());
    ]

(* A Python extension: installs a module directory plus its lines in the
   shared extensions.pth path-index file. Test-harness dependencies hide
   behind a +test variant so application DAGs (ares, Fig. 13) stay at the
   paper's census. *)
let py_extension name ~descr ~versions ?(test_deps = []) ~deps () =
  make_pkg name ~description:descr
    ([ extends "python"; depends_on "python" ]
    @ List.map (fun v -> version v) versions
    @ List.map (fun d -> depends_on d) deps
    @ (match test_deps with
      | [] -> []
      | ds ->
          variant "test" ~descr:"Build with the test harness"
          :: List.map (fun d -> depends_on d ~when_:"+test") ds)
    @ [
        install
          (fun ctx ->
            let module_name =
              (* py-numpy installs "numpy" *)
              if String.length name > 3 && String.sub name 0 3 = "py-" then
                String.sub name 3 (String.length name - 3)
              else name
            in
            [
              python_setup [ "build" ];
              python_setup [ "install"; "--prefix=" ^ ctx.rc_prefix ];
              Ospack_package.Build_step.Install_file
                {
                  rel =
                    Printf.sprintf "%s/%s/__init__.py" site_packages
                      module_name;
                  content = Printf.sprintf "# %s package\n" module_name;
                };
              Ospack_package.Build_step.Install_file
                {
                  rel = pth_file;
                  content =
                    Printf.sprintf "%s/%s/%s\n" ctx.rc_prefix site_packages
                      module_name;
                };
            ]);
      ])

let packages =
  [
    python;
    py_extension "py-setuptools" ~descr:"Python packaging tools."
      ~versions:[ "11.3.1"; "2.2" ] ~deps:[] ();
    py_extension "py-nose" ~descr:"Python unittest extension."
      ~versions:[ "1.3.4" ] ~deps:[ "py-setuptools" ] ();
    py_extension "py-six" ~descr:"Python 2/3 compatibility shims."
      ~versions:[ "1.9.0" ] ~deps:[ "py-setuptools" ] ();
    py_extension "py-numpy" ~descr:"NumPy array package."
      ~versions:[ "1.9.1"; "1.8.2" ]
      ~deps:[ "blas"; "lapack" ] ~test_deps:[ "py-nose" ] ();
    py_extension "py-scipy" ~descr:"SciPy scientific toolkit."
      ~versions:[ "0.15.0"; "0.14.1" ]
      ~deps:[ "py-numpy" ] ~test_deps:[ "py-nose" ] ();
    py_extension "py-matplotlib" ~descr:"Matplotlib plotting."
      ~versions:[ "1.4.2" ]
      ~deps:[ "py-setuptools"; "py-numpy"; "libpng" ] ();
    py_extension "py-h5py" ~descr:"HDF5 bindings for Python."
      ~versions:[ "2.4.0" ]
      ~deps:[ "py-numpy"; "hdf5" ] ();
    py_extension "py-pyside" ~descr:"Qt bindings (large extension)."
      ~versions:[ "1.2.2" ] ~deps:[ "py-setuptools" ] ();
    py_extension "py-pandas" ~descr:"Dataframes for Python."
      ~versions:[ "0.15.2" ]
      ~deps:[ "py-numpy"; "py-six" ] ();
  ]
