open Ospack_package.Package

(* The Fig. 13 DAG. Node census for the full production configuration:
   ares + 13 physics + 8 utility + 4 math (samrai, hypre, gsl, lapack) +
   21 external (incl. one mpi provider and one blas provider) = 47. *)

let leaf name ~descr versions =
  make_pkg name ~description:descr (List.map (fun v -> version v) versions)

(* --- LLNL physics packages --- *)

let matprop =
  make_pkg "matprop"
    ~description:"Material properties database interface (LLNL physics)."
    [ version "4.2"; version "4.1"; depends_on "sgeos-xml" ]

let overlink =
  leaf "overlink" ~descr:"Overlink mesh remapping (LLNL physics)."
    [ "3.1"; "3.0" ]

let qd =
  leaf "qd" ~descr:"Quad-double precision arithmetic (LLNL physics)."
    [ "2.3.13" ]

let leos =
  make_pkg "leos"
    ~description:"Livermore equation-of-state library (LLNL physics)."
    [ version "8.1"; version "8.0"; depends_on "hdf5" ]

let mslib =
  leaf "mslib" ~descr:"Material strength library (LLNL physics)." [ "3.5" ]

let laser =
  leaf "laser" ~descr:"Laser ray-trace package (LLNL physics)." [ "2.0" ]

let cretin =
  make_pkg "cretin"
    ~description:"Atomic kinetics and radiation package (LLNL physics)."
    [ version "2.1"; depends_on "mslib" ]

let tdf = leaf "tdf" ~descr:"Tabular data format library (LLNL physics)." [ "1.7" ]

let cheetah =
  make_pkg "cheetah"
    ~description:"Thermochemical equilibrium package (LLNL physics)."
    [ version "6.0"; depends_on "dsd" ]

let dsd =
  leaf "dsd" ~descr:"Detonation shock dynamics package (LLNL physics)."
    [ "2.2" ]

let teton =
  make_pkg "teton"
    ~description:"Deterministic radiation transport (LLNL physics)."
    [ version "4.0"; depends_on "mpi" ]

let nuclear =
  leaf "nuclear" ~descr:"Nuclear reaction data package (LLNL physics)." [ "1.9" ]

let asclaser =
  make_pkg "asclaser"
    ~description:"ASC laser deposition package (LLNL physics)."
    [ version "1.3"; depends_on "laser" ]

(* --- LLNL utility packages --- *)

let opclient =
  leaf "opclient" ~descr:"Opacity-server client library (LLNL utility)."
    [ "2.5" ]

let bdivxml =
  leaf "bdivxml" ~descr:"B-division XML utilities (LLNL utility)." [ "1.2" ]

let sgeos_xml =
  leaf "sgeos-xml" ~descr:"Sesame/GEOS XML reader (LLNL utility)." [ "2.0" ]

let scallop =
  make_pkg "scallop"
    ~description:"Scalable I/O aggregation library (LLNL utility)."
    [ version "1.1"; depends_on "boost" ]

let rng = leaf "rng" ~descr:"Reproducible random streams (LLNL utility)." [ "1.0" ]

let perflib =
  make_pkg "perflib"
    ~description:"Lightweight performance annotations (LLNL utility)."
    [ version "2.0"; depends_on "papi" ]

let memusage =
  leaf "memusage" ~descr:"Memory high-water tracking (LLNL utility)." [ "1.4" ]

let timers = leaf "timers" ~descr:"Hierarchical timers (LLNL utility)." [ "1.1" ]

(* --- ARES itself --- *)

let version_of_config = function
  | `Current -> "2015.03"
  | `Previous -> "2014.11"
  | `Lite -> "2015.03"
  | `Dev -> "2015.06"

let spec_of_config config =
  match config with
  | `Lite -> "ares@" ^ version_of_config `Lite ^ " +lite"
  | c -> "ares@" ^ version_of_config c

let expected_node_census = 47

let ares =
  let always = [ "matprop"; "overlink"; "qd"; "leos"; "mslib"; "tdf";
                 "cheetah"; "dsd";
                 "opclient"; "bdivxml"; "sgeos-xml"; "scallop"; "rng";
                 "perflib"; "memusage"; "timers";
                 "silo"; "hypre"; "gsl"; "ga"; "gperftools"; "hdf5";
                 "boost"; "cmake"; "mpi" ]
  in
  (* the laser/radiation physics stack and the Python tool chain are
     dropped by the "lite" configuration (§4.4) *)
  let full_only =
    [ "laser"; "cretin"; "asclaser"; "teton"; "nuclear";
      "python"; "py-numpy"; "py-scipy"; "tcl"; "tk"; "hpdf" ]
  in
  make_pkg "ares"
    ~description:"1-3D radiation hydrodynamics code for munitions \
                  modeling and ICF simulation (LLNL production code)."
    ([
       version "2015.06";  (* development *)
       version "2015.03" ~preferred:true;  (* current production *)
       version "2014.11";  (* previous production *)
       variant "lite" ~descr:"Reduced feature/dependency configuration";
     ]
    @ List.map (fun d -> depends_on d) always
    @ List.map (fun d -> depends_on d ~when_:"~lite") full_only
    @ [
        (* configurations pin different dependency versions (§4.4) *)
        depends_on "samrai@3.8:" ~when_:"@2015:";
        depends_on "samrai@:3.7" ~when_:"@:2014";
        depends_on "hdf5@1.8.13" ~when_:"@2015.05:";
        depends_on "boost@1.54:" ~when_:"@2015:";
        depends_on "boost@:1.54" ~when_:"@:2014";
      ])

let packages =
  [
    ares; matprop; overlink; qd; leos; mslib; laser; cretin; tdf; cheetah;
    dsd; teton; nuclear; asclaser; opclient; bdivxml; sgeos_xml; scallop;
    rng; perflib; memusage; timers;
  ]
