open Ospack_package.Package
module Build_step = Ospack_package.Build_step

let r_site_library = "rlib/R/library"
let lua_share = "share/lua/5.2"

let interpreter_extension ~extendee ~payload_dir name ~descr ~versions ~deps =
  make_pkg name ~description:descr
    ([ extends extendee; depends_on extendee ]
    @ List.map (fun v -> version v) versions
    @ List.map (fun d -> depends_on d) deps
    @ [
        install
          (fun ctx ->
            let short =
              match String.index_opt name '-' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name
            in
            [
              configure [ "--prefix=" ^ ctx.rc_prefix ];
              make [];
              make [ "install" ];
              Build_step.Install_file
                {
                  rel = Printf.sprintf "%s/%s/index" payload_dir short;
                  content = Printf.sprintf "# %s module index\n" short;
                };
            ]);
      ])

let r =
  make_pkg "r"
    ~description:"The R language and environment for statistical computing."
    [
      version "3.1.2"; version "3.0.3";
      depends_on "readline";
      depends_on "ncurses";
      depends_on "zlib";
      depends_on "curl";
      depends_on "blas";
      depends_on "lapack";
    ]

let r_ext = interpreter_extension ~extendee:"r" ~payload_dir:r_site_library

let lua =
  make_pkg "lua"
    ~description:"The Lua scripting language (what Lmod itself is written \
                  in, §3.5.4)."
    [ version "5.2.3"; version "5.1.5"; depends_on "readline"; depends_on "ncurses" ]

let lua_ext = interpreter_extension ~extendee:"lua" ~payload_dir:lua_share

let ruby =
  make_pkg "ruby"
    ~description:"The Ruby programming language."
    [ version "2.2.0"; depends_on "openssl"; depends_on "zlib"; depends_on "readline" ]

let ruby_ext =
  interpreter_extension ~extendee:"ruby" ~payload_dir:"lib/ruby/gems"

let packages =
  [
    r;
    r_ext "r-ggplot2" ~descr:"Grammar-of-graphics plotting for R."
      ~versions:[ "1.0.0" ] ~deps:[];
    r_ext "r-matrix" ~descr:"Sparse and dense matrix classes for R."
      ~versions:[ "1.1-4" ] ~deps:[];
    lua;
    lua_ext "lua-luafilesystem" ~descr:"Filesystem API for Lua."
      ~versions:[ "1.6.3" ] ~deps:[];
    lua_ext "lua-luaposix" ~descr:"POSIX bindings for Lua."
      ~versions:[ "33.2.1" ] ~deps:[];
    ruby;
    ruby_ext "ruby-rake" ~descr:"Ruby build tool." ~versions:[ "10.4.2" ]
      ~deps:[];
  ]
