let hexdigit = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set out (2 * i) hexdigit.[c lsr 4];
    Bytes.set out ((2 * i) + 1) hexdigit.[c land 0xf]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then None
  else
    let out = Bytes.create (n / 2) in
    let rec loop i =
      if i >= n then Some (Bytes.unsafe_to_string out)
      else
        match (nibble h.[i], nibble h.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set out (i / 2) (Char.chr ((hi lsl 4) lor lo));
            loop (i + 2)
        | _ -> None
    in
    loop 0
