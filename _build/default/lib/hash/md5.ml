(* MD5 per RFC 1321, over 32-bit words as masked native ints. *)

let mask32 = 0xffffffff

(* t.(i) = floor(2^32 * abs(sin(i+1))) — precomputed at startup to avoid
   embedding 64 magic constants. *)
let t =
  Array.init 64 (fun i ->
      let v = abs_float (sin (float_of_int (i + 1))) in
      int_of_float (v *. 4294967296.0) land mask32)

let s =
  [| 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
     5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20; 5;  9; 14; 20;
     4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
     6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21 |]

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let digest msg =
  let len = String.length msg in
  let bit_len = len * 8 in
  let pad_len =
    let rem = (len + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let total = len + pad_len + 8 in
  let data = Bytes.make total '\x00' in
  Bytes.blit_string msg 0 data 0 len;
  Bytes.set data len '\x80';
  for i = 0 to 7 do
    (* length in bits, little-endian *)
    Bytes.set data
      (len + pad_len + i)
      (Char.chr ((bit_len lsr (8 * i)) land 0xff))
  done;
  let a0 = ref 0x67452301
  and b0 = ref 0xefcdab89
  and c0 = ref 0x98badcfe
  and d0 = ref 0x10325476 in
  let m = Array.make 16 0 in
  let nblocks = total / 64 in
  for blk = 0 to nblocks - 1 do
    let off = blk * 64 in
    for j = 0 to 15 do
      let i = off + (4 * j) in
      m.(j) <-
        Char.code (Bytes.get data i)
        lor (Char.code (Bytes.get data (i + 1)) lsl 8)
        lor (Char.code (Bytes.get data (i + 2)) lsl 16)
        lor (Char.code (Bytes.get data (i + 3)) lsl 24)
    done;
    let a = ref !a0 and b = ref !b0 and c = ref !c0 and d = ref !d0 in
    for i = 0 to 63 do
      let f, g =
        if i < 16 then ((!b land !c) lor (lnot !b land !d) land mask32, i)
        else if i < 32 then
          ((!d land !b) lor (lnot !d land !c) land mask32, ((5 * i) + 1) mod 16)
        else if i < 48 then (!b lxor !c lxor !d, ((3 * i) + 5) mod 16)
        else (!c lxor (!b lor (lnot !d land mask32)) land mask32, (7 * i) mod 16)
      in
      let f = (f + !a + t.(i) + m.(g)) land mask32 in
      a := !d;
      d := !c;
      c := !b;
      b := (!b + rotl f s.(i)) land mask32
    done;
    a0 := (!a0 + !a) land mask32;
    b0 := (!b0 + !b) land mask32;
    c0 := (!c0 + !c) land mask32;
    d0 := (!d0 + !d) land mask32
  done;
  let out = Bytes.create 16 in
  let put i v =
    Bytes.set out (4 * i) (Char.chr (v land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr ((v lsr 24) land 0xff))
  in
  put 0 !a0;
  put 1 !b0;
  put 2 !c0;
  put 3 !d0;
  Bytes.unsafe_to_string out

let hex_digest msg = Hex.encode (digest msg)
