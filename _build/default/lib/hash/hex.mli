(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of the bytes of [s].
    The result has twice the length of [s]. *)

val decode : string -> string option
(** [decode h] inverts {!encode}. Accepts upper- or lowercase digits.
    Returns [None] when [h] has odd length or contains a non-hex digit. *)
