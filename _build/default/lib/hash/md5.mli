(** Pure-OCaml MD5 (RFC 1321).

    Spack package files carry MD5 checksums for release tarballs (Fig. 1 of
    the paper); the build simulator verifies simulated downloads against
    them. Verified against the RFC 1321 test suite and the stdlib [Digest]
    implementation in the tests. *)

val digest : string -> string
(** [digest s] is the 16-byte MD5 digest of [s]. *)

val hex_digest : string -> string
(** [hex_digest s] is [digest s] as 32 lowercase hex characters. *)
