lib/hash/hex.ml: Bytes Char String
