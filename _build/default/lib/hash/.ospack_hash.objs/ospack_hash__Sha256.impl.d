lib/hash/sha256.ml: Array Bytes Char Hex String
