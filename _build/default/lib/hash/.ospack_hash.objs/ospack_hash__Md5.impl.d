lib/hash/md5.ml: Array Bytes Char Hex String
