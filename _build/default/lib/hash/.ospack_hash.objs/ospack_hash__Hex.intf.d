lib/hash/hex.mli:
