(** Pure-OCaml SHA-256 (FIPS 180-4).

    Used for install-prefix hashes and spec DAG hashes. Verified against the
    NIST test vectors in the test suite. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx
(** Fresh context. *)

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs the bytes of [s]. *)

val finalize : ctx -> string
(** [finalize ctx] pads, finishes, and returns the 32-byte digest.
    The context must not be used afterwards. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 digest of [s]. *)

val hex_digest : string -> string
(** [hex_digest s] is [digest s] rendered as 64 lowercase hex characters. *)
