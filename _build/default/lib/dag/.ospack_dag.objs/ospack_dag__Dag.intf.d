lib/dag/dag.mli:
