lib/dag/dag.ml: Buffer Hashtbl List Map Printf Set String
