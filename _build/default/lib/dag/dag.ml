module Smap = Map.Make (String)
module Sset = Set.Make (String)

type t = { succ : Sset.t Smap.t; pred : Sset.t Smap.t }

let empty = { succ = Smap.empty; pred = Smap.empty }

let ensure m name = if Smap.mem name m then m else Smap.add name Sset.empty m

let add_node g name =
  { succ = ensure g.succ name; pred = ensure g.pred name }

let add_edge g ~from ~to_ =
  let g = add_node (add_node g from) to_ in
  {
    succ = Smap.add from (Sset.add to_ (Smap.find from g.succ)) g.succ;
    pred = Smap.add to_ (Sset.add from (Smap.find to_ g.pred)) g.pred;
  }

let nodes g = Smap.bindings g.succ |> List.map fst
let node_count g = Smap.cardinal g.succ
let mem g name = Smap.mem name g.succ

let neighbours m name =
  match Smap.find_opt name m with
  | None -> []
  | Some s -> Sset.elements s

let successors g name = neighbours g.succ name
let predecessors g name = neighbours g.pred name

(* DFS with colors; on a back edge, reconstruct the cycle from the stack. *)
let topological_sort g =
  let color = Hashtbl.create 16 in
  (* 0 unvisited (absent), 1 in progress, 2 done *)
  let order = ref [] in
  let exception Cycle of string list in
  let rec visit path name =
    match Hashtbl.find_opt color name with
    | Some 2 -> ()
    | Some 1 ->
        let rec cut = function
          | [] -> [ name ]
          | x :: rest -> if x = name then [ x ] else x :: cut rest
        in
        raise (Cycle (List.rev (name :: cut path)))
    | _ ->
        Hashtbl.replace color name 1;
        List.iter (visit (name :: path)) (successors g name);
        Hashtbl.replace color name 2;
        order := name :: !order
  in
  match List.iter (visit []) (nodes g) with
  | () -> Ok (List.rev !order)
  | exception Cycle c -> Error c

let reachable g root =
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      List.iter visit (successors g name)
    end
  in
  if mem g root then visit root;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort String.compare

let subgraph g root =
  let keep = Sset.of_list (reachable g root) in
  Sset.fold
    (fun name acc ->
      let acc = add_node acc name in
      List.fold_left
        (fun acc to_ ->
          if Sset.mem to_ keep then add_edge acc ~from:name ~to_ else acc)
        acc (successors g name))
    keep empty

let equal a b =
  Smap.equal Sset.equal a.succ b.succ

let to_dot ?(label = fun s -> s) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph deps {\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  %S [label=%S];\n" n (label n)))
    (nodes g);
  List.iter
    (fun n ->
      List.iter
        (fun m -> Buffer.add_string buf (Printf.sprintf "  %S -> %S;\n" n m))
        (successors g n))
    (nodes g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_tree ?(pp_node = fun s -> s) ~root g =
  let buf = Buffer.create 256 in
  let rec walk ~is_root prefix on_path name is_last =
    let connector =
      if is_root then "" else if is_last then "`-- " else "|-- "
    in
    let cycle_mark = if List.mem name on_path then " (cycle)" else "" in
    Buffer.add_string buf
      (prefix ^ connector ^ pp_node name ^ cycle_mark ^ "\n");
    if cycle_mark = "" then begin
      let children = successors g name in
      let n = List.length children in
      let child_prefix =
        if is_root then "" else prefix ^ if is_last then "    " else "|   "
      in
      List.iteri
        (fun i c ->
          walk ~is_root:false child_prefix (name :: on_path) c (i = n - 1))
        children
    end
  in
  if mem g root then walk ~is_root:true "" [] root true;
  Buffer.contents buf
