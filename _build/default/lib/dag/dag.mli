(** Directed graphs over string-named nodes, with the operations the
    concretizer and the renderers need: cycle detection, topological order,
    reachability, sub-DAG extraction, and DOT/ASCII-tree rendering
    (paper Figs. 2, 7, 9, 13).

    Spack disallows circular dependencies (paper §3.2.1, footnote 1);
    {!topological_sort} reports any cycle it finds. Graphs are immutable;
    [add_*] return new graphs. Node payloads are kept outside the graph —
    the DAG stores only names and edges. *)

type t

val empty : t

val add_node : t -> string -> t
(** Idempotent. *)

val add_edge : t -> from:string -> to_:string -> t
(** Adds both endpoints as needed. Idempotent; self-edges are permitted
    here and reported by {!topological_sort} as cycles. *)

val nodes : t -> string list
(** All node names, sorted. *)

val node_count : t -> int
val mem : t -> string -> bool

val successors : t -> string -> string list
(** Dependency targets of a node, sorted. Empty for unknown nodes. *)

val predecessors : t -> string -> string list
(** Dependents of a node, sorted. *)

val topological_sort : t -> (string list, string list) result
(** [Ok order] lists dependencies before dependents (children first —
    install order). [Error cycle] gives the node names of one cycle. *)

val reachable : t -> string -> string list
(** Nodes reachable from a root (including the root), sorted. *)

val subgraph : t -> string -> t
(** The sub-DAG induced by {!reachable} from the given root. *)

val equal : t -> t -> bool

val to_dot : ?label:(string -> string) -> t -> string
(** Graphviz rendering; [label] overrides node labels. *)

val to_tree :
  ?pp_node:(string -> string) -> root:string -> t -> string
(** ASCII dependency tree rooted at [root], in the style of
    [spack spec]. Shared nodes are expanded at each occurrence; nodes
    already printed on the current path are cut off to stay finite on
    cyclic graphs. *)
