lib/version/vlist.mli: Format Version Vrange
