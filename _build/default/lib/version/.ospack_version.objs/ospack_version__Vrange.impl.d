lib/version/vrange.ml: Format Version
