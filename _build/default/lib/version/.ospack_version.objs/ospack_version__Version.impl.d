lib/version/version.ml: Format Int List Printf String
