lib/version/vlist.ml: Format Int List String Version Vrange
