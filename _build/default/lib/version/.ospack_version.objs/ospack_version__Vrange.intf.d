lib/version/vrange.mli: Format Version
