lib/version/version.mli: Format
