type t = Point of Version.t | Range of Version.t option * Version.t option

let point v = Point v
let range lo hi = Range (lo, hi)
let unbounded = Range (None, None)

(* Every set is represented canonically as (lo, hi) bounds of a
   [Range]; [Point p] is (Some p, Some p). *)
let bounds = function
  | Point p -> (Some p, Some p)
  | Range (lo, hi) -> (lo, hi)

let is_empty r =
  match bounds r with
  | Some lo, Some hi -> Version.compare lo hi > 0 && not (Version.is_prefix hi lo)
  | _ -> false

let mem v r =
  let lo, hi = bounds r in
  let above =
    match lo with None -> true | Some lo -> Version.compare v lo >= 0
  in
  let below =
    match hi with
    | None -> true
    | Some hi -> Version.compare v hi <= 0 || Version.is_prefix hi v
  in
  above && below

(* Lower bounds are plain [>=], so the tighter of two is the greater. *)
let lo_max a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if Version.compare a b >= 0 then a else b)

(* Upper bounds are prefix-inclusive: when one bound is a prefix of the
   other, the *longer* one denotes the smaller set. *)
let hi_tighter a b =
  if Version.is_prefix a b then b
  else if Version.is_prefix b a then a
  else if Version.compare a b <= 0 then a
  else b

let hi_min a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (hi_tighter a b)

let hi_looser a b =
  if Version.is_prefix a b then a
  else if Version.is_prefix b a then b
  else if Version.compare a b >= 0 then a
  else b

let normalize (lo, hi) =
  match (lo, hi) with
  | Some l, Some h when Version.equal l h -> Point l
  | lo, hi -> Range (lo, hi)

let intersect a b =
  let alo, ahi = bounds a and blo, bhi = bounds b in
  let r = normalize (lo_max alo blo, hi_min ahi bhi) in
  if is_empty r then None else Some r

let subset a b =
  let alo, ahi = bounds a and blo, bhi = bounds b in
  let lo_ok =
    match (alo, blo) with
    | _, None -> true
    | None, Some _ -> false
    | Some al, Some bl -> Version.compare al bl >= 0
  in
  let hi_ok =
    match (ahi, bhi) with
    | _, None -> true
    | None, Some _ -> false
    | Some ah, Some bh ->
        if Version.equal ah bh then true
        else if Version.is_prefix bh ah then true (* a's bound is finer *)
        else if Version.is_prefix ah bh then false
        else Version.compare ah bh <= 0
  in
  is_empty a || (lo_ok && hi_ok)

let union_if_overlapping a b =
  match intersect a b with
  | None -> None
  | Some _ ->
      let alo, ahi = bounds a and blo, bhi = bounds b in
      let lo =
        match (alo, blo) with
        | None, _ | _, None -> None
        | Some a, Some b -> Some (if Version.compare a b <= 0 then a else b)
      in
      let hi =
        match (ahi, bhi) with
        | None, _ | _, None -> None
        | Some a, Some b -> Some (hi_looser a b)
      in
      Some (normalize (lo, hi))

let compare_for_sort a b =
  let alo, _ = bounds a and blo, _ = bounds b in
  match (alo, blo) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> Version.compare x y

let to_string = function
  | Point p -> Version.to_string p
  | Range (None, None) -> ":"
  | Range (Some lo, None) -> Version.to_string lo ^ ":"
  | Range (None, Some hi) -> ":" ^ Version.to_string hi
  | Range (Some lo, Some hi) ->
      Version.to_string lo ^ ":" ^ Version.to_string hi

let pp fmt r = Format.pp_print_string fmt (to_string r)
