type t = Vrange.t list

let any = [ Vrange.unbounded ]
let empty = []

(* Sort by lower bound, then fold left merging overlapping neighbours. *)
let normalize ranges =
  let ranges = List.filter (fun r -> not (Vrange.is_empty r)) ranges in
  let sorted = List.sort Vrange.compare_for_sort ranges in
  let rec merge = function
    | a :: b :: rest -> (
        match Vrange.union_if_overlapping a b with
        | Some u -> merge (u :: rest)
        | None -> a :: merge (b :: rest))
    | short -> short
  in
  merge sorted

let of_ranges rs = normalize rs
let of_version v = [ Vrange.point v ]
let ranges t = t
let is_empty t = t = []
let is_any t = match t with [ Vrange.Range (None, None) ] -> true | _ -> false
let mem v t = List.exists (Vrange.mem v) t

let intersect a b =
  let pairs =
    List.concat_map (fun ra -> List.filter_map (Vrange.intersect ra) b) a
  in
  normalize pairs

let union a b = normalize (a @ b)

let subset a b =
  List.for_all (fun ra -> List.exists (fun rb -> Vrange.subset ra rb) b) a

let intersects a b = not (is_empty (intersect a b))

let concrete = function [ Vrange.Point v ] -> Some v | _ -> None

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> Vrange.subset x y && Vrange.subset y x) a b

(* supremum encoded as: 0 = empty, 1 = bounded by a version, 2 = unbounded *)
let sup t =
  List.fold_left
    (fun acc r ->
      let s =
        match r with
        | Vrange.Point v -> (1, Some v)
        | Vrange.Range (_, None) -> (2, None)
        | Vrange.Range (_, Some hi) -> (1, Some hi)
      in
      match (acc, s) with
      | (2, _), _ | _, (2, _) -> (2, None)
      | (0, _), s -> s
      | (1, Some a), (1, Some b) ->
          if Version.compare a b >= 0 then (1, Some a) else (1, Some b)
      | _ -> acc)
    (0, None) t

let compare_sup a b =
  match (sup a, sup b) with
  | (ka, _), (kb, _) when ka <> kb -> Int.compare ka kb
  | (1, Some va), (1, Some vb) -> Version.compare va vb
  | _ -> 0

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun p -> p <> "")

let parse_range body =
  match String.index_opt body ':' with
  | None -> Vrange.point (Version.of_string body)
  | Some i ->
      let lo = String.sub body 0 i in
      let hi = String.sub body (i + 1) (String.length body - i - 1) in
      let parse_end s =
        if s = "" then None else Some (Version.of_string s)
      in
      Vrange.range (parse_end lo) (parse_end hi)

let of_string s =
  match split_commas s with
  | [] -> invalid_arg "Vlist.of_string: empty version list"
  | parts -> normalize (List.map parse_range parts)

let to_string t =
  match t with
  | [] -> "<none>"
  | _ -> String.concat "," (List.map Vrange.to_string t)

let pp fmt t = Format.pp_print_string fmt (to_string t)
