type component = Num of int | Alpha of string

type t = component list

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let of_string_opt s =
  let n = String.length s in
  let rec scan i acc =
    if i >= n then Some (List.rev acc)
    else
      let c = s.[i] in
      if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit s.[!j] do
          incr j
        done;
        scan !j (Num (int_of_string (String.sub s i (!j - i))) :: acc)
      end
      else if is_alpha c then begin
        let j = ref i in
        while !j < n && is_alpha s.[!j] do
          incr j
        done;
        scan !j (Alpha (String.sub s i (!j - i)) :: acc)
      end
      else if c = '.' || c = '-' || c = '_' then scan (i + 1) acc
      else None
  in
  match scan 0 [] with
  | Some [] | None -> None
  | Some cs -> Some cs

let of_string s =
  match of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Version.of_string: %S" s)

let components v = v

let to_string v =
  String.concat "."
    (List.map
       (function Num i -> string_of_int i | Alpha a -> a)
       v)

let compare_component a b =
  match (a, b) with
  | Num x, Num y -> Int.compare x y
  | Alpha x, Alpha y -> String.compare x y
  | Num _, Alpha _ -> 1 (* numeric is newer at a mixed position *)
  | Alpha _, Num _ -> -1

let rec compare a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1 (* prefix is older *)
  | _, [] -> 1
  | x :: a', y :: b' ->
      let c = compare_component x y in
      if c <> 0 then c else compare a' b'

let equal a b = compare a b = 0

let rec is_prefix p v =
  match (p, v) with
  | [], _ -> true
  | _, [] -> false
  | x :: p', y :: v' -> compare_component x y = 0 && is_prefix p' v'

let up_to n v =
  let n = max 1 n in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  take n v

let pp fmt v = Format.pp_print_string fmt (to_string v)
