(** Package versions with Spack's comparison and satisfaction semantics
    (paper §3.2.3).

    A version is a dotted sequence of components; each component is numeric
    ([2], [10]) or alphabetic ([a], [rc1] splits into [rc] and [1]).
    Separators ([.], [-], [_]) and digit/letter boundaries both split
    components, so ["1.2-rc1"] and ["1.2rc.1"] parse to the same component
    list [1; 2; rc; 1].

    Ordering is componentwise: numeric components compare numerically,
    alphabetic ones lexicographically, and at mixed positions the numeric
    component is the newer one (["1.2"] > ["1.2alpha"], matching intuition
    that suffixed releases precede the plain release at the next position —
    but note ["1.2.1"] > ["1.2"] > ["1.2alpha"]). A version that is a strict
    prefix of another is older (["1.2"] < ["1.2.1"]).

    Satisfaction is prefix-based, as in Spack: ["1.2.3"] satisfies the
    constraint [@1.2] because [1.2] is a component prefix of [1.2.3]. *)

type component = Num of int | Alpha of string

type t
(** A parsed version. The empty version is not representable;
    {!of_string} rejects empty input. *)

val of_string : string -> t
(** Parse a version. Raises [Invalid_argument] on the empty string or a
    string with no alphanumeric content. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** Render the version in canonical dotted form. Round-trips through
    {!of_string} up to separator normalization. *)

val components : t -> component list

val compare : t -> t -> int
(** Total order described above. *)

val equal : t -> t -> bool

val is_prefix : t -> t -> bool
(** [is_prefix p v] is true when the components of [p] form a prefix of the
    components of [v]. This is Spack's "version satisfies" relation:
    [v] satisfies the point constraint [@p] iff [is_prefix p v]. *)

val up_to : int -> t -> t
(** [up_to n v] keeps the first [n] components (for layout schemes that use
    e.g. major.minor only). Keeps at least one component. *)

val pp : Format.formatter -> t -> unit
