(** Version constraint lists: unions of {!Vrange.t}, as written after [@]
    in spec syntax (e.g. [@1.2:1.4,1.6:], paper Fig. 3).

    A [Vlist.t] denotes the union of its ranges. The list is kept
    normalized: ranges sorted by lower bound and overlapping ranges merged.
    The empty list denotes the empty (unsatisfiable) set; the unconstrained
    set is {!any}, a single unbounded range. *)

type t

val any : t
(** Matches every version — the constraint of an unconstrained spec node. *)

val empty : t
(** The unsatisfiable set (result of a failed intersection). *)

val of_ranges : Vrange.t list -> t
(** Normalize an arbitrary list of ranges. *)

val of_version : Version.t -> t
(** The point constraint [@v]. *)

val of_string : string -> t
(** Parse a comma-separated range list body, e.g. ["1.2:1.4,2.0"].
    Raises [Invalid_argument] on malformed input. *)

val ranges : t -> Vrange.t list

val is_any : t -> bool
val is_empty : t -> bool

val mem : Version.t -> t -> bool

val intersect : t -> t -> t
(** Set intersection; {!empty} when the sets are disjoint. *)

val union : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] — every version admitted by [a] is admitted by [b].
    Exact on normalized lists whose ranges are order-convex; ranges with
    prefix-inclusive upper bounds are handled per {!Vrange.subset}. *)

val intersects : t -> t -> bool
(** Do the two sets share at least one version? *)

val concrete : t -> Version.t option
(** [Some v] when the list pins exactly the point constraint [@v]
    (a single [Point]); [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality of normalized lists. *)

val compare_sup : t -> t -> int
(** Compare by supremum: an upward-unbounded set is greatest, the empty set
    least, otherwise the highest upper endpoint decides. Used to prefer the
    provider entry exposing the newest interface version. *)

val to_string : t -> string
(** Spec-syntax body after [@]; [":"] for {!any}. *)

val pp : Format.formatter -> t -> unit
