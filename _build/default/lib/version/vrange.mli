(** Version ranges and points, with Spack's inclusive, prefix-aware
    endpoint semantics (paper §3.2.3, Fig. 3).

    The sets denoted by each form:
    - [Point p] — every version with [p] as a component prefix, so [@1.2]
      admits [1.2], [1.2.3], [1.2rc1].
    - [Range (lo, hi)] — [v >= lo] (when [lo] is given) and [v <= hi] {e or}
      [hi] is a prefix of [v] (when [hi] is given). The prefix clause makes
      [@:1.3] admit [1.3.9], as in Spack. [@2.3:] is [Range (Some 2.3, None)].

    [Point p] denotes the same set as [Range (Some p, Some p)]; the
    constructor is kept distinct so that concrete specs print as [@1.2]
    rather than [@1.2:1.2] and so concreteness is decidable. *)

type t = Point of Version.t | Range of Version.t option * Version.t option

val point : Version.t -> t
val range : Version.t option -> Version.t option -> t

val unbounded : t
(** The full range — matches every version. *)

val is_empty : t -> bool
(** Only constructed ranges can be empty (e.g. [Range (2.0, 1.0)]). *)

val mem : Version.t -> t -> bool

val intersect : t -> t -> t option
(** Set intersection. [None] when the result is empty. The result is
    normalized back to [Point] when it denotes a point set. *)

val union_if_overlapping : t -> t -> t option
(** [Some r] with [r] the set union when the two sets overlap (share at
    least one version); [None] when they are disjoint. *)

val subset : t -> t -> bool
(** [subset a b] — is every version in [a] also in [b]? *)

val compare_for_sort : t -> t -> int
(** Order by lower bound (unbounded first) for list normalization. *)

val to_string : t -> string
(** Spec-syntax body, without the [@]: ["1.2"], ["1.2:1.4"], [":4.4"],
    ["2.5:"], [":"]. *)

val pp : Format.formatter -> t -> unit
