module Concrete = Ospack_spec.Concrete
module Ast = Ospack_spec.Ast

type record = {
  r_spec : Concrete.t;
  r_hash : string;
  r_prefix : string;
  r_explicit : bool;
  r_external : bool;
  r_build_seconds : float;
}

type t = (string, record) Hashtbl.t

let create () = Hashtbl.create 64

let add t record =
  let record =
    match Hashtbl.find_opt t record.r_hash with
    | Some existing ->
        { record with r_explicit = record.r_explicit || existing.r_explicit }
    | None -> record
  in
  Hashtbl.replace t record.r_hash record

let find_by_hash t hash = Hashtbl.find_opt t hash

let sorted records =
  List.sort
    (fun a b ->
      match
        String.compare (Concrete.root a.r_spec) (Concrete.root b.r_spec)
      with
      | 0 -> String.compare a.r_hash b.r_hash
      | c -> c)
    records

let all t = Hashtbl.fold (fun _ r acc -> r :: acc) t [] |> sorted

let find_by_name t name =
  all t |> List.filter (fun r -> Concrete.root r.r_spec = name)

let find_satisfying t query =
  all t |> List.filter (fun r -> Concrete.satisfies r.r_spec query)

let count t = Hashtbl.length t

let dependents_of t hash =
  all t
  |> List.filter (fun r ->
         r.r_hash <> hash
         && List.exists
              (fun n ->
                n.Concrete.name <> Concrete.root r.r_spec
                && Concrete.dag_hash r.r_spec n.Concrete.name = hash)
              (Concrete.nodes r.r_spec))

module Json = Ospack_json.Json

let record_to_json r =
  Json.Obj
    [
      ("spec", Concrete.to_json r.r_spec);
      ("hash", Json.String r.r_hash);
      ("prefix", Json.String r.r_prefix);
      ("explicit", Json.Bool r.r_explicit);
      ("external", Json.Bool r.r_external);
      ("build_seconds", Json.Float r.r_build_seconds);
    ]

let to_json t =
  Json.Obj
    [
      ("format", Json.Int 1);
      ("records", Json.List (List.map record_to_json (all t)));
    ]

let ( let* ) = Result.bind

let record_of_json j =
  let str key =
    match Option.bind (Json.member key j) Json.get_string with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "db index: missing record field %s" key)
  in
  let boolean key =
    match Option.bind (Json.member key j) Json.get_bool with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "db index: missing record field %s" key)
  in
  let* spec =
    match Json.member "spec" j with
    | Some sj -> Concrete.of_json sj
    | None -> Error "db index: missing record spec"
  in
  let* hash = str "hash" in
  let* prefix = str "prefix" in
  let* explicit = boolean "explicit" in
  let* external_ = boolean "external" in
  let build_seconds =
    match Json.member "build_seconds" j with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.0
  in
  Ok
    {
      r_spec = spec;
      r_hash = hash;
      r_prefix = prefix;
      r_explicit = explicit;
      r_external = external_;
      r_build_seconds = build_seconds;
    }

let of_json j =
  match Option.bind (Json.member "records" j) Json.to_list with
  | None -> Error "db index: missing records"
  | Some items ->
      let t = create () in
      let* () =
        List.fold_left
          (fun acc item ->
            let* () = acc in
            let* r = record_of_json item in
            add t r;
            Ok ())
          (Ok ()) items
      in
      Ok t

let remove t hash =
  match find_by_hash t hash with
  | None -> Error (Printf.sprintf "no installed spec with hash %s" hash)
  | Some record -> (
      match dependents_of t hash with
      | [] ->
          Hashtbl.remove t hash;
          Ok record
      | deps ->
          Error
            (Printf.sprintf "%s/%s is still needed by: %s"
               (Concrete.root record.r_spec)
               hash
               (String.concat ", "
                  (List.map
                     (fun d ->
                       Printf.sprintf "%s/%s" (Concrete.root d.r_spec) d.r_hash)
                     deps))))
