lib/store/database.ml: Hashtbl List Option Ospack_json Ospack_spec Printf Result String
