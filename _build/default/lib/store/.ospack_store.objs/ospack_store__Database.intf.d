lib/store/database.mli: Ospack_json Ospack_spec
