lib/store/buildcache.mli: Database Ospack_spec Ospack_vfs
