lib/store/installer.mli: Buildcache Database Ospack_buildsim Ospack_config Ospack_layout Ospack_package Ospack_spec Ospack_vfs
