lib/store/provenance.ml: List Option Ospack_hash Ospack_json Ospack_spec Ospack_vfs Printf String
