lib/store/buildcache.ml: Buffer Database Filename List Option Ospack_json Ospack_spec Ospack_vfs Printf Result String
