lib/store/provenance.mli: Ospack_spec Ospack_vfs
