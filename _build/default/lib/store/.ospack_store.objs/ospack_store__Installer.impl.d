lib/store/installer.ml: Buildcache Database List Option Ospack_buildsim Ospack_config Ospack_json Ospack_layout Ospack_package Ospack_spec Ospack_vfs Printf Provenance Result
