module Vfs = Ospack_vfs.Vfs
module Concrete = Ospack_spec.Concrete
module Json = Ospack_json.Json

type t = { vfs : Vfs.t; root : string }

let create vfs ~root = { vfs; root }

let entry_path t hash = Printf.sprintf "%s/%s.json" t.root hash

let has t ~hash = Vfs.is_file t.vfs (entry_path t hash)

let cached_hashes t =
  match Vfs.ls t.vfs t.root with
  | Error _ -> []
  | Ok entries ->
      List.filter_map
        (fun e ->
          if Filename.check_suffix e ".json" then
            Some (Filename.chop_suffix e ".json")
          else None)
        entries
      |> List.sort String.compare

let ( let* ) = Result.bind

let save t ~install_root (record : Database.record) =
  if has t ~hash:record.Database.r_hash then Ok ()
  else
    let prefix = record.Database.r_prefix in
    let files =
      Vfs.walk t.vfs prefix
      |> List.filter_map (fun (path, kind) ->
             let plen = String.length prefix + 1 in
             let rel = String.sub path plen (String.length path - plen) in
             match kind with
             | Vfs.Dir -> None
             | Vfs.File -> (
                 match Vfs.read_file t.vfs path with
                 | Ok content ->
                     Some
                       (Json.Obj
                          [
                            ("rel", Json.String rel);
                            ("kind", Json.String "file");
                            ("content", Json.String content);
                          ])
                 | Error _ -> None)
             | Vfs.Symlink -> (
                 match Vfs.readlink t.vfs path with
                 | Ok target ->
                     Some
                       (Json.Obj
                          [
                            ("rel", Json.String rel);
                            ("kind", Json.String "link");
                            ("content", Json.String target);
                          ])
                 | Error _ -> None))
    in
    let entry =
      Json.Obj
        [
          ("format", Json.Int 1);
          ("install_root", Json.String install_root);
          ("prefix", Json.String prefix);
          ("spec", Concrete.to_json record.Database.r_spec);
          ("files", Json.List files);
        ]
    in
    Result.map_error Vfs.error_to_string
      (Vfs.write_file t.vfs
         (entry_path t record.Database.r_hash)
         (Json.to_string entry))

(* textual relocation: every embedded occurrence of the cached install
   root becomes the target root *)
let relocate ~from_root ~to_root text =
  if from_root = to_root then text
  else begin
    let buf = Buffer.create (String.length text) in
    let flen = String.length from_root in
    let n = String.length text in
    let rec go i =
      if i >= n then ()
      else if
        i + flen <= n && String.sub text i flen = from_root
      then begin
        Buffer.add_string buf to_root;
        go (i + flen)
      end
      else begin
        Buffer.add_char buf text.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  end

let extract t ~hash ~install_root ~prefix =
  let* content =
    Result.map_error Vfs.error_to_string
      (Vfs.read_file t.vfs (entry_path t hash))
  in
  let* entry = Json.of_string content in
  let* from_root =
    match Option.bind (Json.member "install_root" entry) Json.get_string with
    | Some r -> Ok r
    | None -> Error "buildcache: entry missing install_root"
  in
  let* spec =
    match Json.member "spec" entry with
    | Some sj -> Concrete.of_json sj
    | None -> Error "buildcache: entry missing spec"
  in
  let* files =
    match Option.bind (Json.member "files" entry) Json.to_list with
    | Some items -> Ok items
    | None -> Error "buildcache: entry missing files"
  in
  let reloc = relocate ~from_root ~to_root:install_root in
  List.fold_left
    (fun acc item ->
      let* () = acc in
      let get key =
        match Option.bind (Json.member key item) Json.get_string with
        | Some v -> Ok v
        | None -> Error "buildcache: malformed file entry"
      in
      let* rel = get "rel" in
      let* kind = get "kind" in
      let* content = get "content" in
      let dest = prefix ^ "/" ^ rel in
      match kind with
      | "file" ->
          Result.map_error Vfs.error_to_string
            (Vfs.write_file t.vfs dest (reloc content))
      | "link" -> (
          match Vfs.symlink t.vfs ~target:(reloc content) ~link:dest with
          | Ok () -> Ok ()
          | Error (Vfs.Already_exists _) -> Ok () (* re-extract *)
          | Error e -> Error (Vfs.error_to_string e))
      | other -> Error ("buildcache: unknown entry kind " ^ other))
    (Ok ()) files
  |> Result.map (fun () -> spec)
