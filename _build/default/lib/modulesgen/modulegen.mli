(** Environment-module generation (paper §3.5.4).

    Spack can emit dotkit and TCL module files so users can set up a
    runtime environment with familiar tools; Spack-built packages do not
    {e need} [LD_LIBRARY_PATH] (they are RPATH'd) but the generated files
    set it anyway for the benefit of build systems and non-RPATH
    dependents. {!lmod_hierarchy_path} implements the Lmod-hierarchy
    generation the paper lists as future work, using the spec's rich
    dependency information (compiler and MPI) to place the module file in
    a compiler/MPI hierarchy. *)

val env_entries :
  Ospack_spec.Concrete.t -> prefix:string -> (string * string) list
(** The [(variable, prepended path)] pairs a module for this spec sets:
    PATH, MANPATH, LD_LIBRARY_PATH, PKG_CONFIG_PATH, CMAKE_PREFIX_PATH. *)

val dotkit : Ospack_spec.Concrete.t -> prefix:string -> string
(** A dotkit (.dk) file: [#c category], [#d description], [dk_alter]
    lines (the LC format referenced in §2 and §3.5.4). *)

val tcl : Ospack_spec.Concrete.t -> prefix:string -> string
(** A TCL environment-modules file: [#%Module1.0] header, [prepend-path]
    lines. *)

val lmod_hierarchy_path : Ospack_spec.Concrete.t -> string
(** Relative path of this spec's module file in an Lmod hierarchy:
    [<compiler>/<cver>/<mpi>/<mpiver>/<name>/<version>.lua] under an MPI
    dependency, [<compiler>/<cver>/<name>/<version>.lua] otherwise, and
    [Core/<name>/<version>.lua] for compiler-independent placement of the
    root-less case. *)

val lmod : Ospack_spec.Concrete.t -> prefix:string -> string
(** An Lmod lua module file. *)
