lib/modulesgen/modulegen.mli: Ospack_spec
