lib/modulesgen/modulegen.ml: Buffer List Ospack_spec Ospack_version Printf
