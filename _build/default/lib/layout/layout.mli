(** Install-tree directory layouts — the naming conventions of paper
    Table 1.

    Every scheme maps a concrete spec node to a unique-enough install
    prefix. Only the Spack default is truly unique per configuration
    (it ends in the sub-DAG hash, §3.4.2); the site conventions are
    lossy projections, which is exactly the paper's point about why
    naming conventions fail. *)

type scheme =
  | Spack_default
      (** [$arch/$compiler-$ver/$package-$version-$options-$hash] *)
  | Llnl_usr_global  (** [/usr/global/tools/$arch/$package/$version] *)
  | Llnl_usr_local
      (** [/usr/local/tools/$package-$compiler-$build-$version] *)
  | Ornl  (** [$arch/$package/$version/$build] *)
  | Tacc_lmod
      (** [$compiler-$ver/$mpi/$mpi_version/$package/$version] *)

val all_schemes : (string * scheme) list
(** Display name and scheme, in the order of paper Table 1. *)

val node_path : scheme -> root:string -> Ospack_spec.Concrete.t -> string -> string
(** [node_path scheme ~root spec name] is the install prefix for node
    [name] of [spec] under the scheme, below the install-tree [root].
    For schemes with a [$build] component, the sub-DAG hash is used.
    For the TACC scheme, the MPI component comes from the spec's provider
    of the [mpi] virtual (["serial/none"] when there is none). *)

val path : scheme -> root:string -> Ospack_spec.Concrete.t -> string
(** The prefix of the spec's root node. *)
