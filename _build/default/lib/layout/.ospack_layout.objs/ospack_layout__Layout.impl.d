lib/layout/layout.ml: List Ospack_spec Ospack_version Printf String
