lib/layout/layout.mli: Ospack_spec
