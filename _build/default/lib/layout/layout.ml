module Concrete = Ospack_spec.Concrete
module Version = Ospack_version.Version

type scheme =
  | Spack_default
  | Llnl_usr_global
  | Llnl_usr_local
  | Ornl
  | Tacc_lmod

let all_schemes =
  [
    ("LLNL /usr/global/tools", Llnl_usr_global);
    ("LLNL /usr/local/tools", Llnl_usr_local);
    ("ORNL", Ornl);
    ("TACC / Lmod", Tacc_lmod);
    ("Spack default", Spack_default);
  ]

let options_string (n : Concrete.node) =
  let enabled =
    Concrete.Smap.bindings n.Concrete.variants
    |> List.filter_map (fun (v, on) -> if on then Some v else None)
  in
  match enabled with [] -> "" | vs -> "-" ^ String.concat "-" vs

let mpi_of spec =
  List.find_map
    (fun n ->
      List.find_map
        (fun (virt, _) -> if virt = "mpi" then Some n else None)
        n.Concrete.provided)
    (Concrete.nodes spec)

let node_path scheme ~root spec name =
  let n = Concrete.node_exn spec name in
  let cname, cver = n.Concrete.compiler in
  let version = Version.to_string n.Concrete.version in
  let compiler = Printf.sprintf "%s-%s" cname (Version.to_string cver) in
  let build = Concrete.dag_hash spec name in
  let components =
    match scheme with
    | Spack_default ->
        [
          n.Concrete.arch;
          compiler;
          Printf.sprintf "%s-%s%s-%s" name version (options_string n) build;
        ]
    | Llnl_usr_global -> [ n.Concrete.arch; name; version ]
    | Llnl_usr_local ->
        [ Printf.sprintf "%s-%s-%s-%s" name compiler build version ]
    | Ornl -> [ n.Concrete.arch; name; version; build ]
    | Tacc_lmod ->
        let mpi, mpi_version =
          match mpi_of spec with
          | Some m when m.Concrete.name <> name ->
              (m.Concrete.name, Version.to_string m.Concrete.version)
          | _ -> ("serial", "none")
        in
        [ compiler; mpi; mpi_version; name; version ]
  in
  String.concat "/" (root :: components)

let path scheme ~root spec = node_path scheme ~root spec (Concrete.root spec)
