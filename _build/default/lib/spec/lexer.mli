(** Tokenizer for the spec grammar of paper Fig. 3.

    Identifiers follow [[A-Za-z0-9_][A-Za-z0-9_.-]*]: they may contain dots
    and dashes but may not start with one, which is what lets [-variant]
    after whitespace disambiguate from a dash inside a version or package
    name. *)

type token =
  | Id of string
  | At  (** [@] — version list follows *)
  | Plus  (** [+variant] *)
  | Minus  (** [-variant] *)
  | Tilde  (** [~variant] *)
  | Percent  (** [%compiler] *)
  | Equals  (** [=architecture] *)
  | Caret  (** [^dependency] *)
  | Comma  (** version list separator *)
  | Colon  (** version range separator *)

val pp_token : Format.formatter -> token -> unit
val token_to_string : token -> string

val tokenize : string -> (token list, string) result
(** Whitespace separates tokens but is otherwise insignificant. [Error]
    carries a message naming the offending character and position. *)
