lib/spec/constraint_ops.ml: Ast Bool Format Ospack_version Printf Result
