lib/spec/constraint_ops.mli: Ast Format
