lib/spec/lexer.ml: Format List Printf String
