lib/spec/concrete.ml: Ast Bool Constraint_ops Format Hashtbl List Map Option Ospack_dag Ospack_hash Ospack_json Ospack_version Printf Result String
