lib/spec/ast.mli: Map Ospack_version
