lib/spec/printer.ml: Ast Buffer Format List Ospack_version String
