lib/spec/ast.ml: Bool List Map Ospack_version String
