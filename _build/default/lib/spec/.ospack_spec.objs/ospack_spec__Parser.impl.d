lib/spec/parser.ml: Ast Bool Constraint_ops Lexer List Ospack_version Printf Result
