lib/spec/concrete.mli: Ast Format Map Ospack_dag Ospack_json Ospack_version
