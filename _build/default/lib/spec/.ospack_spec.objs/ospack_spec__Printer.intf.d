lib/spec/printer.mli: Ast Format
