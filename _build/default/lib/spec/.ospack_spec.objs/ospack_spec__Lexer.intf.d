lib/spec/lexer.mli: Format
