module Smap = Ast.Smap
module Vlist = Ospack_version.Vlist

let node_to_string (n : Ast.node) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf n.name;
  if not (Vlist.is_any n.versions) then begin
    Buffer.add_char buf '@';
    Buffer.add_string buf (Vlist.to_string n.versions)
  end;
  (match n.compiler with
  | None -> ()
  | Some c ->
      Buffer.add_char buf '%';
      Buffer.add_string buf c.c_name;
      if not (Vlist.is_any c.c_versions) then begin
        Buffer.add_char buf '@';
        Buffer.add_string buf (Vlist.to_string c.c_versions)
      end);
  Smap.iter
    (fun v enabled ->
      Buffer.add_char buf (if enabled then '+' else '~');
      Buffer.add_string buf v)
    n.variants;
  (match n.arch with
  | None -> ()
  | Some a ->
      Buffer.add_char buf '=';
      Buffer.add_string buf a);
  Buffer.contents buf

let to_string (t : Ast.t) =
  let deps =
    Smap.bindings t.deps
    |> List.map (fun (_, n) -> " ^" ^ node_to_string n)
  in
  node_to_string t.root ^ String.concat "" deps

let pp_node fmt n = Format.pp_print_string fmt (node_to_string n)
let pp fmt t = Format.pp_print_string fmt (to_string t)
