module Smap = Ast.Smap
module Vlist = Ospack_version.Vlist
module Vrange = Ospack_version.Vrange
module Version = Ospack_version.Version

type state = { mutable toks : Lexer.token list; src : string }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  Error (Printf.sprintf "parse error in %S: %s" st.src msg)

let expect_id st what =
  match peek st with
  | Some (Lexer.Id s) ->
      advance st;
      Ok s
  | Some t -> fail st (Printf.sprintf "expected %s, got %s" what (Lexer.token_to_string t))
  | None -> fail st (Printf.sprintf "expected %s, got end of input" what)

let ( let* ) = Result.bind

let parse_version st =
  match expect_id st "version" with
  | Error e -> Error e
  | Ok s -> (
      match Version.of_string_opt s with
      | Some v -> Ok v
      | None -> fail st (Printf.sprintf "invalid version %S" s))

(* version-item := id | id ':' | ':' id | id ':' id | ':' *)
let parse_range st =
  match peek st with
  | Some Lexer.Colon -> (
      advance st;
      match peek st with
      | Some (Lexer.Id _) ->
          let* hi = parse_version st in
          Ok (Vrange.range None (Some hi))
      | _ -> Ok Vrange.unbounded)
  | Some (Lexer.Id _) -> (
      let* lo = parse_version st in
      match peek st with
      | Some Lexer.Colon -> (
          advance st;
          match peek st with
          | Some (Lexer.Id _) ->
              let* hi = parse_version st in
              let r = Vrange.range (Some lo) (Some hi) in
              if Vrange.is_empty r then
                fail st
                  (Printf.sprintf "empty version range %s:%s"
                     (Version.to_string lo) (Version.to_string hi))
              else Ok r
          | _ -> Ok (Vrange.range (Some lo) None))
      | _ -> Ok (Vrange.point lo))
  | Some t ->
      fail st
        (Printf.sprintf "expected version after '@', got %s"
           (Lexer.token_to_string t))
  | None -> fail st "expected version after '@', got end of input"

let parse_version_list st =
  let* first = parse_range st in
  let rec more acc =
    match peek st with
    | Some Lexer.Comma ->
        advance st;
        let* r = parse_range st in
        more (r :: acc)
    | _ -> Ok (Vlist.of_ranges (List.rev acc))
  in
  more [ first ]

(* node := [id] { '@' version-list | '+'/'-'/'~' variant
                | '%' compiler | '=' arch } *)
let parse_one_node st ~require_name =
  let* name =
    match peek st with
    | Some (Lexer.Id s) ->
        advance st;
        Ok s
    | _ when require_name -> expect_id st "package name"
    | _ -> Ok ""
  in
  let node = ref (Ast.unconstrained name) in
  let set_versions vl =
    let merged = Vlist.intersect !node.Ast.versions vl in
    if Vlist.is_empty merged then
      fail st
        (Printf.sprintf "conflicting version constraints on %s: %s vs %s" name
           (Vlist.to_string !node.Ast.versions)
           (Vlist.to_string vl))
    else begin
      node := Ast.with_versions merged !node;
      Ok ()
    end
  in
  let set_variant v enabled =
    match Smap.find_opt v !node.Ast.variants with
    | Some existing when not (Bool.equal existing enabled) ->
        fail st (Printf.sprintf "variant %s both enabled and disabled" v)
    | _ ->
        node := Ast.with_variant v enabled !node;
        Ok ()
  in
  let rec loop () =
    match peek st with
    | Some Lexer.At ->
        advance st;
        let* vl = parse_version_list st in
        let* () = set_versions vl in
        loop ()
    | Some Lexer.Plus ->
        advance st;
        let* v = expect_id st "variant name" in
        let* () = set_variant v true in
        loop ()
    | Some Lexer.Minus | Some Lexer.Tilde ->
        advance st;
        let* v = expect_id st "variant name" in
        let* () = set_variant v false in
        loop ()
    | Some Lexer.Percent ->
        advance st;
        let* cname = expect_id st "compiler name" in
        let* cversions =
          match peek st with
          | Some Lexer.At ->
              advance st;
              parse_version_list st
          | _ -> Ok Vlist.any
        in
        let req = { Ast.c_name = cname; c_versions = cversions } in
        let merged =
          Constraint_ops.intersect_compiler_reqs !node.Ast.compiler (Some req)
        in
        (match merged with
        | Ok c ->
            node := Ast.with_compiler c !node;
            loop ()
        | Error msg -> fail st msg)
    | Some Lexer.Equals ->
        advance st;
        let* arch = expect_id st "architecture name" in
        (match !node.Ast.arch with
        | Some a when a <> arch ->
            fail st
              (Printf.sprintf "conflicting architectures: =%s vs =%s" a arch)
        | _ ->
            node := Ast.with_arch (Some arch) !node;
            loop ())
    | _ -> Ok !node
  in
  loop ()

let parse_spec st =
  let* root = parse_one_node st ~require_name:false in
  let rec deps acc =
    match peek st with
    | None -> Ok acc
    | Some Lexer.Caret -> (
        advance st;
        let* dep = parse_one_node st ~require_name:true in
        match Smap.find_opt dep.Ast.name acc with
        | None -> deps (Smap.add dep.Ast.name dep acc)
        | Some existing -> (
            match Constraint_ops.intersect_node existing dep with
            | Ok merged -> deps (Smap.add dep.Ast.name merged acc)
            | Error c -> fail st (Constraint_ops.conflict_to_string c)))
    | Some t ->
        fail st
          (Printf.sprintf "unexpected %s (missing '^'?)"
             (Lexer.token_to_string t))
  in
  let* deps = deps Smap.empty in
  Ok { Ast.root; deps }

let run src parse_fn =
  match Lexer.tokenize src with
  | Error e -> Error (Printf.sprintf "parse error in %S: %s" src e)
  | Ok [] -> Error (Printf.sprintf "parse error in %S: empty spec" src)
  | Ok toks -> parse_fn { toks; src }

let parse src = run src parse_spec

let parse_exn src =
  match parse src with Ok t -> t | Error e -> invalid_arg e

let parse_node src =
  run src (fun st ->
      let* node = parse_one_node st ~require_name:false in
      match peek st with
      | None -> Ok node
      | Some t ->
          fail st
            (Printf.sprintf "unexpected %s in single-package spec"
               (Lexer.token_to_string t)))
