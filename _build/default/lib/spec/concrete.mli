(** Concrete specs: fully resolved build DAGs (paper §3.4, Fig. 7).

    A concrete spec satisfies the three conditions of §3.4: no missing
    dependencies, no virtual packages, and every parameter pinned. The DAG
    is keyed by package name — Spack's guarantee that no two configurations
    of one package appear in the same DAG (§3.2.1) makes the name a unique
    node id.

    Each node records which virtual interfaces it provides in this DAG
    (e.g. mvapich2 providing [mpi@:2.2]) so that queries like
    [spack find ^mpi@2:] can match installed specs. *)

module Smap : Map.S with type key = string

type node = {
  name : string;
  version : Ospack_version.Version.t;
  compiler : string * Ospack_version.Version.t;
  variants : bool Smap.t;  (** every declared variant, fully valued *)
  arch : string;
  deps : string list;  (** dependency package names, sorted *)
  provided : (string * Ospack_version.Vlist.t) list;
      (** virtual interfaces this node provides, with provided versions *)
}

type t
(** A validated concrete spec DAG. *)

type validation_error =
  | Missing_root of string
  | Missing_dep of { node : string; dep : string }
  | Cyclic of string list

val pp_validation_error : Format.formatter -> validation_error -> unit

val make : root:string -> node list -> (t, validation_error) result
(** Validate and build: the root and every referenced dependency must be
    present, and the dependency relation must be acyclic. *)

val root : t -> string
val root_node : t -> node

val node : t -> string -> node option
val node_exn : t -> string -> node

val nodes : t -> node list
(** All nodes, sorted by name. *)

val node_count : t -> int

val deps_of : t -> string -> node list
(** Direct dependencies of a node. *)

val subspec : t -> string -> t
(** The concrete sub-DAG rooted at a node — what Spack passes to a
    package's [install] method (§3.4: "a sub-DAG rooted at the current
    node"). Raises [Invalid_argument] for unknown nodes. *)

val to_dag : t -> Ospack_dag.Dag.t

val topological_order : t -> string list
(** Dependencies before dependents (install order). *)

val dag_hash : t -> string -> string
(** 8-hex-character hash of the sub-DAG rooted at a node: the paper's
    basis for unique install prefixes (§3.4.2) and sub-DAG sharing
    (Fig. 9) — two equal sub-DAGs have equal hashes. *)

val root_hash : t -> string

val as_ast_node : node -> Ast.node
(** The node's parameters as pinned abstract constraints (for reuse checks
    and [when=] evaluation against installed specs). *)

val node_satisfies : node -> Ast.node -> bool
(** Does this concrete node satisfy an abstract constraint node? The
    constraint may name the package itself or a virtual interface the node
    provides (version constraints then check the provided versions). *)

val satisfies : t -> Ast.t -> bool
(** Does the spec satisfy an abstract query? The root must satisfy the
    query root (by name or provided virtual), and each dependency
    constraint must be satisfied by some node of the DAG. *)

val node_to_string : node -> string
(** Short form: [name@version%compiler@cver~debug+mpi=arch]. *)

val to_string : t -> string
(** Full single-line rendering: root followed by [^node] entries in
    dependency-name order. *)

val tree_string : t -> string
(** Multi-line ASCII dependency tree (like [spack spec]). *)

val equal : t -> t -> bool

val to_json : t -> Ospack_json.Json.t
(** Structured serialization of the full DAG — ospack's [spec.json],
    the analogue of the spec file Spack stores for provenance (§3.4.3).
    {!of_json} inverts it exactly, independent of package-file drift. *)

val of_json : Ospack_json.Json.t -> (t, string) result
(** Parse and re-validate a serialized spec. *)

val pp : Format.formatter -> t -> unit
