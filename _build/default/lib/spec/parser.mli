(** Recursive-descent parser for the spec grammar (paper Fig. 3).

    Dependency constraints introduced by [^] attach to a flat,
    name-keyed constraint set regardless of where they appear — the paper's
    "dependency constraints can appear in an arbitrary order" (§3.2.3).
    A spec may be anonymous (start directly with a constraint), which is
    how [when='%gcc@5:'] predicates are written (§3.2.4). Repeated
    constraints on one package intersect; an unsatisfiable repetition
    (e.g. [@1.2 @2.0]) is a parse-time conflict error. *)

val parse : string -> (Ast.t, string) result
(** Parse a spec string. *)

val parse_exn : string -> Ast.t
(** Raises [Invalid_argument] with the parse error message. *)

val parse_node : string -> (Ast.node, string) result
(** Parse a spec that must not contain [^] dependency constraints —
    used for directive arguments that name a single package. *)
