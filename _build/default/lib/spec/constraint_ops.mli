(** Constraint intersection and satisfaction over abstract spec nodes —
    the algebra behind the concretizer's "Intersect Constraints" stage
    (paper Fig. 6).

    Intersection is symmetric and reports typed conflicts (the paper's
    "Spack will stop and notify the user of the conflict", §3.4).
    Satisfaction ([node_satisfies]) is the strict check used to evaluate
    [when=] predicates against a (partially) concretized node: a predicate
    on a parameter holds only once that parameter is pinned to a value
    admitted by the predicate. *)

type conflict = {
  package : string;  (** node name the conflict arose on *)
  field : string;  (** ["version"], ["compiler"], ["variant x"], ["architecture"], ["name"] *)
  left : string;  (** human-readable rendering of one side *)
  right : string;
}

val pp_conflict : Format.formatter -> conflict -> unit
val conflict_to_string : conflict -> string

val intersect_node : Ast.node -> Ast.node -> (Ast.node, conflict) result
(** Merge two constraint nodes for the same package. Anonymous names merge
    with named ones; two different non-empty names conflict. *)

val merge : Ast.t -> Ast.t -> (Ast.t, conflict) result
(** Merge two abstract specs: roots intersect; dependency constraints
    intersect per name, union otherwise. The roots must name the same
    package (or one be anonymous). *)

val intersect_compiler_reqs :
  Ast.compiler_req option ->
  Ast.compiler_req option ->
  (Ast.compiler_req option, string) result
(** Intersection of two optional compiler requirements, with a rendered
    message on conflict (used by the parser for repeated [%] constraints). *)

val node_satisfies : candidate:Ast.node -> constraint_:Ast.node -> bool
(** Does [candidate] definitely satisfy [constraint_]? Parameters that
    [constraint_] pins but [candidate] has not yet pinned to a single value
    yield [false] (the predicate may become true after further
    concretization — the fixed-point loop re-evaluates). A version
    constraint is satisfied when the candidate's pinned version is a member;
    variants and architecture require equality; a compiler constraint
    requires same compiler name and a pinned, member version when the
    constraint restricts versions. *)
