module Smap = Ast.Smap
module Vlist = Ospack_version.Vlist

type conflict = {
  package : string;
  field : string;
  left : string;
  right : string;
}

let conflict_to_string c =
  Printf.sprintf "conflicting %s constraints on %s: %s vs %s" c.field
    (if c.package = "" then "<anonymous>" else c.package)
    c.left c.right

let pp_conflict fmt c = Format.pp_print_string fmt (conflict_to_string c)

let ( let* ) = Result.bind

let intersect_name pkg a b =
  if a = "" then Ok b
  else if b = "" || a = b then Ok a
  else Error { package = pkg; field = "name"; left = a; right = b }

let intersect_versions pkg a b =
  let isect = Vlist.intersect a b in
  if Vlist.is_empty isect then
    Error
      {
        package = pkg;
        field = "version";
        left = Vlist.to_string a;
        right = Vlist.to_string b;
      }
  else Ok isect

let compiler_to_string (c : Ast.compiler_req) =
  if Vlist.is_any c.c_versions then c.c_name
  else c.c_name ^ "@" ^ Vlist.to_string c.c_versions

let intersect_compiler pkg a b =
  match (a, b) with
  | None, x | x, None -> Ok x
  | Some ca, Some cb ->
      let conflict () =
        Error
          {
            package = pkg;
            field = "compiler";
            left = compiler_to_string ca;
            right = compiler_to_string cb;
          }
      in
      if ca.Ast.c_name <> cb.Ast.c_name then conflict ()
      else
        let vs = Vlist.intersect ca.c_versions cb.c_versions in
        if Vlist.is_empty vs then conflict ()
        else Ok (Some { Ast.c_name = ca.c_name; c_versions = vs })

let intersect_compiler_reqs a b =
  match intersect_compiler "" a b with
  | Ok c -> Ok c
  | Error c ->
      Error
        (Printf.sprintf "conflicting compiler constraints: %%%s vs %%%s" c.left
           c.right)

let intersect_variants pkg a b =
  Smap.fold
    (fun v enabled acc ->
      let* vars = acc in
      match Smap.find_opt v vars with
      | None -> Ok (Smap.add v enabled vars)
      | Some existing ->
          if Bool.equal existing enabled then Ok vars
          else
            Error
              {
                package = pkg;
                field = "variant " ^ v;
                left = (if existing then "+" else "~") ^ v;
                right = (if enabled then "+" else "~") ^ v;
              })
    b (Ok a)

let intersect_arch pkg a b =
  match (a, b) with
  | None, x | x, None -> Ok x
  | Some aa, Some ab ->
      if aa = ab then Ok (Some aa)
      else Error { package = pkg; field = "architecture"; left = aa; right = ab }

let intersect_node (a : Ast.node) (b : Ast.node) =
  let pkg = if a.name <> "" then a.name else b.name in
  let* name = intersect_name pkg a.name b.name in
  let* versions = intersect_versions pkg a.versions b.versions in
  let* compiler = intersect_compiler pkg a.compiler b.compiler in
  let* variants = intersect_variants pkg a.variants b.variants in
  let* arch = intersect_arch pkg a.arch b.arch in
  Ok { Ast.name; versions; compiler; variants; arch }

let merge (a : Ast.t) (b : Ast.t) =
  let* root = intersect_node a.root b.root in
  let* deps =
    Smap.fold
      (fun name node acc ->
        let* deps = acc in
        match Smap.find_opt name deps with
        | None -> Ok (Smap.add name node deps)
        | Some existing ->
            let* merged = intersect_node existing node in
            Ok (Smap.add name merged deps))
      b.deps (Ok a.deps)
  in
  Ok { Ast.root; deps }

let node_satisfies ~(candidate : Ast.node) ~(constraint_ : Ast.node) =
  let name_ok =
    constraint_.name = "" || constraint_.name = candidate.name
  in
  let version_ok =
    Vlist.is_any constraint_.versions
    ||
    match Vlist.concrete candidate.versions with
    | Some v -> Vlist.mem v constraint_.versions
    | None -> Vlist.subset candidate.versions constraint_.versions
  in
  let compiler_ok =
    match constraint_.compiler with
    | None -> true
    | Some req -> (
        match candidate.compiler with
        | None -> false
        | Some have ->
            have.c_name = req.c_name
            && (Vlist.is_any req.c_versions
               ||
               match Vlist.concrete have.c_versions with
               | Some v -> Vlist.mem v req.c_versions
               | None -> Vlist.subset have.c_versions req.c_versions))
  in
  let variants_ok =
    Smap.for_all
      (fun v enabled ->
        match Smap.find_opt v candidate.variants with
        | Some have -> Bool.equal have enabled
        | None -> false)
      constraint_.variants
  in
  let arch_ok =
    match constraint_.arch with
    | None -> true
    | Some a -> candidate.arch = Some a
  in
  name_ok && version_ok && compiler_ok && variants_ok && arch_ok
