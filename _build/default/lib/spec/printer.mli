(** Rendering of abstract specs back to the command-line syntax.

    Printing and {!Parser.parse} round-trip: parsing a rendered spec yields
    an equal [Ast.t]. Disabled variants render with [~] (attached form) so
    that re-parsing never glues a [-variant] onto a preceding identifier. *)

val node_to_string : Ast.node -> string
(** One node: [name@versions%compiler@cvers+var~var=arch]. Unconstrained
    parameters are omitted; an anonymous unconstrained node renders as
    [""]. *)

val to_string : Ast.t -> string
(** Full spec with [ ^dep] constraints, dependencies sorted by name. *)

val pp_node : Format.formatter -> Ast.node -> unit
val pp : Format.formatter -> Ast.t -> unit
