type token =
  | Id of string
  | At
  | Plus
  | Minus
  | Tilde
  | Percent
  | Equals
  | Caret
  | Comma
  | Colon

let token_to_string = function
  | Id s -> Printf.sprintf "identifier %S" s
  | At -> "'@'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Tilde -> "'~'"
  | Percent -> "'%'"
  | Equals -> "'='"
  | Caret -> "'^'"
  | Comma -> "','"
  | Colon -> "':'"

let pp_token fmt t = Format.pp_print_string fmt (token_to_string t)

let is_id_start c =
  (c >= 'A' && c <= 'Z')
  || (c >= 'a' && c <= 'z')
  || (c >= '0' && c <= '9')
  || c = '_'

let is_id_char c = is_id_start c || c = '.' || c = '-'

let tokenize s =
  let n = String.length s in
  let rec scan i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1) acc
      | '@' -> scan (i + 1) (At :: acc)
      | '+' -> scan (i + 1) (Plus :: acc)
      | '-' -> scan (i + 1) (Minus :: acc)
      | '~' -> scan (i + 1) (Tilde :: acc)
      | '%' -> scan (i + 1) (Percent :: acc)
      | '=' -> scan (i + 1) (Equals :: acc)
      | '^' -> scan (i + 1) (Caret :: acc)
      | ',' -> scan (i + 1) (Comma :: acc)
      | ':' -> scan (i + 1) (Colon :: acc)
      | c when is_id_start c ->
          let j = ref i in
          while !j < n && is_id_char s.[!j] do
            incr j
          done;
          scan !j (Id (String.sub s i (!j - i)) :: acc)
      | c ->
          Error
            (Printf.sprintf "unexpected character %C at position %d in %S" c i
               s)
  in
  scan 0 []
