(** Abstract specs: partially-constrained build configurations
    (paper §3.2).

    An abstract spec constrains any subset of the five per-package
    parameters (version, compiler, compiler version, variants, target
    architecture) on the root package and on any of its transitive
    dependencies. Because a DAG never contains two versions of one package
    (§3.2.1), dependency constraints are stored flat, keyed by package
    name — exactly why the paper's [^dep] syntax needs no nesting. *)

module Smap : Map.S with type key = string

type compiler_req = { c_name : string; c_versions : Ospack_version.Vlist.t }

type node = {
  name : string;  (** [""] for anonymous specs (used in [when=] clauses). *)
  versions : Ospack_version.Vlist.t;  (** {!Ospack_version.Vlist.any} when unconstrained. *)
  compiler : compiler_req option;
  variants : bool Smap.t;  (** only the variants explicitly constrained *)
  arch : string option;
}

type t = {
  root : node;
  deps : node Smap.t;  (** constraints on named dependencies, flat *)
}

val unconstrained : string -> node
(** A node constraining nothing but the package name. *)

val anonymous : node
(** The empty anonymous node — satisfied by anything. *)

val node_is_unconstrained : node -> bool
(** True when only the name is set. *)

val of_node : node -> t
(** A spec with no dependency constraints. *)

val with_versions : Ospack_version.Vlist.t -> node -> node
val with_compiler : compiler_req option -> node -> node
val with_variant : string -> bool -> node -> node
val with_arch : string option -> node -> node

val constrained_nodes : t -> node list
(** Root followed by dependency constraint nodes, sorted by name. *)

val dep : t -> string -> node option

val equal_node : node -> node -> bool
val equal : t -> t -> bool
