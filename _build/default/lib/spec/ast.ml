module Smap = Map.Make (String)
module Vlist = Ospack_version.Vlist

type compiler_req = { c_name : string; c_versions : Vlist.t }

type node = {
  name : string;
  versions : Vlist.t;
  compiler : compiler_req option;
  variants : bool Smap.t;
  arch : string option;
}

type t = { root : node; deps : node Smap.t }

let unconstrained name =
  {
    name;
    versions = Vlist.any;
    compiler = None;
    variants = Smap.empty;
    arch = None;
  }

let anonymous = unconstrained ""

let node_is_unconstrained n =
  Vlist.is_any n.versions && n.compiler = None
  && Smap.is_empty n.variants
  && n.arch = None

let of_node node = { root = node; deps = Smap.empty }

let with_versions versions n = { n with versions }
let with_compiler compiler n = { n with compiler }
let with_variant v enabled n = { n with variants = Smap.add v enabled n.variants }
let with_arch arch n = { n with arch }

let constrained_nodes t = t.root :: List.map snd (Smap.bindings t.deps)

let dep t name = Smap.find_opt name t.deps

let equal_compiler a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a.c_name = b.c_name && Vlist.equal a.c_versions b.c_versions
  | _ -> false

let equal_node a b =
  a.name = b.name
  && Vlist.equal a.versions b.versions
  && equal_compiler a.compiler b.compiler
  && Smap.equal Bool.equal a.variants b.variants
  && a.arch = b.arch

let equal a b =
  equal_node a.root b.root && Smap.equal equal_node a.deps b.deps
