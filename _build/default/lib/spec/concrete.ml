module Smap = Map.Make (String)
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist
module Dag = Ospack_dag.Dag

type node = {
  name : string;
  version : Version.t;
  compiler : string * Version.t;
  variants : bool Smap.t;
  arch : string;
  deps : string list;
  provided : (string * Vlist.t) list;
}

type t = { root : string; nodes : node Smap.t; dag : Dag.t }

type validation_error =
  | Missing_root of string
  | Missing_dep of { node : string; dep : string }
  | Cyclic of string list

let pp_validation_error fmt = function
  | Missing_root r -> Format.fprintf fmt "root package %s is not in the DAG" r
  | Missing_dep { node; dep } ->
      Format.fprintf fmt "%s depends on %s, which is not in the DAG" node dep
  | Cyclic cycle ->
      Format.fprintf fmt "dependency cycle: %s" (String.concat " -> " cycle)

let build_dag nodes =
  List.fold_left
    (fun dag n ->
      let dag = Dag.add_node dag n.name in
      List.fold_left
        (fun dag dep -> Dag.add_edge dag ~from:n.name ~to_:dep)
        dag n.deps)
    Dag.empty nodes

let make ~root node_list =
  let nodes =
    List.fold_left (fun m n -> Smap.add n.name n m) Smap.empty node_list
  in
  let missing_dep =
    List.find_map
      (fun n ->
        List.find_map
          (fun d ->
            if Smap.mem d nodes then None
            else Some (Missing_dep { node = n.name; dep = d }))
          n.deps)
      node_list
  in
  match missing_dep with
  | Some e -> Error e
  | None ->
      if not (Smap.mem root nodes) then Error (Missing_root root)
      else
        let dag = build_dag node_list in
        (match Dag.topological_sort dag with
        | Error cycle -> Error (Cyclic cycle)
        | Ok _ -> Ok { root; nodes; dag })

let root t = t.root
let node t name = Smap.find_opt name t.nodes

let node_exn t name =
  match node t name with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Concrete.node_exn: no node %s" name)

let root_node t = node_exn t t.root
let nodes t = List.map snd (Smap.bindings t.nodes)
let node_count t = Smap.cardinal t.nodes
let deps_of t name = List.map (node_exn t) (node_exn t name).deps
let to_dag t = t.dag

let subspec t name =
  let _ = node_exn t name in
  let keep = Dag.reachable t.dag name in
  {
    root = name;
    nodes =
      List.fold_left
        (fun m n -> Smap.add n (node_exn t n) m)
        Smap.empty keep;
    dag = Dag.subgraph t.dag name;
  }

let topological_order t =
  match Dag.topological_sort t.dag with
  | Ok order -> order
  | Error _ -> assert false (* validated acyclic in [make] *)

let variants_to_string variants =
  Smap.bindings variants
  |> List.map (fun (v, enabled) -> (if enabled then "+" else "~") ^ v)
  |> String.concat ""

let node_to_string n =
  let cname, cver = n.compiler in
  Printf.sprintf "%s@%s%%%s@%s%s=%s" n.name
    (Version.to_string n.version)
    cname
    (Version.to_string cver)
    (variants_to_string n.variants)
    n.arch

(* The canonical identity string hashed for a node includes everything that
   affects the build: parameters, provided virtuals, and the hashes of the
   dependency sub-DAGs (so equal sub-DAGs share hashes — Fig. 9). *)
let hashes t =
  let memo = Hashtbl.create 16 in
  let rec hash_of name =
    match Hashtbl.find_opt memo name with
    | Some h -> h
    | None ->
        let n = node_exn t name in
        let provided =
          List.map
            (fun (v, vl) -> Printf.sprintf "%s=%s" v (Vlist.to_string vl))
            n.provided
          |> String.concat ","
        in
        let dep_hashes = List.map hash_of n.deps in
        let identity =
          String.concat "|"
            (node_to_string n :: provided :: dep_hashes)
        in
        let h =
          String.sub (Ospack_hash.Sha256.hex_digest identity) 0 8
        in
        Hashtbl.replace memo name h;
        h
  in
  Smap.mapi (fun name _ -> hash_of name) t.nodes

let dag_hash t name =
  match Smap.find_opt name (hashes t) with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Concrete.dag_hash: no node %s" name)

let root_hash t = dag_hash t t.root

let as_ast_node n =
  let cname, cver = n.compiler in
  {
    Ast.name = n.name;
    versions = Vlist.of_version n.version;
    compiler =
      Some { Ast.c_name = cname; c_versions = Vlist.of_version cver };
    variants = Smap.fold Ast.Smap.add n.variants Ast.Smap.empty;
    arch = Some n.arch;
  }

let node_satisfies n (c : Ast.node) =
  if c.name = "" || c.name = n.name then
    Constraint_ops.node_satisfies ~candidate:(as_ast_node n) ~constraint_:c
  else
    (* the constraint may name a virtual interface this node provides *)
    match List.assoc_opt c.name n.provided with
    | None -> false
    | Some provided_versions ->
        Vlist.intersects provided_versions c.versions
        && Constraint_ops.node_satisfies ~candidate:(as_ast_node n)
             ~constraint_:{ c with name = n.name; versions = Vlist.any }

let satisfies t (q : Ast.t) =
  node_satisfies (root_node t) q.root
  && Ast.Smap.for_all
       (fun _ c -> Smap.exists (fun _ n -> node_satisfies n c) t.nodes)
       q.deps

let to_string t =
  let others =
    Smap.bindings t.nodes
    |> List.filter (fun (name, _) -> name <> t.root)
    |> List.map (fun (_, n) -> " ^" ^ node_to_string n)
  in
  node_to_string (root_node t) ^ String.concat "" others

let tree_string t =
  Dag.to_tree
    ~pp_node:(fun name -> node_to_string (node_exn t name))
    ~root:t.root t.dag

let equal_node a b =
  a.name = b.name
  && Version.equal a.version b.version
  && fst a.compiler = fst b.compiler
  && Version.equal (snd a.compiler) (snd b.compiler)
  && Smap.equal Bool.equal a.variants b.variants
  && a.arch = b.arch
  && a.deps = b.deps
  && List.length a.provided = List.length b.provided
  && List.for_all2
       (fun (v1, l1) (v2, l2) -> v1 = v2 && Vlist.equal l1 l2)
       a.provided b.provided

let equal a b = a.root = b.root && Smap.equal equal_node a.nodes b.nodes

module Json = Ospack_json.Json

let node_to_json n =
  let cname, cver = n.compiler in
  Json.Obj
    [
      ("name", Json.String n.name);
      ("version", Json.String (Version.to_string n.version));
      ( "compiler",
        Json.Obj
          [
            ("name", Json.String cname);
            ("version", Json.String (Version.to_string cver));
          ] );
      ( "variants",
        Json.Obj
          (Smap.bindings n.variants
          |> List.map (fun (v, on) -> (v, Json.Bool on))) );
      ("arch", Json.String n.arch);
      ("deps", Json.List (List.map (fun d -> Json.String d) n.deps));
      ( "provided",
        Json.List
          (List.map
             (fun (virt, vl) ->
               Json.Obj
                 [
                   ("name", Json.String virt);
                   ("versions", Json.String (Vlist.to_string vl));
                 ])
             n.provided) );
    ]

let to_json t =
  Json.Obj
    [
      ("format", Json.Int 1);
      ("root", Json.String t.root);
      ("nodes", Json.List (List.map node_to_json (nodes t)));
    ]

let ( let* ) = Result.bind

let field what o key access =
  match Option.bind (Json.member key o) access with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "spec json: missing or ill-typed %s.%s" what key)

let version_of_json what s =
  match Version.of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "spec json: bad version %S in %s" s what)

let node_of_json j =
  let* name = field "node" j "name" Json.get_string in
  let what = "node " ^ name in
  let* version_s = field what j "version" Json.get_string in
  let* version = version_of_json what version_s in
  let* compiler_obj =
    match Json.member "compiler" j with
    | Some (Json.Obj _ as o) -> Ok o
    | _ -> Error (Printf.sprintf "spec json: missing %s.compiler" what)
  in
  let* cname = field what compiler_obj "name" Json.get_string in
  let* cver_s = field what compiler_obj "version" Json.get_string in
  let* cver = version_of_json what cver_s in
  let* variants =
    match Json.member "variants" j with
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (v, value) ->
            let* m = acc in
            match Json.get_bool value with
            | Some b -> Ok (Smap.add v b m)
            | None ->
                Error
                  (Printf.sprintf "spec json: non-boolean variant %s.%s" what v))
          (Ok Smap.empty) fields
    | _ -> Error (Printf.sprintf "spec json: missing %s.variants" what)
  in
  let* arch = field what j "arch" Json.get_string in
  let* deps =
    match Option.bind (Json.member "deps" j) Json.to_list with
    | None -> Error (Printf.sprintf "spec json: missing %s.deps" what)
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* ds = acc in
            match Json.get_string item with
            | Some d -> Ok (d :: ds)
            | None -> Error (Printf.sprintf "spec json: bad dep in %s" what))
          (Ok []) items
        |> Result.map List.rev
  in
  let* provided =
    match Option.bind (Json.member "provided" j) Json.to_list with
    | None -> Ok []
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* ps = acc in
            let* vname = field what item "name" Json.get_string in
            let* vers = field what item "versions" Json.get_string in
            match Vlist.of_string vers with
            | vl -> Ok ((vname, vl) :: ps)
            | exception Invalid_argument _ ->
                Error
                  (Printf.sprintf "spec json: bad provided versions in %s" what))
          (Ok []) items
        |> Result.map List.rev
  in
  Ok { name; version; compiler = (cname, cver); variants; arch; deps; provided }

let of_json j =
  let* root = field "spec" j "root" Json.get_string in
  let* node_items =
    match Option.bind (Json.member "nodes" j) Json.to_list with
    | Some items -> Ok items
    | None -> Error "spec json: missing nodes"
  in
  let* node_list =
    List.fold_left
      (fun acc item ->
        let* ns = acc in
        let* n = node_of_json item in
        Ok (n :: ns))
      (Ok []) node_items
  in
  match make ~root node_list with
  | Ok t -> Ok t
  | Error e -> Error (Format.asprintf "spec json: %a" pp_validation_error e)

let pp fmt t = Format.pp_print_string fmt (to_string t)
