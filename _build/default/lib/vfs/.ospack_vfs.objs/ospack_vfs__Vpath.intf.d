lib/vfs/vpath.mli:
