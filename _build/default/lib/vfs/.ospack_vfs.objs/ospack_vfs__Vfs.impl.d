lib/vfs/vfs.ml: Format Hashtbl List Printf Result String Vpath
