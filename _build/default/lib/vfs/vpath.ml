let split p =
  String.split_on_char '/' p |> List.filter (fun c -> c <> "" && c <> ".")

let is_absolute p = String.length p > 0 && p.[0] = '/'

let concat components = "/" ^ String.concat "/" components

let normalize p =
  let rec resolve acc = function
    | [] -> List.rev acc
    | ".." :: rest -> (
        match acc with [] -> resolve [] rest | _ :: up -> resolve up rest)
    | c :: rest -> resolve (c :: acc) rest
  in
  concat (resolve [] (split p))

let join dir name =
  if is_absolute name then normalize name else normalize (dir ^ "/" ^ name)

let dirname p =
  match List.rev (split p) with
  | [] | [ _ ] -> "/"
  | _ :: rest -> concat (List.rev rest)

let basename p =
  match List.rev (split p) with [] -> "" | last :: _ -> last
