(** Slash-separated virtual paths.

    All paths in the virtual filesystem are absolute ("/..."). Components
    ["."] and [""] are dropped; [".."] is resolved lexically by
    {!normalize}. *)

val split : string -> string list
(** Components of a path, with empty and ["."] components dropped
    (no [".."] handling — see {!normalize}). *)

val join : string -> string -> string
(** [join dir name] appends one component (or relative path) to [dir]. *)

val normalize : string -> string
(** Canonical absolute form: leading slash, no duplicate slashes, [".."]
    resolved lexically (never above the root). *)

val dirname : string -> string
(** Parent path; ["/"] is its own parent. *)

val basename : string -> string
(** Final component; [""] for the root. *)

val is_absolute : string -> bool

val concat : string list -> string
(** Build an absolute path from components. *)
