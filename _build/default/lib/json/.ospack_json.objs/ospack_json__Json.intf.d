lib/json/json.mli:
