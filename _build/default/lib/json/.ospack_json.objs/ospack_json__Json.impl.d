lib/json/json.ml: Buffer Char List Printf String
