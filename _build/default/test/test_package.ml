(* The package DSL (paper Fig. 1), build specialization (Fig. 4),
   repositories with site overrides (§4.3.2), and the versioned
   provider index (Fig. 5). *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Provider_index = Ospack_package.Provider_index
module Build_step = Ospack_package.Build_step
module Ast = Ospack_spec.Ast
module Concrete = Ospack_spec.Concrete
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist

(* the paper's Fig. 1 package *)
let mpileaks =
  make_pkg "mpileaks"
    ~description:"Tool to detect and report leaked MPI objects."
    [
      homepage "https://github.com/hpc/mpileaks";
      version "1.0" ~md5:"8838c574b39202a57d7c2d68692718aa";
      version "1.1" ~md5:"4282eddb08ad8d36df15b06d4be38bcb";
      depends_on "mpi";
      depends_on "callpath";
      variant "debug" ~descr:"debug build";
      install
        (fun ctx ->
          [
            configure
              [
                "--prefix=" ^ ctx.rc_prefix;
                "--with-callpath=" ^ dep_prefix ctx "callpath";
              ];
            make [];
            make [ "install" ];
          ]);
    ]

let dsl_basics () =
  Alcotest.(check string) "name" "mpileaks" mpileaks.p_name;
  Alcotest.(check (list string)) "versions newest first" [ "1.1"; "1.0" ]
    (List.map Version.to_string (known_versions mpileaks));
  Alcotest.(check (option string)) "checksum lookup"
    (Some "8838c574b39202a57d7c2d68692718aa")
    (checksum_for mpileaks (Version.of_string "1.0"));
  Alcotest.(check (option string)) "no checksum for unknown" None
    (checksum_for mpileaks (Version.of_string "9.9"));
  Alcotest.(check int) "two deps" 2 (List.length mpileaks.p_dependencies);
  Alcotest.(check bool) "variant declared" true
    (find_variant mpileaks "debug" <> None);
  Alcotest.(check (list (pair string bool))) "variant defaults"
    [ ("debug", false) ]
    (variant_defaults mpileaks)

let dsl_errors () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad depends_on spec" true
    (raises (fun () -> ignore (make_pkg "p" [ depends_on "a b" ])));
  Alcotest.(check bool) "unnamed dependency" true
    (raises (fun () -> ignore (make_pkg "p" [ depends_on "@1.0" ])));
  Alcotest.(check bool) "bad when predicate" true
    (raises (fun () -> ignore (make_pkg "p" [ depends_on "a" ~when_:"b c" ])));
  Alcotest.(check bool) "duplicate version" true
    (raises (fun () -> ignore (make_pkg "p" [ version "1.0"; version "1.0" ])));
  Alcotest.(check bool) "duplicate variant" true
    (raises (fun () ->
         ignore
           (make_pkg "p" [ variant "x" ~descr:"a"; variant "x" ~descr:"b" ])));
  Alcotest.(check bool) "unnamed provides" true
    (raises (fun () -> ignore (make_pkg "p" [ provides "@1.0" ])))

let preferred () =
  let p =
    make_pkg "p" [ version "2.0"; version "1.5" ~preferred:true; version "1.0" ]
  in
  Alcotest.(check (list string)) "preferred list" [ "1.5" ]
    (List.map Version.to_string (preferred_versions p))

let concrete_for name ver =
  match
    Concrete.make ~root:name
      [
        {
          Concrete.name;
          version = Version.of_string ver;
          compiler = ("gcc", Version.of_string "4.9.2");
          variants = Concrete.Smap.empty;
          arch = "linux-x86_64";
          deps = [];
          provided = [];
        };
      ]
  with
  | Ok c -> c
  | Error _ -> Alcotest.fail "bad concrete"

let dyninst_like =
  make_pkg "dyn"
    [
      version "8.1.2";
      version "8.2";
      install_when "@:8.1"
        (fun ctx -> [ configure [ "--prefix=" ^ ctx.rc_prefix ] ]);
      install (fun _ -> [ cmake [ ".." ] ]);
    ]

let run_recipe pkg spec =
  let recipe = recipe_for pkg spec in
  recipe
    {
      rc_spec = spec;
      rc_prefix = "/prefix";
      rc_dep_prefix = (fun _ -> raise Not_found);
    }

let when_dispatch () =
  (match run_recipe dyninst_like (concrete_for "dyn" "8.1.2") with
  | [ Build_step.Configure _ ] -> ()
  | steps ->
      Alcotest.failf "expected configure for 8.1.2, got %s"
        (String.concat "; " (List.map Build_step.to_string steps)));
  match run_recipe dyninst_like (concrete_for "dyn" "8.2") with
  | [ Build_step.Cmake _ ] -> ()
  | steps ->
      Alcotest.failf "expected cmake for 8.2, got %s"
        (String.concat "; " (List.map Build_step.to_string steps))

let declaration_order_precedence () =
  let p =
    make_pkg "p"
      [
        version "2.4";
        install_when "@2.4" (fun _ -> [ Build_step.Note "specific" ]);
        install_when "@2:" (fun _ -> [ Build_step.Note "general" ]);
        install (fun _ -> [ Build_step.Note "default" ]);
      ]
  in
  match run_recipe p (concrete_for "p" "2.4") with
  | [ Build_step.Note "specific" ] -> ()
  | steps ->
      Alcotest.failf "wrong dispatch: %s"
        (String.concat "; " (List.map Build_step.to_string steps))

let override_mechanism () =
  (* §4.3.2: a site package inherits and tweaks the built-in one *)
  let site =
    override mpileaks
      [ version "1.2"; variant "sitevar" ~descr:"site-only option" ]
  in
  Alcotest.(check int) "inherited deps" 2 (List.length site.p_dependencies);
  Alcotest.(check bool) "new version visible" true
    (List.exists (fun v -> Version.to_string v = "1.2") (known_versions site));
  Alcotest.(check bool) "old versions kept" true
    (List.exists (fun v -> Version.to_string v = "1.0") (known_versions site));
  Alcotest.(check bool) "new variant" true (find_variant site "sitevar" <> None);
  Alcotest.(check bool) "base unchanged" true
    (find_variant mpileaks "sitevar" = None)

let closest_name () =
  let repo =
    Repository.create
      [
        make_pkg "mpileaks" [ version "1.0" ];
        make_pkg "dyninst" [ version "1.0" ];
        make_pkg "libelf" [ version "1.0" ];
      ]
  in
  Alcotest.(check (option string)) "transposition" (Some "mpileaks")
    (Repository.closest repo "mpilekas");
  Alcotest.(check (option string)) "extra letter" (Some "dyninst")
    (Repository.closest repo "dyninstt");
  Alcotest.(check (option string)) "exact" (Some "libelf")
    (Repository.closest repo "libelf");
  Alcotest.(check (option string)) "too far" None
    (Repository.closest repo "zzzzzzzzzz")

let repo_layering () =
  let base =
    Repository.create ~name:"builtin"
      [ make_pkg "a" [ version "1.0" ]; make_pkg "b" [ version "1.0" ] ]
  in
  let site =
    Repository.create ~name:"site"
      [ make_pkg "b" [ version "9.9" ]; make_pkg "c" [ version "1.0" ] ]
  in
  let layered = Repository.layered [ site; base ] in
  Alcotest.(check int) "count after shadowing" 3 (Repository.count layered);
  (match Repository.find layered "b" with
  | Some b ->
      Alcotest.(check (list string)) "site b shadows" [ "9.9" ]
        (List.map Version.to_string (known_versions b));
      Alcotest.(check string) "provenance names site repo" "site:b" b.p_source
  | None -> Alcotest.fail "b expected");
  Alcotest.(check bool) "builtin a still visible" true
    (Repository.mem layered "a");
  Alcotest.check_raises "duplicate within one layer"
    (Invalid_argument "repository r: duplicate package x") (fun () ->
      ignore
        (Repository.create ~name:"r"
           [ make_pkg "x" [ version "1" ]; make_pkg "x" [ version "2" ] ]))

(* --- provider index (paper Fig. 5) --- *)

let fig5_repo () =
  Repository.create
    [
      make_pkg "mvapich2"
        [
          version "1.9"; version "2.0";
          provides "mpi@:2.2" ~when_:"@1.9";
          provides "mpi@:3.0" ~when_:"@2.0";
        ];
      make_pkg "mpich"
        [
          version "1.4"; version "3.0.4";
          provides "mpi@:3" ~when_:"@3:";
          provides "mpi@:1" ~when_:"@1:1.9";
        ];
      make_pkg "mpileaks" [ version "1.0"; depends_on "mpi" ];
      make_pkg "gerris" [ version "1.0"; depends_on "mpi@2:" ];
    ]

let provider_index () =
  let idx = Provider_index.build (fig5_repo ()) in
  Alcotest.(check bool) "mpi is virtual" true (Provider_index.is_virtual idx "mpi");
  Alcotest.(check bool) "mpich is not" false (Provider_index.is_virtual idx "mpich");
  Alcotest.(check (list string)) "virtual names" [ "mpi" ]
    (Provider_index.virtual_names idx);
  Alcotest.(check int) "four provide entries" 4
    (List.length (Provider_index.providers idx "mpi"));
  (* gerris' mpi@2: requirement excludes mpich's mpi@:1 entry *)
  let req = (Ospack_spec.Parser.parse_exn "mpi@2:").Ast.root in
  let sat = Provider_index.providers_satisfying idx req in
  Alcotest.(check int) "three entries satisfy mpi@2:" 3 (List.length sat);
  Alcotest.(check bool) "mpich@:1 entry excluded" true
    (List.for_all
       (fun e ->
         not
           (e.Provider_index.e_provider = "mpich"
           && Vlist.subset e.Provider_index.e_provided.Ast.versions
                (Vlist.of_string ":1")))
       sat)

let provider_index_rejects_ambiguity () =
  let repo =
    Repository.create
      [
        make_pkg "mpi" [ version "1.0" ];
        make_pkg "impl" [ version "1.0"; provides "mpi" ];
      ]
  in
  Alcotest.(check bool) "package and virtual with one name" true
    (try
       ignore (Provider_index.build repo);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "package"
    [
      ( "dsl",
        [
          Alcotest.test_case "Fig. 1 package" `Quick dsl_basics;
          Alcotest.test_case "eager directive errors" `Quick dsl_errors;
          Alcotest.test_case "preferred versions" `Quick preferred;
        ] );
      ( "specialization",
        [
          Alcotest.test_case "Fig. 4 @when dispatch" `Quick when_dispatch;
          Alcotest.test_case "declaration order wins" `Quick
            declaration_order_precedence;
          Alcotest.test_case "site override (§4.3.2)" `Quick override_mechanism;
        ] );
      ( "repository",
        [
          Alcotest.test_case "layering and shadowing" `Quick repo_layering;
          Alcotest.test_case "closest-name suggestions" `Quick closest_name;
        ] );
      ( "providers",
        [
          Alcotest.test_case "Fig. 5 versioned virtuals" `Quick provider_index;
          Alcotest.test_case "name collision rejected" `Quick
            provider_index_rejects_ambiguity;
        ] );
    ]
