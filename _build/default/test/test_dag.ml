(* DAG substrate: topological order, cycle detection, reachability,
   sub-DAG extraction, rendering. *)

open Ospack_dag

let diamond () =
  (* a -> b, a -> c, b -> d, c -> d *)
  let g =
    Dag.empty
    |> fun g -> Dag.add_edge g ~from:"a" ~to_:"b"
    |> fun g -> Dag.add_edge g ~from:"a" ~to_:"c"
    |> fun g -> Dag.add_edge g ~from:"b" ~to_:"d"
    |> fun g -> Dag.add_edge g ~from:"c" ~to_:"d"
  in
  g

let basic_ops () =
  let g = diamond () in
  Alcotest.(check int) "node count" 4 (Dag.node_count g);
  Alcotest.(check (list string)) "nodes sorted" [ "a"; "b"; "c"; "d" ] (Dag.nodes g);
  Alcotest.(check (list string)) "successors" [ "b"; "c" ] (Dag.successors g "a");
  Alcotest.(check (list string)) "predecessors" [ "b"; "c" ] (Dag.predecessors g "d");
  Alcotest.(check (list string)) "unknown node" [] (Dag.successors g "zzz");
  Alcotest.(check bool) "idempotent edges" true
    (Dag.equal g (Dag.add_edge g ~from:"a" ~to_:"b"))

let topo_order () =
  let g = diamond () in
  match Dag.topological_sort g with
  | Error _ -> Alcotest.fail "diamond is acyclic"
  | Ok order ->
      let pos x =
        let rec go i = function
          | [] -> -1
          | y :: rest -> if x = y then i else go (i + 1) rest
        in
        go 0 order
      in
      (* dependencies (successors) come first *)
      Alcotest.(check bool) "d before b" true (pos "d" < pos "b");
      Alcotest.(check bool) "d before c" true (pos "d" < pos "c");
      Alcotest.(check bool) "b before a" true (pos "b" < pos "a");
      Alcotest.(check int) "complete" 4 (List.length order)

let cycle_detection () =
  let g =
    Dag.empty
    |> fun g -> Dag.add_edge g ~from:"a" ~to_:"b"
    |> fun g -> Dag.add_edge g ~from:"b" ~to_:"c"
    |> fun g -> Dag.add_edge g ~from:"c" ~to_:"a"
  in
  (match Dag.topological_sort g with
  | Ok _ -> Alcotest.fail "expected a cycle"
  | Error cycle ->
      Alcotest.(check bool) "cycle has length >= 3" true (List.length cycle >= 3));
  let self = Dag.add_edge Dag.empty ~from:"x" ~to_:"x" in
  Alcotest.(check bool) "self loop is a cycle" true
    (Result.is_error (Dag.topological_sort self))

let reachability () =
  let g = Dag.add_node (diamond ()) "island" in
  Alcotest.(check (list string)) "reachable from a" [ "a"; "b"; "c"; "d" ]
    (Dag.reachable g "a");
  Alcotest.(check (list string)) "reachable from b" [ "b"; "d" ]
    (Dag.reachable g "b");
  Alcotest.(check (list string)) "unknown root" [] (Dag.reachable g "nope");
  let sub = Dag.subgraph g "b" in
  Alcotest.(check (list string)) "subgraph nodes" [ "b"; "d" ] (Dag.nodes sub);
  Alcotest.(check (list string)) "subgraph edges kept" [ "d" ] (Dag.successors sub "b")

let rendering () =
  let g = diamond () in
  let dot = Dag.to_dot g in
  Alcotest.(check bool) "dot has edge" true
    (Astring.String.is_infix ~affix:"\"a\" -> \"b\"" dot);
  let tree = Dag.to_tree ~root:"a" g in
  let lines = String.split_on_char '\n' tree |> List.filter (fun l -> l <> "") in
  (* root + b + d + c + d: shared nodes expand at each occurrence *)
  Alcotest.(check int) "tree line count" 5 (List.length lines);
  Alcotest.(check bool) "root unindented" true
    (String.length (List.hd lines) > 0 && (List.hd lines).[0] = 'a');
  (* cyclic graphs terminate with a marker *)
  let cyc =
    Dag.add_edge (Dag.add_edge Dag.empty ~from:"p" ~to_:"q") ~from:"q" ~to_:"p"
  in
  let t = Dag.to_tree ~root:"p" cyc in
  Alcotest.(check bool) "cycle marked" true
    (Astring.String.is_infix ~affix:"(cycle)" t)

(* random DAGs: edges only from lower to higher index, hence acyclic *)
let arb_dag =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 12 in
      let* edges =
        list_size (int_bound 20)
          (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      return (n, edges))
  in
  QCheck.make gen

let topo_respects_edges =
  QCheck.Test.make ~name:"topological order puts successors first" ~count:200
    arb_dag
    (fun (n, edges) ->
      let name i = "n" ^ string_of_int i in
      let g =
        List.fold_left
          (fun g (a, b) ->
            if a < b then Dag.add_edge g ~from:(name a) ~to_:(name b) else g)
          Dag.empty edges
      in
      let g = Dag.add_node g (name (n - 1)) in
      match Dag.topological_sort g with
      | Error _ -> false
      | Ok order ->
          let pos = Hashtbl.create 16 in
          List.iteri (fun i x -> Hashtbl.replace pos x i) order;
          List.for_all
            (fun node ->
              List.for_all
                (fun succ -> Hashtbl.find pos succ < Hashtbl.find pos node)
                (Dag.successors g node))
            (Dag.nodes g))

let () =
  Alcotest.run "dag"
    [
      ( "dag",
        [
          Alcotest.test_case "basic operations" `Quick basic_ops;
          Alcotest.test_case "topological sort" `Quick topo_order;
          Alcotest.test_case "cycle detection" `Quick cycle_detection;
          Alcotest.test_case "reachability and subgraph" `Quick reachability;
          Alcotest.test_case "dot and tree rendering" `Quick rendering;
          QCheck_alcotest.to_alcotest topo_respects_edges;
        ] );
    ]
