(* Layered configuration and site/user policies (paper §3.4.4, §4.3.1). *)

module Config = Ospack_config.Config
module Policy = Ospack_config.Policy
module Compilers = Ospack_config.Compilers
module Ast = Ospack_spec.Ast
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist

let parse_format () =
  let cfg =
    Config.parse_exn
      {|
# a comment
arch = bgq
compiler_order = icc, gcc@4.4.7   # trailing comment

[providers]
mpi = mvapich2, openmpi

[packages.python]
version = 2.7.9
variants = +shared~debug
|}
  in
  Alcotest.(check (option string)) "top key" (Some "bgq") (Config.get cfg "arch");
  Alcotest.(check (list string)) "list value" [ "icc"; "gcc@4.4.7" ]
    (Config.get_list cfg "compiler_order");
  Alcotest.(check (option string)) "sectioned key" (Some "mvapich2, openmpi")
    (Config.get cfg "providers.mpi");
  Alcotest.(check (option string)) "dotted section" (Some "2.7.9")
    (Config.get cfg "packages.python.version");
  Alcotest.(check (option string)) "missing" None (Config.get cfg "nope");
  Alcotest.(check (list string)) "missing list" [] (Config.get_list cfg "nope")

let parse_errors () =
  Alcotest.(check bool) "no equals" true
    (Result.is_error (Config.parse "justakey"));
  Alcotest.(check bool) "empty key" true (Result.is_error (Config.parse "= v"));
  Alcotest.(check bool) "unterminated section" true
    (Result.is_error (Config.parse "[sec"))

let layering () =
  let site = Config.of_assoc [ ("arch", "bgq"); ("x", "site") ] in
  let user = Config.of_assoc [ ("x", "user"); ("y", "only-user") ] in
  let cfg = Config.layer [ user; site ] in
  Alcotest.(check (option string)) "user wins" (Some "user") (Config.get cfg "x");
  Alcotest.(check (option string)) "site fills" (Some "bgq") (Config.get cfg "arch");
  Alcotest.(check (option string)) "user-only" (Some "only-user") (Config.get cfg "y")

(* --- compiler registry --- *)

let toolchains =
  Compilers.create
    [
      Compilers.toolchain "gcc" "4.4.7";
      Compilers.toolchain "gcc" "4.9.2";
      Compilers.toolchain "intel" "14.0.3" ~archs:[ "linux" ];
      Compilers.toolchain "xl" "12.1" ~archs:[ "bgq" ];
    ]

let registry () =
  Alcotest.(check int) "all" 4 (List.length (Compilers.all toolchains));
  Alcotest.(check int) "bgq sees gcc+xl" 3
    (List.length (Compilers.available toolchains ~arch:"bgq"));
  Alcotest.(check bool) "vendor drivers" true
    ((Compilers.toolchain "intel" "15.0").Compilers.tc_cc = "icc");
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore
         (Compilers.create
            [ Compilers.toolchain "gcc" "4.9.2"; Compilers.toolchain "gcc" "4.9.2" ]);
       false
     with Invalid_argument _ -> true);
  let req = { Ast.c_name = "gcc"; c_versions = Vlist.of_string "4.9" } in
  (match Compilers.satisfying toolchains ~arch:"linux" req with
  | [ tc ] ->
      Alcotest.(check string) "prefix-matched version" "4.9.2"
        (Version.to_string tc.Compilers.tc_version)
  | other -> Alcotest.failf "expected one gcc@4.9, got %d" (List.length other))

(* --- policies --- *)

let policy_arch () =
  Alcotest.(check string) "default arch fallback" "linux-x86_64"
    (Policy.default_arch Config.empty);
  Alcotest.(check string) "configured arch" "bgq"
    (Policy.default_arch (Config.of_assoc [ ("arch", "bgq") ]))

let policy_compiler_order () =
  (* §4.3.1: compiler_order = icc, gcc@4.4.7 prefers icc, then that exact
     gcc, then everything else *)
  let cfg = Config.of_assoc [ ("compiler_order", "intel, gcc@4.4.7") ] in
  let choose req arch = Policy.choose_toolchain cfg toolchains ~arch ~req () in
  (match choose None "linux" with
  | Some tc -> Alcotest.(check string) "intel first on linux" "intel" tc.Compilers.tc_name
  | None -> Alcotest.fail "toolchain expected");
  (match choose None "bgq" with
  | Some tc ->
      Alcotest.(check string) "listed gcc version on bgq" "gcc" tc.Compilers.tc_name;
      Alcotest.(check string) "exactly 4.4.7" "4.4.7"
        (Version.to_string tc.Compilers.tc_version)
  | None -> Alcotest.fail "toolchain expected");
  (* without an order, the vendor ranking prefers gcc, newest first *)
  (match Policy.choose_toolchain Config.empty toolchains ~arch:"linux" ~req:None () with
  | Some tc ->
      Alcotest.(check string) "gcc by default" "gcc" tc.Compilers.tc_name;
      Alcotest.(check string) "newest gcc" "4.9.2"
        (Version.to_string tc.Compilers.tc_version)
  | None -> Alcotest.fail "toolchain expected");
  (* requirements filter before ranking *)
  let req = Some { Ast.c_name = "xl"; c_versions = Vlist.any } in
  Alcotest.(check bool) "xl not on linux" true
    (Policy.choose_toolchain cfg toolchains ~arch:"linux" ~req () = None)

let policy_providers () =
  let cfg = Config.of_assoc [ ("providers.mpi", "mvapich2, openmpi") ] in
  Alcotest.(check int) "first" 0 (Policy.rank_provider cfg ~virtual_:"mpi" "mvapich2");
  Alcotest.(check int) "second" 1 (Policy.rank_provider cfg ~virtual_:"mpi" "openmpi");
  Alcotest.(check int) "unlisted" max_int
    (Policy.rank_provider cfg ~virtual_:"mpi" "mpich")

let policy_versions () =
  let vs = List.map Version.of_string [ "1.0"; "1.5"; "2.0"; "3.0" ] in
  let pick cfg constraint_ =
    Option.map Version.to_string
      (Policy.choose_version cfg ~package:"p" ~candidates:vs
         ~constraint_:(Vlist.of_string constraint_))
  in
  Alcotest.(check (option string)) "newest satisfying" (Some "3.0")
    (pick Config.empty ":");
  Alcotest.(check (option string)) "constraint caps" (Some "1.5")
    (pick Config.empty ":1.9");
  let cfg = Config.of_assoc [ ("packages.p.version", "1.5") ] in
  Alcotest.(check (option string)) "site preference wins" (Some "1.5")
    (pick cfg ":");
  Alcotest.(check (option string)) "preference yields under constraint"
    (Some "3.0")
    (pick cfg "2:");
  (* unknown exact version extrapolates (paper §3.2.3) *)
  Alcotest.(check (option string)) "extrapolated" (Some "9.9")
    (pick Config.empty "9.9");
  Alcotest.(check (option string)) "unsatisfiable range" None
    (pick Config.empty "8:8.5")

let policy_externals () =
  let cfg =
    Config.of_assoc
      [
        ("externals.mvapich2", "mvapich2@1.9%gcc | /opt/vendor/mv2");
        ("externals.broken", "no spec here"); (* no separator *)
        ("externals.wrongname", "othername@1.0 | /opt/x");
        ("externals.noprefix", "noprefix@1.0 |   ");
      ]
  in
  (match Policy.external_for cfg ~package:"mvapich2" with
  | Some (ast, prefix) ->
      Alcotest.(check string) "prefix" "/opt/vendor/mv2" prefix;
      Alcotest.(check string) "spec name" "mvapich2" ast.Ast.root.Ast.name
  | None -> Alcotest.fail "external expected");
  Alcotest.(check bool) "undeclared" true
    (Policy.external_for cfg ~package:"openmpi" = None);
  Alcotest.(check bool) "malformed ignored" true
    (Policy.external_for cfg ~package:"broken" = None);
  Alcotest.(check bool) "name mismatch ignored" true
    (Policy.external_for cfg ~package:"wrongname" = None);
  Alcotest.(check bool) "empty prefix ignored" true
    (Policy.external_for cfg ~package:"noprefix" = None)

let policy_variants () =
  let cfg = Config.of_assoc [ ("packages.p.variants", "+debug~shared") ] in
  Alcotest.(check (list (pair string bool))) "parsed settings"
    [ ("debug", true); ("shared", false) ]
    (Policy.variant_preference cfg ~package:"p");
  Alcotest.(check (list (pair string bool))) "absent" []
    (Policy.variant_preference Config.empty ~package:"p")

let () =
  Alcotest.run "config"
    [
      ( "config",
        [
          Alcotest.test_case "format" `Quick parse_format;
          Alcotest.test_case "errors" `Quick parse_errors;
          Alcotest.test_case "layering" `Quick layering;
        ] );
      ("compilers", [ Alcotest.test_case "registry" `Quick registry ]);
      ( "policy",
        [
          Alcotest.test_case "default arch" `Quick policy_arch;
          Alcotest.test_case "compiler order" `Quick policy_compiler_order;
          Alcotest.test_case "provider order" `Quick policy_providers;
          Alcotest.test_case "version choice" `Quick policy_versions;
          Alcotest.test_case "variant preferences" `Quick policy_variants;
          Alcotest.test_case "external declarations (§4.4)" `Quick
            policy_externals;
        ] );
    ]
