(* Environment-module generation (paper §3.5.4) and the Lmod hierarchy
   extension. *)

module Modulegen = Ospack_modulesgen.Modulegen
module Concrete = Ospack_spec.Concrete
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist

let cnode ?(deps = []) ?(provided = []) name version =
  {
    Concrete.name;
    version = Version.of_string version;
    compiler = ("gcc", Version.of_string "4.9.2");
    variants = Concrete.Smap.empty;
    arch = "linux-x86_64";
    deps;
    provided = List.map (fun (v, b) -> (v, Vlist.of_string b)) provided;
  }

let with_mpi =
  match
    Concrete.make ~root:"mpileaks"
      [
        cnode "mpileaks" "1.0" ~deps:[ "openmpi" ];
        cnode "openmpi" "1.8.2" ~provided:[ ("mpi", ":2.2") ];
      ]
  with
  | Ok c -> c
  | Error _ -> failwith "bad"

let serial =
  match Concrete.make ~root:"zlib" [ cnode "zlib" "1.2.8" ] with
  | Ok c -> c
  | Error _ -> failwith "bad"

let prefix = "/opt/x/mpileaks"

let contains hay needle = Astring.String.is_infix ~affix:needle hay

let env_entries () =
  let entries = Modulegen.env_entries with_mpi ~prefix in
  Alcotest.(check (option string)) "PATH" (Some (prefix ^ "/bin"))
    (List.assoc_opt "PATH" entries);
  Alcotest.(check (option string)) "LD_LIBRARY_PATH set even though RPATH'd"
    (Some (prefix ^ "/lib"))
    (List.assoc_opt "LD_LIBRARY_PATH" entries);
  Alcotest.(check (option string)) "MANPATH" (Some (prefix ^ "/share/man"))
    (List.assoc_opt "MANPATH" entries)

let dotkit () =
  let dk = Modulegen.dotkit with_mpi ~prefix in
  Alcotest.(check bool) "category line" true (contains dk "#c spack");
  Alcotest.(check bool) "description has name+compiler" true
    (contains dk "mpileaks@1.0 built with gcc@4.9.2");
  Alcotest.(check bool) "dk_alter PATH" true
    (contains dk ("dk_alter PATH " ^ prefix ^ "/bin"))

let tcl () =
  let m = Modulegen.tcl with_mpi ~prefix in
  Alcotest.(check bool) "module magic" true (contains m "#%Module1.0");
  Alcotest.(check bool) "help proc" true (contains m "ModulesHelp");
  Alcotest.(check bool) "prepend-path" true
    (contains m ("prepend-path LD_LIBRARY_PATH " ^ prefix ^ "/lib"))

let lmod_hierarchy () =
  Alcotest.(check string) "mpi-dependent placement"
    "gcc/4.9.2/openmpi/1.8.2/mpileaks/1.0.lua"
    (Modulegen.lmod_hierarchy_path with_mpi);
  Alcotest.(check string) "serial placement" "gcc/4.9.2/zlib/1.2.8.lua"
    (Modulegen.lmod_hierarchy_path serial);
  let m = Modulegen.lmod with_mpi ~prefix in
  Alcotest.(check bool) "lua whatis" true (contains m "whatis(\"Name : mpileaks\")");
  Alcotest.(check bool) "lua prepend_path" true
    (contains m "prepend_path(\"PATH\"")

let () =
  Alcotest.run "modules"
    [
      ( "modulegen",
        [
          Alcotest.test_case "env entries" `Quick env_entries;
          Alcotest.test_case "dotkit" `Quick dotkit;
          Alcotest.test_case "tcl" `Quick tcl;
          Alcotest.test_case "lmod hierarchy (future work §3.5.4)" `Quick
            lmod_hierarchy;
        ] );
    ]
