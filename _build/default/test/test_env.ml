(* Environments: manifests, lockfiles, merged views, drift immunity. *)

module Environment = Ospack.Environment
module Context = Ospack.Context
module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Vfs = Ospack_vfs.Vfs

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" e

let manifest_lifecycle () =
  let ctx = Context.create () in
  Alcotest.(check (list string)) "no envs yet" [] (Environment.list_envs ctx);
  let env = ok (Environment.create ctx ~name:"tools" ()) in
  Alcotest.(check (list string)) "listed" [ "tools" ] (Environment.list_envs ctx);
  Alcotest.(check bool) "duplicate name rejected" true
    (Result.is_error (Environment.create ctx ~name:"tools" ()));
  Alcotest.(check bool) "bad name rejected" true
    (Result.is_error (Environment.create ctx ~name:"to ols" ()));
  let env = ok (Environment.add ctx env "mpileaks ^mvapich2@1.9") in
  let env = ok (Environment.add ctx env "gsl") in
  Alcotest.(check bool) "duplicate root rejected" true
    (Result.is_error (Environment.add ctx env "gsl"));
  Alcotest.(check bool) "bad spec rejected" true
    (Result.is_error (Environment.add ctx env "a b"));
  (* persistence: reload sees the same manifest *)
  let reloaded = ok (Environment.load ctx ~name:"tools") in
  Alcotest.(check (list string)) "roots persisted"
    [ "mpileaks ^mvapich2@1.9"; "gsl" ]
    reloaded.Environment.env_roots;
  let env = ok (Environment.remove_root ctx env "gsl") in
  Alcotest.(check (list string)) "root removed"
    [ "mpileaks ^mvapich2@1.9" ]
    env.Environment.env_roots;
  Alcotest.(check bool) "unknown env load fails" true
    (Result.is_error (Environment.load ctx ~name:"nope"))

let install_and_lock () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"prod" ~view:"/opt/prod" ()) in
  let env = ok (Environment.add ctx env "mpileaks ^mvapich2@1.9") in
  let env = ok (Environment.add ctx env "mpileaks ^openmpi") in
  (match Environment.status ctx env with
  | [ (_, false); (_, false) ] -> ()
  | _ -> Alcotest.fail "nothing installed yet");
  let reports = ok (Environment.install ctx env) in
  Alcotest.(check int) "one report per root" 2 (List.length reports);
  (* cross-root sharing: the second root reuses the dyninst chain *)
  (match reports with
  | [ _; second ] ->
      let reused =
        List.filter
          (fun o -> o.Installer.o_reused)
          second.Ospack.Commands.ir_outcomes
      in
      Alcotest.(check bool) "sub-DAG shared across roots" true
        (List.length reused >= 3)
  | _ -> Alcotest.fail "two reports");
  (match Environment.status ctx env with
  | [ (_, true); (_, true) ] -> ()
  | _ -> Alcotest.fail "both roots installed");
  (* the merged view exists and is usable *)
  Alcotest.(check bool) "view materialized" true
    (Vfs.is_dir ctx.Context.vfs "/opt/prod/bin");
  (* lockfile holds the exact concrete DAGs *)
  let locked = ok (Environment.locked_specs ctx env) in
  Alcotest.(check int) "two locked specs" 2 (List.length locked);
  List.iter2
    (fun locked_spec report ->
      Alcotest.(check string) "lock matches install"
        (Concrete.root_hash report.Ospack.Commands.ir_spec)
        (Concrete.root_hash locked_spec))
    locked reports

let locked_replay_survives_drift () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"locked" ()) in
  let env = ok (Environment.add ctx env "libdwarf") in
  let reports = ok (Environment.install ctx env) in
  let original_hash =
    Concrete.root_hash (List.hd reports).Ospack.Commands.ir_spec
  in
  (* wipe the store, keeping the filesystem (and hence the lockfile) *)
  ignore (ok (Ospack.uninstall ctx "libdwarf"));
  ignore (ok (Ospack.gc ctx));
  Alcotest.(check int) "store drained" 0
    (Database.count (Installer.database ctx.Context.installer));
  (* replay the lockfile: same configuration, no re-concretization *)
  let outcomes = ok (Environment.install_locked ctx env) in
  (match outcomes with
  | [ run ] ->
      let root = List.nth run (List.length run - 1) in
      Alcotest.(check string) "locked hash reproduced" original_hash
        root.Installer.o_record.Database.r_hash
  | _ -> Alcotest.fail "one locked run");
  (* an environment without a lockfile refuses locked replay *)
  let bare = ok (Environment.create ctx ~name:"bare" ()) in
  Alcotest.(check bool) "no lockfile -> error" true
    (Result.is_error (Environment.install_locked ctx bare))

let () =
  Alcotest.run "env"
    [
      ( "environment",
        [
          Alcotest.test_case "manifest lifecycle" `Quick manifest_lifecycle;
          Alcotest.test_case "install, lock, merged view" `Quick
            install_and_lock;
          Alcotest.test_case "locked replay survives drift" `Quick
            locked_replay_survives_drift;
        ] );
    ]
