test/test_buildsim.ml: Alcotest Astring List Ospack_buildsim Ospack_config Ospack_package Ospack_spec Ospack_version Ospack_vfs Printf QCheck QCheck_alcotest Result
