test/test_hash.ml: Alcotest Char Digest Gen Hex List Md5 Ospack_hash Printf QCheck QCheck_alcotest Sha256 String
