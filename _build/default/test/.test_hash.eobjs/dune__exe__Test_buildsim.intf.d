test/test_buildsim.mli:
