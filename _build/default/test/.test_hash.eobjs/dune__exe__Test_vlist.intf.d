test/test_vlist.mli:
