test/test_vfs.ml: Alcotest Hashtbl List Ospack_vfs QCheck QCheck_alcotest Result String Vfs Vpath
