test/test_json.ml: Alcotest Hashtbl Lazy List Option Ospack_concretize Ospack_json Ospack_package Ospack_repo Ospack_spec QCheck QCheck_alcotest Result
