test/test_package.mli:
