test/test_vlist.ml: Alcotest Option Ospack_version Printf QCheck QCheck_alcotest String Version Vlist
