test/test_package.ml: Alcotest List Ospack_package Ospack_spec Ospack_version String
