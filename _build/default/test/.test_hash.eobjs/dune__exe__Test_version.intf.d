test/test_version.mli:
