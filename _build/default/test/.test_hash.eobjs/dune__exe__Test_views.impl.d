test/test_views.ml: Alcotest Astring List Ospack_config Ospack_spec Ospack_version Ospack_vfs Ospack_views Result
