test/test_version.ml: Alcotest List Option Ospack_version Printf QCheck QCheck_alcotest String Version
