test/test_core.ml: Alcotest Astring List Ospack Ospack_buildsim Ospack_config Ospack_package Ospack_repo Ospack_spec Ospack_store Ospack_version Ospack_vfs Ospack_views Result String
