test/test_config.ml: Alcotest List Option Ospack_config Ospack_spec Ospack_version Result
