test/test_dag.ml: Alcotest Astring Dag Hashtbl List Ospack_dag QCheck QCheck_alcotest Result String
