test/test_env.ml: Alcotest List Ospack Ospack_spec Ospack_store Ospack_vfs Result
