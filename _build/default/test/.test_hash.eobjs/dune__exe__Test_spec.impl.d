test/test_spec.ml: Alcotest Astring Bool List Option Ospack_package Ospack_repo Ospack_spec Ospack_version QCheck QCheck_alcotest Result String
