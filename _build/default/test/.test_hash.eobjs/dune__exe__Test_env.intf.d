test/test_env.mli:
