test/test_modules.ml: Alcotest Astring List Ospack_modulesgen Ospack_spec Ospack_version
