test/test_layout.ml: Alcotest Astring List Ospack_concretize Ospack_layout Ospack_repo Ospack_spec Ospack_version Printf String
