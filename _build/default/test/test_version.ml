(* Version semantics (paper §3.2.3): parsing, the total order, and the
   prefix-based satisfies relation. *)

open Ospack_version

let v = Version.of_string

let parse_cases () =
  let comps s = Version.components (v s) in
  Alcotest.(check bool) "1.2.3" true (comps "1.2.3" = Version.[ Num 1; Num 2; Num 3 ]);
  Alcotest.(check bool) "separators normalize" true
    (Version.equal (v "1.2-rc1") (v "1.2.rc.1"));
  Alcotest.(check bool) "alpha split" true
    (comps "1.2rc1" = Version.[ Num 1; Num 2; Alpha "rc"; Num 1 ]);
  Alcotest.(check string) "canonical form" "1.2.rc.1" (Version.to_string (v "1.2rc1"));
  Alcotest.(check bool) "date version" true
    (comps "20130729" = Version.[ Num 20130729 ])

let parse_errors () =
  Alcotest.(check (option unit)) "empty" None
    (Option.map ignore (Version.of_string_opt ""));
  Alcotest.(check (option unit)) "only dots" None
    (Option.map ignore (Version.of_string_opt "..."));
  Alcotest.(check (option unit)) "bad char" None
    (Option.map ignore (Version.of_string_opt "1.2!"));
  Alcotest.check_raises "of_string raises"
    (Invalid_argument "Version.of_string: \"\"") (fun () ->
      ignore (Version.of_string ""))

let order_cases () =
  let lt a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s < %s" a b)
      true
      (Version.compare (v a) (v b) < 0)
  in
  lt "1" "2";
  lt "1.0" "1.1";
  lt "1.9" "1.10";
  (* prefix is older *)
  lt "1.2" "1.2.1";
  lt "1.2" "1.2.0";
  (* numeric newer than alphabetic at the same position *)
  lt "1.2.alpha" "1.2.1";
  lt "1.2.a" "1.2.b";
  lt "2.5.6" "2.6"

let prefix_cases () =
  let is_pfx a b = Version.is_prefix (v a) (v b) in
  Alcotest.(check bool) "1.2 prefix of 1.2.3" true (is_pfx "1.2" "1.2.3");
  Alcotest.(check bool) "1.2 prefix of itself" true (is_pfx "1.2" "1.2");
  Alcotest.(check bool) "1.2 not prefix of 1.20" false (is_pfx "1.2" "1.20");
  Alcotest.(check bool) "1.2.3 not prefix of 1.2" false (is_pfx "1.2.3" "1.2")

let up_to_cases () =
  Alcotest.(check string) "major.minor" "1.2" (Version.to_string (Version.up_to 2 (v "1.2.3")));
  Alcotest.(check string) "keeps at least one" "1" (Version.to_string (Version.up_to 0 (v "1.2")));
  Alcotest.(check string) "longer than version" "1.2" (Version.to_string (Version.up_to 5 (v "1.2")))

(* generator for plausible version strings *)
let version_gen =
  QCheck.Gen.(
    let component = map string_of_int (int_bound 30) in
    let alpha = oneofl [ "a"; "b"; "rc"; "alpha"; "beta" ] in
    let part = oneof [ component; alpha ] in
    map (String.concat ".") (list_size (int_range 1 5) part))

let arb_version = QCheck.make ~print:(fun s -> s) version_gen

let total_order_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300
    (QCheck.pair arb_version arb_version)
    (fun (a, b) ->
      let x = v a and y = v b in
      Version.compare x y = -Version.compare y x)

let total_order_trans =
  QCheck.Test.make ~name:"compare transitive" ~count:300
    (QCheck.triple arb_version arb_version arb_version)
    (fun (a, b, c) ->
      let sorted =
        List.sort Version.compare [ v a; v b; v c ]
      in
      match sorted with
      | [ x; y; z ] ->
          Version.compare x y <= 0 && Version.compare y z <= 0
          && Version.compare x z <= 0
      | _ -> false)

let roundtrip =
  QCheck.Test.make ~name:"to_string/of_string round-trip" ~count:300
    arb_version
    (fun a ->
      let x = v a in
      Version.equal x (v (Version.to_string x)))

let prefix_implies_lte =
  QCheck.Test.make ~name:"strict prefix is older" ~count:300
    (QCheck.pair arb_version arb_version)
    (fun (a, b) ->
      let x = v a and y = v (a ^ "." ^ b) in
      Version.is_prefix x y && Version.compare x y <= 0)

let () =
  Alcotest.run "version"
    [
      ( "parse",
        [
          Alcotest.test_case "components" `Quick parse_cases;
          Alcotest.test_case "errors" `Quick parse_errors;
        ] );
      ( "order",
        [
          Alcotest.test_case "hand-picked order" `Quick order_cases;
          Alcotest.test_case "prefix relation" `Quick prefix_cases;
          Alcotest.test_case "up_to" `Quick up_to_cases;
          QCheck_alcotest.to_alcotest total_order_antisym;
          QCheck_alcotest.to_alcotest total_order_trans;
          QCheck_alcotest.to_alcotest roundtrip;
          QCheck_alcotest.to_alcotest prefix_implies_lte;
        ] );
    ]
