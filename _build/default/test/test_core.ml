(* End-to-end tests of the facade: the spack-command workflows of the
   paper's use cases (§4), over the built-in universe. *)

module Context = Ospack.Context
module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Vfs = Ospack_vfs.Vfs
module Loader = Ospack_buildsim.Loader
module Env = Ospack_buildsim.Env

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" e

let install_find_uninstall () =
  let ctx = Context.create () in
  let report = ok (Ospack.install ctx "mpileaks ^mvapich2@1.9") in
  Alcotest.(check int) "whole stack installed"
    (Concrete.node_count report.Ospack.ir_spec)
    (List.length report.Ospack.ir_outcomes);
  (* find with abstract queries *)
  Alcotest.(check int) "find all" 7 (List.length (ok (Ospack.find ctx ())));
  Alcotest.(check int) "find by virtual" 1
    (List.length (ok (Ospack.find ctx ~query:"mpileaks ^mpi@2:" ())));
  Alcotest.(check int) "find misses" 0
    (List.length (ok (Ospack.find ctx ~query:"mpileaks %intel" ())));
  (* uninstalling a dependency is refused while the root needs it *)
  (match Ospack.uninstall ctx "libelf" with
  | Ok _ -> Alcotest.fail "must refuse"
  | Error msg ->
      Alcotest.(check bool) "says who needs it" true
        (Astring.String.is_infix ~affix:"needed by" msg));
  (* the root can go *)
  let removed = ok (Ospack.uninstall ctx "mpileaks") in
  Alcotest.(check string) "removed the root" "mpileaks"
    (Concrete.root removed.Database.r_spec);
  Alcotest.(check int) "six remain" 6 (List.length (ok (Ospack.find ctx ())))

let spec_reuse_check () =
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "mpileaks ^mvapich2"));
  (* §4.1: a second configuration coexists; shared sub-DAGs are reused *)
  let second = ok (Ospack.install ctx "mpileaks ^openmpi") in
  let reused =
    List.filter (fun o -> o.Installer.o_reused) second.Ospack.ir_outcomes
  in
  Alcotest.(check bool) "sub-DAG reuse across MPIs (Fig. 9)" true
    (List.length reused >= 3);
  let all = ok (Ospack.find ctx ()) in
  let mpileaks_installs =
    List.filter (fun r -> Concrete.root r.Database.r_spec = "mpileaks") all
  in
  Alcotest.(check int) "two coexisting mpileaks" 2
    (List.length mpileaks_installs)

let info_and_lists () =
  let ctx = Context.create () in
  let text = ok (Ospack.info ctx "mpileaks") in
  Alcotest.(check bool) "description shown" true
    (Astring.String.is_infix ~affix:"leaked MPI" text);
  Alcotest.(check bool) "deps shown" true
    (Astring.String.is_infix ~affix:"callpath" text);
  Alcotest.(check bool) "unknown package" true
    (Result.is_error (Ospack.info ctx "zzz"));
  Alcotest.(check int) "list filter" 1
    (List.length (Ospack.list_packages ctx ~substring:"mpileaks" ()));
  Alcotest.(check bool) "compilers render" true
    (List.exists
       (fun l -> Astring.String.is_infix ~affix:"xl@12.1" l)
       (Ospack.compiler_list ctx));
  let tree = ok (Ospack.graph_tree ctx "dyninst") in
  Alcotest.(check bool) "tree shows deps" true
    (Astring.String.is_infix ~affix:"libdwarf" tree);
  let dot = ok (Ospack.graph_dot ctx "dyninst") in
  Alcotest.(check bool) "dot output" true
    (Astring.String.is_infix ~affix:"digraph" dot)

let providers_cmd () =
  let ctx = Context.create () in
  let entries = ok (Ospack.providers ctx "mpi@2:") in
  Alcotest.(check bool) "several providers" true (List.length entries >= 3);
  Alcotest.(check bool) "not a virtual" true
    (Result.is_error (Ospack.providers ctx "libelf"))

let modules_and_views () =
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "libdwarf"));
  let paths = ok (Ospack.generate_modules ctx `Tcl) in
  Alcotest.(check int) "one module per install" 2 (List.length paths);
  List.iter
    (fun p ->
      match Vfs.read_file ctx.Context.vfs p with
      | Ok content ->
          Alcotest.(check bool) "tcl magic" true
            (Astring.String.is_infix ~affix:"#%Module1.0" content)
      | Error _ -> Alcotest.failf "module file %s missing" p)
    paths;
  ignore (ok (Ospack.generate_modules ctx `Lmod));
  let reports = ok (Ospack.view ctx ~rules:[ "/opt/v/${PACKAGE}-${VERSION}" ]) in
  Alcotest.(check int) "two links" 2 (List.length reports);
  Alcotest.(check bool) "link resolves into the store" true
    (Vfs.is_dir ctx.Context.vfs "/opt/v/libdwarf-20130729")

let python_extensions () =
  (* the §4.2 workflow end to end: install python + two extensions,
     activate, check merged visibility, deactivate *)
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "py-numpy"));
  ignore (ok (Ospack.install ctx "py-six"));
  let linked = ok (Ospack.activate ctx "py-numpy") in
  Alcotest.(check bool) "numpy files linked" true (List.length linked >= 2);
  ignore (ok (Ospack.activate ctx "py-six"));
  let python =
    match ok (Ospack.find ctx ~query:"python" ()) with
    | [ r ] -> r.Database.r_prefix
    | rs -> Alcotest.failf "expected one python, got %d" (List.length rs)
  in
  let pth = python ^ "/" ^ Ospack_repo.Pkgs_python.pth_file in
  (match Vfs.read_file ctx.Context.vfs pth with
  | Ok content ->
      Alcotest.(check bool) "merged pth lists both" true
        (Astring.String.is_infix ~affix:"numpy" content
        && Astring.String.is_infix ~affix:"six" content)
  | Error _ -> Alcotest.fail "pth missing after activation");
  Alcotest.(check bool) "double-activate refused" true
    (Result.is_error (Ospack.activate ctx "py-numpy"));
  ignore (ok (Ospack.deactivate ctx "py-numpy"));
  (match Vfs.read_file ctx.Context.vfs pth with
  | Ok content ->
      Alcotest.(check bool) "numpy lines removed" false
        (Astring.String.is_infix ~affix:"numpy/" content)
  | Error _ -> Alcotest.fail "pth should remain for py-six");
  Alcotest.(check bool) "non-extension refused" true
    (Result.is_error (Ospack.activate ctx "python"))

let reproduce_from_provenance () =
  let ctx = Context.create () in
  let first = ok (Ospack.install ctx "dyninst@8.1.2") in
  let prefix =
    (List.nth first.Ospack.ir_outcomes
       (List.length first.Ospack.ir_outcomes - 1))
      .Installer.o_record.Database.r_prefix
  in
  (* §3.4.3: rebuild from the stored spec — identical hash even though it
     re-runs the whole pipeline *)
  let again = ok (Ospack.reproduce ctx ~prefix) in
  Alcotest.(check string) "identical configuration"
    (Concrete.root_hash first.Ospack.ir_spec)
    (Concrete.root_hash again.Ospack.ir_spec);
  Alcotest.(check bool) "fully reused" true
    (List.for_all (fun o -> o.Installer.o_reused) again.Ospack.ir_outcomes)

let rpath_end_to_end () =
  (* claim 2 of the paper on a full installed stack *)
  let ctx = Context.create () in
  let report = ok (Ospack.install ctx "callpath") in
  let root_prefix =
    (List.nth report.Ospack.ir_outcomes
       (List.length report.Ospack.ir_outcomes - 1))
      .Installer.o_record.Database.r_prefix
  in
  Alcotest.(check bool) "installed binary runs with empty environment" true
    (Loader.can_run ctx.Context.vfs
       ~path:(root_prefix ^ "/bin/callpath")
       ~env:Env.empty)

let site_repository () =
  (* §4.3.2: a site layer shadows a built-in package *)
  let base = Context.create () in
  let site_pkg =
    Ospack_package.Package.(
      make_pkg "libelf" [ version "9.9"; ])
  in
  let ctx = Context.with_site_packages base [ site_pkg ] in
  let c = ok (Ospack.spec ctx "libelf") in
  Alcotest.(check string) "site version wins" "9.9"
    (Ospack_version.Version.to_string
       (Concrete.root_node c).Concrete.version);
  (* the rest of the universe is still visible *)
  ignore (ok (Ospack.spec ctx "mpileaks"))

let backtrack_flag () =
  let ctx = Context.create () in
  (* an empty provider preference makes greedy pick bgq-mpi (alphabetical),
     which conflicts on linux; --backtrack recovers *)
  let bare =
    Context.create ~config:(Ospack_config.Config.of_assoc [])
      ()
  in
  (match Ospack.install bare "gerris" with
  | Ok _ -> () (* if greedy succeeded, fine — provider order may save it *)
  | Error _ ->
      ignore (ok (Ospack.install ~backtrack:true bare "gerris")));
  (* with the default site config greedy just works *)
  ignore (ok (Ospack.install ctx "gerris"))

let hash_queries () =
  let ctx = Context.create () in
  let report = ok (Ospack.install ctx "mpileaks ^mvapich2") in
  let root_hash = Concrete.root_hash report.Ospack.ir_spec in
  let short = String.sub root_hash 0 4 in
  (* name/hashprefix *)
  (match ok (Ospack.find ctx ~query:("mpileaks/" ^ short) ()) with
  | [ r ] -> Alcotest.(check string) "right record" root_hash r.Database.r_hash
  | rs -> Alcotest.failf "expected 1, got %d" (List.length rs));
  (* bare /hashprefix *)
  (match ok (Ospack.find ctx ~query:("/" ^ short) ()) with
  | [ r ] -> Alcotest.(check string) "bare hash" root_hash r.Database.r_hash
  | rs -> Alcotest.failf "expected 1, got %d" (List.length rs));
  Alcotest.(check int) "no match" 0
    (List.length (ok (Ospack.find ctx ~query:"/zzzzzzzz" ())));
  Alcotest.(check bool) "empty hash rejected" true
    (Result.is_error (Ospack.find ctx ~query:"mpileaks/" ()));
  (* uninstall by hash works through the same query path *)
  let removed = ok (Ospack.uninstall ctx ("/" ^ short)) in
  Alcotest.(check string) "uninstalled by hash" root_hash
    removed.Database.r_hash

let merged_view () =
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "libdwarf"));
  ignore (ok (Ospack.install ctx "libdwarf@20130207"));
  let report = ok (Ospack.view_merge ctx ~view_root:"/opt/merged") in
  Alcotest.(check bool) "files linked" true
    (report.Ospack_views.View.mr_linked > 0);
  (* both installs ship bin/libdwarf etc. — collisions are resolved and
     reported, newer version wins *)
  Alcotest.(check bool) "conflicts reported" true
    (report.Ospack_views.View.mr_conflicts <> []);
  (match Vfs.resolve ctx.Context.vfs "/opt/merged/bin/libdwarf" with
  | Ok path ->
      Alcotest.(check bool) "newer version owns the merged path" true
        (Astring.String.is_infix ~affix:"20130729" path)
  | Error _ -> Alcotest.fail "merged bin missing");
  Alcotest.(check bool) "merged lib present" true
    (Vfs.exists ctx.Context.vfs "/opt/merged/lib/liblibdwarf.so"
    || Vfs.exists ctx.Context.vfs "/opt/merged/lib/libdwarf.so")

let external_workflow () =
  (* §4.4 via the facade: vendor MPI declared in site config *)
  let config =
    Ospack_config.Config.layer
      [
        Ospack_config.Config.of_assoc
          [
            ( "externals.mvapich2",
              "mvapich2@2.0 | /opt/vendor/mvapich2-2.0" );
          ];
        Ospack_repo.Universe.default_config;
      ]
  in
  let ctx = Context.create ~config () in
  let report = ok (Ospack.install ctx "mpileaks") in
  let mpi =
    List.find
      (fun o ->
        Concrete.root o.Installer.o_record.Database.r_spec = "mvapich2")
      report.Ospack.ir_outcomes
  in
  Alcotest.(check bool) "vendor mpi used" true
    mpi.Installer.o_record.Database.r_external;
  Alcotest.(check string) "vendor prefix" "/opt/vendor/mvapich2-2.0"
    mpi.Installer.o_record.Database.r_prefix

let garbage_collect () =
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "mpileaks ^mvapich2"));
  ignore (ok (Ospack.install ctx "libdwarf"));
  let before = List.length (ok (Ospack.find ctx ())) in
  (* uninstall the mpileaks root: its whole dependency chain becomes
     garbage except what libdwarf still needs *)
  ignore (ok (Ospack.uninstall ctx "mpileaks"));
  let removed = ok (Ospack.gc ctx) in
  Alcotest.(check bool) "something collected" true (List.length removed >= 3);
  let remaining = ok (Ospack.find ctx ()) in
  (* libdwarf (explicit) and its libelf dependency survive *)
  Alcotest.(check bool) "explicit root kept" true
    (List.exists
       (fun r -> Concrete.root r.Database.r_spec = "libdwarf")
       remaining);
  Alcotest.(check bool) "needed dep kept" true
    (List.exists
       (fun r -> Concrete.root r.Database.r_spec = "libelf")
       remaining);
  Alcotest.(check bool) "garbage gone" true
    (not
       (List.exists
          (fun r -> Concrete.root r.Database.r_spec = "mvapich2")
          remaining));
  Alcotest.(check bool) "store shrank" true
    (List.length remaining < before);
  (* gc again: nothing left to collect *)
  Alcotest.(check int) "idempotent" 0 (List.length (ok (Ospack.gc ctx)))

let buildcache_workflow () =
  (* push to a cache, wipe the store, reinstall from cache *)
  let ctx = Context.create ~cache_root:"/ospack/buildcache" () in
  ignore (ok (Ospack.install ctx "libdwarf"));
  Alcotest.(check int) "entries pushed" 2 (ok (Ospack.buildcache_push ctx));
  ignore (ok (Ospack.uninstall ctx "libdwarf"));
  ignore (ok (Ospack.gc ctx));
  Alcotest.(check int) "store empty" 0 (List.length (ok (Ospack.find ctx ())));
  let report = ok (Ospack.install ctx "libdwarf") in
  Alcotest.(check bool) "reinstall came from cache" true
    (List.for_all
       (fun o -> o.Installer.o_cached)
       report.Ospack.Commands.ir_outcomes);
  (* a context without a cache refuses the push *)
  let plain = Context.create () in
  Alcotest.(check bool) "push without cache errors" true
    (Result.is_error (Ospack.buildcache_push plain))

let spec_diff () =
  let ctx = Context.create () in
  Alcotest.(check (result (list string) string)) "identical specs" (Ok [])
    (Ospack.diff ctx "mpileaks" "mpileaks");
  let lines = ok (Ospack.diff ctx "mpileaks ^mvapich2@1.9" "mpileaks ^openmpi") in
  Alcotest.(check bool) "provider difference reported" true
    (List.exists
       (fun l -> Astring.String.is_infix ~affix:"only in" l)
       lines);
  let lines = ok (Ospack.diff ctx "mpileaks" "mpileaks %intel") in
  Alcotest.(check bool) "compiler difference reported" true
    (List.exists
       (fun l -> Astring.String.is_infix ~affix:"compiler" l)
       lines);
  let lines = ok (Ospack.diff ctx "mpileaks +debug" "mpileaks ~debug") in
  Alcotest.(check bool) "variant difference reported" true
    (List.exists
       (fun l -> Astring.String.is_infix ~affix:"variant" l)
       lines);
  Alcotest.(check bool) "unknown package still errors" true
    (Result.is_error (Ospack.diff ctx "mpileaks" "zzznope"))

let extensions_listing () =
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "py-numpy"));
  ignore (ok (Ospack.install ctx "py-six"));
  let exts = ok (Ospack.extensions_of ctx "python") in
  let names =
    List.map (fun (r, _) -> Concrete.root r.Database.r_spec) exts
    |> List.sort compare
  in
  Alcotest.(check (list string)) "extensions listed"
    [ "py-numpy"; "py-setuptools"; "py-six" ]
    names;
  Alcotest.(check bool) "none active yet" true
    (List.for_all (fun (_, active) -> not active) exts);
  ignore (ok (Ospack.activate ctx "py-numpy"));
  let exts = ok (Ospack.extensions_of ctx "python") in
  List.iter
    (fun (r, active) ->
      let name = Concrete.root r.Database.r_spec in
      Alcotest.(check bool) (name ^ " activation state")
        (name = "py-numpy") active)
    exts;
  Alcotest.(check bool) "non-installed extendee errors" true
    (Result.is_error (Ospack.extensions_of ctx "libelf@9.9"))

let install_reuses_satisfying () =
  (* §3.2.3: "Spack will use the previously-built installation instead of
     building a new one" *)
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "libelf@0.8.12"));
  (* an open range is satisfied by the 0.8.12 install, even though fresh
     concretization would pick 0.8.13 *)
  let report = ok (Ospack.install ctx "libelf@0.8:") in
  Alcotest.(check string) "older satisfying install reused" "0.8.12"
    (Ospack_version.Version.to_string
       (Concrete.root_node report.Ospack.Commands.ir_spec).Concrete.version);
  Alcotest.(check bool) "nothing rebuilt" true
    (List.for_all
       (fun o -> o.Installer.o_reused)
       report.Ospack.Commands.ir_outcomes);
  (* ~fresh forces a new concretization: 0.8.13 appears alongside *)
  let report = ok (Ospack.install ~fresh:true ctx "libelf@0.8:") in
  Alcotest.(check string) "fresh concretization picks newest" "0.8.13"
    (Ospack_version.Version.to_string
       (Concrete.root_node report.Ospack.Commands.ir_spec).Concrete.version);
  Alcotest.(check int) "both coexist" 2
    (List.length (ok (Ospack.find ctx ~query:"libelf" ())));
  (* with both installed, an ambiguous request reuses the newest *)
  let report = ok (Ospack.install ctx "libelf") in
  Alcotest.(check string) "newest satisfying wins" "0.8.13"
    (Ospack_version.Version.to_string
       (Concrete.root_node report.Ospack.Commands.ir_spec).Concrete.version)

let r_extensions () =
  (* §4.2's closing remark: the extension model works for R/Ruby/Lua too *)
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "r-ggplot2"));
  ignore (ok (Ospack.install ctx "r-matrix"));
  ignore (ok (Ospack.activate ctx "r-ggplot2"));
  ignore (ok (Ospack.activate ctx "r-matrix"));
  let r_prefix =
    match ok (Ospack.find ctx ~query:"r" ()) with
    | [ rec_ ] -> rec_.Database.r_prefix
    | rs -> Alcotest.failf "expected one r, got %d" (List.length rs)
  in
  Alcotest.(check bool) "ggplot2 visible inside R" true
    (Vfs.is_file ctx.Context.vfs
       (r_prefix ^ "/" ^ Ospack_repo.Pkgs_lang.r_site_library
      ^ "/ggplot2/index"));
  let exts = ok (Ospack.extensions_of ctx "r") in
  Alcotest.(check int) "two active extensions" 2
    (List.length (List.filter snd exts));
  ignore (ok (Ospack.deactivate ctx "r-ggplot2"));
  Alcotest.(check bool) "deactivation removes it" false
    (Vfs.exists ctx.Context.vfs
       (r_prefix ^ "/" ^ Ospack_repo.Pkgs_lang.r_site_library
      ^ "/ggplot2/index"))

let verify_integrity () =
  (* spack verify: manifests detect tampering in installed prefixes *)
  let ctx = Context.create () in
  ignore (ok (Ospack.install ctx "libdwarf"));
  let reports = ok (Ospack.verify ctx ()) in
  Alcotest.(check int) "one report per install" 2 (List.length reports);
  Alcotest.(check bool) "freshly installed trees are clean" true
    (List.for_all
       (fun (_, r) -> Ospack_store.Provenance.report_clean r)
       reports);
  (* tamper: modify one file, delete another, add a stray one *)
  let prefix =
    (List.hd (ok (Ospack.find ctx ~query:"libdwarf" ()))).Database.r_prefix
  in
  ignore (Vfs.write_file ctx.Context.vfs (prefix ^ "/include/libdwarf.h") "HACKED");
  ignore (Vfs.remove ctx.Context.vfs (prefix ^ "/bin/libdwarf"));
  ignore (Vfs.write_file ctx.Context.vfs (prefix ^ "/bin/stray") "x");
  let reports = ok (Ospack.verify ctx ~query:"libdwarf" ()) in
  (match reports with
  | [ (_, r) ] ->
      Alcotest.(check (list string)) "modified detected"
        [ "include/libdwarf.h" ]
        r.Ospack_store.Provenance.vr_modified;
      Alcotest.(check (list string)) "missing detected" [ "bin/libdwarf" ]
        r.Ospack_store.Provenance.vr_missing;
      Alcotest.(check (list string)) "extra detected" [ "bin/stray" ]
        r.Ospack_store.Provenance.vr_extra
  | _ -> Alcotest.fail "one report expected");
  (* the untouched dependency is still clean *)
  let reports = ok (Ospack.verify ctx ~query:"libelf" ()) in
  Alcotest.(check bool) "dependency clean" true
    (List.for_all
       (fun (_, r) -> Ospack_store.Provenance.report_clean r)
       reports)

let () =
  Alcotest.run "core"
    [
      ( "workflows",
        [
          Alcotest.test_case "install/find/uninstall" `Quick
            install_find_uninstall;
          Alcotest.test_case "coexisting configurations (§4.1)" `Quick
            spec_reuse_check;
          Alcotest.test_case "info/list/graph/compilers" `Quick info_and_lists;
          Alcotest.test_case "providers" `Quick providers_cmd;
          Alcotest.test_case "modules and views" `Quick modules_and_views;
          Alcotest.test_case "python extensions (§4.2)" `Quick python_extensions;
          Alcotest.test_case "reproduce from provenance (§3.4.3)" `Quick
            reproduce_from_provenance;
          Alcotest.test_case "RPATH end-to-end (claim 2)" `Quick
            rpath_end_to_end;
          Alcotest.test_case "site repository (§4.3.2)" `Quick site_repository;
          Alcotest.test_case "backtracking flag" `Quick backtrack_flag;
          Alcotest.test_case "hash-prefix queries" `Quick hash_queries;
          Alcotest.test_case "merged file-level view" `Quick merged_view;
          Alcotest.test_case "external vendor MPI (§4.4)" `Quick
            external_workflow;
          Alcotest.test_case "garbage collection" `Quick garbage_collect;
          Alcotest.test_case "binary cache workflow" `Quick
            buildcache_workflow;
          Alcotest.test_case "spec diff" `Quick spec_diff;
          Alcotest.test_case "extensions listing (§4.2)" `Quick
            extensions_listing;
          Alcotest.test_case "install reuses satisfying installs (§3.2.3)"
            `Quick install_reuses_satisfying;
          Alcotest.test_case "R extensions (§4.2 closing remark)" `Quick
            r_extensions;
          Alcotest.test_case "verify: manifest integrity" `Quick
            verify_integrity;
        ] );
    ]
