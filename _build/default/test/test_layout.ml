(* Install layouts: the site naming conventions of paper Table 1. *)

module Layout = Ospack_layout.Layout
module Concrete = Ospack_spec.Concrete
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist

let smap_of kvs =
  List.fold_left (fun m (k, v) -> Concrete.Smap.add k v m) Concrete.Smap.empty kvs

let cnode ?(variants = []) ?(deps = []) ?(provided = []) name version =
  {
    Concrete.name;
    version = Version.of_string version;
    compiler = ("gcc", Version.of_string "4.9.2");
    variants = smap_of variants;
    arch = "linux-x86_64";
    deps;
    provided = List.map (fun (v, b) -> (v, Vlist.of_string b)) provided;
  }

let sample =
  match
    Concrete.make ~root:"mpileaks"
      [
        cnode "mpileaks" "1.0"
          ~variants:[ ("debug", true); ("shared", false) ]
          ~deps:[ "mvapich2" ];
        cnode "mvapich2" "1.9" ~provided:[ ("mpi", ":2.2") ];
      ]
  with
  | Ok c -> c
  | Error _ -> failwith "bad sample"

let serial =
  match Concrete.make ~root:"zlib" [ cnode "zlib" "1.2.8" ] with
  | Ok c -> c
  | Error _ -> failwith "bad sample"

let hash = Concrete.root_hash sample

let spack_default () =
  Alcotest.(check string) "arch/compiler/name-version-options-hash"
    (Printf.sprintf
       "/opt/linux-x86_64/gcc-4.9.2/mpileaks-1.0-debug-%s" hash)
    (Layout.path Layout.Spack_default ~root:"/opt" sample)

let llnl_global () =
  Alcotest.(check string) "arch/package/version"
    "/usr/global/tools/linux-x86_64/mpileaks/1.0"
    (Layout.path Layout.Llnl_usr_global ~root:"/usr/global/tools" sample)

let llnl_local () =
  Alcotest.(check string) "package-compiler-build-version"
    (Printf.sprintf "/usr/local/tools/mpileaks-gcc-4.9.2-%s-1.0" hash)
    (Layout.path Layout.Llnl_usr_local ~root:"/usr/local/tools" sample)

let ornl () =
  Alcotest.(check string) "arch/package/version/build"
    (Printf.sprintf "/sw/linux-x86_64/mpileaks/1.0/%s" hash)
    (Layout.path Layout.Ornl ~root:"/sw" sample)

let tacc () =
  Alcotest.(check string) "compiler/mpi/package/version"
    "/apps/gcc-4.9.2/mvapich2/1.9/mpileaks/1.0"
    (Layout.path Layout.Tacc_lmod ~root:"/apps" sample);
  (* no MPI in the DAG -> serial slot *)
  Alcotest.(check string) "serial package"
    "/apps/gcc-4.9.2/serial/none/zlib/1.2.8"
    (Layout.path Layout.Tacc_lmod ~root:"/apps" serial);
  (* an MPI library itself is not its own MPI *)
  let mpi_only =
    match
      Concrete.make ~root:"mvapich2"
        [ cnode "mvapich2" "1.9" ~provided:[ ("mpi", ":2.2") ] ]
    with
    | Ok c -> c
    | Error _ -> failwith "bad"
  in
  Alcotest.(check string) "mpi package itself"
    "/apps/gcc-4.9.2/serial/none/mvapich2/1.9"
    (Layout.path Layout.Tacc_lmod ~root:"/apps" mpi_only)

let uniqueness () =
  (* only the Spack default distinguishes the debug variant *)
  let other =
    match
      Concrete.make ~root:"mpileaks"
        [
          cnode "mpileaks" "1.0"
            ~variants:[ ("debug", false); ("shared", false) ]
            ~deps:[ "mvapich2" ];
          cnode "mvapich2" "1.9" ~provided:[ ("mpi", ":2.2") ];
        ]
    with
    | Ok c -> c
    | Error _ -> failwith "bad"
  in
  Alcotest.(check bool) "spack default separates configurations" true
    (Layout.path Layout.Spack_default ~root:"/opt" sample
    <> Layout.path Layout.Spack_default ~root:"/opt" other);
  Alcotest.(check bool) "LLNL global collides (the paper's point)" true
    (Layout.path Layout.Llnl_usr_global ~root:"/r" sample
    = Layout.path Layout.Llnl_usr_global ~root:"/r" other)

let node_paths () =
  (* non-root nodes get their own sub-DAG hash *)
  let p = Layout.node_path Layout.Spack_default ~root:"/opt" sample "mvapich2" in
  Alcotest.(check bool) "dep hash differs from root hash" true
    (not (Astring.String.is_infix ~affix:hash p));
  Alcotest.(check bool) "dep path names the dep" true
    (Astring.String.is_infix ~affix:"mvapich2-1.9" p)

let whole_universe_paths () =
  (* every scheme produces a path for every node of a large real DAG, and
     the Spack-default paths are pairwise distinct *)
  let ctx =
    Ospack_concretize.Concretizer.make_ctx
      ~config:Ospack_repo.Universe.default_config
      ~compilers:Ospack_repo.Universe.compilers
      (Ospack_repo.Universe.repository ())
  in
  let spec =
    match Ospack_concretize.Concretizer.concretize_string ctx "ares" with
    | Ok c -> c
    | Error e -> Alcotest.failf "ares: %s" e
  in
  let nodes = List.map (fun n -> n.Concrete.name) (Concrete.nodes spec) in
  List.iter
    (fun (_, scheme) ->
      List.iter
        (fun name ->
          let p = Layout.node_path scheme ~root:"/r" spec name in
          Alcotest.(check bool) (name ^ " path nonempty") true
            (String.length p > String.length "/r/"))
        nodes)
    Layout.all_schemes;
  let default_paths =
    List.map (fun n -> Layout.node_path Layout.Spack_default ~root:"/r" spec n) nodes
  in
  Alcotest.(check int) "default paths unique" (List.length nodes)
    (List.length (List.sort_uniq compare default_paths));
  (* TACC scheme places every non-MPI node under the DAG's MPI *)
  let mpi_name =
    match
      List.find_opt
        (fun n -> List.mem_assoc "mpi" n.Concrete.provided)
        (Concrete.nodes spec)
    with
    | Some n -> n.Concrete.name
    | None -> Alcotest.fail "ares has an mpi provider"
  in
  let ares_tacc = Layout.node_path Layout.Tacc_lmod ~root:"/apps" spec "ares" in
  Alcotest.(check bool) "ares under its MPI on TACC" true
    (Astring.String.is_infix ~affix:("/" ^ mpi_name ^ "/") ares_tacc)

let () =
  Alcotest.run "layout"
    [
      ( "table1",
        [
          Alcotest.test_case "Spack default" `Quick spack_default;
          Alcotest.test_case "LLNL /usr/global" `Quick llnl_global;
          Alcotest.test_case "LLNL /usr/local" `Quick llnl_local;
          Alcotest.test_case "ORNL" `Quick ornl;
          Alcotest.test_case "TACC/Lmod" `Quick tacc;
          Alcotest.test_case "uniqueness" `Quick uniqueness;
          Alcotest.test_case "per-node paths" `Quick node_paths;
          Alcotest.test_case "whole-universe path generation" `Quick
            whole_universe_paths;
        ] );
    ]
