(* Whole-universe integration properties: random packages go through the
   full concretize → install → load pipeline and the paper's guarantees
   hold every time. *)

module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Loader = Ospack_buildsim.Loader
module Env = Ospack_buildsim.Env
module Vfs = Ospack_vfs.Vfs
module Repository = Ospack_package.Repository
module Modulegen = Ospack_modulesgen.Modulegen
module View = Ospack_views.View
module Universe = Ospack_repo.Universe

(* packages concretizable on the default (linux) platform *)
let linux_names =
  lazy
    (Repository.package_names (Universe.repository ())
    |> List.filter (fun n -> n <> "bgq-mpi" && n <> "cray-mpi"))

let arb_package =
  QCheck.make
    ~print:(fun s -> s)
    (QCheck.Gen.oneofl (Lazy.force linux_names))

let fresh_ctx () = Ospack.Context.create ()

(* one shared context keeps the property fast while still exercising
   cross-package reuse *)
let shared = lazy (fresh_ctx ())

let install_pipeline =
  QCheck.Test.make ~count:60
    ~name:"install: bottom-up, idempotent, RPATH-complete, provenanced"
    arb_package
    (fun name ->
      let ctx = Lazy.force shared in
      match Ospack.install ctx name with
      | Error _ -> false (* the whole universe must install on linux *)
      | Ok report ->
          let outcomes = report.Ospack.Commands.ir_outcomes in
          let root =
            List.nth outcomes (List.length outcomes - 1)
          in
          let prefix = root.Installer.o_record.Database.r_prefix in
          (* claim 2: the root binary runs with an empty environment *)
          let runs_bare =
            Loader.can_run ctx.Ospack.Context.vfs
              ~path:
                (prefix ^ "/bin/"
                ^ Concrete.root root.Installer.o_record.Database.r_spec)
              ~env:Env.empty
          in
          (* §3.4.3: provenance written for everything built here *)
          let provenanced =
            List.for_all
              (fun o ->
                o.Installer.o_reused
                || Ospack_store.Provenance.read_spec ctx.Ospack.Context.vfs
                     ~prefix:o.Installer.o_record.Database.r_prefix
                   <> None)
              outcomes
          in
          (* idempotence: a second install reuses every node *)
          let idempotent =
            match Ospack.install ctx name with
            | Ok again ->
                List.for_all
                  (fun o -> o.Installer.o_reused)
                  again.Ospack.Commands.ir_outcomes
            | Error _ -> false
          in
          runs_bare && provenanced && idempotent)

let modules_total =
  QCheck.Test.make ~count:20
    ~name:"module generation succeeds for arbitrary installs" arb_package
    (fun name ->
      let ctx = Lazy.force shared in
      match Ospack.install ctx name with
      | Error _ -> false
      | Ok _ -> (
          match Ospack.generate_modules ctx `Tcl with
          | Error _ -> false
          | Ok paths ->
              paths <> []
              && List.for_all
                   (fun p -> Vfs.is_file ctx.Ospack.Context.vfs p)
                   paths))

let view_expansion_total =
  QCheck.Test.make ~count:60 ~name:"view rules expand for any install"
    arb_package
    (fun name ->
      let ctx = Lazy.force shared in
      match Ospack.spec ctx name with
      | Error _ -> false
      | Ok c ->
          let link =
            View.expand_rule "/v/${PACKAGE}-${VERSION}-${MPINAME}-${HASH}" c
          in
          String.length link > String.length "/v/---"
          && not (Astring.String.is_infix ~affix:"${" link))

let uninstall_then_gc_converges () =
  (* after uninstalling every explicit root and collecting garbage, the
     store is empty — no leaked records *)
  let ctx = fresh_ctx () in
  List.iter
    (fun s ->
      match Ospack.install ctx s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "install %s: %s" s e)
    [ "mpileaks"; "py-numpy"; "stat" ];
  let explicit_roots () =
    List.filter
      (fun r -> r.Database.r_explicit)
      (Database.all (Installer.database ctx.Ospack.Context.installer))
  in
  List.iter
    (fun r ->
      match Ospack.uninstall ctx ("/" ^ r.Database.r_hash) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "uninstall: %s" e)
    (explicit_roots ());
  (match Ospack.gc ctx with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "gc: %s" e);
  Alcotest.(check int) "store drained" 0
    (Database.count (Installer.database ctx.Ospack.Context.installer))

let () =
  Alcotest.run "integration"
    [
      ( "universe",
        [
          QCheck_alcotest.to_alcotest install_pipeline;
          QCheck_alcotest.to_alcotest modules_total;
          QCheck_alcotest.to_alcotest view_expansion_total;
          Alcotest.test_case "uninstall + gc drains the store" `Quick
            uninstall_then_gc_converges;
        ] );
    ]
