(* Hash substrate: SHA-256 against NIST FIPS 180-4 vectors, MD5 against the
   RFC 1321 test suite and the stdlib implementation, hex round-trips. *)

open Ospack_hash

let check_sha msg input expected =
  Alcotest.(check string) msg expected (Sha256.hex_digest input)

let sha_nist_vectors () =
  check_sha "empty" ""
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check_sha "abc" "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check_sha "two-block" "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  check_sha "448-bit boundary" (String.make 56 'a')
    (Sha256.hex_digest (String.make 56 'a'));
  check_sha "million a" (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

let sha_streaming () =
  (* feeding in arbitrary chunk sizes must equal one-shot digest *)
  let input = String.init 10_000 (fun i -> Char.chr (i mod 256)) in
  let expected = Sha256.hex_digest input in
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let rec feed i =
        if i < String.length input then begin
          let n = min chunk (String.length input - i) in
          Sha256.feed ctx (String.sub input i n);
          feed (i + n)
        end
      in
      feed 0;
      Alcotest.(check string)
        (Printf.sprintf "chunk size %d" chunk)
        expected
        (Hex.encode (Sha256.finalize ctx)))
    [ 1; 3; 63; 64; 65; 1000 ]

let md5_rfc_vectors () =
  let check msg input expected =
    Alcotest.(check string) msg expected (Md5.hex_digest input)
  in
  check "empty" "" "d41d8cd98f00b204e9800998ecf8427e";
  check "a" "a" "0cc175b9c0f1b6a831c399e269772661";
  check "abc" "abc" "900150983cd24fb0d6963f7d28e17f72";
  check "message digest" "message digest" "f96b697d7cb7938d525a2f31aaf161d0";
  check "alphabet" "abcdefghijklmnopqrstuvwxyz"
    "c3fcd3d76192e4007dfb496cca67e13b";
  check "digits"
    "12345678901234567890123456789012345678901234567890123456789012345678901234567890"
    "57edf4a22be3c955ac49da2e2107b67a"

let md5_matches_stdlib =
  QCheck.Test.make ~name:"md5 agrees with stdlib Digest" ~count:200
    QCheck.(string_of_size (Gen.int_bound 300))
    (fun s -> Md5.hex_digest s = Digest.to_hex (Digest.string s))

let hex_roundtrip =
  QCheck.Test.make ~name:"hex decode inverts encode" ~count:200
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s -> Hex.decode (Hex.encode s) = Some s)

let hex_rejects () =
  Alcotest.(check (option string)) "odd length" None (Hex.decode "abc");
  Alcotest.(check (option string)) "non-hex" None (Hex.decode "zz");
  Alcotest.(check (option string)) "uppercase ok" (Some "\xab") (Hex.decode "AB")

let sha_distinct =
  QCheck.Test.make ~name:"sha256 distinguishes distinct short strings"
    ~count:200
    QCheck.(pair (string_of_size (Gen.int_bound 40)) (string_of_size (Gen.int_bound 40)))
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let () =
  Alcotest.run "hash"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick sha_nist_vectors;
          Alcotest.test_case "streaming equals one-shot" `Quick sha_streaming;
          QCheck_alcotest.to_alcotest sha_distinct;
        ] );
      ( "md5",
        [
          Alcotest.test_case "RFC 1321 vectors" `Quick md5_rfc_vectors;
          QCheck_alcotest.to_alcotest md5_matches_stdlib;
        ] );
      ( "hex",
        [
          Alcotest.test_case "malformed inputs" `Quick hex_rejects;
          QCheck_alcotest.to_alcotest hex_roundtrip;
        ] );
    ]
