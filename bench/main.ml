(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation.

     Table 1 — site naming conventions
     Table 2 — spec syntax examples
     Table 3 — the ARES nightly configuration matrix (36 configs)
     Fig. 5  — versioned virtual providers (sanity)
     Fig. 8  — concretization time vs package DAG size (245 packages)
     Fig. 9  — sub-DAG sharing across MPI configurations
     Fig. 10 — simulated build time: wrappers x filesystem
     Fig. 11 — overhead percentages vs the paper's measurements
     ablation — greedy vs backtracking concretization
     micro    — bechamel micro-benchmarks of the hot paths

   Absolute times for Fig. 10/11 come from the calibrated build simulator
   (the substrate is not the authors' testbed); shapes and orderings are
   the reproduction target. Fig. 8 times are real wall-clock measurements
   of this implementation. *)

module Ast = Ospack_spec.Ast
module Parser = Ospack_spec.Parser
module Printer = Ospack_spec.Printer
module Concrete = Ospack_spec.Concrete
module Constraint_ops = Ospack_spec.Constraint_ops
module Repository = Ospack_package.Repository
module Config = Ospack_config.Config
module Concretizer = Ospack_concretize.Concretizer
module Layout = Ospack_layout.Layout
module Fsmodel = Ospack_buildsim.Fsmodel
module Vfs = Ospack_vfs.Vfs
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Universe = Ospack_repo.Universe
module Pkgs_ares = Ospack_repo.Pkgs_ares
module Platforms = Ospack_repo.Platforms
module Version = Ospack_version.Version
module Sha256 = Ospack_hash.Sha256

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let universe_ctx ?(overrides = []) () =
  Concretizer.make_ctx
    ~config:(Config.layer [ Config.of_assoc overrides; Universe.default_config ])
    ~compilers:Universe.compilers (Universe.repository ())

(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: software organization of various HPC sites";
  let ctx = universe_ctx () in
  match Concretizer.concretize_string ctx "mpileaks ^mvapich2@1.9" with
  | Error e -> Printf.printf "concretization failed: %s\n" e
  | Ok c ->
      Printf.printf "%-24s %s\n" "Site" "Install prefix for one mpileaks build";
      List.iter
        (fun (name, scheme) ->
          let root =
            match scheme with
            | Layout.Llnl_usr_global -> "/usr/global/tools"
            | Layout.Llnl_usr_local -> "/usr/local/tools"
            | _ -> ""
          in
          Printf.printf "%-24s %s\n" name (Layout.path scheme ~root c))
        Layout.all_schemes

let table2 () =
  section "Table 2: spec syntax examples";
  let examples =
    [
      ("mpileaks", "package, no constraints");
      ("mpileaks@1.1.2", "version 1.1.2");
      ("mpileaks@1.1.2 %gcc", "built with gcc at the default version");
      ("mpileaks@1.1.2 %intel@14.1 +debug", "intel 14.1, debug variant");
      ("mpileaks@1.1.2 =bgq", "built for Blue Gene/Q");
      ("mpileaks@1.1.2 ^mvapich2@1.9", "using mvapich2 1.9 for MPI");
      ( "mpileaks @1.2:1.4 %gcc@4.7.3 -debug =bgq ^callpath @1.1 %gcc@4.7.3 \
         ^openmpi @1.4.7",
        "the fully-constrained example" );
    ]
  in
  List.iter
    (fun (spec, meaning) ->
      match Parser.parse spec with
      | Ok ast ->
          Printf.printf "OK  %-50s  # %s\n    normalized: %s\n" spec meaning
            (Printer.to_string ast)
      | Error e -> Printf.printf "ERR %-50s  %s\n" spec e)
    examples

let table3 () =
  section "Table 3: ARES configurations (paper: 36 nightly configs)";
  let cells =
    [
      (Platforms.linux, "%gcc", "mvapich", [ `Current; `Previous; `Lite; `Dev ]);
      (Platforms.linux, "%gcc", "mvapich2", [ `Current; `Previous; `Lite; `Dev ]);
      (Platforms.linux, "%gcc", "openmpi", [ `Current; `Previous; `Lite; `Dev ]);
      (Platforms.linux, "%intel@14.0.3", "mvapich2",
       [ `Current; `Previous; `Lite; `Dev ]);
      (Platforms.linux, "%intel@15.0.1", "mvapich2",
       [ `Current; `Previous; `Lite; `Dev ]);
      (Platforms.linux, "%pgi", "mvapich2", [ `Dev ]);
      (Platforms.linux, "%clang", "mvapich2", [ `Current; `Previous; `Lite; `Dev ]);
      (Platforms.bgq, "%gcc", "bgq-mpi", [ `Current; `Previous; `Lite; `Dev ]);
      (Platforms.bgq, "%clang", "bgq-mpi", [ `Current; `Lite; `Dev ]);
      (Platforms.cray_xe6, "%gcc", "cray-mpi", [ `Current; `Previous; `Lite; `Dev ]);
    ]
  in
  let letter = function
    | `Current -> "C"
    | `Previous -> "P"
    | `Lite -> "L"
    | `Dev -> "D"
  in
  let ok = ref 0 and bad = ref 0 in
  Printf.printf "%-12s %-15s %-9s configs\n" "arch" "compiler" "mpi";
  List.iter
    (fun (arch, compiler, mpi, configs) ->
      let ctx =
        universe_ctx ~overrides:[ ("arch", arch); ("providers.mpi", mpi) ] ()
      in
      let cells_out =
        List.map
          (fun config ->
            let spec =
              Printf.sprintf "%s %s =%s ^%s"
                (Pkgs_ares.spec_of_config config)
                compiler arch mpi
            in
            match Concretizer.concretize_string ctx spec with
            | Ok _ ->
                incr ok;
                letter config
            | Error _ ->
                incr bad;
                letter config ^ "!")
          configs
      in
      Printf.printf "%-12s %-15s %-9s %s\n" arch compiler mpi
        (String.concat " " cells_out))
    cells;
  Printf.printf "-> %d concretized, %d failed (paper: 36)\n" !ok !bad

let fig5 () =
  section "Fig. 5 sanity: versioned virtual dependencies";
  let ctx = universe_ctx () in
  let show spec =
    match Concretizer.concretize_string ctx spec with
    | Ok c ->
        let provider =
          List.find_opt
            (fun n -> List.mem_assoc "mpi" n.Concrete.provided)
            (Concrete.nodes c)
        in
        Printf.printf "%-24s -> %s\n" spec
          (match provider with
          | Some n -> Concrete.node_to_string n
          | None -> "(no mpi in DAG)")
    | Error e -> Printf.printf "%-24s -> ERROR %s\n" spec e
  in
  show "mpileaks";
  show "mpileaks ^mpich";
  show "gerris" (* needs mpi@2: *);
  show "gerris ^mpich" (* forces mpich@3.x *)

(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fig8 () =
  section "Fig. 8: concretization time vs package DAG size (245 packages)";
  let repo = Universe.repository () in
  let ctx = universe_ctx () in
  let trials = 5 in
  let samples =
    List.filter_map
      (fun name ->
        let spec =
          match name with
          | "bgq-mpi" -> "bgq-mpi =bgq %gcc"
          | "cray-mpi" -> "cray-mpi =cray_xe6 %gcc"
          | n -> n
        in
        match Parser.parse spec with
        | Error _ -> None
        | Ok ast -> (
            match Concretizer.concretize ctx ast with
            | Error _ -> None
            | Ok c ->
                let _, dt =
                  time_it (fun () ->
                      for _ = 1 to trials do
                        ignore (Concretizer.concretize ctx ast)
                      done)
                in
                Some (Concrete.node_count c, dt /. float_of_int trials)))
      (Repository.package_names repo)
  in
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun (n, dt) ->
      let sum, count =
        Option.value (Hashtbl.find_opt buckets n) ~default:(0.0, 0)
      in
      Hashtbl.replace buckets n (sum +. dt, count + 1))
    samples;
  Printf.printf "%-10s %-10s %s\n" "DAG nodes" "packages" "mean concretize time";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) buckets []
  |> List.sort compare
  |> List.iter (fun (n, (sum, count)) ->
         Printf.printf "%-10d %-10d %.3f ms\n" n count
           (1000.0 *. sum /. float_of_int count));
  let worst = List.fold_left (fun m (_, dt) -> max m dt) 0.0 samples in
  let biggest = List.fold_left (fun m (n, _) -> max m n) 0 samples in
  Printf.printf
    "-> %d packages concretized; largest DAG %d nodes; worst time %.3f ms\n"
    (List.length samples) biggest (1000.0 *. worst);
  Printf.printf "   paper envelope: <4 s at ~50 nodes -> %s\n"
    (if worst < 4.0 then "within envelope" else "OUTSIDE ENVELOPE")

let fig9 () =
  section "Fig. 9: sub-DAG sharing between mpich and openmpi builds";
  let vfs = Vfs.create () in
  let inst =
    Installer.create ~vfs ~repo:(Universe.repository ())
      ~compilers:Universe.compilers ()
  in
  let ctx = universe_ctx () in
  let install spec =
    match Concretizer.concretize_string ctx spec with
    | Error e -> failwith e
    | Ok c -> (
        match Installer.install inst c with
        | Ok outcomes -> outcomes
        | Error e -> failwith e)
  in
  let first = install "mpileaks ^mvapich2@1.9" in
  let t_first = Installer.total_build_seconds inst in
  let second = install "mpileaks ^openmpi" in
  let t_total = Installer.total_build_seconds inst in
  let reused = List.filter (fun o -> o.Installer.o_reused) second in
  Printf.printf "first install:  %d nodes built, %.1f simulated s\n"
    (List.length first) t_first;
  Printf.printf
    "second install: %d nodes reused, %d rebuilt, %.1f more simulated s\n"
    (List.length reused)
    (List.length second - List.length reused)
    (t_total -. t_first);
  Printf.printf
    "-> naive (no sharing) would simulate ~%.1f s; sharing spent %.1f s\n"
    (2.0 *. t_first) t_total

(* ------------------------------------------------------------------ *)

(* the seven packages of Figs. 10/11, with the paper's measured overheads *)
let fig10_packages =
  [
    (* name, paper NFS+wrappers overhead %, paper wrappers-only overhead % *)
    ("libelf", 48.0, 9.5);
    ("libpng", 62.7, 9.4);
    ("mpileaks", 35.6, 12.3);
    ("libdwarf", 17.7, 6.6);
    ("python", 46.4, 10.2);
    ("dyninst", 4.9, -0.4);
    ("lapack", 16.6, 6.0);
  ]

type build_times = { nfs_w : float; tmp_w : float; tmp_nw : float }

let simulate_builds () =
  let ctx = universe_ctx () in
  let build name fs use_wrappers =
    match Concretizer.concretize_string ctx name with
    | Error e -> failwith (name ^ ": " ^ e)
    | Ok spec -> (
        let vfs = Vfs.create () in
        let inst =
          Installer.create ~fs ~use_wrappers ~vfs
            ~repo:(Universe.repository ()) ~compilers:Universe.compilers ()
        in
        match Installer.install inst spec with
        | Ok outcomes ->
            let root = List.nth outcomes (List.length outcomes - 1) in
            root.Installer.o_record.Database.r_build_seconds
        | Error e -> failwith (name ^ ": " ^ e))
  in
  List.map
    (fun (name, _, _) ->
      ( name,
        {
          nfs_w = build name Fsmodel.nfs true;
          tmp_w = build name Fsmodel.tmpfs true;
          tmp_nw = build name Fsmodel.tmpfs false;
        } ))
    fig10_packages

let fig10 times =
  section "Fig. 10: build time on NFS and temp, with and without wrappers";
  Printf.printf "%-10s %14s %14s %14s   (simulated seconds)\n" "package"
    "wrappers,NFS" "wrappers,tmp" "no-wrap,tmp";
  List.iter
    (fun (name, t) ->
      Printf.printf "%-10s %14.1f %14.1f %14.1f\n" name t.nfs_w t.tmp_w
        t.tmp_nw)
    times;
  let ordered =
    List.for_all
      (fun (_, t) -> t.nfs_w > t.tmp_w && t.tmp_w >= t.tmp_nw *. 0.99)
      times
  in
  Printf.printf "-> NFS > tmp and wrappers >= native for every package: %b\n"
    ordered

let fig11 times =
  section "Fig. 11: build overhead of NFS and compiler wrappers (% of native)";
  Printf.printf "%-10s %18s %18s %16s %16s\n" "package" "NFS+wrap (ours)"
    "NFS+wrap (paper)" "wrap (ours)" "wrap (paper)";
  let avg_nfs = ref 0.0 and avg_wrap = ref 0.0 in
  List.iter2
    (fun (name, t) (_, paper_nfs, paper_wrap) ->
      let nfs_over = 100.0 *. ((t.nfs_w /. t.tmp_nw) -. 1.0) in
      let wrap_over = 100.0 *. ((t.tmp_w /. t.tmp_nw) -. 1.0) in
      avg_nfs := !avg_nfs +. nfs_over;
      avg_wrap := !avg_wrap +. wrap_over;
      Printf.printf "%-10s %17.1f%% %17.1f%% %15.1f%% %15.1f%%\n" name nfs_over
        paper_nfs wrap_over paper_wrap)
    times fig10_packages;
  let n = float_of_int (List.length times) in
  Printf.printf
    "-> mean overheads: NFS+wrappers %.1f%% (paper ~33%%), wrappers %.1f%% \
     (paper ~10%%)\n"
    (!avg_nfs /. n) (!avg_wrap /. n);
  let wrap_of name =
    let _, t = List.find (fun (n, _) -> n = name) times in
    (t.tmp_w /. t.tmp_nw) -. 1.0
  in
  Printf.printf "-> dyninst has the smallest wrapper overhead: %b\n"
    (List.for_all
       (fun (name, _, _) ->
         name = "dyninst" || wrap_of "dyninst" <= wrap_of name)
       fig10_packages)

(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: greedy vs backtracking concretization (§4.5)";
  let family n =
    let open Ospack_package.Package in
    let providers =
      List.init n (fun i ->
          make_pkg
            (Printf.sprintf "impl-%c" (Char.chr (Char.code 'a' + i)))
            [
              version "1.0";
              provides "iface";
              depends_on (if i = n - 1 then "leafdep@2.0" else "leafdep@1.0");
            ])
    in
    Repository.create
      (providers
      @ [
          make_pkg "leafdep" [ version "1.0"; version "2.0" ];
          make_pkg "top"
            [ version "1.0"; depends_on "iface"; depends_on "leafdep@2.0" ];
        ])
  in
  Printf.printf "%-12s %-10s %-14s %s\n" "providers" "greedy" "backtracking"
    "greedy runs used";
  List.iter
    (fun n ->
      let ctx = Concretizer.make_ctx ~compilers:Universe.compilers (family n) in
      let ast = Parser.parse_exn "top" in
      let greedy = Result.is_ok (Concretizer.concretize ctx ast) in
      let bt, dt =
        time_it (fun () -> Concretizer.concretize_backtracking ctx ast)
      in
      Printf.printf "%-12d %-10s %-14s %d runs, %.2f ms\n" n
        (if greedy then "ok" else "conflict")
        (if Result.is_ok bt then "ok" else "fail")
        (Concretizer.last_run_count ())
        (1000.0 *. dt))
    [ 2; 4; 8; 16 ];
  let ctx = universe_ctx () in
  let ast = Parser.parse_exn "ares" in
  let _, greedy_t = time_it (fun () -> Concretizer.concretize ctx ast) in
  let _, bt_t =
    time_it (fun () -> Concretizer.concretize_backtracking ctx ast)
  in
  Printf.printf
    "ares: greedy %.2f ms, backtracking wrapper %.2f ms (1 run — no \
     regression on the happy path)\n"
    (1000.0 *. greedy_t) (1000.0 *. bt_t);
  (* second ablation: the precomputed provider index (paper §3.4, "building
     a reverse index from virtual packages to providers") vs rebuilding it
     for every concretization *)
  let n = 200 in
  let mpileaks = Parser.parse_exn "mpileaks" in
  let _, with_index =
    time_it (fun () ->
        for _ = 1 to n do
          ignore (Concretizer.concretize ctx mpileaks)
        done)
  in
  let _, without_index =
    time_it (fun () ->
        for _ = 1 to n do
          let fresh = universe_ctx () in
          ignore (Concretizer.concretize fresh mpileaks)
        done)
  in
  Printf.printf
    "provider index: %d concretizations in %.1f ms with a shared index vs \
     %.1f ms rebuilding it each time (%.1fx)\n"
    n (1000.0 *. with_index) (1000.0 *. without_index)
    (without_index /. with_index);
  (* third ablation: building from source vs pulling the binary cache *)
  let vfs = Vfs.create () in
  let repo = Universe.repository () in
  let cache = Ospack_store.Buildcache.create vfs ~root:"/bc" in
  let builder = Installer.create ~vfs ~repo ~compilers:Universe.compilers () in
  let spec =
    match Concretizer.concretize_string ctx "mpileaks ^mvapich2@1.9" with
    | Ok c -> c
    | Error e -> failwith e
  in
  (match Installer.install builder spec with
  | Ok _ -> ()
  | Error e -> failwith e);
  let built_seconds = Installer.total_build_seconds builder in
  (match Installer.push_to_cache builder cache with
  | Ok _ -> ()
  | Error e -> failwith e);
  let puller =
    Installer.create ~install_root:"/pulled" ~cache ~vfs ~repo
      ~compilers:Universe.compilers ()
  in
  let (_ : (Installer.outcome list, string) result), pull_wall =
    time_it (fun () -> Installer.install puller spec)
  in
  Printf.printf
    "binary cache: source build simulates %.0f s; cache pull simulates 0 s \
     (%.1f ms of real extraction+relocation work)\n"
    built_seconds (1000.0 *. pull_wall)

(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let ctx = universe_ctx () in
  let mpileaks_ast = Parser.parse_exn "mpileaks ^mvapich2@1.9 ^libelf@0.8.12" in
  let ares_ast = Parser.parse_exn "ares" in
  let node_a = (Parser.parse_exn "p@1.2:1.4%gcc@4.7+debug=bgq").Ast.root in
  let node_b = (Parser.parse_exn "p@1.3:%gcc~shared").Ast.root in
  let payload = String.make 4096 'x' in
  let tests =
    [
      Test.make ~name:"spec-parse (long form)"
        (Staged.stage (fun () ->
             ignore
               (Parser.parse
                  "mpileaks @1.2:1.4 %gcc@4.7.3 -debug =bgq ^callpath @1.1 \
                   ^openmpi @1.4.7")));
      Test.make ~name:"constraint-intersect"
        (Staged.stage (fun () ->
             ignore (Constraint_ops.intersect_node node_a node_b)));
      Test.make ~name:"concretize mpileaks (6 nodes)"
        (Staged.stage (fun () ->
             ignore (Concretizer.concretize ctx mpileaks_ast)));
      Test.make ~name:"concretize ares (47 nodes)"
        (Staged.stage (fun () -> ignore (Concretizer.concretize ctx ares_ast)));
      Test.make ~name:"sha256 (4 KiB)"
        (Staged.stage (fun () -> ignore (Sha256.hex_digest payload)));
      Test.make ~name:"version-compare"
        (Staged.stage
           (let a = Version.of_string "1.2.3.4" in
            let b = Version.of_string "1.2.4" in
            fun () -> ignore (Version.compare a b)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              if est > 1_000_000.0 then
                Printf.printf "%-40s %10.3f ms/run\n" name (est /. 1e6)
              else if est > 1_000.0 then
                Printf.printf "%-40s %10.3f us/run\n" name (est /. 1e3)
              else Printf.printf "%-40s %10.1f ns/run\n" name est
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

(* `main.exe obs` — the per-phase observability mode: rebuild the
   Fig. 10/11 workloads under an enabled recording sink and report where
   the virtual time went (phases, counters) per package x filesystem x
   wrappers cell. Each cell also re-runs uninstrumented and asserts the
   simulated build time is bit-identical — instrumentation must not
   perturb the cost model. *)
let obs_doc () =
  let module Obs = Ospack_obs.Obs in
  let module Json = Ospack_json.Json in
  let repo = Universe.repository () in
  let build name fs use_wrappers ~obs =
    let cctx =
      Concretizer.make_ctx ~config:Universe.default_config ~obs
        ~compilers:Universe.compilers repo
    in
    match
      Obs.span obs ~cat:"concretize" "concretize" (fun () ->
          Concretizer.concretize_string cctx name)
    with
    | Error e -> failwith (name ^ ": " ^ e)
    | Ok spec -> (
        let inst =
          Installer.create ~fs ~use_wrappers ~obs ~vfs:(Vfs.create ()) ~repo
            ~compilers:Universe.compilers ()
        in
        match
          Obs.span obs ~cat:"install" "install" (fun () ->
              Installer.install inst spec)
        with
        | Ok outcomes ->
            let root = List.nth outcomes (List.length outcomes - 1) in
            root.Installer.o_record.Database.r_build_seconds
        | Error e -> failwith (name ^ ": " ^ e))
  in
  let workload name fs fs_name use_wrappers =
    let obs = Obs.create () in
    let seconds = build name fs use_wrappers ~obs in
    let plain = build name fs use_wrappers ~obs:Obs.disabled in
    if plain <> seconds then
      failwith
        (Printf.sprintf "%s on %s: instrumentation perturbed br_time (%f vs %f)"
           name fs_name seconds plain);
    Json.Obj
      [
        ("package", Json.String name);
        ("fs", Json.String fs_name);
        ("wrappers", Json.Bool use_wrappers);
        ("build_seconds", Json.fixed seconds);
        ( "phases",
          Json.List
            (List.map
               (fun (r : Obs.phase_row) ->
                 Json.Obj
                   [
                     ("name", Json.String r.Obs.ph_name);
                     ("count", Json.Int r.Obs.ph_count);
                     ("total_seconds", Json.fixed r.Obs.ph_total);
                     ("self_seconds", Json.fixed r.Obs.ph_self);
                   ])
               (Obs.phase_rows obs)) );
        ( "counters",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.Int v)) (Obs.counters obs)) );
      ]
  in
  let workloads =
    List.concat_map
      (fun (name, _, _) ->
        [
          workload name Fsmodel.nfs "nfs" true;
          workload name Fsmodel.tmpfs "tmpfs" true;
          workload name Fsmodel.tmpfs "tmpfs" false;
        ])
      fig10_packages
  in
  Printf.printf "generated %d workloads (%d packages x 3 configurations)\n"
    (List.length workloads)
    (List.length fig10_packages);
  Json.Obj [ ("format", Json.Int 1); ("workloads", Json.List workloads) ]

(* `main.exe parallel` — the parallel-install benchmark: replay the
   Fig. 10/11 workloads (each package's DAG, plus the whole seven-
   package suite as one batch) through the deterministic virtual-time
   worker pool at -j 1/2/4/8 on both filesystem models. For every
   workload the store must be byte-identical across -j levels — the
   scheduler's cornerstone invariant — the suite must show real makespan
   speedup, and the critical-path analysis must hold its own invariants:
   CP identical at every -j level, efficiency never above 1, and the
   makespan equal to the CP bound once jobs >= nodes. *)
let parallel_doc () =
  let module Json = Ospack_json.Json in
  let module Profile = Ospack_obs.Profile in
  let repo = Universe.repository () in
  let ctx = universe_ctx () in
  let concrete name =
    match Concretizer.concretize_string ctx name with
    | Ok c -> c
    | Error e -> failwith (name ^ ": " ^ e)
  in
  let jobs_list = [ 1; 2; 4; 8 ] in
  let run_workload ~name ~specs ~fs ~fs_name =
    let run j =
      let inst =
        Installer.create ~fs ~vfs:(Vfs.create ()) ~repo
          ~compilers:Universe.compilers ()
      in
      match Installer.install_parallel inst ~jobs:j specs with
      | Error e -> failwith (Printf.sprintf "%s -j%d: %s" name j e)
      | Ok r ->
          if r.Installer.pr_failures <> [] then
            failwith
              (Printf.sprintf "%s -j%d: %s" name j
                 (Installer.failures_to_string r.Installer.pr_failures));
          let index =
            Json.to_string (Database.to_json (Installer.database inst))
          in
          (r, index)
    in
    let results = List.map run jobs_list in
    (* critical-path analysis of each recorded schedule *)
    let profs =
      List.map
        (fun (r, _) ->
          match Profile.analyze (Installer.profile_input ~specs r) with
          | Ok p -> p
          | Error e -> failwith (Printf.sprintf "%s: profile: %s" name e))
        results
    in
    let p1 = List.hd profs in
    List.iter2
      (fun j p ->
        if abs_float (p.Profile.p_cp_seconds -. p1.Profile.p_cp_seconds)
           > 1e-9
        then
          failwith
            (Printf.sprintf "%s: critical path drifted at -j%d" name j);
        if p.Profile.p_efficiency > 1.0 +. 1e-9 then
          failwith
            (Printf.sprintf "%s: -j%d makespan beat the CP lower bound" name
               j);
        if
          j >= List.length p.Profile.p_rows
          && abs_float (p.Profile.p_makespan -. p.Profile.p_cp_seconds)
             > 1e-9
        then
          failwith
            (Printf.sprintf
               "%s: -j%d (>= %d nodes) makespan must equal the critical path"
               name j
               (List.length p.Profile.p_rows)))
      jobs_list profs;
    let r1, index1 = List.hd results in
    if abs_float (r1.Installer.pr_makespan -. r1.Installer.pr_serial_seconds)
       > 1e-9
    then failwith (name ^ ": -j1 makespan must equal the serialized time");
    List.iter
      (fun (r, index) ->
        if index <> index1 then
          failwith
            (Printf.sprintf "%s on %s: store diverged between -j1 and -j%d"
               name fs_name r.Installer.pr_jobs);
        if
          abs_float
            (r.Installer.pr_serial_seconds -. r1.Installer.pr_serial_seconds)
          > 1e-9
        then
          failwith
            (Printf.sprintf "%s on %s: serialized time drifted across -j levels"
               name fs_name))
      results;
    let speedup_at j =
      let rec idx i = function
        | [] -> failwith "unknown -j level"
        | x :: rest -> if x = j then i else idx (i + 1) rest
      in
      let r, _ = List.nth results (idx 0 jobs_list) in
      Installer.parallel_speedup r
    in
    let json =
      Json.Obj
        [
          ("workload", Json.String name);
          ("fs", Json.String fs_name);
          ("nodes", Json.Int (List.length r1.Installer.pr_outcomes));
          ("serial_seconds", Json.fixed r1.Installer.pr_serial_seconds);
          ("cp_seconds", Json.fixed p1.Profile.p_cp_seconds);
          ( "jobs",
            Json.List
              (List.map2
                 (fun j ((r, _), p) ->
                   Json.Obj
                     [
                       ("j", Json.Int j);
                       ("makespan_seconds", Json.fixed r.Installer.pr_makespan);
                       ("speedup", Json.fixed (Installer.parallel_speedup r));
                       ("efficiency", Json.fixed p.Profile.p_efficiency);
                     ])
                 jobs_list
                 (List.combine results profs)) );
          ("store_identical_across_jobs", Json.Bool true);
        ]
    in
    (json, speedup_at 4)
  in
  let fs_models = [ (Fsmodel.nfs, "nfs"); (Fsmodel.tmpfs, "tmpfs") ] in
  let cells =
    List.concat_map
      (fun (fs, fs_name) ->
        List.map
          (fun (name, _, _) ->
            run_workload ~name ~specs:[ concrete name ] ~fs ~fs_name)
          fig10_packages
        @ [
            run_workload ~name:"fig10-suite"
              ~specs:(List.map (fun (n, _, _) -> concrete n) fig10_packages)
              ~fs ~fs_name;
          ])
      fs_models
  in
  let best =
    List.fold_left (fun m (_, s) -> max m s) 0.0 cells
  in
  if best < 1.5 then
    failwith
      (Printf.sprintf
         "no workload reached 1.5x speedup at -j4 (best %.2fx)" best);
  Printf.printf
    "generated %d workloads ((%d packages + suite) x 2 fs models x -j %s)\n"
    (List.length cells)
    (List.length fig10_packages)
    (String.concat "/" (List.map string_of_int jobs_list));
  Printf.printf "best -j4 speedup: %.2fx (store identical across all levels)\n"
    best;
  Json.Obj
    [
      ("format", Json.Int 1);
      ("jobs_levels", Json.List (List.map (fun j -> Json.Int j) jobs_list));
      ("workloads", Json.List (List.map fst cells));
    ]

(* `main.exe concretize` — the concretization-cache benchmark over
   the 21-workload suite (the seven Fig. 10/11 packages x three abstract
   spec forms: plain, compiler-constrained, version-pinned). Four
   scenarios per workload:
   - cold:   fresh cache, first solve (misses, full fixed point)
   - warm:   same cache, repeat query (whole-query hit, zero iterations)
   - fresh:  no cache at all (--fresh)
   - seeded: one cache shared across the whole suite, so later workloads
             start from sub-DAG pins of earlier ones
   The cornerstone invariant is asserted for every workload: cold, warm,
   fresh, and seeded results are byte-identical (JSON + rendered tree).
   A fifth pass installs the seven packages and replays the suite with
   --reuse, asserting every reused spec satisfies its query. Fails unless
   warm uses at least 5x fewer concretizer iterations than cold. *)
let concretize_doc () =
  let module Obs = Ospack_obs.Obs in
  let module Json = Ospack_json.Json in
  let module Ccache = Ospack_concretize.Ccache in
  let repo = Universe.repository () in
  let config = Universe.default_config in
  let compilers = Universe.compilers in
  let cx = Ccache.context ~repo ~compilers ~config () in
  let newest name =
    match Repository.find repo name with
    | Some p -> (
        match Ospack_package.Package.known_versions p with
        | v :: _ -> Version.to_string v
        | [] -> failwith (name ^ ": no versions"))
    | None -> failwith ("unknown package " ^ name)
  in
  let workloads =
    List.concat_map
      (fun (name, _, _) ->
        [ name; name ^ " %gcc"; Printf.sprintf "%s@%s" name (newest name) ])
      fig10_packages
  in
  let parse s =
    match Parser.parse s with
    | Ok a -> a
    | Error e -> failwith (s ^ ": " ^ e)
  in
  let render c =
    Json.to_string (Concrete.to_json c) ^ "\n" ^ Concrete.tree_string c
  in
  let solve ~obs ~cache ast =
    let cctx = Concretizer.make_ctx ~config ~obs ~compilers repo in
    let before = Obs.counter obs "concretize.iterations" in
    match Concretizer.concretize_cached ?cache cctx ast with
    | Ok c -> (c, Obs.counter obs "concretize.iterations" - before)
    | Error e -> failwith (Ospack_concretize.Cerror.to_string e)
  in
  (* isolated cold / warm / fresh per workload *)
  let rows =
    List.map
      (fun s ->
        let ast = parse s in
        let obs = Obs.create () in
        let cache = Ccache.create ~obs ~context:cx () in
        let cold, cold_iters = solve ~obs ~cache:(Some cache) ast in
        let warm, warm_iters = solve ~obs ~cache:(Some cache) ast in
        let fresh, _ = solve ~obs:(Obs.create ()) ~cache:None ast in
        if render cold <> render warm then
          failwith (s ^ ": warm result diverged from cold");
        if render cold <> render fresh then
          failwith (s ^ ": --fresh result diverged from cold");
        if Obs.counter obs "ccache.hits" < 1 then
          failwith (s ^ ": warm repeat did not hit the cache");
        (s, ast, cold, cold_iters, warm_iters))
      workloads
  in
  (* the whole suite against one shared cache: later workloads start from
     sub-DAG pins seeded by earlier ones, and every result must still be
     byte-identical to its isolated cold solve *)
  let shared_obs = Obs.create () in
  let shared_cache = Ccache.create ~obs:shared_obs ~context:cx () in
  let seeded_iters =
    List.map
      (fun (s, ast, cold, _, _) ->
        let c, iters = solve ~obs:shared_obs ~cache:(Some shared_cache) ast in
        if render c <> render cold then
          failwith (s ^ ": seeded result diverged from cold");
        iters)
      rows
  in
  (* store-aware reuse: install the seven packages, replay the suite with
     --reuse; a reused spec need not equal the cold concretization (it
     reflects the store), but it must satisfy the query *)
  let rctx = Ospack.Context.create ~obs:(Obs.create ()) () in
  List.iter
    (fun (name, _, _) ->
      match Ospack.install rctx name with
      | Ok _ -> ()
      | Error e -> failwith (name ^ ": install failed: " ^ e))
    fig10_packages;
  let robs = rctx.Ospack.Context.obs in
  let reuse_before = Obs.counter robs "ccache.reuse_hits" in
  List.iter
    (fun (s, ast, _, _, _) ->
      match Ospack.spec ~reuse:true rctx s with
      | Ok c ->
          if not (Concrete.satisfies c ast) then
            failwith (s ^ ": reused spec does not satisfy the query")
      | Error e -> failwith (s ^ ": " ^ e))
    rows;
  let reuse_hits = Obs.counter robs "ccache.reuse_hits" - reuse_before in
  let sum l = List.fold_left ( + ) 0 l in
  let cold_total = sum (List.map (fun (_, _, _, c, _) -> c) rows) in
  let warm_total = sum (List.map (fun (_, _, _, _, w) -> w) rows) in
  let seeded_total = sum seeded_iters in
  if warm_total * 5 > cold_total then
    failwith
      (Printf.sprintf
         "warm concretization used %d iterations vs %d cold — less than \
          the required 5x reduction"
         warm_total cold_total);
  let doc =
    Json.Obj
      [
        ("format", Json.Int 1);
        ( "workloads",
          Json.List
            (List.map2
               (fun (s, _, _, cold_iters, warm_iters) seeded ->
                 Json.Obj
                   [
                     ("spec", Json.String s);
                     ("cold_iterations", Json.Int cold_iters);
                     ("warm_iterations", Json.Int warm_iters);
                     ("seeded_iterations", Json.Int seeded);
                     ("byte_identical", Json.Bool true);
                   ])
               rows seeded_iters) );
        ( "summary",
          Json.Obj
            [
              ("cold_iterations", Json.Int cold_total);
              ("warm_iterations", Json.Int warm_total);
              ("seeded_iterations", Json.Int seeded_total);
              ("reuse_hits", Json.Int reuse_hits);
              ("reuse_queries", Json.Int (List.length rows));
            ] );
      ]
  in
  Printf.printf
    "generated %d workloads\n\
     cold %d iterations, warm %d, suite-seeded %d; reuse hits %d/%d\n\
     cold == warm == fresh == seeded byte-identical for every workload\n"
    (List.length rows) cold_total warm_total seeded_total reuse_hits
    (List.length rows);
  doc

(* `main.exe solve` — the differential backend benchmark: both
   concretizer backends over the 21-workload suite (the seven Fig. 10/11
   packages x three abstract forms), plus the §4.5 hwloc divergence spec
   and a truly unsatisfiable one. Asserts the divergence contract:
   - every greedy-solvable workload: byte-identical agreement (JSON +
     rendered tree) between greedy and clauses;
   - the divergence spec: greedy UNSAT, clauses SAT (and the model
     satisfies the query);
   - the unsat spec: both UNSAT, with a non-empty clause-backend core. *)
let solve_doc () =
  let module Obs = Ospack_obs.Obs in
  let module Json = Ospack_json.Json in
  let module I = Ospack_concretize.Concretizer_intf in
  let module Backends = Ospack_concretize.Backends in
  let repo = Universe.repository () in
  let config = Universe.default_config in
  let compilers = Universe.compilers in
  let newest name =
    match Repository.find repo name with
    | Some p -> (
        match Ospack_package.Package.known_versions p with
        | v :: _ -> Version.to_string v
        | [] -> failwith (name ^ ": no versions"))
    | None -> failwith ("unknown package " ^ name)
  in
  let workloads =
    List.concat_map
      (fun (name, _, _) ->
        [ name; name ^ " %gcc"; Printf.sprintf "%s@%s" name (newest name) ])
      fig10_packages
  in
  let parse s =
    match Parser.parse s with
    | Ok a -> a
    | Error e -> failwith (s ^ ": " ^ e)
  in
  let render c =
    Json.to_string (Concrete.to_json c) ^ "\n" ^ Concrete.tree_string c
  in
  let run backend ast =
    let cctx =
      Concretizer.make_ctx ~config ~obs:(Obs.create ()) ~compilers repo
    in
    time_it (fun () -> Backends.solve_full backend cctx ast)
  in
  let stats_json (s : I.stats) secs =
    Json.Obj
      [
        ("decisions", Json.Int s.I.st_decisions);
        ("propagations", Json.Int s.I.st_propagations);
        ("conflicts", Json.Int s.I.st_conflicts);
        ("restarts", Json.Int s.I.st_restarts);
        ("greedy_runs", Json.Int s.I.st_runs);
        ("iterations", Json.Int s.I.st_iterations);
        ("wall_ms", Json.fixed ~decimals:3 (1000.0 *. secs));
      ]
  in
  let rows =
    List.map
      (fun s ->
        let ast = parse s in
        let g, g_secs = run Backends.Greedy ast in
        let c, c_secs = run Backends.Clauses ast in
        (match (g.I.oc_result, c.I.oc_result) with
        | Ok gc, Ok cc ->
            if render gc <> render cc then
              failwith (s ^ ": backends disagree on a greedy-solvable spec")
        | _ -> failwith (s ^ ": workload did not solve on both backends"));
        Json.Obj
          [
            ("spec", Json.String s);
            ("greedy", stats_json g.I.oc_stats g_secs);
            ("clauses", stats_json c.I.oc_stats c_secs);
            ("agree", Json.Bool true);
          ])
      workloads
  in
  (* the §4.5 divergence: greedy dead-ends on the site-ranked provider;
     the complete backend must find the openmpi model *)
  let div_spec = "mpileaks ^mpi+hwloc ^hwloc@1.9" in
  let div_ast = parse div_spec in
  let dg, _ = run Backends.Greedy div_ast in
  let dc, _ = run Backends.Clauses div_ast in
  (match (dg.I.oc_result, dc.I.oc_result) with
  | Error _, Ok c when Concrete.satisfies c div_ast -> ()
  | Error _, Ok _ -> failwith (div_spec ^ ": clause model violates the query")
  | Ok _, _ -> failwith (div_spec ^ ": greedy unexpectedly solved it")
  | _, Error _ -> failwith (div_spec ^ ": clause backend failed to solve"));
  (* a true conflict: both backends UNSAT, clauses with a rendered core *)
  let unsat_spec = "gerris ^mpich@1.4" in
  let unsat_ast = parse unsat_spec in
  let ug, _ = run Backends.Greedy unsat_ast in
  let uc, _ = run Backends.Clauses unsat_ast in
  (match (ug.I.oc_result, uc.I.oc_result) with
  | Error _, Error _ when uc.I.oc_core <> [] -> ()
  | Error _, Error _ -> failwith (unsat_spec ^ ": empty unsat core")
  | _ -> failwith (unsat_spec ^ ": expected both backends to report UNSAT"));
  let doc =
    Json.Obj
      [
        ("format", Json.Int 1);
        ("workloads", Json.List rows);
        ( "divergence",
          Json.Obj
            [
              ("spec", Json.String div_spec);
              ("greedy", Json.String "unsat");
              ("clauses", Json.String "sat");
              ("clauses_stats", stats_json dc.I.oc_stats 0.0);
            ] );
        ( "unsat",
          Json.Obj
            [
              ("spec", Json.String unsat_spec);
              ("core_lines", Json.Int (List.length uc.I.oc_core));
            ] );
      ]
  in
  Printf.printf
    "generated %d workloads\n\
     greedy == clauses byte-identical on all %d greedy-solvable specs\n\
     divergence: %s — greedy unsat, clauses sat\n\
     unsat: %s — both unsat, %d core lines\n"
    (List.length rows) (List.length rows) div_spec unsat_spec
    (List.length uc.I.oc_core);
  doc

(* `main.exe store` — the sharded-store benchmark. Three scenarios:
   - installs: the seven Fig. 10/11 packages installed sequentially,
     accounting the index bytes the sharded layout actually wrote per
     install against what the legacy whole-file rewrite (index.json
     re-rendered after every node attempt) would have written. Fails
     unless sharding reduced total index traffic.
   - warm queries: a fresh installer loads the sharded index and serves
     ~10k find_satisfying queries; counts are asserted deterministic,
     wall time is informational.
   - ccache survival: the 21-workload concretization suite is cached,
     one leaf recipe (libdwarf — not a virtual provider) is edited, and
     the cache is reloaded under the edited universe. Fails unless the
     edit evicts the entries whose closure contains libdwarf AND leaves
     unrelated entries live — the point of per-entry Merkle
     fingerprints. *)
let store_doc () =
  let module Obs = Ospack_obs.Obs in
  let module Json = Ospack_json.Json in
  let module Vfs = Ospack_vfs.Vfs in
  let module Installer = Ospack_store.Installer in
  let module Database = Ospack_store.Database in
  let module Ccache = Ospack_concretize.Ccache in
  let module Package = Ospack_package.Package in
  let repo = Universe.repository () in
  let config = Universe.default_config in
  let compilers = Universe.compilers in
  let cctx =
    Concretizer.make_ctx ~config ~obs:(Obs.create ()) ~compilers repo
  in
  let parse s =
    match Parser.parse s with
    | Ok a -> a
    | Error e -> failwith (s ^ ": " ^ e)
  in
  let concrete s =
    match Concretizer.concretize cctx (parse s) with
    | Ok c -> c
    | Error e -> failwith (s ^ ": " ^ Ospack_concretize.Cerror.to_string e)
  in
  (* --- index bytes per install: sharded vs legacy whole-file rewrite --- *)
  let vfs = Vfs.create () in
  let inst = Installer.create ~config ~vfs ~repo ~compilers () in
  let shadow = Database.create () in
  let install_rows, sharded_total, legacy_total =
    List.fold_left
      (fun (rows, stotal, ltotal) (name, _, _) ->
        let before = Installer.index_bytes_written inst in
        let outcomes =
          match Installer.install inst (concrete name) with
          | Ok o -> o
          | Error e -> failwith (name ^ ": install failed: " ^ e)
        in
        let sharded = Installer.index_bytes_written inst - before in
        (* the legacy layout re-rendered the whole index after every node
           attempt; reconstruct exactly those bytes *)
        let legacy =
          List.fold_left
            (fun acc (o : Installer.outcome) ->
              Database.add shadow o.Installer.o_record;
              acc
              + String.length
                  (Json.to_string ~indent:2 (Database.to_json shadow)))
            0 outcomes
        in
        let row =
          Json.Obj
            [
              ("spec", Json.String name);
              ("nodes", Json.Int (List.length outcomes));
              ("index_bytes_sharded", Json.Int sharded);
              ("index_bytes_legacy", Json.Int legacy);
            ]
        in
        (row :: rows, stotal + sharded, ltotal + legacy))
      ([], 0, 0) fig10_packages
  in
  let install_rows = List.rev install_rows in
  if sharded_total >= legacy_total then
    failwith
      (Printf.sprintf
         "sharded index wrote %d bytes vs %d legacy — sharding must reduce \
          index traffic"
         sharded_total legacy_total);
  (* --- ~10k-query warm index traffic against a freshly loaded store --- *)
  let fresh = Installer.create ~config ~vfs ~repo ~compilers () in
  let load_result, load_secs = time_it (fun () -> Installer.load_index fresh) in
  let loaded =
    match load_result with
    | Ok n -> n
    | Error e -> failwith ("load_index: " ^ e)
  in
  let db = Installer.database fresh in
  if loaded <> Database.count (Installer.database inst) then
    failwith "sharded reload lost records";
  let queries = List.map (fun (n, _, _) -> parse n) fig10_packages in
  let rounds = 10_000 / List.length queries in
  let hits = ref 0 in
  let (), query_secs =
    time_it (fun () ->
        for _ = 1 to rounds do
          List.iter
            (fun q -> hits := !hits + List.length (Database.find_satisfying db q))
            queries
        done)
  in
  let query_count = rounds * List.length queries in
  if !hits < query_count then
    failwith "warm queries must hit every installed root";
  (* --- ccache survival across a single-recipe edit --- *)
  let newest name =
    match Repository.find repo name with
    | Some p -> (
        match Ospack_package.Package.known_versions p with
        | v :: _ -> Version.to_string v
        | [] -> failwith (name ^ ": no versions"))
    | None -> failwith ("unknown package " ^ name)
  in
  let workloads =
    List.concat_map
      (fun (name, _, _) ->
        [ name; name ^ " %gcc"; Printf.sprintf "%s@%s" name (newest name) ])
      fig10_packages
  in
  let cx0 = Ccache.context ~repo ~compilers ~config () in
  let cache = Ccache.create ~context:cx0 () in
  List.iter
    (fun s ->
      match Concretizer.concretize_cached ~cache cctx (parse s) with
      | Ok _ -> ()
      | Error e -> failwith (s ^ ": " ^ Ospack_concretize.Cerror.to_string e))
    workloads;
  let stored = Ccache.length cache in
  let cvfs = Vfs.create () in
  (match Ccache.save cache cvfs ~path:"/bench/ccache.json" with
  | Ok () -> ()
  | Error e -> failwith ("ccache save: " ^ e));
  (* edit one leaf recipe that provides no virtual: add a version *)
  let edited = "libdwarf" in
  let edited_repo =
    Repository.create ~name:(Repository.name repo)
      (List.map
         (fun p ->
           if p.Package.p_name = edited then
             Package.override p [ Package.version "99.9" ]
           else p)
         (Repository.all_packages repo))
  in
  let cobs = Obs.create () in
  let cx1 = Ccache.context ~repo:edited_repo ~compilers ~config () in
  let reloaded = Ccache.load ~obs:cobs ~context:cx1 cvfs ~path:"/bench/ccache.json" in
  let survivors = Ccache.length reloaded in
  let evicted = Obs.counter cobs "ccache.invalidations" in
  if survivors <= 0 then
    failwith "a single-recipe edit must leave unrelated ccache entries live";
  if evicted <= 0 then
    failwith "editing libdwarf must evict the entries whose closure holds it";
  if survivors + evicted <> stored then
    failwith
      (Printf.sprintf "ccache accounting mismatch: %d + %d <> %d" survivors
         evicted stored);
  let doc =
    Json.Obj
      [
        ("format", Json.Int 1);
        ("installs", Json.List install_rows);
        ( "index",
          Json.Obj
            [
              ("records", Json.Int (Database.count db));
              ("index_bytes_sharded", Json.Int sharded_total);
              ("index_bytes_legacy", Json.Int legacy_total);
              ("bytes_ratio_pct", Json.Int (100 * sharded_total / legacy_total));
            ] );
        ( "warm_queries",
          Json.Obj
            [
              ("records_loaded", Json.Int loaded);
              ( "load",
                Json.Obj
                  [ ("wall_ms", Json.fixed ~decimals:3 (1000.0 *. load_secs)) ]
              );
              ("count", Json.Int query_count);
              ("hits", Json.Int !hits);
              ( "serve",
                Json.Obj
                  [ ("wall_ms", Json.fixed ~decimals:3 (1000.0 *. query_secs)) ]
              );
            ] );
        ( "ccache",
          Json.Obj
            [
              ("entries", Json.Int stored);
              ("edited_recipe", Json.String edited);
              ("survivors", Json.Int survivors);
              ("evicted", Json.Int evicted);
            ] );
      ]
  in
  Printf.printf
    "installed %d packages (%d records)\n\
     index traffic: %d bytes sharded vs %d legacy (%d%%)\n\
     warm queries: %d served, %d hits\n\
     ccache: %d entries; editing %s evicted %d, %d survived\n"
    (List.length fig10_packages) (Database.count db) sharded_total
    legacy_total
    (100 * sharded_total / legacy_total)
    query_count !hits stored edited evicted survivors;
  doc

(* --- the buildcache mode: mirror fleet + splice ------------------------
   Stocks three mirrors with partial coverage of the Fig. 10 roster
   (edge carries the top-2, regional the top-4, origin everything but
   the rank-7 package), replays a seeded zipf request trace with
   transient-fault bursts, and asserts the accounting: hits + source
   builds cover every request, the trace replays byte-identically under
   the same seed, every recovery path (retry, failover, fallback) fires,
   and the popularity skew shows. Then splices a cached dyninst onto
   libelf@0.8.12 and asserts the recomputed hash, the RPATH rewiring,
   and the empty-environment loader verification. *)
let buildcache_doc () =
  let module Obs = Ospack_obs.Obs in
  let module Json = Ospack_json.Json in
  let module Vfs = Ospack_vfs.Vfs in
  let module Installer = Ospack_store.Installer in
  let module Database = Ospack_store.Database in
  let module Buildcache = Ospack_store.Buildcache in
  let module Cachefleet = Ospack_store.Cachefleet in
  let repo = Universe.repository () in
  let config = Universe.default_config in
  let compilers = Universe.compilers in
  let cctx =
    Concretizer.make_ctx ~config ~obs:(Obs.create ()) ~compilers repo
  in
  let parse s =
    match Parser.parse s with
    | Ok a -> a
    | Error e -> failwith (s ^ ": " ^ e)
  in
  let concrete s =
    match Concretizer.concretize cctx (parse s) with
    | Ok c -> c
    | Error e -> failwith (s ^ ": " ^ Ospack_concretize.Cerror.to_string e)
  in
  (* --- build the roster once and stock three mirrors from it --- *)
  let vfs = Vfs.create () in
  let inst = Installer.create ~config ~vfs ~repo ~compilers () in
  let items =
    List.map
      (fun (name, _, _) ->
        let spec = concrete name in
        (match Installer.install inst spec with
        | Ok _ -> ()
        | Error e -> failwith (name ^ ": install failed: " ^ e));
        let hash = Concrete.root_hash spec in
        match Database.find_by_hash (Installer.database inst) hash with
        | Some record ->
            ( {
                Cachefleet.it_name = name;
                it_hash = hash;
                it_build_seconds = record.Database.r_build_seconds;
              },
              record )
        | None -> failwith (name ^ ": installed root missing from the index"))
      fig10_packages
  in
  let stock root keep =
    let cache = Buildcache.create vfs ~root in
    List.iteri
      (fun rank ((item : Cachefleet.item), record) ->
        if keep rank then
          match
            Buildcache.save cache
              ~install_root:(Installer.install_root inst)
              record
          with
          | Ok () -> ()
          | Error e ->
              failwith (item.it_name ^ ": " ^ Buildcache.error_to_string e))
      items;
    cache
  in
  (* partial coverage, fleet-order fastest-first: the rank-7 package is
     on no mirror, so its requests fall back to source builds *)
  let edge = stock "/mirrors/edge" (fun r -> r < 2) in
  let regional = stock "/mirrors/regional" (fun r -> r < 4) in
  let origin = stock "/mirrors/origin" (fun r -> r < 6) in
  let trace = List.map fst items in
  let mk_fleet obs =
    Cachefleet.create ~obs
      [
        Cachefleet.mirror ~latency:0.01 ~byte_rate:8_000_000.0 ~name:"edge"
          edge;
        Cachefleet.mirror ~latency:0.03 ~byte_rate:4_000_000.0
          ~name:"regional" regional;
        Cachefleet.mirror ~latency:0.08 ~byte_rate:1_000_000.0 ~name:"origin"
          origin;
      ]
  in
  let fleet_config =
    {
      Cachefleet.default_config with
      fc_requests = 4000;
      fc_clients = 800;
      fc_fault_every = 97;
    }
  in
  let report = Cachefleet.run (mk_fleet (Obs.create ())) fleet_config trace in
  let replay = Cachefleet.run (mk_fleet Obs.disabled) fleet_config trace in
  if
    Cachefleet.report_to_string report <> Cachefleet.report_to_string replay
  then failwith "fleet trace must replay byte-identically under the same seed";
  if report.Cachefleet.rp_hits + report.rp_fallback_builds <> report.rp_requests
  then failwith "every request must end in a hit or a source build";
  if report.rp_fallback_builds <= 0 then
    failwith "the uncached rank-7 package must force source-build fallbacks";
  if report.rp_retries <= 0 || report.rp_failovers <= 0 then
    failwith "fault bursts must exercise both retry and failover";
  if Cachefleet.hit_rate report < 0.5 then
    failwith "zipf traffic against stocked mirrors must mostly hit";
  let mirror_hits =
    List.fold_left
      (fun acc (m : Cachefleet.mirror) -> acc + m.m_hits)
      0 report.rp_mirrors
  in
  if mirror_hits <> report.rp_hits then
    failwith "per-mirror hit accounting must sum to the fleet total";
  let pkg_requests name =
    try List.assoc name report.rp_by_package with Not_found -> 0
  in
  if pkg_requests "libelf" <= pkg_requests "lapack" then
    failwith "zipf rank 1 must out-request rank 7";
  (match report.rp_mirrors with
  | (e : Cachefleet.mirror) :: rest ->
      if List.exists (fun (m : Cachefleet.mirror) -> m.m_hits > e.m_hits) rest
      then failwith "the fastest mirror must serve the popular head"
  | [] -> failwith "fleet lost its mirrors");
  (* --- splice a cached dyninst onto a different libelf --- *)
  let svfs = Vfs.create () in
  let scache = Buildcache.create svfs ~root:"/bench/buildcache" in
  let sinst =
    Installer.create ~config ~vfs:svfs ~repo ~compilers ~cache:scache ()
  in
  let target = concrete "dyninst" in
  (match Installer.install sinst target with
  | Ok _ -> ()
  | Error e -> failwith ("dyninst: install failed: " ^ e));
  let pushed =
    match Installer.push_to_cache sinst scache with
    | Ok n -> n
    | Error e -> failwith ("push: " ^ e)
  in
  let replacement = concrete "libelf@0.8.12" in
  (match Installer.install sinst replacement with
  | Ok _ -> ()
  | Error e -> failwith ("libelf@0.8.12: install failed: " ^ e));
  let sp =
    match
      Installer.splice sinst ~hash:(Concrete.root_hash target) ~replacement
    with
    | Ok r -> r
    | Error e -> failwith ("splice: " ^ e)
  in
  if sp.Installer.sp_new_hash = sp.sp_old_hash then
    failwith "splicing a different dependency must recompute the root hash";
  if sp.sp_rewired <= 0 then failwith "splice must rewire at least one binary";
  if sp.sp_resolved <= 0 then
    failwith "the spliced prefix must hold loader-verified binaries";
  let doc =
    Json.Obj
      [
        ("format", Json.Int 1);
        ("fleet", Cachefleet.report_to_json report);
        ( "splice",
          Json.Obj
            [
              ("target", Json.String "dyninst");
              ("replacement", Json.String "libelf@0.8.12");
              ("replaced", Json.String sp.sp_replaced);
              ("pushed_entries", Json.Int pushed);
              ("old_hash", Json.String sp.sp_old_hash);
              ("new_hash", Json.String sp.sp_new_hash);
              ("rewired", Json.Int sp.sp_rewired);
              ("resolved", Json.Int sp.sp_resolved);
            ] );
      ]
  in
  print_string (Cachefleet.report_to_string report);
  Printf.printf "splice: dyninst %s -> %s (%d RPATHs rewired, %d binaries verified)\n"
    sp.sp_old_hash sp.sp_new_hash sp.sp_rewired sp.sp_resolved;
  doc

(* --- the env mode: unified solve vs lockfile replay --------------------
   Builds a three-root environment (the paper's tool stack) with a fresh
   unified solve at -j4, then replays its committed lockfile in a second,
   empty context and asserts the central environments invariant: at the
   same context fingerprint, solve and replay produce byte-identical
   stores, indexes, and views. A third context with a drifted site config
   must refuse the lock with a typed staleness error, and three
   single-root environments sharing one store must keep closure-exact,
   disjoint views. Wall-clock solve/replay times are informational;
   every count is exact. *)
let env_doc () =
  let module Obs = Ospack_obs.Obs in
  let module Json = Ospack_json.Json in
  let module Environment = Ospack.Environment in
  let module Context = Ospack.Context in
  let roots = [ "stat +gui"; "mpileaks ^mvapich2@1.9"; "tau" ] in
  let build_env ctx ~name ?view specs =
    let env =
      match Environment.create ctx ~name ?view () with
      | Ok e -> e
      | Error e -> failwith (name ^ ": " ^ e)
    in
    List.fold_left
      (fun env spec ->
        match Environment.add ctx env spec with
        | Ok e -> e
        | Error e -> failwith (spec ^ ": " ^ e))
      env specs
  in
  (* every file and symlink under a root; the ccache is excluded because
     only the solving context writes one *)
  let snapshot ctx root =
    Vfs.walk ctx.Context.vfs root
    |> List.filter_map (fun (path, kind) ->
           if path = "/ospack/opt/.spack-db/ccache.json" then None
           else
             match kind with
             | Vfs.File ->
                 Some
                   (path ^ " F "
                   ^ Result.get_ok (Vfs.read_file ctx.Context.vfs path))
             | Vfs.Symlink ->
                 Some
                   (path ^ " L " ^ Result.get_ok (Vfs.readlink ctx.Context.vfs path))
             | Vfs.Dir -> Some (path ^ " D"))
    |> String.concat "\n"
  in
  let db_json ctx =
    Json.to_string ~indent:2
      (Database.to_json (Installer.database ctx.Context.installer))
  in
  (* --- context A: cold unified solve + parallel install --- *)
  let a = Context.create () in
  let env_a = build_env a ~name:"prod" ~view:"/bench/view" roots in
  let report_a, cold_secs =
    time_it (fun () ->
        match Environment.install ~jobs:4 a env_a with
        | Ok r -> r
        | Error e -> failwith ("env install: " ^ e))
  in
  let nodes =
    List.length report_a.Environment.er_report.Installer.pr_outcomes
  in
  (* warm re-install: the valid lock covers these roots, so the fresh
     solve is asserted hash-identical to it inside install *)
  let _, warm_secs =
    time_it (fun () ->
        match Environment.install ~jobs:4 a env_a with
        | Ok r -> r
        | Error e -> failwith ("warm env install: " ^ e))
  in
  (* --- context B: replay the lockfile into an empty store --- *)
  let b = Context.create () in
  let env_b = build_env b ~name:"prod" ~view:"/bench/view" roots in
  let lock_bytes =
    match Vfs.read_file a.Context.vfs (Environment.lock_path "prod") with
    | Ok c -> c
    | Error e -> failwith ("lock read: " ^ Vfs.error_to_string e)
  in
  (match Vfs.write_file b.Context.vfs (Environment.lock_path "prod") lock_bytes with
  | Ok () -> ()
  | Error e -> failwith ("lock copy: " ^ Vfs.error_to_string e));
  let report_b, replay_secs =
    time_it (fun () ->
        match Environment.install_locked ~jobs:4 b env_b with
        | Ok r -> r
        | Error e ->
            failwith
              ("locked replay: " ^ Environment.locked_error_to_string e))
  in
  if snapshot a "/ospack/opt" <> snapshot b "/ospack/opt" then
    failwith "solve and lockfile replay must produce byte-identical stores";
  if db_json a <> db_json b then
    failwith "solve and lockfile replay must produce byte-identical indexes";
  if snapshot a "/bench/view" <> snapshot b "/bench/view" then
    failwith "solve and lockfile replay must produce byte-identical views";
  if report_b.Environment.er_linked <> report_a.Environment.er_linked then
    failwith "replayed view must link the same files";
  (* --- context C: drifted site config, the lock must be typed stale --- *)
  let stale_config =
    Config.layer
      [ Config.parse_exn "site.name = elsewhere"; Universe.default_config ]
  in
  let c = Context.create ~config:stale_config () in
  let env_c = build_env c ~name:"prod" roots in
  (match Vfs.write_file c.Context.vfs (Environment.lock_path "prod") lock_bytes with
  | Ok () -> ()
  | Error e -> failwith ("lock copy: " ^ Vfs.error_to_string e));
  (match Environment.install_locked c env_c with
  | Error (Environment.Locked_lock (Environment.Lock_stale _)) -> ()
  | Error e ->
      failwith
        ("drifted config must be Lock_stale, got "
        ^ Environment.locked_error_to_string e)
  | Ok _ -> failwith "a stale lockfile must never replay");
  if Database.count (Installer.database c.Context.installer) <> 0 then
    failwith "a refused stale lock must not install anything";
  (* --- N single-root envs, one store, closure-exact views --- *)
  let d = Context.create () in
  let shared =
    List.map
      (fun (name, root) ->
        let env = build_env d ~name ~view:("/views/" ^ name) [ root ] in
        match Environment.install ~jobs:4 d env with
        | Ok r ->
            let links = r.Environment.er_linked in
            let closure =
              List.fold_left
                (fun acc (_, c) -> acc + Concrete.node_count c)
                0 r.Environment.er_roots
            in
            (name, root, closure, links)
        | Error e -> failwith (name ^ ": " ^ e))
      [ ("tools", "dyninst"); ("debug", "libdwarf"); ("math", "gsl") ]
  in
  let closure_total =
    List.fold_left (fun acc (_, _, c, _) -> acc + c) 0 shared
  in
  let store_records = Database.count (Installer.database d.Context.installer) in
  if store_records >= closure_total then
    failwith "overlapping env closures must share store records";
  List.iter
    (fun (name, _, _, links) ->
      if links <= 0 then failwith (name ^ ": env view linked nothing"))
    shared;
  let doc =
    Json.Obj
      [
        ("format", Json.Int 1);
        ( "unified",
          Json.Obj
            [
              ("roots", Json.Int (List.length roots));
              ("nodes", Json.Int nodes);
              ("jobs", Json.Int report_a.Environment.er_report.Installer.pr_jobs);
              ("view_links", Json.Int report_a.Environment.er_linked);
              ( "solve_cold",
                Json.Obj
                  [ ("wall_ms", Json.fixed ~decimals:3 (1000.0 *. cold_secs)) ]
              );
              ( "solve_warm",
                Json.Obj
                  [ ("wall_ms", Json.fixed ~decimals:3 (1000.0 *. warm_secs)) ]
              );
            ] );
        ( "replay",
          Json.Obj
            [
              ("nodes", Json.Int (List.length report_b.Environment.er_report.Installer.pr_outcomes));
              ("byte_identical", Json.Bool true);
              ("stale_rejected", Json.Bool true);
              ( "install",
                Json.Obj
                  [ ("wall_ms", Json.fixed ~decimals:3 (1000.0 *. replay_secs)) ]
              );
            ] );
        ( "shared_store",
          Json.Obj
            [
              ("envs", Json.Int (List.length shared));
              ("store_records", Json.Int store_records);
              ("closure_nodes_total", Json.Int closure_total);
              ( "views",
                Json.List
                  (List.map
                     (fun (name, root, closure, links) ->
                       Json.Obj
                         [
                           ("env", Json.String name);
                           ("root", Json.String root);
                           ("closure_nodes", Json.Int closure);
                           ("view_links", Json.Int links);
                         ])
                     shared) );
            ] );
      ]
  in
  Printf.printf
    "unified solve: %d roots -> %d nodes at -j4, %d files linked\n\
     lockfile replay: byte-identical store/index/view; stale lock refused \
     typed\n\
     shared store: %d envs, %d records for %d closure nodes\n"
    (List.length roots) nodes report_a.Environment.er_linked
    (List.length shared) store_records closure_total;
  doc

let default_run () =
  Printf.printf
    "ospack benchmark harness — reproduces every table and figure of the \
     Spack SC'15 evaluation\n";
  table1 ();
  table2 ();
  table3 ();
  fig5 ();
  fig8 ();
  fig9 ();
  let times = simulate_builds () in
  fig10 times;
  fig11 times;
  ablation ();
  micro ();
  print_newline ()

(* ------------------------------------------------------------------ *)

(* The baseline-gated modes: each generates its BENCH document in memory
   (running all of its internal assertions along the way), then either
   writes it or diffs it against the committed baseline under the
   per-metric tolerance policy (Ospack_obs.Baseline). Re-baselining is
   explicit — --update-baselines (or an explicit scratch PATH) writes,
   --check never does. --inject-cost-pct scales every virtual-time
   metric by +P% before the diff; because the scheduler is deterministic,
   a uniform +P% per-node cost scales the whole schedule linearly without
   reordering it, so this is exactly the document a +P% cost regression
   would produce — the gate's self-test. *)

let bench_modes =
  [
    ("obs", obs_doc, "BENCH_obs.json");
    ("parallel", parallel_doc, "BENCH_parallel.json");
    ("concretize", concretize_doc, "BENCH_concretize.json");
    ("solve", solve_doc, "BENCH_solve.json");
    ("store", store_doc, "BENCH_store.json");
    ("buildcache", buildcache_doc, "BENCH_buildcache.json");
    ("env", env_doc, "BENCH_env.json");
  ]

(* the virtual-time leaves a per-node cost increase scales; counts,
   speedups, and efficiency ratios are invariant under uniform scaling *)
let time_fields =
  [
    "build_seconds"; "total_seconds"; "self_seconds"; "serial_seconds";
    "makespan_seconds"; "cp_seconds";
  ]

let rec inject_costs pct json =
  let module Json = Ospack_json.Json in
  match json with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             match v with
             | Json.Float f when List.mem k time_fields ->
                 (k, Json.fixed (f *. (1.0 +. (pct /. 100.0))))
             | v -> (k, inject_costs pct v))
           fields)
  | Json.List items -> Json.List (List.map (inject_costs pct) items)
  | leaf -> leaf

let usage () =
  prerr_endline
    "usage: main.exe [MODE [PATH] [--check | --update-baselines] \
     [--inject-cost-pct P]]\n\
     modes: obs | parallel | concretize | solve | store | buildcache | env \
     (no mode: the full table/figure run)\n\
     MODE PATH            write the document to an explicit scratch PATH\n\
     MODE --check         diff the freshly generated document against the \
     committed baseline; never writes\n\
     MODE --update-baselines  write the committed baseline (explicit \
     re-baselining)\n\
     --inject-cost-pct P  scale every virtual-time metric by +P% first \
     (gate self-test)";
  exit 2

let run_mode name doc_fn default_path args =
  let module Json = Ospack_json.Json in
  let module Baseline = Ospack_obs.Baseline in
  let check = ref false and update = ref false in
  let inject = ref 0.0 and path = ref None in
  let rec parse = function
    | [] -> ()
    | "--check" :: rest ->
        check := true;
        parse rest
    | "--update-baselines" :: rest ->
        update := true;
        parse rest
    | "--inject-cost-pct" :: p :: rest ->
        (match float_of_string_opt p with
        | Some f -> inject := f
        | None -> usage ());
        parse rest
    | p :: rest when !path = None && String.length p > 0 && p.[0] <> '-' ->
        path := Some p;
        parse rest
    | _ -> usage ()
  in
  parse args;
  if !check && !update then usage ();
  let doc = doc_fn () in
  let doc = if !inject <> 0.0 then inject_costs !inject doc else doc in
  let target = Option.value !path ~default:default_path in
  if !check then begin
    if not (Sys.file_exists target) then begin
      Printf.eprintf "%s: no baseline at %s (run --update-baselines first)\n"
        name target;
      exit 1
    end;
    let ic = open_in target in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string content with
    | Error e ->
        Printf.eprintf "%s: unreadable baseline %s: %s\n" name target e;
        exit 1
    | Ok baseline -> (
        let findings = Baseline.compare_docs ~baseline ~current:doc in
        print_string (Baseline.report findings);
        match Baseline.regressions findings with
        | [] -> Printf.printf "%s: within tolerance of %s\n" name target
        | r ->
            Printf.eprintf "%s: %d regression(s) against %s\n" name
              (List.length r) target;
            exit 1)
  end
  else if !update || !path <> None then begin
    let oc = open_out target in
    output_string oc (Json.to_string ~indent:2 doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" target
  end
  else usage ()

let () =
  match Array.to_list Sys.argv with
  | [] | [ _ ] -> default_run ()
  | _ :: mode :: rest -> (
      match List.find_opt (fun (n, _, _) -> n = mode) bench_modes with
      | Some (name, doc_fn, default_path) ->
          run_mode name doc_fn default_path rest
      | None ->
          if rest = [] then default_run () else usage ())
