type kind = File | Dir | Symlink

type node =
  | Nfile of string ref
  | Ndir of (string, node) Hashtbl.t
  | Nlink of string

type error =
  | Not_found of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Already_exists of string
  | Symlink_loop of string
  | Not_a_symlink of string
  | Fault_injected of { fi_op : string; fi_path : string }

let error_to_string = function
  | Not_found p -> Printf.sprintf "no such file or directory: %s" p
  | Not_a_directory p -> Printf.sprintf "not a directory: %s" p
  | Is_a_directory p -> Printf.sprintf "is a directory: %s" p
  | Already_exists p -> Printf.sprintf "file exists: %s" p
  | Symlink_loop p -> Printf.sprintf "too many levels of symbolic links: %s" p
  | Not_a_symlink p -> Printf.sprintf "not a symbolic link: %s" p
  | Fault_injected { fi_op; fi_path } ->
      Printf.sprintf "fault injected: %s %s" fi_op fi_path

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type counters = {
  mutable stat : int;
  mutable read : int;
  mutable write : int;
  mutable mkdir : int;
  mutable link : int;
  mutable unlink : int;
  mutable readdir : int;
}

type fault_mode = Fail_op | Crash

type fault_plan = {
  fp_mode : fault_mode;
  fp_at : int list;
  fp_on_barrier : unit -> unit;
  mutable fp_crashed : bool;
}

type t = {
  root : (string, node) Hashtbl.t;
  c : counters;
  mutable barriers : int;
  mutable plan : fault_plan option;
}

let create () =
  {
    root = Hashtbl.create 16;
    c =
      { stat = 0; read = 0; write = 0; mkdir = 0; link = 0; unlink = 0;
        readdir = 0 };
    barriers = 0;
    plan = None;
  }

let counters fs = fs.c

let write_barriers fs = fs.barriers

let set_fault_plan fs ?(mode = Fail_op) ?(on_barrier = fun () -> ()) at =
  fs.barriers <- 0;
  fs.plan <-
    Some { fp_mode = mode; fp_at = at; fp_on_barrier = on_barrier;
           fp_crashed = false }

let clear_fault_plan fs = fs.plan <- None

(* A write barrier: the durability boundary before a write_file or rename
   mutates anything. The counter ticks on every barrier regardless of plan;
   with a plan armed, a planned barrier fails the op (before mutation), and
   in Crash mode every mutating op after the kill point fails too — the
   process is "dead", nothing further reaches the disk. *)
let barrier fs ~op ~path =
  fs.barriers <- fs.barriers + 1;
  match fs.plan with
  | None -> Ok ()
  | Some p ->
      p.fp_on_barrier ();
      if p.fp_crashed || List.mem fs.barriers p.fp_at then begin
        if p.fp_mode = Crash then p.fp_crashed <- true;
        Error (Fault_injected { fi_op = op; fi_path = Vpath.normalize path })
      end
      else Ok ()

let check_crashed fs ~op ~path =
  match fs.plan with
  | Some p when p.fp_crashed ->
      Error (Fault_injected { fi_op = op; fi_path = Vpath.normalize path })
  | _ -> Ok ()

let reset_counters fs =
  let c = fs.c in
  c.stat <- 0;
  c.read <- 0;
  c.write <- 0;
  c.mkdir <- 0;
  c.link <- 0;
  c.unlink <- 0;
  c.readdir <- 0

let max_hops = 40

let ( let* ) = Result.bind

(* Walk a path down from the root, following symlinks (including one at the
   final component when [follow_last]). Returns the canonical path and node.
   [hops] bounds total symlink traversals across the whole resolution. *)
let rec lookup fs ~follow_last ~hops path =
  let components = Vpath.split (Vpath.normalize path) in
  let rec step dir dir_path remaining hops =
    fs.c.stat <- fs.c.stat + 1;
    match remaining with
    | [] -> Ok (dir_path, Ndir dir, hops)
    | name :: rest -> (
        match Hashtbl.find_opt dir name with
        | None -> Error (Not_found (Vpath.join dir_path name))
        | Some node -> (
            let here = Vpath.join dir_path name in
            match node with
            | Ndir d -> step d here rest hops
            | Nfile _ when rest = [] -> Ok (here, node, hops)
            | Nfile _ -> Error (Not_a_directory here)
            | Nlink target ->
                if rest = [] && not follow_last then Ok (here, node, hops)
                else if hops <= 0 then Error (Symlink_loop here)
                else
                  let resolved_target =
                    Vpath.join (Vpath.dirname here) target
                  in
                  let full =
                    Vpath.normalize
                      (resolved_target ^ "/" ^ String.concat "/" rest)
                  in
                  lookup fs ~follow_last ~hops:(hops - 1) full))
  in
  step fs.root "/" components hops

let lookup_node fs ~follow_last path =
  match lookup fs ~follow_last ~hops:max_hops path with
  | Ok (p, n, _) -> Ok (p, n)
  | Error e -> Error e

(* Find (or create, with [create_missing]) the parent directory table of a
   path; returns the parent table and the final component name. *)
let parent_dir fs ~create_missing path =
  let norm = Vpath.normalize path in
  match List.rev (Vpath.split norm) with
  | [] -> Error (Is_a_directory "/")
  | name :: rev_parents ->
      let parents = List.rev rev_parents in
      let rec descend dir dir_path = function
        | [] -> Ok (dir, name)
        | c :: rest -> (
            fs.c.stat <- fs.c.stat + 1;
            let here = Vpath.join dir_path c in
            match Hashtbl.find_opt dir c with
            | Some (Ndir d) -> descend d here rest
            | Some (Nlink _) -> (
                (* resolve the link, then continue from there *)
                match lookup_node fs ~follow_last:true here with
                | Ok (_, Ndir d) -> descend d here rest
                | Ok _ -> Error (Not_a_directory here)
                | Error e -> Error e)
            | Some (Nfile _) -> Error (Not_a_directory here)
            | None ->
                if create_missing then begin
                  fs.c.mkdir <- fs.c.mkdir + 1;
                  let d = Hashtbl.create 8 in
                  Hashtbl.replace dir c (Ndir d);
                  descend d here rest
                end
                else Error (Not_found here))
      in
      descend fs.root "/" parents

let mkdir_p fs path =
  let* () = check_crashed fs ~op:"mkdir" ~path in
  if Vpath.normalize path = "/" then Ok ()
  else
    let* dir, name = parent_dir fs ~create_missing:true path in
    match Hashtbl.find_opt dir name with
    | Some (Ndir _) -> Ok ()
    | Some _ -> Error (Not_a_directory (Vpath.normalize path))
    | None ->
        fs.c.mkdir <- fs.c.mkdir + 1;
        Hashtbl.replace dir name (Ndir (Hashtbl.create 8));
        Ok ()

let write_file fs path content =
  let* () = barrier fs ~op:"write" ~path in
  let* dir, name = parent_dir fs ~create_missing:true path in
  fs.c.write <- fs.c.write + 1;
  match Hashtbl.find_opt dir name with
  | Some (Ndir _) -> Error (Is_a_directory (Vpath.normalize path))
  | Some (Nfile r) ->
      r := content;
      Ok ()
  | Some (Nlink _) -> (
      match lookup_node fs ~follow_last:true path with
      | Ok (_, Nfile r) ->
          r := content;
          Ok ()
      | Ok (p, Ndir _) -> Error (Is_a_directory p)
      | Ok (p, Nlink _) -> Error (Symlink_loop p)
      | Error (Not_found _) ->
          (* dangling link: write creates the target *)
          let* target =
            match Hashtbl.find_opt dir name with
            | Some (Nlink t) -> Ok (Vpath.join (Vpath.dirname (Vpath.normalize path)) t)
            | _ -> Error (Not_found path)
          in
          let* tdir, tname = parent_dir fs ~create_missing:true target in
          Hashtbl.replace tdir tname (Nfile (ref content));
          Ok ()
      | Error e -> Error e)
  | None ->
      Hashtbl.replace dir name (Nfile (ref content));
      Ok ()

let read_file fs path =
  fs.c.read <- fs.c.read + 1;
  match lookup_node fs ~follow_last:true path with
  | Ok (_, Nfile r) -> Ok !r
  | Ok (p, Ndir _) -> Error (Is_a_directory p)
  | Ok (p, Nlink _) -> Error (Symlink_loop p)
  | Error e -> Error e

let symlink fs ~target ~link =
  let* () = check_crashed fs ~op:"symlink" ~path:link in
  let* dir, name = parent_dir fs ~create_missing:true link in
  fs.c.link <- fs.c.link + 1;
  match Hashtbl.find_opt dir name with
  | Some _ -> Error (Already_exists (Vpath.normalize link))
  | None ->
      Hashtbl.replace dir name (Nlink target);
      Ok ()

let readlink fs path =
  match lookup_node fs ~follow_last:false path with
  | Ok (_, Nlink target) -> Ok target
  | Ok (p, _) -> Error (Not_a_symlink p)
  | Error e -> Error e

let resolve fs path =
  match lookup fs ~follow_last:true ~hops:max_hops path with
  | Ok (p, _, _) -> Ok p
  | Error e -> Error e

let kind_of fs path =
  match lookup_node fs ~follow_last:false path with
  | Ok (_, Nfile _) -> Some File
  | Ok (_, Ndir _) -> Some Dir
  | Ok (_, Nlink _) -> Some Symlink
  | Error _ -> None

let exists fs path = Result.is_ok (resolve fs path)

let is_dir fs path =
  match lookup_node fs ~follow_last:true path with
  | Ok (_, Ndir _) -> true
  | _ -> false

let is_file fs path =
  match lookup_node fs ~follow_last:true path with
  | Ok (_, Nfile _) -> true
  | _ -> false

let ls fs path =
  fs.c.readdir <- fs.c.readdir + 1;
  match lookup_node fs ~follow_last:true path with
  | Ok (_, Ndir d) ->
      Ok (Hashtbl.fold (fun k _ acc -> k :: acc) d [] |> List.sort compare)
  | Ok (p, _) -> Error (Not_a_directory p)
  | Error e -> Error e

let walk fs path =
  let rec go acc dir_path d =
    let entries =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) d []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.fold_left
      (fun acc (name, node) ->
        let here = Vpath.join dir_path name in
        match node with
        | Nfile _ -> (here, File) :: acc
        | Nlink _ -> (here, Symlink) :: acc
        | Ndir d' -> go ((here, Dir) :: acc) here d')
      acc entries
  in
  match lookup_node fs ~follow_last:true path with
  | Ok (p, Ndir d) -> List.rev (go [] p d)
  | _ -> []

let rename fs ~src ~dst =
  let* () = barrier fs ~op:"rename" ~path:dst in
  let* sdir, sname = parent_dir fs ~create_missing:false src in
  match Hashtbl.find_opt sdir sname with
  | None -> Error (Not_found (Vpath.normalize src))
  | Some node ->
      let* ddir, dname = parent_dir fs ~create_missing:true dst in
      let* () =
        match Hashtbl.find_opt ddir dname with
        | None -> Ok ()
        | Some (Ndir d) -> (
            match node with
            | Ndir _ when Hashtbl.length d = 0 -> Ok ()
            | _ -> Error (Is_a_directory (Vpath.normalize dst)))
        | Some _ -> (
            match node with
            | Ndir _ -> Error (Not_a_directory (Vpath.normalize dst))
            | _ -> Ok ())
      in
      fs.c.write <- fs.c.write + 1;
      fs.c.unlink <- fs.c.unlink + 1;
      Hashtbl.remove sdir sname;
      Hashtbl.replace ddir dname node;
      Ok ()

let remove fs ?(recursive = false) path =
  let* () = check_crashed fs ~op:"remove" ~path in
  let* dir, name = parent_dir fs ~create_missing:false path in
  fs.c.unlink <- fs.c.unlink + 1;
  match Hashtbl.find_opt dir name with
  | None -> Error (Not_found (Vpath.normalize path))
  | Some (Ndir d) when Hashtbl.length d > 0 && not recursive ->
      Error (Already_exists (Vpath.normalize path))
  | Some _ ->
      Hashtbl.remove dir name;
      Ok ()
