(** An in-memory filesystem with directories, files, and symbolic links.

    This is the substrate for install trees, views, extension activation,
    and provenance files. Real Spack manipulates a POSIX filesystem; the
    virtual one keeps the test suite hermetic and lets the build simulator
    charge per-operation latency (NFS vs. node-local tmp, paper §3.5.3) via
    {!counters}.

    All paths are absolute; they are normalized with {!Vpath.normalize}
    on entry. Symlink targets may be absolute or relative to the link's
    directory. Lookups follow symlinks in intermediate components;
    final-component behaviour is documented per function. *)

type t

type kind = File | Dir | Symlink

type error =
  | Not_found of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Already_exists of string
  | Symlink_loop of string
  | Not_a_symlink of string
  | Fault_injected of { fi_op : string; fi_path : string }
      (** An armed fault plan killed this operation (test-only; see
          {!set_fault_plan}). *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type counters = {
  mutable stat : int;  (** path components traversed *)
  mutable read : int;
  mutable write : int;
  mutable mkdir : int;
  mutable link : int;
  mutable unlink : int;
  mutable readdir : int;
}

val create : unit -> t
(** An empty filesystem containing only the root directory. *)

val counters : t -> counters
(** Live operation counters (shared, mutable). *)

val reset_counters : t -> unit

(** {1 Deterministic fault injection}

    Write barriers are the durability boundaries of the filesystem: one
    per {!write_file} and one per {!rename}, counted 1-based in call
    order. A fault plan kills selected barriers deterministically so
    persistence code can be torture-tested at every boundary. This is a
    test-only hook — production code never arms a plan, and an unarmed
    filesystem behaves identically (the barrier counter still ticks). *)

type fault_mode =
  | Fail_op  (** Only the planned barriers fail (a transient I/O error);
                 later operations succeed again. *)
  | Crash  (** The first planned barrier fails {e before mutating
               anything}, and every subsequent mutating operation
               (write, rename, mkdir, symlink, remove) fails too — the
               process is dead at that boundary, simulating a kill. *)

val set_fault_plan :
  t -> ?mode:fault_mode -> ?on_barrier:(unit -> unit) -> int list -> unit
(** Arm a fault plan: the listed 1-based barrier indices fail (an empty
    list is a count-only plan). Resets {!write_barriers} to 0. The
    [on_barrier] callback fires on every barrier while the plan is armed
    — the hook tests use to mirror the counter into an obs sink without
    making vfs depend on obs. Default mode is {!Fail_op}. *)

val clear_fault_plan : t -> unit
(** Disarm any fault plan; all operations succeed again. *)

val write_barriers : t -> int
(** Write barriers crossed since creation (or since the last
    {!set_fault_plan}). Counts always, plan or no plan. *)

val mkdir_p : t -> string -> (unit, error) result
(** Create a directory and any missing parents. Succeeds if the directory
    already exists; fails with [Not_a_directory] if a file is in the way. *)

val write_file : t -> string -> string -> (unit, error) result
(** Create or overwrite a file, creating parent directories. Fails with
    [Is_a_directory] when the path names a directory. Follows a final
    symlink (writes through it). *)

val read_file : t -> string -> (string, error) result
(** Follows symlinks. *)

val symlink : t -> target:string -> link:string -> (unit, error) result
(** Create a symbolic link at [link] pointing to [target] (which need not
    exist). Parent directories are created. Fails with [Already_exists] if
    anything is already at [link]. *)

val readlink : t -> string -> (string, error) result
(** The raw target of a symlink (no resolution). *)

val resolve : t -> string -> (string, error) result
(** Fully resolve a path, following symlinks everywhere, to the canonical
    path of an existing node. Loop-safe ([Symlink_loop] after 40 hops). *)

val kind_of : t -> string -> kind option
(** Kind of the node at a path {e without} following a final symlink.
    [None] when nothing is there. *)

val exists : t -> string -> bool
(** Does the path resolve (following symlinks) to an existing node? *)

val is_dir : t -> string -> bool
val is_file : t -> string -> bool

val ls : t -> string -> (string list, error) result
(** Sorted entry names of a directory (follows a final symlink). *)

val walk : t -> string -> (string * kind) list
(** All paths strictly under a directory (recursive, depth-first, sorted),
    with their kinds; symlinks are reported, not followed. Empty list when
    the path is not a directory. *)

val rename : t -> src:string -> dst:string -> (unit, error) result
(** Atomically move the node at [src] (file, symlink, or directory — the
    symlink itself, not its target) to [dst], creating [dst]'s parent
    directories. An existing file or symlink at [dst] is replaced in one
    step (the POSIX rename contract behind write-then-rename persistence:
    readers see either the old or the new content, never a partial file).
    A directory at [dst] must be empty and can only be replaced by a
    directory. *)

val remove : t -> ?recursive:bool -> string -> (unit, error) result
(** Remove a file, symlink (not its target), or directory. Non-empty
    directories require [~recursive:true]. *)
