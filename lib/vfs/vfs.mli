(** An in-memory filesystem with directories, files, and symbolic links.

    This is the substrate for install trees, views, extension activation,
    and provenance files. Real Spack manipulates a POSIX filesystem; the
    virtual one keeps the test suite hermetic and lets the build simulator
    charge per-operation latency (NFS vs. node-local tmp, paper §3.5.3) via
    {!counters}.

    All paths are absolute; they are normalized with {!Vpath.normalize}
    on entry. Symlink targets may be absolute or relative to the link's
    directory. Lookups follow symlinks in intermediate components;
    final-component behaviour is documented per function. *)

type t

type kind = File | Dir | Symlink

type error =
  | Not_found of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Already_exists of string
  | Symlink_loop of string
  | Not_a_symlink of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type counters = {
  mutable stat : int;  (** path components traversed *)
  mutable read : int;
  mutable write : int;
  mutable mkdir : int;
  mutable link : int;
  mutable unlink : int;
  mutable readdir : int;
}

val create : unit -> t
(** An empty filesystem containing only the root directory. *)

val counters : t -> counters
(** Live operation counters (shared, mutable). *)

val reset_counters : t -> unit

val mkdir_p : t -> string -> (unit, error) result
(** Create a directory and any missing parents. Succeeds if the directory
    already exists; fails with [Not_a_directory] if a file is in the way. *)

val write_file : t -> string -> string -> (unit, error) result
(** Create or overwrite a file, creating parent directories. Fails with
    [Is_a_directory] when the path names a directory. Follows a final
    symlink (writes through it). *)

val read_file : t -> string -> (string, error) result
(** Follows symlinks. *)

val symlink : t -> target:string -> link:string -> (unit, error) result
(** Create a symbolic link at [link] pointing to [target] (which need not
    exist). Parent directories are created. Fails with [Already_exists] if
    anything is already at [link]. *)

val readlink : t -> string -> (string, error) result
(** The raw target of a symlink (no resolution). *)

val resolve : t -> string -> (string, error) result
(** Fully resolve a path, following symlinks everywhere, to the canonical
    path of an existing node. Loop-safe ([Symlink_loop] after 40 hops). *)

val kind_of : t -> string -> kind option
(** Kind of the node at a path {e without} following a final symlink.
    [None] when nothing is there. *)

val exists : t -> string -> bool
(** Does the path resolve (following symlinks) to an existing node? *)

val is_dir : t -> string -> bool
val is_file : t -> string -> bool

val ls : t -> string -> (string list, error) result
(** Sorted entry names of a directory (follows a final symlink). *)

val walk : t -> string -> (string * kind) list
(** All paths strictly under a directory (recursive, depth-first, sorted),
    with their kinds; symlinks are reported, not followed. Empty list when
    the path is not a directory. *)

val rename : t -> src:string -> dst:string -> (unit, error) result
(** Atomically move the node at [src] (file, symlink, or directory — the
    symlink itself, not its target) to [dst], creating [dst]'s parent
    directories. An existing file or symlink at [dst] is replaced in one
    step (the POSIX rename contract behind write-then-rename persistence:
    readers see either the old or the new content, never a partial file).
    A directory at [dst] must be empty and can only be replaced by a
    directory. *)

val remove : t -> ?recursive:bool -> string -> (unit, error) result
(** Remove a file, symlink (not its target), or directory. Non-empty
    directories require [~recursive:true]. *)
