(** Environments: named manifests of root specs with a unified solve, a
    fingerprinted lockfile, and an optional merged view — the paper's
    many-configurations-one-store story (§2, §6) with the esy-style
    solve/fetch split.

    {b Solve} — {!install} concretizes {e all} roots in one pass through
    {!Ospack_concretize.Multiroot} (shared constraint context, sub-DAGs
    merged by hash, memoized in the ordinary concretization cache), so
    two roots can never lock conflicting versions of a shared dependency.
    The result is written to the lockfile and installed through the
    parallel scheduler in a single DAG-merged batch.

    {b Fetch} — {!install_locked} replays the committed lockfile without
    solving anything. A lockfile is trusted only while its recorded
    context fingerprint (universe + toolchains + config + backend, plus a
    per-spec Merkle fingerprint over each closure's recipes) still
    matches: any drift is a typed {!lock_error.Lock_stale}, tampering is
    {!lock_error.Lock_corrupt}, and neither ever yields a partial
    install. At an unchanged fingerprint, a fresh solve and a lockfile
    replay produce byte-identical stores — {!install} asserts this
    whenever it re-solves over a valid lock.

    {b Views} — an environment's view links exactly its locked closure
    ({!Commands.view_closure}), so N environments share one store with
    disjoint, closure-exact views.

    All durable files (manifest, lockfile) are written with the
    write-then-rename protocol; {!torture} kills the whole lifecycle at
    every filesystem barrier and checks old-or-new integrity plus
    recovery convergence. *)

type t = {
  env_name : string;
  env_roots : string list;
      (** canonical printed root specs, in insertion order *)
  env_view : string option;  (** view root, when the env keeps a view *)
}

val envs_root : string
val manifest_path : string -> string
val lock_path : string -> string

val lock_format : int
(** Current lockfile format (2). Format-1 lockfiles (bare spec lists) are
    migrated in place on first read. *)

val create :
  Context.t -> name:string -> ?view:string -> unit -> (t, string) result

val load : Context.t -> name:string -> (t, string) result
val list_envs : Context.t -> string list

val add : Context.t -> t -> string -> (t, string) result
(** Append a root. The spec is canonicalized through the parser and
    printer before comparing and storing, so [mpileaks@1.0] and
    [mpileaks @1.0] are the same root. *)

val remove_root : Context.t -> t -> string -> (t, string) result

(** {1 Lockfile} *)

type lock_error =
  | Lock_missing  (** no lockfile yet *)
  | Lock_corrupt of string
      (** unreadable, checksum mismatch, or internally inconsistent
          (e.g. a recorded hash that does not match its DAG) *)
  | Lock_stale of {
      lock_fp : string;  (** fingerprint recorded in the lockfile *)
      current_fp : string;  (** this context's fingerprint *)
      reason : string;
    }
      (** the context drifted since the lock was written — re-solve with
          {!install}; never silently replayed *)

val lock_error_to_string : lock_error -> string

type lock = {
  lk_fingerprint : string;
  lk_roots : string list;
  lk_specs : (string * Ospack_spec.Concrete.t) list;
      (** (canonical root, its concrete sub-DAG), in manifest order *)
}

val read_lock : Context.t -> t -> (lock, lock_error) result
(** Read and validate the lockfile: checksum, per-spec hash consistency,
    context fingerprint, per-spec Merkle recipe fingerprints, and that
    the locked roots still match the manifest. Format-1 files are
    migrated to format 2 (atomically) and adopted at the current
    fingerprint. *)

val write_lock :
  Context.t ->
  t ->
  (string * Ospack_spec.Concrete.t) list ->
  (unit, string) result

val locked_specs :
  Context.t -> t -> (Ospack_spec.Concrete.t list, string) result
(** The locked concrete specs, with the lock error rendered to a string
    (convenience for callers that do not branch on staleness). *)

(** {1 Solve / fetch} *)

val concretize_roots :
  Context.t -> t -> ((string * Ospack_spec.Concrete.t) list, string) result
(** The unified solve alone: one (canonical root, concrete) pair per
    root, nothing installed and no lockfile written. *)

type report = {
  er_roots : (string * Ospack_spec.Concrete.t) list;
  er_report : Ospack_store.Installer.parallel_report;
  er_linked : int;  (** files linked into the env view (0 without one) *)
}

val install : ?jobs:int -> Context.t -> t -> (report, string) result
(** Unified solve, lockfile write, then one parallel install of the whole
    merged environment DAG ([jobs] workers, default 1), then view sync.
    When a valid lockfile already covers these roots at this fingerprint,
    the fresh solve is asserted hash-identical to it. *)

type locked_error =
  | Locked_lock of lock_error  (** the lockfile was not replayable *)
  | Locked_failed of string  (** the install itself failed *)

val locked_error_to_string : locked_error -> string

val install_locked :
  ?jobs:int -> Context.t -> t -> (report, locked_error) result
(** Replay the lockfile: no solve, no lock rewrite. Fails typed before
    touching the store when the lock is missing, corrupt, or stale. *)

val sync_view : Context.t -> t -> (int, string) result
(** Re-link the environment view from the current lockfile; returns the
    number of files linked (0 when the env has no view). *)

val status : Context.t -> t -> (string * bool) list
(** Per root: is it installed? Judged against the locked hashes when a
    valid lockfile exists, else by abstract satisfaction. *)

(** {1 Torture} *)

type torture_report = {
  et_jobs : int;
  et_barriers : int;  (** write barriers in the reference lifecycle *)
  et_kills : int;  (** kill points exercised *)
  et_manifest_intact : int;
      (** kills at which a (previous) manifest existed and was intact *)
  et_lock_intact : int;
}

val torture_report_to_string : torture_report -> string

val torture :
  ?jobs:int ->
  ?every:int ->
  ?config:Ospack_config.Config.t ->
  ?backend:Ospack_concretize.Backends.t ->
  name:string ->
  ?view:string ->
  roots:string list ->
  unit ->
  (torture_report, string) result
(** Run the env lifecycle (create, add each root, install) to completion
    counting write barriers, then replay it on a fresh filesystem killed
    at every [every]-th barrier ({!Ospack_vfs.Vfs.Crash} mode). At each
    kill point the manifest and lockfile must be absent or a complete
    previous version (never torn), and a fresh context over the crashed
    filesystem must re-run the lifecycle to a store index and lockfile
    byte-identical to the reference run. *)
