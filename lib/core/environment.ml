module Vfs = Ospack_vfs.Vfs
module Json = Ospack_json.Json
module Ast = Ospack_spec.Ast
module Parser = Ospack_spec.Parser
module Printer = Ospack_spec.Printer
module Concrete = Ospack_spec.Concrete
module Installer = Ospack_store.Installer
module Database = Ospack_store.Database
module Ccache = Ospack_concretize.Ccache
module Multiroot = Ospack_concretize.Multiroot
module Sha256 = Ospack_hash.Sha256
module Obs = Ospack_obs.Obs

type t = {
  env_name : string;
  env_roots : string list;  (** canonical printed forms, insertion order *)
  env_view : string option;
}

let envs_root = "/ospack/envs"

let manifest_path name = Printf.sprintf "%s/%s/env.json" envs_root name
let lock_path name = Printf.sprintf "%s/%s/lock.json" envs_root name

let lock_format = 2

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       name

let ( let* ) = Result.bind

(* Every durable file an environment owns goes through the same
   write-then-rename protocol as the store index and the ccache: a crash
   at any barrier leaves the previous file intact (the torture sweep
   below kills each one). *)
let write_atomic vfs path content =
  let tmp = path ^ ".tmp" in
  match Vfs.write_file vfs tmp content with
  | Error e -> Error (Vfs.error_to_string e)
  | Ok () -> (
      match Vfs.rename vfs ~src:tmp ~dst:path with
      | Ok () -> Ok ()
      | Error e -> Error (Vfs.error_to_string e))

let persist (ctx : Context.t) t =
  let manifest =
    Json.Obj
      [
        ("name", Json.String t.env_name);
        ("roots", Json.List (List.map (fun r -> Json.String r) t.env_roots));
        ( "view",
          match t.env_view with
          | Some v -> Json.String v
          | None -> Json.Null );
      ]
  in
  let* () =
    write_atomic ctx.Context.vfs
      (manifest_path t.env_name)
      (Json.to_string ~indent:2 manifest ^ "\n")
  in
  Ok t

let create (ctx : Context.t) ~name ?view () =
  if not (valid_name name) then
    Error (Printf.sprintf "invalid environment name %S" name)
  else if Vfs.exists ctx.Context.vfs (manifest_path name) then
    Error (Printf.sprintf "environment %s already exists" name)
  else persist ctx { env_name = name; env_roots = []; env_view = view }

let load (ctx : Context.t) ~name =
  match Vfs.read_file ctx.Context.vfs (manifest_path name) with
  | Error _ -> Error (Printf.sprintf "no environment named %s" name)
  | Ok content -> (
      let* j =
        Result.map_error (fun e -> "env manifest: " ^ e) (Json.of_string content)
      in
      let* roots =
        match Option.bind (Json.member "roots" j) Json.to_list with
        | Some items -> Ok (List.filter_map Json.get_string items)
        | None -> Error "env manifest: missing roots"
      in
      let view = Option.bind (Json.member "view" j) Json.get_string in
      Ok { env_name = name; env_roots = roots; env_view = view })

let list_envs (ctx : Context.t) =
  match Vfs.ls ctx.Context.vfs envs_root with
  | Error _ -> []
  | Ok entries ->
      List.filter
        (fun name -> Vfs.is_file ctx.Context.vfs (manifest_path name))
        entries

(* Roots are stored canonically — the parsed AST's printed form — so
   [mpileaks@1.0] and [mpileaks @1.0] are one root, not two, and the
   manifest is insensitive to the user's whitespace. *)
let canonical spec =
  Result.map Printer.to_string (Parser.parse spec)

(* a pre-canonicalization manifest may still hold raw user spellings *)
let canonical_roots t =
  List.map (fun r -> match canonical r with Ok c -> c | Error _ -> r)
    t.env_roots

let add (ctx : Context.t) t spec =
  let* canon = canonical spec in
  if List.mem canon (canonical_roots t) then
    Error (Printf.sprintf "%s is already a root of %s" canon t.env_name)
  else persist ctx { t with env_roots = t.env_roots @ [ canon ] }

let remove_root (ctx : Context.t) t spec =
  let canon = match canonical spec with Ok c -> c | Error _ -> spec in
  if not (List.mem canon (canonical_roots t)) then
    Error (Printf.sprintf "%s is not a root of %s" canon t.env_name)
  else
    persist ctx
      {
        t with
        env_roots =
          List.filter
            (fun r ->
              (match canonical r with Ok c -> c | Error _ -> r) <> canon)
            t.env_roots;
      }

(* ------------------------------------------------------------------ *)
(* Lockfile format 2                                                  *)

type lock_error =
  | Lock_missing
  | Lock_corrupt of string
  | Lock_stale of {
      lock_fp : string;
      current_fp : string;
      reason : string;
    }

let lock_error_to_string = function
  | Lock_missing -> "no lockfile (run env install first)"
  | Lock_corrupt why -> Printf.sprintf "lockfile corrupt: %s" why
  | Lock_stale { lock_fp; current_fp; reason } ->
      Printf.sprintf
        "lockfile stale: %s (locked at fingerprint %s.., context is now \
         %s..) — re-run env install to re-solve"
        reason
        (String.sub lock_fp 0 (min 12 (String.length lock_fp)))
        (String.sub current_fp 0 (min 12 (String.length current_fp)))

type lock = {
  lk_fingerprint : string;
  lk_roots : string list;
  lk_specs : (string * Concrete.t) list;
}

let current_fingerprint (ctx : Context.t) =
  Ccache.base_fingerprint (Ccache.context_of ctx.Context.ccache)

(* the checksum covers the canonical rendering of every payload field,
   so any bit of tampering — a flipped hash, an edited spec, a dropped
   root — is detected before the fingerprint is even consulted *)
let lock_payload ~fingerprint ~merkle_of pairs =
  [
    ("format", Json.Int lock_format);
    ("fingerprint", Json.String fingerprint);
    ("roots", Json.List (List.map (fun (r, _) -> Json.String r) pairs));
    ( "specs",
      Json.List
        (List.map
           (fun (root, c) ->
             Json.Obj
               [
                 ("root", Json.String root);
                 ("hash", Json.String (Concrete.root_hash c));
                 ("merkle", Json.String (merkle_of c));
                 ("concrete", Concrete.to_json c);
               ])
           pairs) );
  ]

let lock_checksum payload =
  Sha256.hex_digest (Json.to_string ~indent:2 (Json.Obj payload))

let render_lock ~fingerprint ~merkle_of pairs =
  let payload = lock_payload ~fingerprint ~merkle_of pairs in
  let full =
    match payload with
    | format :: rest ->
        (format :: ("checksum", Json.String (lock_checksum payload)) :: rest)
    | [] -> assert false
  in
  Json.to_string ~indent:2 (Json.Obj full) ^ "\n"

let write_lock (ctx : Context.t) t pairs =
  let cx = Ccache.context_of ctx.Context.ccache in
  write_atomic ctx.Context.vfs (lock_path t.env_name)
    (render_lock ~fingerprint:(current_fingerprint ctx)
       ~merkle_of:(Ccache.entry_fingerprint cx) pairs)

(* Legacy format 1 carried bare concrete specs: no roots, no fingerprint,
   no checksum. Migration adopts the specs at the {e current} context
   fingerprint (format 1 recorded nothing to validate against) and
   rewrites the file in format 2, atomically; root strings come from the
   manifest when it lines up, else from each spec's own root node. *)
let migrate_v1 (ctx : Context.t) t j =
  let* items =
    match Option.bind (Json.member "specs" j) Json.to_list with
    | Some items -> Ok items
    | None -> Error "format 1: missing specs"
  in
  let* specs =
    List.fold_left
      (fun acc item ->
        let* specs = acc in
        let* c = Concrete.of_json item in
        Ok (c :: specs))
      (Ok []) items
    |> Result.map List.rev
  in
  let roots = canonical_roots t in
  let pairs =
    if List.length roots = List.length specs then List.combine roots specs
    else
      List.map
        (fun c ->
          let root =
            match canonical (Concrete.root c) with
            | Ok r -> r
            | Error _ -> Concrete.root c
          in
          (root, c))
        specs
  in
  let* () = write_lock ctx t pairs in
  Ok pairs

let parse_lock_v2 j =
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing %s" name)
  in
  let* checksum =
    let* c = field "checksum" in
    match Json.get_string c with
    | Some s -> Ok s
    | None -> Error "checksum is not a string"
  in
  (* recompute over the parsed payload minus the checksum itself *)
  let* payload =
    match j with
    | Json.Obj fields ->
        Ok (List.filter (fun (k, _) -> k <> "checksum") fields)
    | _ -> Error "lockfile is not an object"
  in
  if lock_checksum payload <> checksum then
    Error "checksum mismatch (file was edited by hand?)"
  else
    let* fingerprint =
      let* f = field "fingerprint" in
      match Json.get_string f with
      | Some s -> Ok s
      | None -> Error "fingerprint is not a string"
    in
    let* roots =
      let* r = field "roots" in
      match Json.to_list r with
      | Some items -> Ok (List.filter_map Json.get_string items)
      | None -> Error "roots is not a list"
    in
    let* items =
      let* s = field "specs" in
      match Json.to_list s with
      | Some items -> Ok items
      | None -> Error "specs is not a list"
    in
    let* specs =
      List.fold_left
        (fun acc item ->
          let* specs = acc in
          let* root =
            match Option.bind (Json.member "root" item) Json.get_string with
            | Some r -> Ok r
            | None -> Error "spec entry: missing root"
          in
          let* recorded_hash =
            match Option.bind (Json.member "hash" item) Json.get_string with
            | Some h -> Ok h
            | None -> Error "spec entry: missing hash"
          in
          let* merkle =
            match Option.bind (Json.member "merkle" item) Json.get_string with
            | Some m -> Ok m
            | None -> Error "spec entry: missing merkle"
          in
          let* c =
            match Json.member "concrete" item with
            | Some cj -> Concrete.of_json cj
            | None -> Error "spec entry: missing concrete"
          in
          if Concrete.root_hash c <> recorded_hash then
            Error
              (Printf.sprintf "%s: recorded hash %s does not match its DAG"
                 root recorded_hash)
          else Ok ((root, merkle, c) :: specs))
        (Ok []) items
      |> Result.map List.rev
    in
    Ok (fingerprint, roots, specs)

let read_lock (ctx : Context.t) t =
  match Vfs.read_file ctx.Context.vfs (lock_path t.env_name) with
  | Error _ -> Error Lock_missing
  | Ok content -> (
      let corrupt why = Error (Lock_corrupt why) in
      match Json.of_string content with
      | Error e -> corrupt e
      | Ok j -> (
          match Option.bind (Json.member "format" j) Json.get_int with
          | Some 1 -> (
              match migrate_v1 ctx t j with
              | Error why -> corrupt why
              | Ok pairs ->
                  Ok
                    {
                      lk_fingerprint = current_fingerprint ctx;
                      lk_roots = List.map fst pairs;
                      lk_specs = pairs;
                    })
          | Some f when f = lock_format -> (
              match parse_lock_v2 j with
              | Error why -> corrupt why
              | Ok (fingerprint, roots, specs) ->
                  let current = current_fingerprint ctx in
                  if fingerprint <> current then
                    Error
                      (Lock_stale
                         {
                           lock_fp = fingerprint;
                           current_fp = current;
                           reason =
                             "context fingerprint changed (universe, \
                              toolchains, config, or backend)";
                         })
                  else if roots <> canonical_roots t then
                    Error
                      (Lock_stale
                         {
                           lock_fp = fingerprint;
                           current_fp = current;
                           reason = "environment roots changed since lock";
                         })
                  else
                    (* the base fingerprint covers everything but the
                       recipes; the per-spec Merkle fingerprint catches an
                       edited package inside any locked closure *)
                    let cx = Ccache.context_of ctx.Context.ccache in
                    let drifted =
                      List.filter_map
                        (fun (root, merkle, c) ->
                          if Ccache.entry_fingerprint cx c = merkle then
                            None
                          else Some root)
                        specs
                    in
                    match drifted with
                    | [] ->
                        Ok
                          {
                            lk_fingerprint = fingerprint;
                            lk_roots = roots;
                            lk_specs =
                              List.map (fun (r, _, c) -> (r, c)) specs;
                          }
                    | roots ->
                        Error
                          (Lock_stale
                             {
                               lock_fp = fingerprint;
                               current_fp = current;
                               reason =
                                 Printf.sprintf
                                   "package recipes drifted under %s"
                                   (String.concat ", " roots);
                             }))
          | Some f -> corrupt (Printf.sprintf "unknown format %d" f)
          | None -> corrupt "missing format"))

let locked_specs (ctx : Context.t) t =
  match read_lock ctx t with
  | Ok lock -> Ok (List.map snd lock.lk_specs)
  | Error e -> Error (lock_error_to_string e)

(* ------------------------------------------------------------------ *)
(* Solve / fetch                                                      *)

let parse_roots t =
  List.fold_left
    (fun acc root ->
      let* asts = acc in
      let* ast = Parser.parse root in
      Ok (ast :: asts))
    (Ok []) t.env_roots
  |> Result.map List.rev

(* The unified solve: all roots in one pass through the shared constraint
   context, memoized in the ordinary concretization cache. *)
let concretize_roots (ctx : Context.t) t =
  let* asts = parse_roots t in
  let before = Ccache.length ctx.Context.ccache in
  let result =
    Obs.span ctx.Context.obs ~cat:"concretize" "concretize" (fun () ->
        Multiroot.solve ~cache:ctx.Context.ccache ~obs:ctx.Context.obs
          ~backend:ctx.Context.backend ~config:ctx.Context.config
          ~compilers:ctx.Context.compilers ~repo:ctx.Context.repo asts)
  in
  match result with
  | Error e -> Error (Multiroot.error_to_string e)
  | Ok concretes ->
      if Ccache.length ctx.Context.ccache <> before then
        Context.save_ccache ctx;
      Ok (List.combine (List.map Printer.to_string asts) concretes)

let sync_view_specs (ctx : Context.t) t concretes =
  match t.env_view with
  | None -> Ok 0
  | Some view_root ->
      let* report = Commands.view_closure ctx ~view_root concretes in
      Ok report.Ospack_views.View.mr_linked

let sync_view (ctx : Context.t) t =
  match read_lock ctx t with
  | Error e -> Error (lock_error_to_string e)
  | Ok lock -> sync_view_specs ctx t (List.map snd lock.lk_specs)

type report = {
  er_roots : (string * Concrete.t) list;
  er_report : Installer.parallel_report;
  er_linked : int;
}

let install_specs (ctx : Context.t) t ~jobs pairs =
  let* preport =
    Obs.span ctx.Context.obs ~cat:"install" "install" (fun () ->
        Installer.install_parallel ctx.Context.installer ~jobs
          (List.map snd pairs))
  in
  match preport.Installer.pr_failures with
  | [] ->
      let* linked = sync_view_specs ctx t (List.map snd pairs) in
      Ok { er_roots = pairs; er_report = preport; er_linked = linked }
  | failures -> Error (Installer.failures_to_string failures)

let install ?(jobs = 1) (ctx : Context.t) t =
  let* pairs = concretize_roots ctx t in
  (* reproducibility invariant, checked in anger on every install: when a
     valid lock already exists at this fingerprint for these roots, the
     fresh unified solve must agree with it hash-for-hash *)
  let* () =
    match read_lock ctx t with
    | Ok lock when lock.lk_roots = List.map fst pairs ->
        List.fold_left2
          (fun acc (root, fresh) (_, locked) ->
            let* () = acc in
            if Concrete.root_hash fresh = Concrete.root_hash locked then Ok ()
            else
              Error
                (Printf.sprintf
                   "lockfile invariant violated for %s: fresh solve %s vs \
                    locked %s at the same fingerprint"
                   root
                   (Concrete.root_hash fresh)
                   (Concrete.root_hash locked)))
          (Ok ()) pairs lock.lk_specs
    | Ok _ | Error _ -> Ok ()
  in
  let* () = write_lock ctx t pairs in
  install_specs ctx t ~jobs pairs

type locked_error =
  | Locked_lock of lock_error
  | Locked_failed of string

let locked_error_to_string = function
  | Locked_lock e -> lock_error_to_string e
  | Locked_failed e -> e

(* The fetch half of the split: no solving, no lock rewriting — install
   exactly the locked DAGs, or fail typed before touching the store (a
   stale or corrupt lock never yields a partial install). *)
let install_locked ?(jobs = 1) (ctx : Context.t) t =
  match read_lock ctx t with
  | Error e -> Error (Locked_lock e)
  | Ok lock -> (
      match install_specs ctx t ~jobs lock.lk_specs with
      | Ok report -> Ok report
      | Error e -> Error (Locked_failed e))

let status (ctx : Context.t) t =
  let db = Installer.database ctx.Context.installer in
  match read_lock ctx t with
  | Ok lock ->
      List.map
        (fun (root, c) ->
          (root, Database.find_by_hash db (Concrete.root_hash c) <> None))
        lock.lk_specs
  | Error _ ->
      List.map
        (fun root ->
          let installed =
            match Parser.parse root with
            | Error _ -> false
            | Ok ast -> Database.find_satisfying db ast <> []
          in
          (root, installed))
        (canonical_roots t)

(* ------------------------------------------------------------------ *)
(* Crash-consistency torture for the environment files                 *)

type torture_report = {
  et_jobs : int;
  et_barriers : int;
  et_kills : int;
  et_manifest_intact : int;
  et_lock_intact : int;
}

let torture_report_to_string r =
  Printf.sprintf
    "env torture: %d write barriers at -j%d, %d kill points — manifest \
     intact at %d, lockfile intact at %d, recovery converged at every one"
    r.et_barriers r.et_jobs r.et_kills r.et_manifest_intact r.et_lock_intact

(* Run the whole env lifecycle (create, add each root, install) against a
   fresh context; used once as the reference run and once per kill. *)
let torture_sequence ?config ?backend ~vfs ~jobs ~name ~view ~roots () =
  let ctx = Context.create ?config ?backend ~vfs () in
  let* _ = Installer.load_index ctx.Context.installer in
  let* env =
    match create ctx ~name ?view () with
    | Ok env -> Ok env
    | Error _ -> load ctx ~name
  in
  let* env =
    List.fold_left
      (fun acc root ->
        let* env = acc in
        match add ctx env root with
        | Ok env -> Ok env
        | Error _ -> Ok env (* duplicate after partial replay *))
      (Ok env) roots
  in
  let* _report = install ~jobs ctx env in
  Ok ctx

let json_ok s = Result.is_ok (Json.of_string s)

let torture ?(jobs = 1) ?(every = 1) ?config ?backend ~name ?view ~roots ()
    =
  let run vfs = torture_sequence ?config ?backend ~vfs ~jobs ~name ~view ~roots () in
  (* reference run, counting barriers *)
  let ref_vfs = Vfs.create () in
  Vfs.set_fault_plan ref_vfs [];
  let* ref_ctx = run ref_vfs in
  let barriers = Vfs.write_barriers ref_vfs in
  Vfs.clear_fault_plan ref_vfs;
  let ref_lock =
    match Vfs.read_file ref_vfs (lock_path name) with
    | Ok c -> c
    | Error _ -> ""
  in
  let ref_db =
    Json.to_string
      (Database.to_json (Installer.database ref_ctx.Context.installer))
  in
  let kills = ref 0 and manifest_intact = ref 0 and lock_intact = ref 0 in
  let rec sweep k =
    if k > barriers then Ok ()
    else begin
      let vfs = Vfs.create () in
      Vfs.set_fault_plan vfs ~mode:Vfs.Crash [ k ];
      let killed = run vfs in
      Vfs.clear_fault_plan vfs;
      let* () =
        match killed with
        | Ok _ -> Error (Printf.sprintf "install survived kill point %d" k)
        | Error _ -> Ok ()
      in
      (* old-or-new: whatever of the manifest/lockfile exists at the kill
         point must be a complete previous version, never a torn write *)
      let* () =
        match Vfs.read_file vfs (manifest_path name) with
        | Error _ -> Ok ()
        | Ok content ->
            if json_ok content then begin
              incr manifest_intact;
              Ok ()
            end
            else Error (Printf.sprintf "torn manifest at kill point %d" k)
      in
      let* () =
        match Vfs.read_file vfs (lock_path name) with
        | Error _ -> Ok ()
        | Ok content ->
            if json_ok content then begin
              incr lock_intact;
              Ok ()
            end
            else Error (Printf.sprintf "torn lockfile at kill point %d" k)
      in
      (* recovery: a fresh context over the crashed filesystem must
         converge to exactly the reference store and lockfile *)
      let* ctx2 =
        Result.map_error
          (fun e -> Printf.sprintf "recovery at kill point %d: %s" k e)
          (run vfs)
      in
      let db2 =
        Json.to_string
          (Database.to_json (Installer.database ctx2.Context.installer))
      in
      let* () =
        if db2 = ref_db then Ok ()
        else Error (Printf.sprintf "recovered index diverged at kill %d" k)
      in
      let* () =
        match Vfs.read_file vfs (lock_path name) with
        | Ok c when c = ref_lock -> Ok ()
        | Ok _ -> Error (Printf.sprintf "recovered lockfile diverged at kill %d" k)
        | Error _ -> Error (Printf.sprintf "no lockfile after recovery at kill %d" k)
      in
      incr kills;
      sweep (k + every)
    end
  in
  let* () = sweep 1 in
  Ok
    {
      et_jobs = jobs;
      et_barriers = barriers;
      et_kills = !kills;
      et_manifest_intact = !manifest_intact;
      et_lock_intact = !lock_intact;
    }
