(** A complete ospack instance: repository, configuration, compiler
    registry, concretizer, virtual filesystem, and install store — what
    the [spack] command carries implicitly in its process state. *)

type t = {
  vfs : Ospack_vfs.Vfs.t;
  config : Ospack_config.Config.t;
  repo : Ospack_package.Repository.t;
  compilers : Ospack_config.Compilers.t;
  cctx : Ospack_concretize.Concretizer.ctx;
  backend : Ospack_concretize.Backends.t;
      (** which concretizer backend [spec]/[install]/[solve] route
          through; part of the concretization-cache fingerprint *)
  installer : Ospack_store.Installer.t;
  cache : Ospack_store.Buildcache.t option;
      (** binary build cache, when enabled via [cache_root] *)
  ccache : Ospack_concretize.Ccache.t;
      (** the fingerprinted concretization cache; always present (an empty
          one costs nothing), fingerprinted over this context's repository,
          compiler registry, and configuration *)
  ccache_path : string;
      (** where the concretization cache persists in the vfs
          ([<install_root>/.spack-db/ccache.json], next to the database
          index) *)
  obs : Ospack_obs.Obs.t;
      (** the observability sink every layer records into; disabled (and
          therefore free) unless [create] was given an enabled one *)
  module_root : string;  (** where generated module files are written *)
}

val create :
  ?config:Ospack_config.Config.t ->
  ?repo:Ospack_package.Repository.t ->
  ?compilers:Ospack_config.Compilers.t ->
  ?fs:Ospack_buildsim.Fsmodel.t ->
  ?scheme:Ospack_layout.Layout.scheme ->
  ?install_root:string ->
  ?cache_root:string ->
  ?ccache_json:string ->
  ?vfs:Ospack_vfs.Vfs.t ->
  ?obs:Ospack_obs.Obs.t ->
  ?backend:Ospack_concretize.Backends.t ->
  unit ->
  t
(** Defaults: the built-in 245-package universe, the LLNL-flavored site
    configuration, the full toolchain registry, a tmpfs stage, and the
    Spack-default layout under ["/ospack/opt"], all on a fresh virtual
    filesystem. [cache_root] enables a binary build cache at that path:
    installs pull matching hashes from it, and {!Commands.buildcache_push}
    archives built trees into it. [vfs] opens the context over an existing
    filesystem instead of a fresh one — how crash-recovery code (and the
    torture harnesses) re-open a store a previous context left behind;
    pair it with {!Ospack_store.Installer.load_index} to adopt the
    on-disk index. *)

val save_ccache : t -> unit
(** Persist the concretization cache to [ccache_path] (crash-safe
    write-then-rename). Best-effort: a failed persist never fails the
    command that concretized. *)

val export_ccache : t -> string
(** The concretization cache serialized as JSON — the bridge for warm
    starts across processes: write it to the real filesystem and pass it
    back as [create]'s [ccache_json] (the CLI's [--ccache FILE] flag).
    An export is only trusted on import if its fingerprint still
    matches. *)

val with_site_packages : t -> Ospack_package.Package.t list -> t
(** A context whose repository layers the given site packages in front of
    the existing ones (paper §4.3.2); shares the same filesystem and
    install store configuration but uses a fresh database. *)
