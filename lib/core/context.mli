(** A complete ospack instance: repository, configuration, compiler
    registry, concretizer, virtual filesystem, and install store — what
    the [spack] command carries implicitly in its process state. *)

type t = {
  vfs : Ospack_vfs.Vfs.t;
  config : Ospack_config.Config.t;
  repo : Ospack_package.Repository.t;
  compilers : Ospack_config.Compilers.t;
  cctx : Ospack_concretize.Concretizer.ctx;
  installer : Ospack_store.Installer.t;
  cache : Ospack_store.Buildcache.t option;
      (** binary build cache, when enabled via [cache_root] *)
  obs : Ospack_obs.Obs.t;
      (** the observability sink every layer records into; disabled (and
          therefore free) unless [create] was given an enabled one *)
  module_root : string;  (** where generated module files are written *)
}

val create :
  ?config:Ospack_config.Config.t ->
  ?repo:Ospack_package.Repository.t ->
  ?compilers:Ospack_config.Compilers.t ->
  ?fs:Ospack_buildsim.Fsmodel.t ->
  ?scheme:Ospack_layout.Layout.scheme ->
  ?install_root:string ->
  ?cache_root:string ->
  ?obs:Ospack_obs.Obs.t ->
  unit ->
  t
(** Defaults: the built-in 245-package universe, the LLNL-flavored site
    configuration, the full toolchain registry, a tmpfs stage, and the
    Spack-default layout under ["/ospack/opt"], all on a fresh virtual
    filesystem. [cache_root] enables a binary build cache at that path:
    installs pull matching hashes from it, and {!Commands.buildcache_push}
    archives built trees into it. *)

val with_site_packages : t -> Ospack_package.Package.t list -> t
(** A context whose repository layers the given site packages in front of
    the existing ones (paper §4.3.2); shares the same filesystem and
    install store configuration but uses a fresh database. *)
