(** The command layer behind the {!Ospack} entry module. *)

(** The command layer: the operations the [spack] CLI exposes
    (install, uninstall, find, spec, providers, info, graph, module
    generation, views, extension activation), over a {!Context.t}.

    All commands take spec strings in the paper's syntax and return
    rendered or structured results; errors are human-readable strings. *)

type install_report = {
  ir_spec : Ospack_spec.Concrete.t;  (** what was concretized *)
  ir_outcomes : Ospack_store.Installer.outcome list;
      (** per-node results, dependencies first (completion order for a
          parallel install) *)
  ir_summary : Ospack_store.Installer.summary;
      (** typed classification of the outcomes (built / reused /
          cache hits / cache misses / externals) — the CLI's one-line
          install summary, never derived by string matching *)
  ir_parallel : Ospack_store.Installer.parallel_report option;
      (** scheduler report (makespan, schedule, speedup) when the
          install ran on the parallel worker pool ([jobs > 1]) *)
}

val spec :
  ?fresh:bool ->
  ?reuse:bool ->
  Context.t ->
  string ->
  (Ospack_spec.Concrete.t, string) result
(** Concretize without installing ([spack spec]), through the context's
    fingerprinted concretization cache: a repeat of an earlier query under
    the same packages/compilers/configuration returns the memoized result
    ([ccache.hits]), a miss is solved with the fixed point seeded from
    previously concretized sub-DAGs and stored back (persisted under the
    store root with crash-safe write-then-rename). Caching is
    observationally invisible — the result is byte-identical to a cold
    solve. [fresh] bypasses the cache entirely ([spack spec --fresh]);
    [reuse] first looks for an installed concrete spec satisfying the
    query and returns it as-is ([spack spec --reuse] — the store-aware
    reuse semantics, §3.2.3 generalized to concretization). *)

val spec_explain :
  Context.t -> string ->
  (Ospack_spec.Concrete.t * string list, string) result
(** Concretize and also report the policy decisions taken — which provider
    each virtual resolved to and which version each multi-candidate
    package pinned, with candidate counts ([spack spec --explain]). *)

val solve :
  Context.t ->
  string ->
  (string * Ospack_concretize.Concretizer_intf.outcome, string) result
(** [spack solve]: run the context's selected concretizer backend and
    report (backend name, full outcome) — the result plus search
    statistics (decisions / propagations / conflicts / restarts /
    greedy runs / iterations) and, on failure, the human-readable
    conflict chain ({!Ospack_concretize.Concretizer_intf.outcome}).
    Never consults the concretization cache. *)

val install :
  ?backtrack:bool ->
  ?fresh:bool ->
  ?jobs:int ->
  Context.t ->
  string ->
  (install_report, string) result
(** Concretize and install ([spack install]). [backtrack] enables the
    backtracking solver when greedy concretization fails (§4.5).
    [jobs > 1] routes through the deterministic parallel scheduler
    ({!Ospack_store.Installer.install_parallel}, [spack install -j N]):
    outcomes arrive in completion order, the report carries the
    scheduler's makespan, and any node failures aggregate into one
    rendered multi-failure error.

    Unless [fresh] is set, an abstract request already satisfied by an
    installed configuration reuses it without re-concretizing — §3.2.3:
    "the user can save time if Spack already has a version installed that
    satisfies the spec". Among several satisfying installs the newest
    version (then lexicographically smallest hash) wins. [fresh:true]
    always concretizes against current packages and preferences,
    bypassing both the installed-spec reuse and the concretization
    cache. *)

type profile_report = {
  pf_spec : Ospack_spec.Concrete.t;
  pf_report : Ospack_store.Installer.parallel_report;
  pf_profile : Ospack_obs.Profile.t;
}

val profile :
  ?fresh:bool ->
  ?jobs:int ->
  Context.t ->
  string ->
  (profile_report, string) result
(** Concretize, install at [-j jobs] (default 1 — [install]'s exact
    serial order), and run the critical-path analyzer
    ({!Ospack_obs.Profile.analyze}) over the recorded schedule
    ([spack profile]). Always installs through the parallel scheduler so
    a schedule exists to attribute; never takes [install]'s
    installed-spec shortcut — re-profiling an installed DAG reports
    all-zero costs (pure reuse). Node failures render as the same
    multi-failure error as [install]. *)

val find :
  Context.t -> ?query:string -> unit ->
  (Ospack_store.Database.record list, string) result
(** Installed specs, optionally filtered by an abstract query
    ([spack find mpileaks ^mpich]). A query may end with [/hashprefix] to
    address installs by DAG hash ([mpileaks/576c], or just [/576c]),
    Spack's disambiguator for otherwise-identical configurations. *)

val uninstall : Context.t -> string -> (Ospack_store.Database.record, string) result
(** Uninstall the unique installed spec matching the query; errors when
    the query is ambiguous, missing, or still depended upon. *)

val providers :
  Context.t -> string -> (Ospack_package.Provider_index.entry list, string) result
(** Providers of a virtual interface, filtered by any version constraint
    in the query ([spack providers mpi@2:]). *)

val info : Context.t -> string -> (string, string) result
(** Rendered package metadata ([spack info]): description, versions,
    variants, dependencies, virtuals provided. *)

val list_packages : Context.t -> ?substring:string -> unit -> string list
(** Package names, optionally filtered ([spack list]). *)

val graph_tree : Context.t -> string -> (string, string) result
(** ASCII dependency tree of the concretized spec ([spack graph]). *)

val graph_dot : Context.t -> string -> (string, string) result
(** Graphviz rendering of the concretized spec ([spack graph --dot]). *)

val generate_modules :
  Context.t -> [ `Dotkit | `Tcl | `Lmod ] -> (string list, string) result
(** Generate a module file for every installed spec into the context's
    module root; returns the written paths (§3.5.4). Lmod files are placed
    in a compiler/MPI hierarchy. *)

val view :
  Context.t -> rules:string list -> (Ospack_views.View.link_report list, string) result
(** Materialize a symlink view of everything installed (§4.3.1). *)

val view_merge :
  Context.t -> view_root:string -> (Ospack_views.View.merge_report, string) result
(** Materialize a single merged bin/lib/include tree of everything
    installed under [view_root], file-by-file, conflicts resolved by the
    same preference order as {!view}. *)

val view_closure :
  Context.t ->
  view_root:string ->
  Ospack_spec.Concrete.t list ->
  (Ospack_views.View.merge_report, string) result
(** Like {!view_merge}, but restricted to exactly the dependency closure
    of the given concrete DAGs: every node is resolved to its installed
    record by sub-DAG hash (an unindexed node is an error, never a
    silently thinner view). This is what environment views link, so N
    environments can share one store without seeing each other's
    installs. *)

val activate : Context.t -> string -> (string list, string) result
(** Activate an installed extension into its (installed) extendee
    ([spack activate py-numpy], §4.2). Path-index ([.pth]) files merge;
    other conflicts fail. Returns the linked/merged relative paths. *)

val deactivate : Context.t -> string -> (string list, string) result

val reproduce : Context.t -> prefix:string -> (install_report, string) result
(** Rebuild from the provenance stored in an installed prefix (§3.4.3).
    The structured [spec.json] restores the exact DAG without
    re-concretizing (immune to preference and package drift); prefixes
    lacking it fall back to re-concretizing the stored one-line spec. *)

val dependents : Context.t -> hash:string -> Ospack_store.Database.record list
(** Installed records that depend on the given install. *)

val buildcache_push : Context.t -> (int, string) result
(** Archive every locally built install into the context's binary cache
    ([spack buildcache create]); errors when the context was created
    without [cache_root]. *)

val splice :
  Context.t -> string -> replace:string ->
  (Ospack_store.Installer.splice_result, string) result
(** [spack splice <spec> --replace <dep-spec>]: rewire the cached binary
    of the unique installed spec matching the query onto a different
    dependency without rebuilding. The target is pushed to the build
    cache on demand, the replacement concretizes and installs through
    the ordinary path, and {!Ospack_store.Installer.splice} builds the
    spliced DAG (every node above the replacement recomputes its hash),
    rewires RPATHs to the replacement's installed prefix, and accepts
    the result only when every simulated ELF object in the new prefix
    resolves with an empty environment. Errors when the context has no
    [cache_root]. *)

val verify :
  Context.t -> ?query:string -> unit ->
  ((Ospack_store.Database.record * Ospack_store.Provenance.verify_report) list,
   string)
  result
(** Re-hash installed prefixes against their install manifests
    ([spack verify]): one report per matching record, listing missing,
    modified, and unexpected files. External vendor prefixes (which carry
    no manifest) are skipped. *)

val gc : Context.t -> (Ospack_store.Database.record list, string) result
(** Garbage-collect: repeatedly remove installs that were not explicitly
    requested and have no remaining dependents (like [spack gc]). Returns
    the removed records, dependents-first. Explicit installs and anything
    they need are kept; external vendor prefixes are deregistered but
    never deleted. *)

val compiler_list : Context.t -> string list
(** Rendered toolchain list ([spack compilers]). *)

val diff : Context.t -> string -> string -> (string list, string) result
(** Concretize two specs and describe how they differ ([spack diff]):
    one line per parameter that disagrees (version, compiler, variant,
    architecture, per node) and per node present on only one side.
    Empty list = identical configurations. *)

val extensions_of :
  Context.t -> string ->
  ((Ospack_store.Database.record * bool) list, string) result
(** Installed extensions of an extendee package ([spack extensions
    python]): each record paired with whether it is currently activated
    in the queried extendee's prefix. The argument is an installed-spec
    query that must resolve to a unique extendable install. *)
