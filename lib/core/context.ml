module Vfs = Ospack_vfs.Vfs
module Config = Ospack_config.Config
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Concretizer = Ospack_concretize.Concretizer
module Installer = Ospack_store.Installer
module Fsmodel = Ospack_buildsim.Fsmodel
module Layout = Ospack_layout.Layout
module Universe = Ospack_repo.Universe
module Buildcache = Ospack_store.Buildcache
module Obs = Ospack_obs.Obs

type t = {
  vfs : Vfs.t;
  config : Config.t;
  repo : Repository.t;
  compilers : Compilers.t;
  cctx : Concretizer.ctx;
  installer : Installer.t;
  cache : Buildcache.t option;
  obs : Obs.t;
  module_root : string;
}

let create ?config ?repo ?compilers ?fs ?scheme
    ?(install_root = "/ospack/opt") ?cache_root ?(obs = Obs.disabled) () =
  let config = Option.value config ~default:Universe.default_config in
  let repo =
    match repo with Some r -> r | None -> Universe.repository ()
  in
  let compilers = Option.value compilers ~default:Universe.compilers in
  let vfs = Vfs.create () in
  let cctx = Concretizer.make_ctx ~config ~obs ~compilers repo in
  let cache =
    Option.map (fun root -> Buildcache.create vfs ~root) cache_root
  in
  let installer =
    Installer.create ?fs ?scheme ~install_root ~config ?cache ~obs ~vfs ~repo
      ~compilers ()
  in
  { vfs; config; repo; compilers; cctx; installer; cache; obs;
    module_root = "/ospack/modules" }

let with_site_packages t site_pkgs =
  let site = Repository.create ~name:"site" site_pkgs in
  let repo = Repository.layered [ site; t.repo ] in
  let cctx =
    Concretizer.make_ctx ~config:t.config ~obs:t.obs ~compilers:t.compilers
      repo
  in
  let installer =
    Installer.create ~install_root:(Installer.install_root t.installer)
      ~config:t.config ?cache:t.cache ~obs:t.obs ~vfs:t.vfs ~repo
      ~compilers:t.compilers ()
  in
  { t with repo; cctx; installer }
