module Vfs = Ospack_vfs.Vfs
module Config = Ospack_config.Config
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Concretizer = Ospack_concretize.Concretizer
module Ccache = Ospack_concretize.Ccache
module Backends = Ospack_concretize.Backends
module Json = Ospack_json.Json
module Installer = Ospack_store.Installer
module Fsmodel = Ospack_buildsim.Fsmodel
module Layout = Ospack_layout.Layout
module Universe = Ospack_repo.Universe
module Buildcache = Ospack_store.Buildcache
module Obs = Ospack_obs.Obs

type t = {
  vfs : Vfs.t;
  config : Config.t;
  repo : Repository.t;
  compilers : Compilers.t;
  cctx : Concretizer.ctx;
  backend : Backends.t;
  installer : Installer.t;
  cache : Buildcache.t option;
  ccache : Ccache.t;
  ccache_path : string;
  obs : Obs.t;
  module_root : string;
}

let ccache_file root = root ^ "/.spack-db/ccache.json"

let create ?config ?repo ?compilers ?fs ?scheme
    ?(install_root = "/ospack/opt") ?cache_root ?ccache_json ?vfs
    ?(obs = Obs.disabled) ?(backend = Backends.Greedy) () =
  let config = Option.value config ~default:Universe.default_config in
  let repo =
    match repo with Some r -> r | None -> Universe.repository ()
  in
  let compilers = Option.value compilers ~default:Universe.compilers in
  let vfs = match vfs with Some v -> v | None -> Vfs.create () in
  let cctx = Concretizer.make_ctx ~config ~obs ~compilers repo in
  let cache =
    Option.map (fun root -> Buildcache.create vfs ~root) cache_root
  in
  let installer =
    Installer.create ?fs ?scheme ~install_root ~config ?cache ~obs ~vfs ~repo
      ~compilers ()
  in
  let ccache_path = ccache_file install_root in
  (* an imported serialized cache (from a previous process) lands in the
     vfs first, so loading it shares the persisted-file validation path:
     fingerprint mismatches and corruption are discarded, never trusted *)
  (match ccache_json with
  | None -> ()
  | Some json -> ignore (Vfs.write_file vfs ccache_path json));
  let cx =
    Ccache.context ~backend:(Backends.to_string backend) ~repo ~compilers
      ~config ()
  in
  let ccache = Ccache.load ~obs ~context:cx vfs ~path:ccache_path in
  { vfs; config; repo; compilers; cctx; backend; installer; cache; ccache;
    ccache_path; obs; module_root = "/ospack/modules" }

let save_ccache t =
  (* best-effort: a failed persist never fails the command that
     concretized (the in-memory cache is still authoritative) *)
  ignore (Ccache.save t.ccache t.vfs ~path:t.ccache_path)

let export_ccache t = Json.to_string ~indent:2 (Ccache.to_json t.ccache)

let with_site_packages t site_pkgs =
  let site = Repository.create ~name:"site" site_pkgs in
  let repo = Repository.layered [ site; t.repo ] in
  let cctx =
    Concretizer.make_ctx ~config:t.config ~obs:t.obs ~compilers:t.compilers
      repo
  in
  let installer =
    Installer.create ~install_root:(Installer.install_root t.installer)
      ~config:t.config ?cache:t.cache ~obs:t.obs ~vfs:t.vfs ~repo
      ~compilers:t.compilers ()
  in
  (* the package universe changed, so the validation context changes:
     reloading under the new context revalidates every persisted entry
     per its Merkle fingerprint — entries whose closure the site layer
     shadows are evicted (counted), untouched ones survive *)
  let cx =
    Ccache.context ~backend:(Backends.to_string t.backend) ~repo
      ~compilers:t.compilers ~config:t.config ()
  in
  let ccache = Ccache.load ~obs:t.obs ~context:cx t.vfs ~path:t.ccache_path in
  { t with repo; cctx; installer; ccache }
