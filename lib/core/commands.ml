module Ast = Ospack_spec.Ast
module Parser = Ospack_spec.Parser
module Concrete = Ospack_spec.Concrete
module Cerror = Ospack_concretize.Cerror
module Concretizer = Ospack_concretize.Concretizer
module Backends = Ospack_concretize.Backends
module Ccache = Ospack_concretize.Ccache
module Package = Ospack_package.Package
module Repository = Ospack_package.Repository
module Provider_index = Ospack_package.Provider_index
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Provenance = Ospack_store.Provenance
module Modulegen = Ospack_modulesgen.Modulegen
module View = Ospack_views.View
module Extensions = Ospack_views.Extensions
module Compilers = Ospack_config.Compilers
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist
module Vfs = Ospack_vfs.Vfs
module Variant_decl = Ospack_package.Variant_decl
module Obs = Ospack_obs.Obs
module Profile = Ospack_obs.Profile

type install_report = {
  ir_spec : Concrete.t;
  ir_outcomes : Installer.outcome list;
  ir_summary : Installer.summary;
  ir_parallel : Installer.parallel_report option;
}

let ( let* ) = Result.bind

(* render a concretization error, adding a "did you mean" hint for
   unknown package names *)
let render_cerror (ctx : Context.t) e =
  let base = Cerror.to_string e in
  match e with
  | Cerror.Unknown_package name -> (
      match Repository.closest ctx.repo name with
      | Some hint -> Printf.sprintf "%s (did you mean %s?)" base hint
      | None -> base)
  | _ -> base

(* §3.2.3: prefer an already-installed configuration satisfying the
   abstract request over concretizing a new one *)
let best_installed (ctx : Context.t) ast =
  let db = Installer.database ctx.installer in
  let candidates = Database.find_satisfying db ast in
  let better (a : Database.record) (b : Database.record) =
    let va = (Concrete.root_node a.Database.r_spec).Concrete.version in
    let vb = (Concrete.root_node b.Database.r_spec).Concrete.version in
    match Version.compare va vb with
    | 0 -> String.compare a.Database.r_hash b.Database.r_hash < 0
    | c -> c > 0
  in
  List.fold_left
    (fun best r ->
      match best with
      | None -> Some r
      | Some b -> if better r b then Some r else best)
    None candidates

(* Every concretization below the command layer flows through the
   fingerprinted cache ({!Ospack_concretize.Ccache}) unless [fresh] asks
   for a from-scratch solve; successful results persist to the store root
   immediately (write-then-rename, like the database index). [reuse]
   additionally short-circuits to an installed concrete spec satisfying
   the query (the store-aware reuse of the ASP follow-up paper, in the
   greedy setting). *)
let concretize_cached (ctx : Context.t) ?(reuse = false) ast =
  let installed =
    if reuse then
      Some
        (fun q ->
          Option.map (fun r -> r.Database.r_spec) (best_installed ctx q))
    else None
  in
  let before = Ccache.length ctx.ccache in
  let result =
    match ctx.backend with
    | Backends.Greedy ->
        Concretizer.concretize_cached ~cache:ctx.ccache ?installed ctx.cctx
          ast
    | Backends.Clauses -> (
        (* same three layers as the greedy path: store-aware reuse, then
           the whole-query memo (fingerprinted per backend), then a full
           solve stored back on success *)
        match
          match installed with None -> None | Some find -> find ast
        with
        | Some c -> Ok c
        | None -> (
            match Ccache.lookup ctx.ccache ast with
            | Some c -> Ok c
            | None ->
                let r = Backends.solve Backends.Clauses ctx.cctx ast in
                (match r with
                | Ok c -> Ccache.store ctx.ccache ast c
                | Error _ -> ());
                r))
  in
  (match result with
  | Ok _ when Ccache.length ctx.ccache <> before -> Context.save_ccache ctx
  | _ -> ());
  result

(* On failure, re-solve uncached through the backend's full interface
   and append the rendered conflict chain: the clause backend's unsat
   core, or the greedy backend's blocked decision path (pseudo-core). *)
let render_unsat (ctx : Context.t) ast e =
  let outcome = Backends.solve_full ctx.backend ctx.cctx ast in
  match Backends.explanation ctx.backend outcome with
  | None -> Error (render_cerror ctx e)
  | Some expl ->
      Error
        (render_cerror ctx expl.Cerror.ex_error
        ^ "\n"
        ^ Cerror.explain_to_string expl)

let spec ?(fresh = false) ?(reuse = false) (ctx : Context.t) text =
  match Parser.parse text with
  | Error e -> Error e
  | Ok ast -> (
      let result =
        if fresh then Backends.solve ctx.backend ctx.cctx ast
        else concretize_cached ctx ~reuse ast
      in
      match result with
      | Ok c -> Ok c
      | Error e -> render_unsat ctx ast e)

let spec_explain (ctx : Context.t) text =
  match Parser.parse text with
  | Error e -> Error e
  | Ok ast -> (
      (* explain reports the decisions of a real greedy run, so it never
         consults the cache (a hit would have no decisions to explain) *)
      match Concretizer.concretize_explain ctx.cctx ast with
      | Ok result -> Ok result
      | Error e -> Error (render_cerror ctx e))

(* [spack solve]: run the selected backend's full interface — result,
   search statistics, and (on failure) the conflict explanation. Never
   cached: the point is to observe the solve itself. *)
let solve (ctx : Context.t) text =
  match Parser.parse text with
  | Error e -> Error e
  | Ok ast ->
      Ok
        ( Backends.to_string ctx.backend,
          Backends.solve_full ctx.backend ctx.cctx ast )

let concretize_ast ?(backtrack = false) ?(fresh = false) (ctx : Context.t)
    ast =
  let result =
    if fresh then Backends.solve ctx.backend ctx.cctx ast
    else concretize_cached ctx ast
  in
  match result with
  | Ok c -> Ok c
  | Error e when backtrack && ctx.backend = Backends.Greedy -> (
      match Concretizer.concretize_backtracking ctx.cctx ast with
      | Ok c -> Ok c
      | Error _ -> Error (render_cerror ctx e))
  | Error e -> Error (render_cerror ctx e)

let report ?parallel spec outcomes =
  {
    ir_spec = spec;
    ir_outcomes = outcomes;
    ir_summary = Installer.summary_of_outcomes outcomes;
    ir_parallel = parallel;
  }

let install ?backtrack ?(fresh = false) ?(jobs = 1) (ctx : Context.t) text =
  let* ast = Parser.parse text in
  match if fresh then None else best_installed ctx ast with
  | Some record ->
      (* reuse: re-register (marks it explicit) without building *)
      let* outcomes =
        Obs.span ctx.obs ~cat:"install" "install" (fun () ->
            Installer.install ctx.installer record.Database.r_spec)
      in
      Ok (report record.Database.r_spec outcomes)
  | None ->
      let* concrete =
        Obs.span ctx.obs ~cat:"concretize" "concretize" (fun () ->
            concretize_ast ?backtrack ~fresh ctx ast)
      in
      if jobs <= 1 then
        let* outcomes =
          Obs.span ctx.obs ~cat:"install" "install" (fun () ->
              Installer.install ctx.installer concrete)
        in
        Ok (report concrete outcomes)
      else
        let* preport =
          Obs.span ctx.obs ~cat:"install" "install" (fun () ->
              Installer.install_parallel ctx.installer ~jobs [ concrete ])
        in
        match preport.Installer.pr_failures with
        | [] ->
            Ok
              (report ~parallel:preport concrete
                 preport.Installer.pr_outcomes)
        | failures -> Error (Installer.failures_to_string failures)

type profile_report = {
  pf_spec : Concrete.t;
  pf_report : Installer.parallel_report;
  pf_profile : Profile.t;
}

(* [spack profile]: concretize, install on the -j pool (serial = -j1,
   identical to [install]'s topological order), then replay the recorded
   schedule through the critical-path analyzer. The install itself is
   the profiled artifact, so the reuse shortcut of [install] is skipped:
   an already-installed DAG simply profiles as all-zero-cost reuse. *)
let profile ?(fresh = false) ?(jobs = 1) (ctx : Context.t) text =
  let* ast = Parser.parse text in
  let* concrete =
    Obs.span ctx.obs ~cat:"concretize" "concretize" (fun () ->
        concretize_ast ~fresh ctx ast)
  in
  let* preport =
    Obs.span ctx.obs ~cat:"install" "install" (fun () ->
        Installer.install_parallel ctx.installer ~jobs [ concrete ])
  in
  match preport.Installer.pr_failures with
  | _ :: _ as failures -> Error (Installer.failures_to_string failures)
  | [] ->
      let* prof =
        Profile.analyze (Installer.profile_input ~specs:[ concrete ] preport)
      in
      Ok { pf_spec = concrete; pf_report = preport; pf_profile = prof }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let find (ctx : Context.t) ?query () =
  let db = Installer.database ctx.installer in
  match query with
  | None -> Ok (Database.all db)
  | Some q -> (
      match String.index_opt q '/' with
      | None ->
          let* ast = Parser.parse q in
          Ok (Database.find_satisfying db ast)
      | Some i ->
          let spec_part = String.trim (String.sub q 0 i) in
          let hash_prefix =
            String.trim (String.sub q (i + 1) (String.length q - i - 1))
          in
          if hash_prefix = "" then
            Error (Printf.sprintf "empty hash prefix in %S" q)
          else
            let* base =
              if spec_part = "" then Ok (Database.all db)
              else
                let* ast = Parser.parse spec_part in
                Ok (Database.find_satisfying db ast)
            in
            Ok
              (List.filter
                 (fun r -> starts_with ~prefix:hash_prefix r.Database.r_hash)
                 base))

let uninstall (ctx : Context.t) text =
  let* records = find ctx ~query:text () in
  match records with
  | [] -> Error (Printf.sprintf "no installed spec matches %s" text)
  | _ :: _ :: _ ->
      Error
        (Printf.sprintf "%s matches %d installed specs; qualify further:\n%s"
           text (List.length records)
           (String.concat "\n"
              (List.map
                 (fun r ->
                   Printf.sprintf "  %s/%s" (Concrete.to_string r.Database.r_spec)
                     r.Database.r_hash)
                 records)))
  | [ record ] -> Installer.uninstall ctx.installer ~hash:record.Database.r_hash

let providers (ctx : Context.t) query =
  let* node = Parser.parse_node query in
  if not (Provider_index.is_virtual ctx.cctx.Concretizer.index node.Ast.name)
  then Error (Printf.sprintf "%s is not a virtual interface" node.Ast.name)
  else Ok (Provider_index.providers_satisfying ctx.cctx.Concretizer.index node)

let info (ctx : Context.t) name =
  match Repository.find ctx.repo name with
  | None ->
      Error (render_cerror ctx (Cerror.Unknown_package name))
  | Some pkg ->
      let buf = Buffer.create 256 in
      let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      addf "Package:     %s\n" pkg.Package.p_name;
      if pkg.Package.p_description <> "" then
        addf "Description: %s\n" pkg.Package.p_description;
      if pkg.Package.p_homepage <> "" then
        addf "Homepage:    %s\n" pkg.Package.p_homepage;
      addf "Source:      %s\n" pkg.Package.p_source;
      addf "Versions:    %s\n"
        (String.concat ", "
           (List.map Version.to_string (Package.known_versions pkg)));
      (match pkg.Package.p_variants with
      | [] -> ()
      | vs ->
          addf "Variants:    %s\n"
            (String.concat ", "
               (List.map
                  (fun v ->
                    Printf.sprintf "%s%s"
                      (if v.Variant_decl.v_default then "+" else "~")
                      v.Variant_decl.v_name)
                  vs)));
      (match pkg.Package.p_dependencies with
      | [] -> ()
      | ds ->
          addf "Depends on:  %s\n"
            (String.concat ", "
               (List.map
                  (fun (d : Package.dep) ->
                    Ospack_spec.Printer.to_string d.Package.d_spec
                    ^
                    match d.Package.d_when with
                    | None -> ""
                    | Some w ->
                        " (when " ^ Ospack_spec.Printer.to_string w ^ ")")
                  ds)));
      (match pkg.Package.p_provides with
      | [] -> ()
      | ps ->
          addf "Provides:    %s\n"
            (String.concat ", "
               (List.map
                  (fun (p : Package.provide) ->
                    Ospack_spec.Printer.node_to_string p.Package.pv_spec)
                  ps)));
      (match pkg.Package.p_extends with
      | Some e -> addf "Extends:     %s\n" e
      | None -> ());
      Ok (Buffer.contents buf)

let list_packages (ctx : Context.t) ?substring () =
  let names = Repository.package_names ctx.repo in
  match substring with
  | None -> names
  | Some sub ->
      let matches name =
        let nl = String.length name and sl = String.length sub in
        let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
        sl = 0 || at 0
      in
      List.filter matches names

let graph_tree ctx text =
  let* c = spec ctx text in
  Ok (Concrete.tree_string c)

let graph_dot ctx text =
  let* c = spec ctx text in
  Ok
    (Ospack_dag.Dag.to_dot
       ~label:(fun n -> Concrete.node_to_string (Concrete.node_exn c n))
       (Concrete.to_dag c))

let generate_modules (ctx : Context.t) flavor =
  let db = Installer.database ctx.installer in
  let results =
    List.map
      (fun r ->
        let spec = r.Database.r_spec in
        let prefix = r.Database.r_prefix in
        let root = Concrete.root spec in
        let path, content =
          match flavor with
          | `Dotkit ->
              ( Printf.sprintf "%s/dotkit/%s-%s.dk" ctx.module_root root
                  r.Database.r_hash,
                Modulegen.dotkit spec ~prefix )
          | `Tcl ->
              ( Printf.sprintf "%s/tcl/%s-%s" ctx.module_root root
                  r.Database.r_hash,
                Modulegen.tcl spec ~prefix )
          | `Lmod ->
              ( Printf.sprintf "%s/lmod/%s" ctx.module_root
                  (Modulegen.lmod_hierarchy_path spec),
                Modulegen.lmod spec ~prefix )
        in
        match Vfs.write_file ctx.vfs path content with
        | Ok () -> Ok path
        | Error e -> Error (Vfs.error_to_string e))
      (Database.all db)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok p :: rest -> collect (p :: acc) rest
    | Error e :: _ -> Error e
  in
  collect [] results

let view (ctx : Context.t) ~rules =
  let db = Installer.database ctx.installer in
  let installed =
    List.map
      (fun r -> (r.Database.r_spec, r.Database.r_prefix))
      (Database.all db)
  in
  Ok (View.sync ctx.vfs ~config:ctx.config ~rules ~installed)

let view_merge (ctx : Context.t) ~view_root =
  let db = Installer.database ctx.installer in
  let installed =
    List.map
      (fun r -> (r.Database.r_spec, r.Database.r_prefix))
      (Database.all db)
  in
  Ok (View.merge ctx.vfs ~config:ctx.config ~view_root ~installed)

(* A view of exactly the closure of the given concrete specs — what an
   environment links. The shared store may hold arbitrarily many other
   configurations ([view_merge] links them all); here every node of every
   given DAG is resolved to its installed record by sub-DAG hash, so two
   environments over one store get disjoint, closure-exact views. *)
let view_closure (ctx : Context.t) ~view_root concretes =
  let db = Installer.database ctx.installer in
  let* records =
    List.fold_left
      (fun acc (hash, node_name) ->
        let* seen = acc in
        if List.mem_assoc hash seen then Ok seen
        else
          match Database.find_by_hash db hash with
          | Some r -> Ok ((hash, r) :: seen)
          | None ->
              Error
                (Printf.sprintf "%s/%s is not installed (view out of sync)"
                   node_name hash))
      (Ok [])
      (List.concat_map
         (fun c ->
           List.map
             (fun (n : Concrete.node) ->
               (Concrete.dag_hash c n.Concrete.name, n.Concrete.name))
             (Concrete.nodes c))
         concretes)
  in
  let installed =
    List.map
      (fun (_, (r : Database.record)) -> (r.Database.r_spec, r.Database.r_prefix))
      (List.sort
         (fun (_, a) (_, b) ->
           String.compare a.Database.r_hash b.Database.r_hash)
         records)
  in
  Ok (View.merge ctx.vfs ~config:ctx.config ~view_root ~installed)

(* extension queries resolve to a unique installed record *)
let unique_installed ctx text =
  let* records = find ctx ~query:text () in
  match records with
  | [ r ] -> Ok r
  | [] -> Error (Printf.sprintf "no installed spec matches %s" text)
  | _ -> Error (Printf.sprintf "%s is ambiguous among installed specs" text)

let extension_pair (ctx : Context.t) text =
  let* ext = unique_installed ctx text in
  let name = Concrete.root ext.Database.r_spec in
  let* pkg =
    match Repository.find ctx.repo name with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "unknown package: %s" name)
  in
  let* extendee_name =
    match pkg.Package.p_extends with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "%s is not an extension" name)
  in
  let* extendee_hash =
    match Concrete.node ext.Database.r_spec extendee_name with
    | Some _ -> Ok (Concrete.dag_hash ext.Database.r_spec extendee_name)
    | None ->
        Error
          (Printf.sprintf "%s does not depend on its extendee %s" name
             extendee_name)
  in
  let db = Installer.database ctx.installer in
  let* extendee =
    match Database.find_by_hash db extendee_hash with
    | Some r -> Ok r
    | None -> Error (Printf.sprintf "%s is not installed" extendee_name)
  in
  Ok (name, ext, extendee)

let pth_merge ~rel =
  let is_pth =
    let l = String.length rel in
    l >= 4 && String.sub rel (l - 4) 4 = ".pth"
  in
  if is_pth then Some Extensions.line_union_merge else None

let activate ctx text =
  let* name, ext, extendee = extension_pair ctx text in
  Extensions.activate ctx.Context.vfs ~merge:pth_merge ~ext_name:name
    ~ext_prefix:ext.Database.r_prefix
    ~target_prefix:extendee.Database.r_prefix ()

let deactivate ctx text =
  let* name, ext, extendee = extension_pair ctx text in
  Extensions.deactivate ctx.Context.vfs ~ext_name:name
    ~ext_prefix:ext.Database.r_prefix
    ~target_prefix:extendee.Database.r_prefix

let reproduce (ctx : Context.t) ~prefix =
  (* prefer the structured spec.json: it restores the exact DAG without
     re-concretizing, immune to preference drift (§3.4.3); fall back to
     re-concretizing the one-line spec for prefixes that predate it *)
  match Provenance.read_spec_json ctx.vfs ~prefix with
  | Ok concrete ->
      let* outcomes =
        Obs.span ctx.obs ~cat:"install" "install" (fun () ->
            Installer.install ctx.installer concrete)
      in
      Ok (report concrete outcomes)
  | Error _ -> (
      match Provenance.read_spec ctx.vfs ~prefix with
      | None ->
          Error (Printf.sprintf "no provenance spec found under %s" prefix)
      | Some stored -> install ctx stored)

let dependents (ctx : Context.t) ~hash =
  Database.dependents_of (Installer.database ctx.installer) hash

let buildcache_push (ctx : Context.t) =
  match ctx.Context.cache with
  | None -> Error "no build cache configured (create the context with cache_root)"
  | Some cache -> Installer.push_to_cache ctx.installer cache

(* [spack splice <spec> --replace <dep-spec>]: rewire the cached binary
   of an installed spec onto a different dependency without rebuilding.
   The target resolves like any installed-spec query, is pushed to the
   cache on demand, the replacement concretizes and installs through the
   ordinary path (so its prefix exists to splice in), and the heavy
   lifting — spliced DAG, RPATH rewiring, alias records, empty-env
   loader verification — happens in {!Ospack_store.Installer.splice}. *)
let splice (ctx : Context.t) target ~replace =
  match ctx.Context.cache with
  | None -> Error "no build cache configured (create the context with cache_root)"
  | Some cache ->
      let* record = unique_installed ctx target in
      let hash = record.Database.r_hash in
      let* () =
        if Ospack_store.Buildcache.has cache ~hash then Ok ()
        else
          Result.map_error Ospack_store.Buildcache.error_to_string
            (Ospack_store.Buildcache.save cache
               ~install_root:(Installer.install_root ctx.installer)
               record)
      in
      let* ast = Parser.parse replace in
      let* replacement =
        Obs.span ctx.obs ~cat:"concretize" "concretize" (fun () ->
            concretize_ast ctx ast)
      in
      let* _outcomes =
        Obs.span ctx.obs ~cat:"install" "install" (fun () ->
            Installer.install ctx.installer replacement)
      in
      Installer.splice ctx.installer ~hash ~replacement

let verify (ctx : Context.t) ?query () =
  let* records = find ctx ?query () in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (r : Database.record) :: rest ->
        if r.Database.r_external then go acc rest
        else
          let* report =
            Provenance.verify_manifest ctx.Context.vfs
              ~prefix:r.Database.r_prefix
          in
          go ((r, report) :: acc) rest
  in
  go [] records

let gc (ctx : Context.t) =
  let db = Installer.database ctx.installer in
  let removable () =
    List.find_opt
      (fun r ->
        (not r.Database.r_explicit)
        && Database.dependents_of db r.Database.r_hash = [])
      (Database.all db)
  in
  let rec loop removed =
    match removable () with
    | None -> Ok (List.rev removed)
    | Some r -> (
        match Installer.uninstall ctx.installer ~hash:r.Database.r_hash with
        | Ok record -> loop (record :: removed)
        | Error e -> Error e)
  in
  loop []

let diff (ctx : Context.t) a b =
  let* ca = spec ctx a in
  let* cb = spec ctx b in
  let lines = ref [] in
  let addf fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let names =
    List.sort_uniq String.compare
      (List.map (fun n -> n.Concrete.name) (Concrete.nodes ca)
      @ List.map (fun n -> n.Concrete.name) (Concrete.nodes cb))
  in
  List.iter
    (fun name ->
      match (Concrete.node ca name, Concrete.node cb name) with
      | None, None -> ()
      | Some _, None -> addf "%s: only in %s" name a
      | None, Some _ -> addf "%s: only in %s" name b
      | Some na, Some nb ->
          if not (Version.equal na.Concrete.version nb.Concrete.version) then
            addf "%s: version %s vs %s" name
              (Version.to_string na.Concrete.version)
              (Version.to_string nb.Concrete.version);
          let ca_c = na.Concrete.compiler and cb_c = nb.Concrete.compiler in
          if
            fst ca_c <> fst cb_c
            || not (Version.equal (snd ca_c) (snd cb_c))
          then
            addf "%s: compiler %%%s@%s vs %%%s@%s" name (fst ca_c)
              (Version.to_string (snd ca_c))
              (fst cb_c)
              (Version.to_string (snd cb_c));
          if na.Concrete.arch <> nb.Concrete.arch then
            addf "%s: architecture =%s vs =%s" name na.Concrete.arch
              nb.Concrete.arch;
          Concrete.Smap.iter
            (fun v va ->
              match Concrete.Smap.find_opt v nb.Concrete.variants with
              | Some vb when Bool.equal va vb -> ()
              | Some vb ->
                  addf "%s: variant %s%s vs %s%s" name
                    (if va then "+" else "~")
                    v
                    (if vb then "+" else "~")
                    v
              | None -> addf "%s: variant %s only on one side" name v)
            na.Concrete.variants)
    names;
  Ok (List.rev !lines)

let extensions_of (ctx : Context.t) query =
  let* extendee = unique_installed ctx query in
  let extendee_name = Concrete.root extendee.Database.r_spec in
  let active =
    Extensions.active ctx.Context.vfs
      ~target_prefix:extendee.Database.r_prefix
  in
  let db = Installer.database ctx.installer in
  let records =
    List.filter
      (fun r ->
        let name = Concrete.root r.Database.r_spec in
        match Repository.find ctx.repo name with
        | Some p -> p.Package.p_extends = Some extendee_name
        | None -> false)
      (Database.all db)
  in
  Ok
    (List.map
       (fun r ->
         let name = Concrete.root r.Database.r_spec in
         (r, List.mem_assoc name active))
       records)

let compiler_list (ctx : Context.t) =
  List.map
    (fun tc ->
      Printf.sprintf "%s@%s (cc=%s cxx=%s f77=%s fc=%s)%s"
        tc.Compilers.tc_name
        (Version.to_string tc.Compilers.tc_version)
        tc.Compilers.tc_cc tc.Compilers.tc_cxx tc.Compilers.tc_f77
        tc.Compilers.tc_fc
        (match tc.Compilers.tc_archs with
        | [] -> ""
        | archs -> " [" ^ String.concat ", " archs ^ "]"))
    (Compilers.all ctx.compilers)
