type t =
  | Conflict of Ospack_spec.Constraint_ops.conflict
  | Unknown_package of string
  | Unknown_variant of { package : string; variant : string }
  | No_provider of { virtual_ : string; constraint_ : string }
  | No_compiler of { package : string; requested : string; arch : string }
  | No_version of {
      package : string;
      constraint_ : string;
      nearest : (string * string) list;
    }
  | Conflict_declared of { package : string; spec : string; msg : string }
  | Unused_constraint of { package : string; root : string }
  | Cycle of string list
  | Not_converged of { iterations : int }

exception Error of t

let to_string = function
  | Conflict c -> Ospack_spec.Constraint_ops.conflict_to_string c
  | Unknown_package p -> Printf.sprintf "unknown package: %s" p
  | Unknown_variant { package; variant } ->
      Printf.sprintf "package %s has no variant %s" package variant
  | No_provider { virtual_; constraint_ } ->
      Printf.sprintf "no provider of %s satisfies %s" virtual_ constraint_
  | No_compiler { package; requested; arch } ->
      Printf.sprintf "no compiler matching %s available for %s on %s"
        requested package arch
  | No_version { package; constraint_; nearest } ->
      let head =
        Printf.sprintf "no known version of %s satisfies @%s" package
          constraint_
      in
      if nearest = [] then head
      else
        head ^ "\n    candidate versions:"
        ^ String.concat ""
            (List.map
               (fun (v, why) -> Printf.sprintf "\n      %s: %s" v why)
               nearest)
  | Conflict_declared { package; spec; msg } ->
      Printf.sprintf "package %s conflicts with %s%s" package spec
        (if msg = "" then "" else ": " ^ msg)
  | Unused_constraint { package; root } ->
      Printf.sprintf "constraint on ^%s is unused: %s is not a dependency of %s"
        package package root
  | Cycle cycle ->
      Printf.sprintf "circular dependency: %s" (String.concat " -> " cycle)
  | Not_converged { iterations } ->
      Printf.sprintf "concretization did not converge after %d iterations"
        iterations

let pp fmt t = Format.pp_print_string fmt (to_string t)

type explanation = { ex_backend : string; ex_error : t; ex_chain : string list }

let explain_heading ~backend =
  match backend with
  | "greedy" -> "blocked decision path (greedy backend):"
  | b -> Printf.sprintf "unsat core (%s backend):" b

let explain_to_string e =
  let heading = explain_heading ~backend:e.ex_backend in
  let lines = List.map (fun l -> "  - " ^ l) e.ex_chain in
  String.concat "\n" (heading :: lines)
