module Ast = Ospack_spec.Ast
module Printer = Ospack_spec.Printer
module Package = Ospack_package.Package
module Repository = Ospack_package.Repository
module Provider_index = Ospack_package.Provider_index
module Policy = Ospack_config.Policy
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist
module Smap = Ast.Smap

type var_kind =
  | Present of string
  | Version_is of string * Version.t
  | Provider_is of string * string

type t = {
  nvars : int;
  kinds : var_kind array;  (* 1-based; index 0 unused *)
  cl : (int list * int) list;  (* (lits, origin), emission order *)
  reasons : string array;  (* origin id -> rendering *)
  ord : int list;
}

let nvars t = t.nvars
let clause_list t = t.cl
let order t = t.ord
let reason t o = t.reasons.(o)

let var_to_string t v =
  match t.kinds.(v) with
  | Present p -> Printf.sprintf "P(%s)" p
  | Version_is (p, ver) -> Printf.sprintf "V(%s@%s)" p (Version.to_string ver)
  | Provider_is (virt, pr) -> Printf.sprintf "Prov(%s=%s)" virt pr

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

type builder = {
  ctx : Concretizer_intf.ctx;
  abstract : Ast.t;
  vars : (string, int) Hashtbl.t;
  mutable rkinds : var_kind list;  (* reversed *)
  mutable nv : int;
  mutable rclauses : (int list * int) list;  (* reversed *)
  mutable rreasons : string list;  (* reversed *)
  mutable nreasons : int;
  cand : (string, Version.t list) Hashtbl.t;
  extra_points : (string, Version.t list) Hashtbl.t;
  maybe : (string * string, unit) Hashtbl.t;
      (* (pkg, variant) pairs some spec might pin: their value is not
         statically certain, so predicates over them are relaxed *)
  mutable closure : string list;  (* reversed during build *)
  closure_set : (string, unit) Hashtbl.t;
  mutable virts : string list;  (* reversed during build *)
  virt_set : (string, unit) Hashtbl.t;
}

let var b key kind =
  match Hashtbl.find_opt b.vars key with
  | Some v -> v
  | None ->
      b.nv <- b.nv + 1;
      Hashtbl.add b.vars key b.nv;
      b.rkinds <- kind :: b.rkinds;
      b.nv

let p_var b name = var b ("P:" ^ name) (Present name)

let v_var b name ver =
  var b
    ("V:" ^ name ^ "@" ^ Version.to_string ver)
    (Version_is (name, ver))

let prov_var b virt pr = var b ("Prov:" ^ virt ^ ":" ^ pr) (Provider_is (virt, pr))

let emit b lits why =
  let o = b.nreasons in
  b.nreasons <- o + 1;
  b.rreasons <- why :: b.rreasons;
  b.rclauses <- (lits, o) :: b.rclauses

let pkg_of b name =
  match Repository.find b.ctx.repo name with
  | Some p -> p
  | None -> invalid_arg ("Clauses: package not in closure: " ^ name)

let cand_of b name =
  Option.value (Hashtbl.find_opt b.cand name) ~default:[]

(* ------------------------------------------------------------------ *)
(* Closure walk: reachable packages, encountered virtuals, externally
   constrainable variants, extrapolated version points                 *)

let note_point b name vl =
  match Vlist.concrete vl with
  | None -> ()
  | Some v ->
      let existing =
        Option.value (Hashtbl.find_opt b.extra_points name) ~default:[]
      in
      if not (List.exists (Version.equal v) existing) then
        Hashtbl.replace b.extra_points name (existing @ [ v ])

let compute_closure b =
  let q = Queue.create () in
  let add_pkg name =
    if not (Hashtbl.mem b.closure_set name) then
      match Repository.find b.ctx.repo name with
      | Some _ ->
          Hashtbl.add b.closure_set name ();
          b.closure <- name :: b.closure;
          Queue.add name q
      | None -> ()
  in
  let add_virt name =
    if not (Hashtbl.mem b.virt_set name) then begin
      Hashtbl.add b.virt_set name ();
      b.virts <- name :: b.virts
    end;
    List.iter
      (fun e -> add_pkg e.Provider_index.e_provider)
      (Provider_index.providers b.ctx.index name)
  in
  let is_virt name = Provider_index.is_virtual b.ctx.index name in
  let add_name name = if is_virt name then add_virt name else add_pkg name in
  let note_variants name variants =
    if not (Smap.is_empty variants) then
      let targets =
        if is_virt name then
          List.map
            (fun e -> e.Provider_index.e_provider)
            (Provider_index.providers b.ctx.index name)
        else [ name ]
      in
      Smap.iter
        (fun vn _ ->
          List.iter (fun t -> Hashtbl.replace b.maybe (t, vn) ()) targets)
        variants
  in
  let note_node (n : Ast.node) =
    if not (is_virt n.Ast.name) then note_point b n.Ast.name n.Ast.versions;
    note_variants n.Ast.name n.Ast.variants
  in
  add_name b.abstract.Ast.root.Ast.name;
  note_node b.abstract.Ast.root;
  Smap.iter
    (fun name c ->
      add_name name;
      note_node c)
    b.abstract.Ast.deps;
  while not (Queue.is_empty q) do
    let name = Queue.pop q in
    let pkg = pkg_of b name in
    List.iter
      (fun (d : Package.dep) ->
        let target = d.Package.d_spec.Ast.root in
        add_name target.Ast.name;
        note_node target;
        Smap.iter
          (fun dn c ->
            add_name dn;
            note_node c)
          d.Package.d_spec.Ast.deps)
      pkg.Package.p_dependencies
  done;
  b.closure <- List.rev b.closure;
  b.virts <- List.rev b.virts

(* ------------------------------------------------------------------ *)
(* Candidate versions and variables, in decision order                 *)

let ranked_providers b virt =
  let entries = Provider_index.providers b.ctx.index virt in
  let prs =
    List.map (fun e -> e.Provider_index.e_provider) entries
    |> List.sort_uniq String.compare
    |> List.filter (Hashtbl.mem b.closure_set)
  in
  let rank name =
    let forced = if Smap.mem name b.abstract.Ast.deps then 0 else 1 in
    (forced, Policy.rank_provider b.ctx.config ~virtual_:virt name, name)
  in
  List.sort (fun a b -> compare (rank a) (rank b)) prs

let make_vars b =
  List.iter
    (fun name ->
      let pkg = pkg_of b name in
      let base = Concretizer.ranked_versions b.ctx.config pkg Vlist.any in
      let extra =
        Option.value (Hashtbl.find_opt b.extra_points name) ~default:[]
        |> List.filter (fun v -> not (List.exists (Version.equal v) base))
      in
      Hashtbl.replace b.cand name (base @ extra))
    b.closure;
  (* creation in decision order: providers, versions, presence *)
  let ord = ref [] in
  List.iter
    (fun virt ->
      List.iter
        (fun pr -> ord := prov_var b virt pr :: !ord)
        (ranked_providers b virt))
    b.virts;
  List.iter
    (fun name ->
      List.iter (fun v -> ord := v_var b name v :: !ord) (cand_of b name))
    b.closure;
  List.iter (fun name -> ord := -p_var b name :: !ord) b.closure;
  List.rev !ord

(* ------------------------------------------------------------------ *)
(* Variant certainty analysis                                          *)

type vval = Known of bool | Unknown

let user_variant b pname vn =
  if pname = b.abstract.Ast.root.Ast.name then
    Smap.find_opt vn b.abstract.Ast.root.Ast.variants
  else
    match Smap.find_opt pname b.abstract.Ast.deps with
    | Some n -> Smap.find_opt vn n.Ast.variants
    | None -> None

let variant_value b ~transfer pname vn =
  match user_variant b pname vn with
  | Some v -> Known v
  | None -> (
      match Smap.find_opt vn transfer with
      | Some v -> Known v
      | None ->
          if Hashtbl.mem b.maybe (pname, vn) then Unknown
          else
            let policy =
              List.assoc_opt vn
                (Policy.variant_preference b.ctx.config ~package:pname)
            in
            let default () =
              List.assoc_opt vn (Package.variant_defaults (pkg_of b pname))
            in
            (match policy with Some v -> Some v | None -> default ())
            |> function
            | Some v -> Known v
            | None -> Unknown)

(* When is a conditional dep of [pname] active?
   [None] — skip: predicate is certainly false, or not statically
   decidable (relaxation; the greedy oracle still enforces it).
   [Some None] — unconditionally active.
   [Some (Some vl)] — active exactly when the depender's version ∈ vl. *)
let dep_activation b ~transfer pname (d : Package.dep) =
  match d.Package.d_when with
  | None -> Some None
  | Some pred ->
      let pr = pred.Ast.root in
      if not (Smap.is_empty pred.Ast.deps) then None
      else if pr.Ast.compiler <> None || pr.Ast.arch <> None then None
      else
        let vars_ok =
          Smap.for_all
            (fun vn want ->
              match variant_value b ~transfer pname vn with
              | Known v -> v = want
              | Unknown -> false)
            pr.Ast.variants
        in
        if not vars_ok then None
        else if Vlist.is_any pr.Ast.versions then Some None
        else Some (Some pr.Ast.versions)

(* ------------------------------------------------------------------ *)
(* Clause emission                                                     *)

let rec emit_dep b ~depth ~gates ~transfer pname (d : Package.dep) =
  match dep_activation b ~transfer pname d with
  | None -> ()
  | Some vcond ->
      let gate_sets =
        match vcond with
        | None -> [ gates ]
        | Some vl ->
            cand_of b pname
            |> List.filter (fun v -> Vlist.mem v vl)
            |> List.map (fun v -> gates @ [ -v_var b pname v ])
      in
      List.iter (fun gates -> emit_dep_target b ~depth ~gates pname d) gate_sets

and emit_dep_target b ~depth ~gates pname (d : Package.dep) =
  let target = d.Package.d_spec.Ast.root in
  let tname = target.Ast.name in
  let why =
    Printf.sprintf "%s depends on %s" pname (Printer.node_to_string target)
  in
  (if Provider_index.is_virtual b.ctx.index tname then
     emit_vreq b ~depth ~gates ~why target
   else if Hashtbl.mem b.closure_set tname then begin
     emit b (gates @ [ p_var b tname ]) why;
     if not (Vlist.is_any target.Ast.versions) then
       List.iter
         (fun v ->
           if not (Vlist.mem v target.Ast.versions) then
             emit b (gates @ [ -v_var b tname v ]) why)
         (cand_of b tname)
   end
   else
     (* active dep on a package the repository does not know *)
     emit b gates (Printf.sprintf "%s depends on unknown package %s" pname tname));
  Smap.iter
    (fun dn c ->
      if Hashtbl.mem b.closure_set dn && not (Vlist.is_any c.Ast.versions)
      then
        List.iter
          (fun v ->
            if not (Vlist.mem v c.Ast.versions) then
              emit b
                (gates @ [ -v_var b dn v ])
                (Printf.sprintf "constraint from %s (depends_on %s)" pname
                   (Printer.node_to_string c)))
          (cand_of b dn))
    d.Package.d_spec.Ast.deps

and emit_vreq b ~depth ~gates ~why (req : Ast.node) =
  let virt = req.Ast.name in
  let entries = Provider_index.providers b.ctx.index virt in
  let prs = ranked_providers b virt in
  emit b (gates @ List.map (fun pr -> prov_var b virt pr) prs) why;
  List.iter
    (fun pr ->
      let pv = prov_var b virt pr in
      let pkg = pkg_of b pr in
      (* required interface variants must exist on (and agree with) the
         provider — the §4.5 lever: a provider lacking the variant is
         excluded by propagation, no backtracking needed *)
      Smap.iter
        (fun vn want ->
          if Package.find_variant pkg vn = None then
            emit b
              (gates @ [ -pv ])
              (Printf.sprintf "%s does not declare variant %s" pr vn)
          else
            match user_variant b pr vn with
            | Some uv when uv <> want ->
                emit b
                  (gates @ [ -pv ])
                  (Printf.sprintf
                     "%s is pinned %c%s by the user spec, but %s requires %c%s"
                     pr
                     (if uv then '+' else '~')
                     vn virt
                     (if want then '+' else '~')
                     vn)
            | _ -> ())
        req.Ast.variants;
      (* per-version interface compatibility: a provider version must
         have a provides entry whose interface versions intersect the
         requirement (non-version when-parts are relaxed to true) *)
      let entries_pr =
        List.filter (fun e -> e.Provider_index.e_provider = pr) entries
      in
      List.iter
        (fun v ->
          let admissible =
            List.exists
              (fun e ->
                let when_ok =
                  match e.Provider_index.e_when with
                  | None -> true
                  | Some w ->
                      Vlist.is_any w.Ast.root.Ast.versions
                      || Vlist.mem v w.Ast.root.Ast.versions
                in
                when_ok
                && Vlist.intersects e.Provider_index.e_provided.Ast.versions
                     req.Ast.versions)
              entries_pr
          in
          if not admissible then
            emit b
              (gates @ [ -pv; -v_var b pr v ])
              (Printf.sprintf "%s@%s cannot provide %s" pr
                 (Version.to_string v)
                 (Printer.node_to_string req)))
        (cand_of b pr);
      (* requirement variants transfer to the chosen provider and can
         activate its conditional deps (bounded recursion) *)
      if depth < 3 && not (Smap.is_empty req.Ast.variants) then
        List.iter
          (fun (d : Package.dep) ->
            match d.Package.d_when with
            | Some pred
              when Smap.exists
                     (fun vn _ -> Smap.mem vn req.Ast.variants)
                     pred.Ast.root.Ast.variants ->
                emit_dep b ~depth:(depth + 1)
                  ~gates:(gates @ [ -pv ])
                  ~transfer:req.Ast.variants pr d
            | _ -> ())
          pkg.Package.p_dependencies)
    prs

(* The user asked for [^name] on a real package: it must be justified —
   pulled in as some package's dependency or chosen as a provider of a
   required virtual. Without this, a model could "include" the package
   with no DAG edge leading to it, which greedy rejects as
   Unused_constraint. *)
let emit_justification b name =
  let pkg = pkg_of b name in
  let prov_lits =
    List.filter_map
      (fun (p : Package.provide) ->
        let virt = p.Package.pv_spec.Ast.name in
        if Hashtbl.mem b.virt_set virt then Some (prov_var b virt name)
        else None)
      pkg.Package.p_provides
    |> List.sort_uniq compare
  in
  let depender_lits =
    List.filter_map
      (fun q ->
        if q = name then None
        else
          let qp = pkg_of b q in
          if
            List.exists
              (fun (d : Package.dep) ->
                d.Package.d_spec.Ast.root.Ast.name = name)
              qp.Package.p_dependencies
          then Some (p_var b q)
          else None)
      b.closure
  in
  emit b (prov_lits @ depender_lits)
    (Printf.sprintf
       "^%s must be pulled in as a dependency or chosen as a provider" name)

let emit_user b =
  let root = b.abstract.Ast.root in
  let rname = root.Ast.name in
  let is_virt = Provider_index.is_virtual b.ctx.index in
  let user_real (n : Ast.node) =
    let name = n.Ast.name in
    if Hashtbl.mem b.closure_set name then begin
      let why =
        Printf.sprintf "the user spec requests %s" (Printer.node_to_string n)
      in
      emit b [ p_var b name ] why;
      if not (Vlist.is_any n.Ast.versions) then
        List.iter
          (fun v ->
            if not (Vlist.mem v n.Ast.versions) then
              emit b [ -v_var b name v ] why)
          (cand_of b name)
    end
    else emit b [] (Printf.sprintf "unknown package: %s" name)
  in
  (if is_virt rname then
     emit_vreq b ~depth:0 ~gates:[]
       ~why:
         (Printf.sprintf "the user spec requests %s"
            (Printer.node_to_string root))
       root
   else user_real root);
  Smap.iter
    (fun name c ->
      if is_virt name then
        emit_vreq b ~depth:0 ~gates:[]
          ~why:
            (Printf.sprintf "the user spec requests ^%s"
               (Printer.node_to_string c))
          c
      else begin
        user_real c;
        if name <> rname && Hashtbl.mem b.closure_set name then
          emit_justification b name
      end)
    b.abstract.Ast.deps

let emit_deps b =
  List.iter
    (fun pname ->
      let pkg = pkg_of b pname in
      let gates = [ -p_var b pname ] in
      List.iter
        (emit_dep b ~depth:0 ~gates ~transfer:Smap.empty pname)
        pkg.Package.p_dependencies)
    b.closure

(* Unconditional, version-only conflicts directives translate exactly;
   anything else is left to the greedy oracle. *)
let emit_conflicts b =
  List.iter
    (fun pname ->
      let pkg = pkg_of b pname in
      List.iter
        (fun (c : Package.conflict_decl) ->
          match c.Package.cf_when with
          | Some _ -> ()
          | None ->
              let n = c.Package.cf_spec in
              if
                Smap.is_empty n.Ast.variants
                && n.Ast.compiler = None && n.Ast.arch = None
                && not (Vlist.is_any n.Ast.versions)
              then
                List.iter
                  (fun v ->
                    if Vlist.mem v n.Ast.versions then
                      emit b
                        [ -v_var b pname v ]
                        (Printf.sprintf "%s conflicts with %s" pname
                           (Printer.node_to_string n)))
                  (cand_of b pname))
        pkg.Package.p_conflicts)
    b.closure

let emit_structural b =
  List.iter
    (fun pname ->
      let pv = p_var b pname in
      let cands = cand_of b pname in
      (match cands with
      | [] ->
          emit b [ -pv ] (Printf.sprintf "%s has no known versions" pname)
      | _ ->
          emit b
            (-pv :: List.map (fun v -> v_var b pname v) cands)
            (Printf.sprintf "%s must take one of its known versions" pname));
      let rec pairs = function
        | [] -> ()
        | v :: rest ->
            List.iter
              (fun w ->
                emit b
                  [ -v_var b pname v; -v_var b pname w ]
                  (Printf.sprintf "%s takes at most one version" pname))
              rest;
            pairs rest
      in
      pairs cands;
      List.iter
        (fun v ->
          emit b
            [ -v_var b pname v; pv ]
            (Printf.sprintf "a version choice for %s implies %s is in the DAG"
               pname pname))
        cands)
    b.closure;
  List.iter
    (fun virt ->
      let prs = ranked_providers b virt in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun c ->
                emit b
                  [ -prov_var b virt a; -prov_var b virt c ]
                  (Printf.sprintf "%s has at most one provider" virt))
              rest;
            pairs rest
      in
      pairs prs;
      List.iter
        (fun pr ->
          emit b
            [ -prov_var b virt pr; p_var b pr ]
            (Printf.sprintf "choosing %s as the %s provider puts %s in the DAG"
               pr virt pr))
        prs)
    b.virts

let encode ctx abstract =
  let b =
    {
      ctx;
      abstract;
      vars = Hashtbl.create 64;
      rkinds = [];
      nv = 0;
      rclauses = [];
      rreasons = [];
      nreasons = 0;
      cand = Hashtbl.create 32;
      extra_points = Hashtbl.create 16;
      maybe = Hashtbl.create 32;
      closure = [];
      closure_set = Hashtbl.create 32;
      virts = [];
      virt_set = Hashtbl.create 8;
    }
  in
  compute_closure b;
  let ord = make_vars b in
  emit_user b;
  emit_deps b;
  emit_conflicts b;
  emit_structural b;
  let kinds = Array.make (b.nv + 1) (Present "") in
  List.iteri
    (fun i k -> kinds.(b.nv - i) <- k)
    b.rkinds;
  {
    nvars = b.nv;
    kinds;
    cl = List.rev b.rclauses;
    reasons = Array.of_list (List.rev b.rreasons);
    ord;
  }

(* ------------------------------------------------------------------ *)
(* Model and core translation                                          *)

let decisions_of_model t model =
  let ds = ref [] in
  for v = t.nvars downto 1 do
    if model.(v) then
      match t.kinds.(v) with
      | Provider_is (virt, pr) -> ds := ("provider:" ^ virt, pr) :: !ds
      | Version_is (p, ver) ->
          ds := ("version:" ^ p, Version.to_string ver) :: !ds
      | Present _ -> ()
  done;
  !ds

let blocking_lits t model =
  let ls = ref [] in
  for v = 1 to t.nvars do
    if model.(v) then
      match t.kinds.(v) with
      | Provider_is _ | Version_is _ -> ls := v :: !ls
      | Present _ -> ()
  done;
  List.rev !ls

let render_core t origins =
  let sorted = List.sort_uniq compare origins in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun o ->
      if o < 0 || o >= Array.length t.reasons then None
      else
        let r = t.reasons.(o) in
        if Hashtbl.mem seen r then None
        else begin
          Hashtbl.add seen r ();
          Some r
        end)
    sorted
