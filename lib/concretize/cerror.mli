(** Concretization errors (paper §3.4: "Spack will stop and notify the user
    of the conflict").

    The greedy algorithm does not backtrack; each variant below corresponds
    to a distinct way a greedy run can get stuck, and the message tells the
    user what to toggle — the paper's "the user might toggle a variant or
    force the build to use a particular MPI implementation". *)

type t =
  | Conflict of Ospack_spec.Constraint_ops.conflict
      (** two constraint sources disagree on a parameter *)
  | Unknown_package of string
  | Unknown_variant of { package : string; variant : string }
      (** a spec constrains a variant the package does not declare *)
  | No_provider of { virtual_ : string; constraint_ : string }
      (** no provider's provided versions intersect the requirement *)
  | No_compiler of { package : string; requested : string; arch : string }
  | No_version of {
      package : string;
      constraint_ : string;
      nearest : (string * string) list;
          (** nearest-miss candidates: (version, why it was excluded) *)
    }
  | Conflict_declared of { package : string; spec : string; msg : string }
      (** a [conflicts] directive matched the concretized node *)
  | Unused_constraint of { package : string; root : string }
      (** the user constrained [^package] but it never entered the DAG *)
  | Cycle of string list
  | Not_converged of { iterations : int }
      (** fixed-point loop failed to settle (defensive bound) *)

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** A rendered conflict explanation: for the clause backend an unsat core,
    for the greedy backend the blocked decision path (pseudo-core). *)
type explanation = { ex_backend : string; ex_error : t; ex_chain : string list }

val explain_heading : backend:string -> string
(** ["blocked decision path (greedy backend):"] or
    ["unsat core (<backend> backend):"]. *)

val explain_to_string : explanation -> string
(** The heading followed by one ["  - "]-indented line per chain element. *)
