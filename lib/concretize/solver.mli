(** A small CDCL SAT solver with clause-origin tracking, the engine of the
    clause-based concretizer backend ({!Clauses}, {!Backends}).

    Variables are [1..nvars]; a literal is [+v] (true) or [-v] (false).
    Each input clause carries an integer {e origin} id (the encoder's
    handle on "which constraint produced this clause"); on UNSAT the
    solver returns the set of origin ids its refutation actually used —
    an over-approximate unsat core the caller can minimize and render.

    Search is classic two-watched-literal CDCL: unit propagation, 1-UIP
    conflict analysis with backjumping, geometric restarts, and a static
    decision order whose literal signs encode the preferred phase — the
    optimization weights (prefer ranked providers and newest versions
    positively, extra builds negatively) are expressed entirely through
    that order, so the first model found is the weight-optimal one. *)

type outcome =
  | Sat of bool array  (** index [v] holds the value of variable [v] *)
  | Unsat of int list  (** origin ids of the clauses used in refutation *)

type stats = {
  s_decisions : int;
  s_propagations : int;
  s_conflicts : int;
  s_restarts : int;
}

val solve :
  ?obs:Ospack_obs.Obs.t ->
  nvars:int ->
  clauses:(int list * int) list ->
  order:int list ->
  unit ->
  outcome * stats
(** [solve ~nvars ~clauses ~order ()] — [clauses] are (literals, origin)
    pairs; tautologies are dropped and duplicate literals removed. [order]
    is the static decision sequence: at each decision the first literal
    whose variable is unassigned is asserted with the given sign;
    variables not in [order] default to false. Counters mirror into [obs]
    as [solver.decisions] / [solver.propagations] / [solver.conflicts] /
    [solver.restarts]. *)
