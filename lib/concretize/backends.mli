(** Concretizer backend selection and the clause backend's CEGAR loop.

    Two backends implement {!Concretizer_intf.S}:

    - {!Greedy_backend} — the paper's greedy fixed point
      ({!Concretizer.concretize}); on failure its decision trace is
      reported as a pseudo-core (the blocked decision path).
    - {!Clause_backend} — the complete solver: counterexample-guided
      abstraction refinement over the {!Clauses} encoding. Round 0 is a
      pure greedy run (so whenever greedy succeeds both backends return
      byte-identical results — greedy success is preference-optimal by
      construction). On greedy failure the problem is encoded and solved
      with {!Solver}; each model is validated by replaying it through
      the greedy oracle with forced decisions, oracle rejections become
      blocking clauses, and encoding-UNSAT yields a minimized,
      human-readable unsat core. The returned typed error is always the
      first greedy run's (the encoding is a relaxation, so
      encoding-UNSAT implies greedy-UNSAT). *)

type t = Concretizer_intf.backend = Greedy | Clauses

val to_string : t -> string
val of_string : string -> t option
val all : t list

module Greedy_backend : Concretizer_intf.S
module Clause_backend : Concretizer_intf.S

val solve :
  t ->
  Concretizer_intf.ctx ->
  Ospack_spec.Ast.t ->
  (Ospack_spec.Concrete.t, Cerror.t) result

val solve_full :
  t -> Concretizer_intf.ctx -> Ospack_spec.Ast.t -> Concretizer_intf.outcome

val explanation :
  t -> Concretizer_intf.outcome -> Cerror.explanation option
(** The rendered conflict explanation of a failed outcome ([None] on
    success): the unsat core or blocked decision path with the typed
    error. *)
