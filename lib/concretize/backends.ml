module Obs = Ospack_obs.Obs
module I = Concretizer_intf

type t = I.backend = Greedy | Clauses

let to_string = I.backend_to_string
let of_string = I.backend_of_string
let all = I.all_backends

let mirror src dst =
  List.iter (fun (k, n) -> Obs.count dst k n) (Obs.counters src)

(* One greedy run against a fresh enabled sink, so per-stage counter
   deltas are readable even when ctx.obs is disabled; totals mirror
   into ctx.obs either way. *)
let greedy_run ?forced (ctx : I.ctx) ast =
  let obs = Obs.create () in
  let result, trace = Concretizer.run_trace ~obs ?forced ctx [] ast in
  mirror obs ctx.obs;
  let stats =
    {
      I.empty_stats with
      st_iterations = Obs.counter obs "concretize.iterations";
      st_runs = 1;
    }
  in
  (result, trace, stats)

module Greedy_backend = struct
  let name = "greedy"

  let solve_full (ctx : I.ctx) ast =
    let result, trace, stats = greedy_run ctx ast in
    let stats = { stats with I.st_decisions = List.length trace } in
    let core =
      match result with
      | Ok _ -> []
      | Error e ->
          List.map Concretizer.explain_decision trace
          @ [ "blocked: " ^ Cerror.to_string e ]
    in
    { I.oc_result = result; oc_stats = stats; oc_core = core }

  let solve ctx ast = (solve_full ctx ast).I.oc_result
end

module Clause_backend = struct
  let name = "clauses"

  let max_rounds = 64

  let solver_stats (s : Solver.stats) =
    {
      I.empty_stats with
      st_decisions = s.Solver.s_decisions;
      st_propagations = s.Solver.s_propagations;
      st_conflicts = s.Solver.s_conflicts;
      st_restarts = s.Solver.s_restarts;
    }

  (* Deletion-based core minimization over reason groups: drop a whole
     reason's clauses, re-solve, keep the drop if still UNSAT. Bounded
     to small cores; the unminimized core is already valid. *)
  let minimize enc blocking core_ids =
    let nvars = Clauses.nvars enc in
    let order = Clauses.order enc in
    let valid = List.filter (fun o -> o >= 0) core_ids in
    let groups =
      List.sort_uniq compare (List.map (Clauses.reason enc) valid)
    in
    if List.length groups > 25 then core_ids
    else begin
      let removed = Hashtbl.create 8 in
      let current = ref core_ids in
      List.iter
        (fun g ->
          let cls =
            List.filter
              (fun (_, o) ->
                let r = Clauses.reason enc o in
                (not (Hashtbl.mem removed r)) && r <> g)
              (Clauses.clause_list enc)
            @ blocking
          in
          match fst (Solver.solve ~nvars ~clauses:cls ~order ()) with
          | Solver.Unsat core' ->
              Hashtbl.add removed g ();
              current := core'
          | Solver.Sat _ -> ())
        groups;
      !current
    end

  let solve_full (ctx : I.ctx) ast =
    (* round 0: pure greedy. When greedy succeeds the two backends agree
       byte-identically, and that answer is preference-optimal (greedy
       takes the best-ranked candidate at every decision point). *)
    let r0, trace0, stats0 = greedy_run ctx ast in
    match r0 with
    | Ok c ->
        {
          I.oc_result = Ok c;
          oc_stats = { stats0 with I.st_decisions = List.length trace0 };
          oc_core = [];
        }
    | Error e0 -> (
        let greedy_core =
          List.map Concretizer.explain_decision trace0
          @ [ "blocked: " ^ Cerror.to_string e0 ]
        in
        match Clauses.encode ctx ast with
        | exception _ ->
            (* the encoder could not express the problem; report the
               greedy outcome rather than failing opaquely *)
            { I.oc_result = Error e0; oc_stats = stats0; oc_core = greedy_core }
        | enc ->
            let base_clauses = Clauses.clause_list enc in
            let rec refine blocking stats round =
              if round > max_rounds then
                {
                  I.oc_result = Error e0;
                  oc_stats = stats;
                  oc_core =
                    [
                      Printf.sprintf
                        "exhausted %d candidate models without one the \
                         greedy oracle accepts"
                        max_rounds;
                    ];
                }
              else
                let sobs = Obs.create () in
                let outcome, sstats =
                  Solver.solve ~obs:sobs ~nvars:(Clauses.nvars enc)
                    ~clauses:(base_clauses @ blocking)
                    ~order:(Clauses.order enc) ()
                in
                mirror sobs ctx.obs;
                let stats = I.add_stats stats (solver_stats sstats) in
                match outcome with
                | Solver.Unsat core_ids ->
                    let core_ids = minimize enc blocking core_ids in
                    {
                      I.oc_result = Error e0;
                      oc_stats = stats;
                      oc_core = Clauses.render_core enc core_ids;
                    }
                | Solver.Sat model -> (
                    let forced = Clauses.decisions_of_model enc model in
                    let r, _trace, ostats = greedy_run ~forced ctx ast in
                    let stats = I.add_stats stats ostats in
                    match r with
                    | Ok c ->
                        { I.oc_result = Ok c; oc_stats = stats; oc_core = [] }
                    | Error _ ->
                        (* the oracle refutes this model and every
                           superset of its provider/version choices *)
                        let block =
                          ( List.map (fun l -> -l)
                              (Clauses.blocking_lits enc model),
                            -1 )
                        in
                        refine (block :: blocking) stats (round + 1))
            in
            refine [] stats0 1)

  let solve ctx ast = (solve_full ctx ast).I.oc_result
end

let solve backend ctx ast =
  match backend with
  | Greedy -> Greedy_backend.solve ctx ast
  | Clauses -> Clause_backend.solve ctx ast

let solve_full backend ctx ast =
  match backend with
  | Greedy -> Greedy_backend.solve_full ctx ast
  | Clauses -> Clause_backend.solve_full ctx ast

let explanation backend (outcome : I.outcome) =
  match outcome.I.oc_result with
  | Ok _ -> None
  | Error e ->
      Some
        {
          Cerror.ex_backend = to_string backend;
          ex_error = e;
          ex_chain = outcome.I.oc_core;
        }
