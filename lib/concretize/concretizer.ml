module Ast = Ospack_spec.Ast
module Parser = Ospack_spec.Parser
module Printer = Ospack_spec.Printer
module Concrete = Ospack_spec.Concrete
module Constraint_ops = Ospack_spec.Constraint_ops
module Package = Ospack_package.Package
module Repository = Ospack_package.Repository
module Provider_index = Ospack_package.Provider_index
module Config = Ospack_config.Config
module Policy = Ospack_config.Policy
module Compilers = Ospack_config.Compilers
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist
module Smap = Ast.Smap
module Sset = Set.Make (String)
module Obs = Ospack_obs.Obs

type ctx = Concretizer_intf.ctx = {
  repo : Repository.t;
  index : Provider_index.t;
  config : Config.t;
  compilers : Compilers.t;
  obs : Obs.t;
}

let make_ctx ?(config = Config.empty) ?(obs = Obs.disabled) ~compilers repo =
  { repo; index = Provider_index.build repo; config; compilers; obs }

let fail e = raise (Cerror.Error e)

let intersect_or_fail a b =
  match Constraint_ops.intersect_node a b with
  | Ok n -> n
  | Error c -> fail (Cerror.Conflict c)

(* ------------------------------------------------------------------ *)
(* Per-iteration node state                                            *)

type info = {
  mutable cons : Ast.node;  (* merged constraints; name = package name *)
  pkg : Package.t;
  mutable deps : Sset.t;
  mutable required_by : string option;  (* first dependent; None for root *)
  mutable provided : (string * Vlist.t) list;  (* requirement-derived *)
}

(* Pinned parameters: the output of one iteration, input (for when-clause
   evaluation and inheritance) to the next. *)
type pins = {
  pv : Version.t;
  pc : string * Version.t;
  pvar : bool Smap.t;
  parch : string;
}

type snapshot = {
  snodes : Sset.t;
  sedges : Sset.t Smap.t;
  spins : pins Smap.t;
  sprovided : (string * Vlist.t) list Smap.t;
}

let empty_snapshot =
  {
    snodes = Sset.empty;
    sedges = Smap.empty;
    spins = Smap.empty;
    sprovided = Smap.empty;
  }

let pins_equal a b =
  Version.equal a.pv b.pv
  && fst a.pc = fst b.pc
  && Version.equal (snd a.pc) (snd b.pc)
  && Smap.equal Bool.equal a.pvar b.pvar
  && a.parch = b.parch

let provided_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (n1, v1) (n2, v2) -> n1 = n2 && Vlist.equal v1 v2) a b

let snapshot_equal a b =
  Sset.equal a.snodes b.snodes
  && Smap.equal Sset.equal a.sedges b.sedges
  && Smap.equal pins_equal a.spins b.spins
  && Smap.equal provided_equal a.sprovided b.sprovided

(* The "candidate" view of a node for when-clause evaluation: pinned
   parameters from the previous iteration where available, otherwise the
   current constraints. *)
let candidate_of ~prev_pins name cons =
  match Smap.find_opt name prev_pins with
  | None -> cons
  | Some p ->
      {
        Ast.name;
        versions = Vlist.of_version p.pv;
        compiler =
          Some
            {
              Ast.c_name = fst p.pc;
              c_versions = Vlist.of_version (snd p.pc);
            };
        variants = Smap.fold Ast.Smap.add p.pvar Ast.Smap.empty;
        arch = Some p.parch;
      }

(* ------------------------------------------------------------------ *)
(* One greedy run                                                      *)

type decision = {
  d_key : string;  (* "provider:mpi", "version:mpich" *)
  d_alternatives : int;
  d_chosen : string;  (* human-readable chosen value *)
}

type run_state = {
  ctx : ctx;
  obs : Obs.t;
      (* usually [ctx.obs]; [concretize_explain] substitutes its own
         enabled sink so the decision log always has somewhere to go *)
  choices : (string * int) list;  (* decision overrides (backtracking) *)
  forced : (string * string) list;
      (* value-based decision overrides: key -> rendered value. Used by
         the clause backend to replay a solver model through the greedy
         oracle; consulted before [choices], matched via [repr]. *)
  decisions : (string, int * string) Hashtbl.t;
      (* key -> (index, chosen repr); stable across iterations. The repr
         is authoritative on re-lookup: the candidate list for a key can
         be ranked differently on a later call in the same iteration
         (e.g. a provider already placed in the DAG ranks ahead of the
         site order), and the same decision must stick to the same
         {e value}, not the same position. The index is the fallback
         when the remembered value is no longer a candidate. *)
  mutable trace : decision list;  (* reversed *)
  vsources : (string, (string * Vlist.t) list) Hashtbl.t;
      (* per-package version-constraint provenance, for nearest-miss
         rendering in {!Cerror.No_version} *)
}

let explain_decision d =
  match String.index_opt d.d_key ':' with
  | Some i ->
      let kind = String.sub d.d_key 0 i in
      let subject =
        String.sub d.d_key (i + 1) (String.length d.d_key - i - 1)
      in
      let what =
        match kind with
        | "provider" -> Printf.sprintf "virtual %s -> %s" subject d.d_chosen
        | "version" -> Printf.sprintf "version of %s -> %s" subject d.d_chosen
        | other -> Printf.sprintf "%s of %s -> %s" other subject d.d_chosen
      in
      Printf.sprintf "%s (1 of %d candidates)" what d.d_alternatives
  | None -> Printf.sprintf "%s -> %s" d.d_key d.d_chosen

(* [decide rs key ~repr first rest] picks among the candidates
   [first :: rest]. Taking the nonempty list as two arguments makes "no
   candidates" unrepresentable at the call sites (each of which already
   checks for emptiness and raises a typed {!Cerror}), so the result is
   total — no option, no unreachable branch. *)
let index_where pred l =
  let rec go i = function
    | [] -> None
    | x :: rest -> if pred x then Some i else go (i + 1) rest
  in
  go 0 l

let decide rs key ~repr first rest =
  let alternatives = first :: rest in
  let n = List.length alternatives in
  match Hashtbl.find_opt rs.decisions key with
  | Some (i, value) -> (
      match index_where (fun a -> repr a = value) alternatives with
      | Some j -> List.nth alternatives j
      | None -> List.nth alternatives (min i (n - 1)))
  | None ->
      let forced_index =
        match List.assoc_opt key rs.forced with
        | Some value -> index_where (fun a -> repr a = value) alternatives
        | None -> None
      in
      let i =
        match forced_index with
        | Some i -> i
        | None -> (
            match List.assoc_opt key rs.choices with
            | Some i -> min i (n - 1)
            | None -> 0)
      in
      let chosen = List.nth alternatives i in
      Hashtbl.add rs.decisions key (i, repr chosen);
      let d = { d_key = key; d_alternatives = n; d_chosen = repr chosen } in
      rs.trace <- d :: rs.trace;
      (* the policy-decision log is an obs event stream: the explain
         rendering reads it back, and enabled traces show each
         decision as an annotation at the point it was taken *)
      Obs.count rs.obs "concretize.decisions" 1;
      Obs.annotate rs.obs ~cat:"explain" (explain_decision d);
      chosen

(* Record where a version constraint on [name] came from, so a later
   {!Cerror.No_version} can explain which source excluded each
   nearest-miss candidate. Unconstrained sources carry no information
   and are skipped; re-noting the same (source, constraint) pair across
   iterations is a no-op. *)
let note_vsource rs name src vl =
  if not (Vlist.is_any vl) then
    let existing =
      Option.value (Hashtbl.find_opt rs.vsources name) ~default:[]
    in
    if not (List.exists (fun (s, v) -> s = src && Vlist.equal v vl) existing)
    then Hashtbl.replace rs.vsources name (existing @ [ (src, vl) ])

(* Evaluate a when-predicate for [name] against the previous iteration's
   pins (node-local part) and the previous DAG (dependency part). *)
let when_holds ~prev ~prev_pins name cons (pred : Ast.t) =
  let candidate = candidate_of ~prev_pins name cons in
  Constraint_ops.node_satisfies ~candidate ~constraint_:pred.Ast.root
  && Ast.Smap.for_all
       (fun dep_name c ->
         Sset.exists
           (fun n ->
             let node_matches =
               n = dep_name
               ||
               match Smap.find_opt n prev.sprovided with
               | Some provided -> List.mem_assoc dep_name provided
               | None -> false
             in
             node_matches
             &&
             let dep_candidate =
               candidate_of ~prev_pins n (Ast.unconstrained n)
             in
             Constraint_ops.node_satisfies ~candidate:dep_candidate
               ~constraint_:{ c with Ast.name = n })
           prev.snodes)
       pred.Ast.deps

(* Rank versions best-first: site-preferred, then package-preferred, then
   newest; append the extrapolated exact version when nothing is known. *)
let ranked_versions cfg pkg (constraint_ : Vlist.t) =
  let candidates = Package.known_versions pkg in
  let satisfying = List.filter (fun v -> Vlist.mem v constraint_) candidates in
  let site_pref =
    match Policy.preferred_versions cfg ~package:pkg.Package.p_name with
    | None -> []
    | Some pref -> List.filter (fun v -> Vlist.mem v pref) satisfying
  in
  let pkg_pref =
    List.filter (fun v -> Vlist.mem v constraint_) (Package.preferred_versions pkg)
  in
  let rest = satisfying in
  let seen = Hashtbl.create 8 in
  let dedup vs =
    List.filter
      (fun v ->
        let k = Version.to_string v in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      vs
  in
  let ranked = dedup (site_pref @ pkg_pref @ rest) in
  if ranked = [] then
    match Vlist.concrete constraint_ with Some v -> [ v ] | None -> []
  else ranked

(* [seed] pre-populates the previous-iteration pins the first iteration
   evaluates its when-clauses against. A cold run starts from no pins; a
   seeded run starts from pins harvested from earlier concretizations in
   the same context (the concretization cache's sub-DAG memo), which lets
   the fixed point begin where a previous run ended. Only pins are seeded
   — never nodes, edges, or provided sets — so dependency-existence
   ([when=^dep]) clauses still see exactly the cold-start DAG in
   iteration 1, and the fixed point converges to the cold answer. *)
let run ?(seed = Smap.empty) rs (abstract : Ast.t) =
  let ctx = rs.ctx in
  let obs = rs.obs in
  (* every constraint merge is counted — the per-iteration cost driver
     the ASP follow-up paper's evaluation is built around *)
  let intersect_or_fail a b =
    Obs.count obs "concretize.constraints_merged" 1;
    intersect_or_fail a b
  in
  let user_cons = ref abstract.Ast.deps in
  note_vsource rs abstract.Ast.root.Ast.name "the user spec"
    abstract.Ast.root.Ast.versions;
  Smap.iter
    (fun name c -> note_vsource rs name "the user spec" c.Ast.versions)
    abstract.Ast.deps;
  (* constraints contributed by deep depends_on specs, by package name *)
  let max_iterations = 50 in
  let rec iterate iter prev =
    if iter > max_iterations then
      fail (Cerror.Not_converged { iterations = max_iterations });
    Obs.count obs "concretize.iterations" 1;
    let root_name, nodes, snapshot =
      Obs.span obs ~cat:"concretize"
        ~args:[ ("iteration", string_of_int iter) ]
        "concretize.iteration"
        (fun () -> one_iteration prev)
    in
    if snapshot_equal snapshot prev then
      Obs.span obs ~cat:"concretize" "concretize.finalize" (fun () ->
          finalize root_name nodes snapshot)
    else iterate (iter + 1) snapshot
  and one_iteration prev =
    let nodes : (string, info) Hashtbl.t = Hashtbl.create 16 in
    let order : string list ref = ref [] in
    let extra = ref !user_cons in
    let prev_pins = prev.spins in
    (* Create or constrain a node for a (possibly virtual) requirement;
       returns the real package name the requirement resolved to. *)
    let rec ensure ~required_by (req : Ast.node) =
      let req =
        match Smap.find_opt req.Ast.name !extra with
        | None -> req
        | Some pending -> intersect_or_fail req pending
      in
      match Repository.find ctx.repo req.Ast.name with
      | Some pkg -> (
          match Hashtbl.find_opt nodes req.Ast.name with
          | Some info ->
              info.cons <- intersect_or_fail info.cons req;
              info.pkg.Package.p_name
          | None ->
              let info =
                {
                  cons = req;
                  pkg;
                  deps = Sset.empty;
                  required_by;
                  provided = [];
                }
              in
              Hashtbl.replace nodes req.Ast.name info;
              order := req.Ast.name :: !order;
              pkg.Package.p_name)
      | None ->
          if Provider_index.is_virtual ctx.index req.Ast.name then
            resolve_virtual ~required_by req
          else fail (Cerror.Unknown_package req.Ast.name)
    and resolve_virtual ~required_by (req : Ast.node) =
      let virtual_ = req.Ast.name in
      let entries = Provider_index.providers_satisfying ctx.index req in
      if entries = [] then
        fail
          (Cerror.No_provider
             { virtual_; constraint_ = Printer.node_to_string req });
      let provider_names =
        List.map (fun e -> e.Provider_index.e_provider) entries
        |> List.sort_uniq String.compare
      in
      (* rank: user-forced, then already-in-DAG, then site order, then name *)
      let rank name =
        let forced = if Smap.mem name !user_cons then 0 else 1 in
        let present = if Hashtbl.mem nodes name then 0 else 1 in
        let site = Policy.rank_provider ctx.config ~virtual_ name in
        (forced, present, site, name)
      in
      let ranked =
        List.sort (fun a b -> compare (rank a) (rank b)) provider_names
      in
      let provider =
        match ranked with
        | [] ->
            (* [entries] was checked nonempty above and sorting preserves
               length, so this is locally dead — but if a future ranking
               stage ever filters, the user gets a provider error, not an
               abort *)
            fail
              (Cerror.No_provider
                 { virtual_; constraint_ = Printer.node_to_string req })
        | first :: rest ->
            decide rs ("provider:" ^ virtual_) ~repr:(fun p -> p) first rest
      in
      (* entries of the chosen provider, newest provided interface first *)
      let provider_entries =
        List.filter (fun e -> e.Provider_index.e_provider = provider) entries
        |> List.stable_sort (fun a b ->
               Vlist.compare_sup b.Provider_index.e_provided.Ast.versions
                 a.Provider_index.e_provided.Ast.versions)
      in
      (* translate: non-version constraints transfer to the provider;
         the provider-side when-condition constrains its version etc.
         A provider may expose the interface under several conditions
         (e.g. mpich provides mpi@:3 when @3: and mpi@:1 when @1:) — try
         entries in order and keep the first that does not conflict with
         the provider's other constraints. *)
      let transferred =
        { req with Ast.name = provider; versions = Vlist.any }
      in
      let attempt entry =
        let from_when =
          match entry.Provider_index.e_when with
          | None -> Ast.unconstrained provider
          | Some w -> { w.Ast.root with Ast.name = provider }
        in
        note_vsource rs provider
          (Printf.sprintf "provides condition on %s" provider)
          from_when.Ast.versions;
        let provider_req = intersect_or_fail transferred from_when in
        let name = ensure ~required_by provider_req in
        let info = Hashtbl.find nodes name in
        let provided_versions =
          Vlist.intersect entry.Provider_index.e_provided.Ast.versions
            req.Ast.versions
        in
        if Vlist.is_empty provided_versions then
          fail
            (Cerror.No_provider
               { virtual_; constraint_ = Printer.node_to_string req });
        (match List.assoc_opt virtual_ info.provided with
        | None ->
            info.provided <- (virtual_, provided_versions) :: info.provided
        | Some existing ->
            let merged = Vlist.intersect existing provided_versions in
            if Vlist.is_empty merged then
              fail
                (Cerror.No_provider
                   { virtual_; constraint_ = Printer.node_to_string req });
            info.provided <-
              (virtual_, merged) :: List.remove_assoc virtual_ info.provided);
        name
      in
      let rec try_entries first_err = function
        | [] -> (
            match first_err with
            | Some e -> raise e
            | None ->
                fail
                  (Cerror.No_provider
                     { virtual_; constraint_ = Printer.node_to_string req }))
        | entry :: rest -> (
            match attempt entry with
            | name -> name
            | exception (Cerror.Error _ as e) ->
                try_entries
                  (Some (Option.value first_err ~default:e))
                  rest)
      in
      try_entries None provider_entries
    in
    (* seed the DAG from the root request *)
    let root_name = ensure ~required_by:None abstract.Ast.root in
    (* expand dependencies breadth-first *)
    let queue = Queue.create () in
    Queue.add root_name queue;
    let expanded = Hashtbl.create 16 in
    while not (Queue.is_empty queue) do
      let name = Queue.pop queue in
      if not (Hashtbl.mem expanded name) then begin
        Hashtbl.replace expanded name ();
        let info = Hashtbl.find nodes name in
        List.iter
          (fun (d : Package.dep) ->
            let active =
              match d.Package.d_when with
              | None -> true
              | Some pred -> when_holds ~prev ~prev_pins name info.cons pred
            in
            if active then begin
              note_vsource rs d.Package.d_spec.Ast.root.Ast.name
                (Printf.sprintf "%s depends on %s" name
                   (Printer.node_to_string d.Package.d_spec.Ast.root))
                d.Package.d_spec.Ast.root.Ast.versions;
              (* deep constraints of this depends_on apply DAG-wide *)
              Ast.Smap.iter
                (fun dep_name c ->
                  note_vsource rs dep_name
                    (Printf.sprintf "constraint from %s (depends_on %s)" name
                       (Printer.node_to_string c))
                    c.Ast.versions;
                  extra :=
                    Smap.update dep_name
                      (function
                        | None -> Some c
                        | Some existing ->
                            Some (intersect_or_fail existing c))
                      !extra;
                  match Hashtbl.find_opt nodes dep_name with
                  | Some di -> di.cons <- intersect_or_fail di.cons c
                  | None -> ())
                d.Package.d_spec.Ast.deps;
              let child =
                ensure ~required_by:(Some name) d.Package.d_spec.Ast.root
              in
              if child <> name then begin
                info.deps <- Sset.add child info.deps;
                Queue.add child queue
              end
            end)
          info.pkg.Package.p_dependencies
      end
    done;
    (* pin parameters in creation order (parents first) *)
    let new_pins = ref Smap.empty in
    let creation_order = List.rev !order in
    List.iter
      (fun name ->
        let info = Hashtbl.find nodes name in
        let pkg = info.pkg in
        let cons = info.cons in
        (* architecture *)
        let parent_pins =
          match info.required_by with
          | None -> None
          | Some parent -> Smap.find_opt parent !new_pins
        in
        let arch =
          match cons.Ast.arch with
          | Some a -> a
          | None -> (
              match parent_pins with
              | Some p -> p.parch
              | None -> Policy.default_arch ctx.config)
        in
        (* compiler-feature requirements active under the current pins
           (paper §4.5: packages depend on compiler features) *)
        let features =
          List.filter_map
            (fun (f : Package.feature_req) ->
              match f.Package.fr_when with
              | None -> Some f.Package.fr_feature
              | Some pred ->
                  if
                    Constraint_ops.node_satisfies
                      ~candidate:(candidate_of ~prev_pins name cons)
                      ~constraint_:pred.Ast.root
                  then Some f.Package.fr_feature
                  else None)
            pkg.Package.p_compiler_features
        in
        let requested_of req =
          let base =
            match req with
            | Some (r : Ast.compiler_req) ->
                "%" ^ r.Ast.c_name
                ^
                (if Vlist.is_any r.Ast.c_versions then ""
                 else "@" ^ Vlist.to_string r.Ast.c_versions)
            | None -> "any"
          in
          if features = [] then base
          else base ^ " with features " ^ String.concat "," features
        in
        (* compiler *)
        let compiler =
          match cons.Ast.compiler with
          | Some req -> (
              match
                Policy.choose_toolchain ctx.config ctx.compilers ~arch
                  ~features ~req:(Some req) ()
              with
              | Some tc -> (tc.Compilers.tc_name, tc.Compilers.tc_version)
              | None ->
                  fail
                    (Cerror.No_compiler
                       { package = name; requested = requested_of (Some req);
                         arch }))
          | None -> (
              let inherited =
                match parent_pins with
                | Some p -> (
                    let cname, cver = p.pc in
                    match
                      Compilers.find ctx.compilers ~name:cname ~version:cver
                    with
                    | Some tc
                      when Compilers.supports tc ~arch
                           && Compilers.has_features tc features ->
                        Some (cname, cver)
                    | _ -> None)
                | None -> None
              in
              match inherited with
              | Some c -> c
              | None -> (
                  match
                    Policy.choose_toolchain ctx.config ctx.compilers ~arch
                      ~features ~req:None ()
                  with
                  | Some tc -> (tc.Compilers.tc_name, tc.Compilers.tc_version)
                  | None ->
                      fail
                        (Cerror.No_compiler
                           { package = name; requested = requested_of None;
                             arch })))
        in
        (* version *)
        let version =
          match ranked_versions ctx.config pkg cons.Ast.versions with
          | [] ->
              let sources =
                Option.value (Hashtbl.find_opt rs.vsources name) ~default:[]
              in
              let nearest =
                List.filteri (fun i _ -> i < 5) (Package.known_versions pkg)
                |> List.map (fun v ->
                       let why =
                         match
                           List.find_opt
                             (fun (_, vl) -> not (Vlist.mem v vl))
                             sources
                         with
                         | Some (src, vl) ->
                             Printf.sprintf "excluded by @%s (%s)"
                               (Vlist.to_string vl) src
                         | None -> "excluded by the combined constraint"
                       in
                       (Version.to_string v, why))
              in
              fail
                (Cerror.No_version
                   {
                     package = name;
                     constraint_ = Vlist.to_string cons.Ast.versions;
                     nearest;
                   })
          | [ v ] -> v
          | v :: rest ->
              decide rs ("version:" ^ name) ~repr:Version.to_string v rest
        in
        (* variants *)
        Ast.Smap.iter
          (fun v _ ->
            if Package.find_variant pkg v = None then
              fail (Cerror.Unknown_variant { package = name; variant = v }))
          cons.Ast.variants;
        let variants =
          List.fold_left
            (fun m (vname, default) ->
              let value =
                match Ast.Smap.find_opt vname cons.Ast.variants with
                | Some v -> v
                | None -> (
                    match
                      List.assoc_opt vname
                        (Policy.variant_preference ctx.config ~package:name)
                    with
                    | Some v -> v
                    | None -> default)
              in
              Smap.add vname value m)
            Smap.empty (Package.variant_defaults pkg)
        in
        new_pins :=
          Smap.add name
            { pv = version; pc = compiler; pvar = variants; parch = arch }
            !new_pins)
      creation_order;
    (* directive-derived provided sets, evaluated against the new pins *)
    let provided_of name (info : info) =
      let candidate = candidate_of ~prev_pins:!new_pins name info.cons in
      List.filter_map
        (fun (p : Package.provide) ->
          let active =
            match p.Package.pv_when with
            | None -> true
            | Some pred ->
                Constraint_ops.node_satisfies ~candidate
                  ~constraint_:pred.Ast.root
          in
          if active then
            Some (p.Package.pv_spec.Ast.name, p.Package.pv_spec.Ast.versions)
          else None)
        info.pkg.Package.p_provides
      |> List.sort compare
    in
    let snapshot =
      {
        snodes =
          Hashtbl.fold (fun k _ acc -> Sset.add k acc) nodes Sset.empty;
        sedges =
          Hashtbl.fold (fun k info acc -> Smap.add k info.deps acc) nodes
            Smap.empty;
        spins = !new_pins;
        sprovided =
          Hashtbl.fold
            (fun k info acc -> Smap.add k (provided_of k info) acc)
            nodes Smap.empty;
      }
    in
    (root_name, nodes, snapshot)
  and finalize root_name nodes snapshot =
    (* conflicts directives (paper §3.1: constraints tested on the spec) *)
    Hashtbl.iter
      (fun name (info : info) ->
        let candidate = candidate_of ~prev_pins:snapshot.spins name info.cons in
        List.iter
          (fun (c : Package.conflict_decl) ->
            let applicable =
              match c.Package.cf_when with
              | None -> true
              | Some pred ->
                  Constraint_ops.node_satisfies ~candidate
                    ~constraint_:pred.Ast.root
            in
            if
              applicable
              && Constraint_ops.node_satisfies ~candidate
                   ~constraint_:{ c.Package.cf_spec with Ast.name }
            then
              fail
                (Cerror.Conflict_declared
                   {
                     package = name;
                     spec = Printer.node_to_string c.Package.cf_spec;
                     msg = c.Package.cf_msg;
                   }))
          info.pkg.Package.p_conflicts)
      nodes;
    (* every user ^constraint must have materialized *)
    Ast.Smap.iter
      (fun cname _ ->
        let materialized =
          Sset.mem cname snapshot.snodes
          || Smap.exists
               (fun _ provided -> List.mem_assoc cname provided)
               snapshot.sprovided
        in
        if not materialized then
          fail (Cerror.Unused_constraint { package = cname; root = root_name }))
      abstract.Ast.deps;
    let concrete_nodes =
      Sset.fold
        (fun name acc ->
          let pins = Smap.find name snapshot.spins in
          let info = Hashtbl.find nodes name in
          {
            Concrete.name;
            version = pins.pv;
            compiler = pins.pc;
            variants =
              Smap.fold Concrete.Smap.add pins.pvar Concrete.Smap.empty;
            arch = pins.parch;
            deps = Sset.elements info.deps;
            provided = Smap.find name snapshot.sprovided;
          }
          :: acc)
        snapshot.snodes []
    in
    match Concrete.make ~root:root_name concrete_nodes with
    | Ok c -> c
    | Error (Concrete.Cyclic cycle) -> fail (Cerror.Cycle cycle)
    | Error e ->
        invalid_arg
          (Format.asprintf "concretizer produced an invalid DAG: %a"
             Concrete.pp_validation_error e)
  in
  iterate 1 { empty_snapshot with spins = seed }

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)

let run_once ?obs ?seed ?(forced = []) (ctx : ctx) choices abstract =
  let obs = Option.value obs ~default:ctx.obs in
  let rs =
    {
      ctx;
      obs;
      choices;
      forced;
      decisions = Hashtbl.create 8;
      trace = [];
      vsources = Hashtbl.create 8;
    }
  in
  match run ?seed rs abstract with
  | concrete -> (Ok concrete, List.rev rs.trace)
  | exception Cerror.Error e -> (Error e, List.rev rs.trace)

let run_trace ?obs ?(forced = []) (ctx : ctx) choices abstract =
  run_once ?obs ~forced ctx choices abstract

let concretize ctx abstract = fst (run_once ctx [] abstract)

let pins_of_concrete_node (n : Concrete.node) =
  {
    pv = n.Concrete.version;
    pc = n.Concrete.compiler;
    pvar = Concrete.Smap.fold Smap.add n.Concrete.variants Smap.empty;
    parch = n.Concrete.arch;
  }

(* Pins seed for a query: every package the cache ever concretized, except
   where the stored node contradicts the query's own constraints (root or
   ^dep) — a contradicted seed would make iteration 1 evaluate when-clauses
   against parameters the fixed point can never keep. *)
let seed_for cache (abstract : Ast.t) =
  List.fold_left
    (fun acc (name, node) ->
      let consistent =
        if name = abstract.Ast.root.Ast.name then
          Concrete.node_satisfies node abstract.Ast.root
        else
          match Smap.find_opt name abstract.Ast.deps with
          | Some c -> Concrete.node_satisfies node c
          | None -> true
      in
      if consistent then Smap.add name (pins_of_concrete_node node) acc
      else acc)
    Smap.empty (Ccache.seeds cache)

let concretize_cached ?cache ?installed (ctx : ctx) abstract =
  let obs = ctx.obs in
  let reused =
    match installed with
    | None -> None
    | Some find ->
        Obs.span obs ~cat:"ccache" "ccache.reuse_lookup" (fun () ->
            match find abstract with
            | Some c ->
                Obs.count obs "ccache.reuse_hits" 1;
                Some c
            | None -> None)
  in
  match reused with
  | Some c -> Ok c
  | None -> (
      match cache with
      | None -> concretize ctx abstract
      | Some cache -> (
          let hit =
            Obs.span obs ~cat:"ccache" "ccache.lookup" (fun () ->
                Ccache.lookup cache abstract)
          in
          match hit with
          | Some c -> Ok c
          | None ->
              let seed =
                Obs.span obs ~cat:"ccache" "ccache.seed" (fun () ->
                    let s = seed_for cache abstract in
                    Obs.count obs "ccache.seeded_pins" (Smap.cardinal s);
                    s)
              in
              let result = fst (run_once ~seed ctx [] abstract) in
              (match result with
              | Ok c -> Ccache.store cache abstract c
              | Error _ -> ());
              result))

let concretize_explain (ctx : ctx) abstract =
  (* the explain lines are read back from the obs event stream (rather
     than a bespoke string list): the run annotates each decision as it
     is taken, and we collect the annotations it produced. When the
     session already records, the same annotations land in its trace. *)
  let obs = if Obs.enabled ctx.obs then ctx.obs else Obs.create () in
  let m = Obs.mark obs in
  let result, _trace = run_once ~obs ctx [] abstract in
  Result.map
    (fun c -> (c, Obs.annotations_since obs ~cat:"explain" m))
    result

let concretize_string ctx spec =
  match Parser.parse spec with
  | Error e -> Error e
  | Ok abstract -> (
      match concretize ctx abstract with
      | Ok c -> Ok c
      | Error e -> Error (Cerror.to_string e))

let runs_used = ref 1
let last_run_count () = !runs_used

let concretize_backtracking ?(max_runs = 2000) ctx abstract =
  let first_result, first_trace = run_once ctx [] abstract in
  runs_used := 1;
  match first_result with
  | Ok c -> Ok c
  | Error first_error ->
      (* chronological backtracking: advance the most recent decision that
         still has untried alternatives, resetting all later ones *)
      let next_choices trace choices =
        let rec scan rev_trace =
          match rev_trace with
          | [] -> None
          | d :: earlier ->
              let key = d.d_key in
              let cur =
                Option.value (List.assoc_opt key choices) ~default:0
              in
              if cur + 1 < d.d_alternatives then
                let earlier_keys = List.map (fun d -> d.d_key) earlier in
                let kept =
                  List.filter (fun (k, _) -> List.mem k earlier_keys) choices
                in
                Some ((key, cur + 1) :: kept)
              else scan earlier
        in
        scan (List.rev trace)
      in
      let rec search trace choices runs =
        if runs >= max_runs then Error first_error
        else
          match next_choices trace choices with
          | None -> Error first_error
          | Some choices' -> (
              runs_used := runs + 1;
              Obs.count ctx.obs "concretize.backtracks" 1;
              match run_once ctx choices' abstract with
              | Ok c, _ -> Ok c
              | Error _, trace' -> search trace' choices' (runs + 1))
      in
      search first_trace [] 1
