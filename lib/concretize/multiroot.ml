module Ast = Ospack_spec.Ast
module Smap = Ospack_spec.Ast.Smap
module Concrete = Ospack_spec.Concrete
module Printer = Ospack_spec.Printer
module Constraint_ops = Ospack_spec.Constraint_ops
module Package = Ospack_package.Package
module Repository = Ospack_package.Repository
module Sha256 = Ospack_hash.Sha256

type error =
  | Root_conflict of {
      package : string;
      left_root : string;
      right_root : string;
      conflict : Constraint_ops.conflict;
    }
  | Unsat of Cerror.t
  | Dropped_root of string

let error_to_string = function
  | Root_conflict { package; left_root; right_root; conflict } ->
      Printf.sprintf
        "environment roots conflict on %s: %s (from %s) vs (from %s)" package
        (Constraint_ops.conflict_to_string conflict)
        left_root right_root
  | Unsat e -> Cerror.to_string e
  | Dropped_root r ->
      Printf.sprintf "unified solve dropped root %s from the DAG" r

(* The synthetic root's name carries a digest of the canonical root
   strings, so two environments with different root sets can never share
   a cache key even when their merged constraint maps coincide (e.g. a
   root demoted to a mere ^constraint of another root). The hash suffix
   also makes a collision with a real package name practically
   impossible; the ccache treats any name absent from the repository as
   the constant identity "absent", so entries keyed by the meta spec
   validate exactly like ordinary ones. *)
let meta_name roots =
  let digest = Sha256.hex_digest (String.concat "\n" roots) in
  "env-roots-" ^ String.sub digest 0 12

(* Merge every root's constraints into one flat map: each root's root
   node lands under its own package name, each of its ^constraints under
   the dependency's name, and collisions intersect — a typed conflict
   here is the unify semantics working, not a failure of it. The map
   remembers which root contributed each node so the conflict message
   can name both sides. *)
let merged_constraints asts =
  let add acc root_text node =
    if node.Ast.name = "" then Ok acc
    else
      match Smap.find_opt node.Ast.name acc with
      | None -> Ok (Smap.add node.Ast.name (node, root_text) acc)
      | Some (prev, prev_root) -> (
          match Constraint_ops.intersect_node prev node with
          | Ok merged -> Ok (Smap.add node.Ast.name (merged, prev_root) acc)
          | Error conflict ->
              Error
                (Root_conflict
                   {
                     package = node.Ast.name;
                     left_root = prev_root;
                     right_root = root_text;
                     conflict;
                   }))
  in
  List.fold_left
    (fun acc ast ->
      Result.bind acc (fun m ->
          let root_text = Printer.to_string ast in
          let nodes =
            ast.Ast.root :: List.map snd (Smap.bindings ast.Ast.deps)
          in
          List.fold_left
            (fun m node -> Result.bind m (fun m -> add m root_text node))
            (Ok m) nodes))
    (Ok Smap.empty) asts

(* One package depending on every distinct root name pulls all roots
   into a single greedy (or clause) solve; virtual roots resolve through
   the provider index like any other virtual dependency. *)
let meta_package name asts =
  let root_names =
    List.sort_uniq String.compare
      (List.map (fun a -> a.Ast.root.Ast.name) asts)
  in
  Package.make_pkg name
    ~description:"synthetic environment root (one dep per env root)"
    (Package.version "1" :: List.map Package.depends_on root_names)

let meta_ast name constraints =
  { Ast.root = Ast.unconstrained name; deps = Smap.map fst constraints }

(* Split the unified DAG back into per-root concrete specs. A root that
   names a virtual interface resolves to the node providing it. *)
let split_root concrete ast =
  let rn = ast.Ast.root.Ast.name in
  let target =
    match Concrete.node concrete rn with
    | Some n -> Some n.Concrete.name
    | None ->
        List.find_map
          (fun (n : Concrete.node) ->
            if List.mem_assoc rn n.Concrete.provided then
              Some n.Concrete.name
            else None)
          (Concrete.nodes concrete)
  in
  match target with
  | Some name -> Ok (Concrete.subspec concrete name)
  | None -> Error (Dropped_root (Printer.to_string ast))

let solve ?cache ?obs ~backend ~config ~compilers ~repo asts =
  match asts with
  | [] -> Ok []
  | _ -> (
      let canonical = List.map Printer.to_string asts in
      let name = meta_name canonical in
      Result.bind (merged_constraints asts) @@ fun constraints ->
      let mast = meta_ast name constraints in
      let split_all concrete =
        List.fold_left
          (fun acc ast ->
            Result.bind acc (fun specs ->
                Result.map (fun s -> s :: specs) (split_root concrete ast)))
          (Ok []) asts
        |> Result.map List.rev
      in
      let cached =
        match cache with None -> None | Some c -> Ccache.lookup c mast
      in
      match cached with
      | Some concrete -> split_all concrete
      | None -> (
          let meta_repo =
            Repository.create ~name:"env-meta" [ meta_package name asts ]
          in
          let layered = Repository.layered [ meta_repo; repo ] in
          let cctx = Concretizer.make_ctx ~config ?obs ~compilers layered in
          match Backends.solve backend cctx mast with
          | Error e -> Error (Unsat e)
          | Ok concrete ->
              (match cache with
              | Some c -> Ccache.store c mast concrete
              | None -> ());
              split_all concrete))
