(** The backend-agnostic concretizer interface.

    The paper's concretizer (§3.4) is one specific algorithm — a greedy
    fixed point where "a decision once taken is never revisited". Spack
    itself later swapped that algorithm for a complete optimizing solver
    without changing what a concretizer {e is}: a function from an
    abstract spec to a concrete spec under a package universe and site
    policy. This module pins down that contract so the greedy fixed
    point, its backtracking variant, and the clause-based complete
    solver ({!Backends}) are interchangeable behind one signature. *)

(** The solving context: everything outside the abstract spec that a
    concretization depends on. Shared by every backend (and re-exported
    as {!Concretizer.ctx} for compatibility). *)
type ctx = {
  repo : Ospack_package.Repository.t;
  index : Ospack_package.Provider_index.t;
  config : Ospack_config.Config.t;
  compilers : Ospack_config.Compilers.t;
  obs : Ospack_obs.Obs.t;
}

(** Which concretizer implementation to use. *)
type backend =
  | Greedy  (** the paper's greedy fixed point (+ backtracking variant) *)
  | Clauses  (** complete clause-based solver with unsat cores *)

let backend_to_string = function Greedy -> "greedy" | Clauses -> "clauses"

let backend_of_string = function
  | "greedy" -> Some Greedy
  | "clauses" -> Some Clauses
  | _ -> None

let all_backends = [ Greedy; Clauses ]

(** Search-effort statistics, in the vocabulary of both algorithm
    families. A greedy run reports iterations/runs and its policy
    decisions; the clause solver reports decisions, propagations,
    conflicts and restarts. Fields a backend does not track are 0. *)
type stats = {
  st_decisions : int;  (** choice points taken (greedy or CDCL) *)
  st_propagations : int;  (** unit propagations (clause backend) *)
  st_conflicts : int;  (** conflicts analyzed (clause backend) *)
  st_restarts : int;  (** solver restarts (clause backend) *)
  st_iterations : int;  (** fixed-point iterations (greedy oracle runs) *)
  st_runs : int;  (** greedy runs: 1 + backtracks, or CEGAR oracle calls *)
}

let empty_stats =
  {
    st_decisions = 0;
    st_propagations = 0;
    st_conflicts = 0;
    st_restarts = 0;
    st_iterations = 0;
    st_runs = 0;
  }

let add_stats a b =
  {
    st_decisions = a.st_decisions + b.st_decisions;
    st_propagations = a.st_propagations + b.st_propagations;
    st_conflicts = a.st_conflicts + b.st_conflicts;
    st_restarts = a.st_restarts + b.st_restarts;
    st_iterations = a.st_iterations + b.st_iterations;
    st_runs = a.st_runs + b.st_runs;
  }

let stats_to_string s =
  Printf.sprintf
    "decisions=%d propagations=%d conflicts=%d restarts=%d greedy_runs=%d \
     iterations=%d"
    s.st_decisions s.st_propagations s.st_conflicts s.st_restarts s.st_runs
    s.st_iterations

(** A full solve report: the result, the effort, and — on failure — the
    human-readable conflict chain (an unsat core for the clause backend,
    the blocked decision path for the greedy one). *)
type outcome = {
  oc_result : (Ospack_spec.Concrete.t, Cerror.t) result;
  oc_stats : stats;
  oc_core : string list;
      (** empty on success; on failure, one line per core/chain element *)
}

(** What every concretizer backend implements. *)
module type S = sig
  val name : string

  val solve :
    ctx -> Ospack_spec.Ast.t -> (Ospack_spec.Concrete.t, Cerror.t) result

  val solve_full : ctx -> Ospack_spec.Ast.t -> outcome
  (** Like {!solve}, additionally reporting statistics and, on failure,
      the conflict explanation. Counters mirror into [ctx.obs]
      ([solver.decisions], [solver.propagations], [solver.conflicts],
      [solver.restarts] for the clause backend; the greedy counters keep
      their [concretize.*] names). *)
end
