(** Clause encoding of a concretization problem for the {!Solver} backend.

    The literal scheme has one boolean variable per
    - package presence — [P(pkg)]: the package appears in the DAG;
    - package version — [V(pkg, v)]: the package is at version [v];
    - provider choice — [Prov(virt, pkg)]: [pkg] provides virtual [virt].

    The encoding is a sound {e relaxation} of the greedy semantics: every
    DAG the greedy fixed point could produce (under any decision
    overrides) is a model, so encoding-UNSAT implies greedy-UNSAT and the
    extracted core is a true explanation. Constraints the clause language
    cannot express exactly (compiler/arch-conditional deps, variants that
    some spec might pin) are dropped rather than approximated, and models
    are validated by replaying them through the greedy oracle
    ({!Concretizer.run_trace} with forced decisions) — see {!Backends}. *)

type t

val encode : Concretizer_intf.ctx -> Ospack_spec.Ast.t -> t
(** Encode the abstract spec against the context's package universe.
    The emitted clause order puts user constraints first and structural
    axioms last, so rendered cores lead with what the user asked for. *)

val nvars : t -> int
val clause_list : t -> (int list * int) list
(** (literals, origin id) pairs; origin ids index {!reason}. *)

val order : t -> int list
(** Static decision order encoding the optimization weights: provider
    variables first (per virtual, site rank order, positive phase =
    preferred provider), then version variables (per package, best
    version first, positive phase = newest/preferred), then presence
    variables with negative phase (= fewest builds). *)

val reason : t -> int -> string
(** Human-readable rendering of the constraint behind an origin id. *)

val var_to_string : t -> int -> string
(** Render a variable: [P(pkg)], [V(pkg@v)], or [Prov(virt=pkg)]. *)

val render_core : t -> int list -> string list
(** Origin ids → deduplicated reason lines, in emission order (user
    constraints first). *)

val decisions_of_model : t -> bool array -> (string * string) list
(** Translate a model into value-based forced decisions for the greedy
    oracle: [("provider:<virt>", <pkg>)] and [("version:<pkg>", <v>)]. *)

val blocking_lits : t -> bool array -> int list
(** The model's true provider-choice and version literals — negating
    these blocks the model {e and all its supersets} (sound because any
    superset forces the oracle through the same consulted decisions). *)
