(** The fingerprinted concretization cache.

    Concretization is ospack's hottest non-build path (paper §3.2: the
    greedy fixed point over the whole DAG), and its result is a pure
    function of (abstract spec, package universe, compiler registry, site
    configuration). This module memoizes that function: entries are keyed
    by the canonical printed form of the abstract spec ({!key_of}) and are
    valid only under a {e context fingerprint} — a SHA-256 over every
    declarative input that can influence a concretization
    ({!Ospack_package.Package.identity_string} of every visible package,
    the toolchain registry, the configuration key/value store, and an
    algorithm-version tag). Any package, compiler, config, or policy
    change yields a different fingerprint, and a cache persisted under the
    old fingerprint is discarded wholesale on load (counted in
    [ccache.invalidations]) — a stale entry is never trusted.

    The cornerstone invariant is that caching is observationally
    invisible: a cache hit returns a value byte-identical to what a cold
    concretization would have produced. That holds because concretization
    is deterministic and every input is covered by the key or the
    fingerprint.

    Persistence is crash-safe: {!save} writes a sibling temp file and
    {!Ospack_vfs.Vfs.rename}s it over the destination, so readers observe
    either the old or the new cache, never a torn one. *)

type t

val algorithm_version : string
(** Bumped whenever the concretizer's semantics change; part of the
    fingerprint so an upgraded binary never trusts an old cache. *)

val fingerprint :
  ?backend:string ->
  repo:Ospack_package.Repository.t ->
  compilers:Ospack_config.Compilers.t ->
  config:Ospack_config.Config.t ->
  unit ->
  string
(** The context fingerprint (64 hex chars). Policy is a pure function of
    the configuration, so covering the config covers the policy.
    [backend] (default ["greedy"]) extends the algorithm tag with the
    selected concretizer backend, so entries produced by one backend are
    never served to another. *)

val create : ?obs:Ospack_obs.Obs.t -> fingerprint:string -> unit -> t
(** An empty in-memory cache bound to a context fingerprint. *)

val fingerprint_of : t -> string

val key_of : Ospack_spec.Ast.t -> string
(** The cache key: the canonical printed form of the abstract spec
    ({!Ospack_spec.Printer.to_string} — deps sorted, version lists
    normalized). Specs that parse to the same AST share a key. *)

val lookup : t -> Ospack_spec.Ast.t -> Ospack_spec.Concrete.t option
(** Counts [ccache.hits] / [ccache.misses] on the cache's obs sink. *)

val store : t -> Ospack_spec.Ast.t -> Ospack_spec.Concrete.t -> unit
(** Record an authoritative (abstract, concrete) pair, and harvest every
    node of the concrete DAG into the advisory seed table. *)

val seeds : t -> (string * Ospack_spec.Concrete.node) list
(** The sub-DAG memo, sorted by package name: for each package that
    appeared in any stored concretization, the concrete node it pinned
    to. Seeds prime the fixed point's first iteration
    ({!Concretizer.concretize_cached}); they are {e never} served as
    whole-query answers — a node's parameters inside one DAG need not
    match its standalone concretization. *)

val length : t -> int
(** Authoritative entries only (seeds excluded). *)

val to_json : t -> Ospack_json.Json.t

val of_json :
  ?obs:Ospack_obs.Obs.t ->
  fingerprint:string ->
  Ospack_json.Json.t ->
  t
(** Rebuild a cache from its serialized form, {e validating} it against
    the current context: a format, fingerprint, or entry mismatch
    discards the stored entries (counting one [ccache.invalidations])
    and returns an empty cache — never an error, never a stale entry. *)

val load :
  ?obs:Ospack_obs.Obs.t ->
  fingerprint:string ->
  Ospack_vfs.Vfs.t ->
  path:string ->
  t
(** Read the persisted cache at [path]; a missing file is a plain empty
    cache, an unparsable one counts an invalidation. *)

val save : t -> Ospack_vfs.Vfs.t -> path:string -> (unit, string) result
(** Persist: write [path ^ ".tmp"], then rename over [path]. *)
