(** The Merkle-fingerprinted concretization cache.

    Concretization is ospack's hottest non-build path (paper §3.2: the
    greedy fixed point over the whole DAG), and its result is a pure
    function of (abstract spec, package universe, compiler registry, site
    configuration). This module memoizes that function: entries are keyed
    by the canonical printed form of the abstract spec ({!key_of}) and
    validated in two tiers.

    {b Base fingerprint} — a SHA-256 over the inputs shared by every
    entry: the algorithm-version+backend tag, repository name, toolchain
    registry, and configuration key/value store. A base mismatch (new
    algorithm, different backend, config or compiler change) discards the
    whole stored cache.

    {b Per-entry Merkle fingerprint} — a SHA-256 over the identity hashes
    ({!Ospack_package.Package.identity_string}) of exactly the packages
    in the entry's dependency closure, plus the provider identities of
    every virtual interface the closure uses (a new, removed, or edited
    provider can flip provider selection even when the stored DAG never
    contained it). Editing one recipe therefore invalidates only the
    entries whose closure can see the edit; unrelated entries survive.
    [ccache.invalidations] counts {e evicted entries} — per entry, under
    wholesale and targeted invalidation alike.

    The cornerstone invariant is that caching is observationally
    invisible: a cache hit returns a value byte-identical to what a cold
    concretization would have produced. That holds because concretization
    is deterministic and every input is covered by the key, the base
    fingerprint, or the entry fingerprint — a stale entry is never
    trusted.

    Persistence is crash-safe: {!save} writes a sibling temp file and
    {!Ospack_vfs.Vfs.rename}s it over the destination, so readers observe
    either the old or the new cache, never a torn one. *)

type t

type context
(** The validation context: base fingerprint plus memoized per-package
    identity hashes and the provider index of the repository. Build one
    per (repo, compilers, config, backend) and share it across cache
    operations. *)

val algorithm_version : string
(** Bumped whenever the concretizer's semantics change; part of the base
    fingerprint so an upgraded binary never trusts an old cache. *)

val context :
  ?backend:string ->
  repo:Ospack_package.Repository.t ->
  compilers:Ospack_config.Compilers.t ->
  config:Ospack_config.Config.t ->
  unit ->
  context
(** Build a validation context. Policy is a pure function of the
    configuration, so covering the config covers the policy. [backend]
    (default ["greedy"]) extends the algorithm tag with the selected
    concretizer backend, so entries produced by one backend are never
    served to another. *)

val base_fingerprint : context -> string
(** The base fingerprint (64 hex chars) — everything shared by all
    entries; package recipes are covered per entry instead. *)

val entry_fingerprint : context -> Ospack_spec.Concrete.t -> string
(** The Merkle fingerprint (64 hex chars) a concrete DAG must hash to
    for an entry holding it to be valid under [context]: base
    fingerprint, identity hash of each closure package, and provider
    identities of each virtual interface used. *)

val create : ?obs:Ospack_obs.Obs.t -> context:context -> unit -> t
(** An empty in-memory cache bound to a validation context. *)

val context_of : t -> context

val key_of : Ospack_spec.Ast.t -> string
(** The cache key: the canonical printed form of the abstract spec
    ({!Ospack_spec.Printer.to_string} — deps sorted, version lists
    normalized). Specs that parse to the same AST share a key. *)

val lookup : t -> Ospack_spec.Ast.t -> Ospack_spec.Concrete.t option
(** Counts [ccache.hits] / [ccache.misses] on the cache's obs sink. *)

val store : t -> Ospack_spec.Ast.t -> Ospack_spec.Concrete.t -> unit
(** Record an authoritative (abstract, concrete) pair, and harvest every
    node of the concrete DAG into the advisory seed table. *)

val seeds : t -> (string * Ospack_spec.Concrete.node) list
(** The sub-DAG memo, sorted by package name: for each package that
    appeared in any stored concretization, the concrete node it pinned
    to. Seeds prime the fixed point's first iteration
    ({!Concretizer.concretize_cached}); they are {e never} served as
    whole-query answers — a node's parameters inside one DAG need not
    match its standalone concretization. *)

val length : t -> int
(** Authoritative entries only (seeds excluded). *)

val to_json : t -> Ospack_json.Json.t
(** Serialized form: format version, base fingerprint, and one
    [{spec; merkle; concrete}] object per entry. *)

val of_json :
  ?obs:Ospack_obs.Obs.t ->
  context:context ->
  Ospack_json.Json.t ->
  t
(** Rebuild a cache from its serialized form, {e validating} it against
    the current context. A format or base mismatch discards every stored
    entry; otherwise each entry is revalidated individually and kept iff
    its recorded Merkle fingerprint still matches its DAG under
    [context]. Every evicted entry counts one [ccache.invalidations];
    malformed entries are dropped (and counted) without poisoning their
    neighbours. Seeds are harvested only from surviving entries. Never an
    error, never a stale entry. *)

val load :
  ?obs:Ospack_obs.Obs.t ->
  context:context ->
  Ospack_vfs.Vfs.t ->
  path:string ->
  t
(** Read the persisted cache at [path]; a missing file is a plain empty
    cache, an unparsable one counts one invalidation. *)

val save : t -> Ospack_vfs.Vfs.t -> path:string -> (unit, string) result
(** Persist: write [path ^ ".tmp"], then rename over [path]. *)
