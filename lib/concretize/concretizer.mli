(** Concretization: abstract spec → concrete spec (paper §3.4, Fig. 6).

    The algorithm follows the paper's pipeline as a fixed point:

    + intersect the user's constraints with constraints from package
      directives, package by package;
    + replace virtual nodes with providers chosen via the provider index
      and site/user policies;
    + consult policies to pin any remaining parameters (version, compiler,
      variants, architecture — children inherit architecture and compiler
      from the package that pulled them in, the root from configuration);
    + re-evaluate conditional ([when=]) dependencies against the new pins,
      and repeat until nothing changes.

    Like Spack's implementation, {!concretize} is greedy: a decision once
    taken is never revisited, and a downstream inconsistency is reported
    as a {!Cerror.t} telling the user what to force (§3.4, §4.5).
    {!concretize_backtracking} is the "better constraint solving" the paper
    leaves as future work: chronological backtracking over the greedy
    run's recorded decision points (virtual-provider and version choices),
    which resolves e.g. the paper's hwloc example (§4.5). *)

type ctx = Concretizer_intf.ctx = {
  repo : Ospack_package.Repository.t;
  index : Ospack_package.Provider_index.t;
  config : Ospack_config.Config.t;
  compilers : Ospack_config.Compilers.t;
  obs : Ospack_obs.Obs.t;
}

val make_ctx :
  ?config:Ospack_config.Config.t ->
  ?obs:Ospack_obs.Obs.t ->
  compilers:Ospack_config.Compilers.t ->
  Ospack_package.Repository.t ->
  ctx
(** Build a context (and the provider index) over a repository.

    When [obs] is an enabled sink (default: {!Ospack_obs.Obs.disabled}),
    every concretization records one span per fixed-point iteration plus
    a finalize span, counters for iterations, constraint merges, policy
    decisions and backtracking re-runs, and one instant annotation (cat
    ["explain"]) per policy decision. *)

val concretize :
  ctx -> Ospack_spec.Ast.t -> (Ospack_spec.Concrete.t, Cerror.t) result
(** Greedy concretization. The root may name a virtual interface
    ([spack install mpi] installs the preferred provider). *)

val concretize_cached :
  ?cache:Ccache.t ->
  ?installed:(Ospack_spec.Ast.t -> Ospack_spec.Concrete.t option) ->
  ctx ->
  Ospack_spec.Ast.t ->
  (Ospack_spec.Concrete.t, Cerror.t) result
(** {!concretize} through the concretization cache, in three layers:

    + {b store-aware reuse} — when [installed] is given, an installed
      concrete spec satisfying the abstract query is returned as-is
      instead of re-solving ([--reuse]; the callback is typically
      [Database.find_satisfying] plus the §3.2.3 newest-version
      tie-break). Counted as [ccache.reuse_hits].
    + {b whole-query memo} — a cache hit under the current context
      fingerprint returns the stored concretization
      ([ccache.hits]/[ccache.misses]).
    + {b sub-DAG seeding} — on a miss, pins harvested from earlier
      concretizations ({!Ccache.seeds}) prime the fixed point's first
      iteration ([ccache.seeded_pins]), so shared subtrees (the
      [mvapich2] under [mpileaks ^mvapich2]) start from their previous
      solution rather than from scratch. Seeds contradicting the query's
      own constraints are dropped.

    Caching is observationally invisible: a hit is byte-identical to the
    cold result (concretization is deterministic and every input is
    covered by the key or the fingerprint), and a seeded fixed point
    converges to the cold answer because only pins are seeded — never
    nodes, edges, or provided sets — so iteration 1 sees exactly the
    cold-start DAG. The bench's [concretize] mode asserts this identity
    over the whole workload suite. Successful results (from layers 2–3)
    are stored back; reuse results are not (they reflect the store, not
    the current packages). *)

val concretize_explain :
  ctx ->
  Ospack_spec.Ast.t ->
  (Ospack_spec.Concrete.t * string list, Cerror.t) result
(** Like {!concretize}, additionally returning one human-readable line per
    policy decision the greedy run took (virtual-provider and version
    choices with their candidate counts) — [spack spec --explain]. The
    lines are read back from the obs event stream: the run annotates each
    decision as it takes it (under an internal enabled sink when
    [ctx.obs] is disabled), so the same lines appear as trace
    annotations in recording sessions. *)

val concretize_string :
  ctx -> string -> (Ospack_spec.Concrete.t, string) result
(** Parse and concretize; parse and concretization errors are rendered. *)

val concretize_backtracking :
  ?max_runs:int ->
  ctx ->
  Ospack_spec.Ast.t ->
  (Ospack_spec.Concrete.t, Cerror.t) result
(** Greedy search with chronological backtracking over provider and
    version decisions. [max_runs] bounds the number of greedy re-runs
    (default 2000). Returns the first solution found, or the error of the
    first (fully greedy) run if the search space is exhausted. *)

val last_run_count : unit -> int
(** Number of greedy runs the most recent {!concretize_backtracking} used
    (1 when greedy succeeded outright) — exposed for the ablation bench. *)

(** {2 Backend plumbing}

    The pieces below expose the greedy run's internals to the other
    concretizer backends ({!Backends}, {!Clauses}): its decision trace,
    a way to replay it under forced decisions (the clause backend's
    greedy oracle), and the version-ranking policy shared by both. *)

type decision = {
  d_key : string;  (** ["provider:mpi"], ["version:mpich"] *)
  d_alternatives : int;  (** how many candidates the policy ranked *)
  d_chosen : string;  (** human-readable chosen value *)
}

val explain_decision : decision -> string
(** E.g. ["virtual mpi -> mvapich2 (1 of 3 candidates)"]. *)

val run_trace :
  ?obs:Ospack_obs.Obs.t ->
  ?forced:(string * string) list ->
  ctx ->
  (string * int) list ->
  Ospack_spec.Ast.t ->
  (Ospack_spec.Concrete.t, Cerror.t) result * decision list
(** One greedy run, returning both the result and the decision trace in
    the order the decisions were taken. The [(string * int) list] is the
    index-based decision-override list (as used by backtracking);
    [forced] overrides decisions by {e value} instead — a pair
    [("provider:mpi", "openmpi")] or [("version:hwloc", "1.9")] forces
    that choice wherever it appears among the ranked candidates. Forced
    values not among the candidates are ignored (the greedy default
    applies). *)

val ranked_versions :
  Ospack_config.Config.t ->
  Ospack_package.Package.t ->
  Ospack_version.Vlist.t ->
  Ospack_version.Version.t list
(** The version-preference policy: candidates best-first (site-preferred,
    then package-preferred, then newest), restricted to the constraint;
    a concrete point constraint is extrapolated when nothing is known.
    Shared with the clause backend so both rank versions identically. *)
