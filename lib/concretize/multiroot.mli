(** Unified multi-root concretization — the environment solve.

    An environment's roots must be concretized {e together}: solving each
    root independently can lock two roots to conflicting versions of a
    shared dependency, which defeats the one-configuration-per-package
    guarantee a DAG gives a single spec (paper §3.2.1). This module folds
    all roots into one solve:

    + every root's constraints (its root node and its [^dep] constraints)
      are intersected into a single flat constraint map — a typed
      {!error.Root_conflict} here is the unify semantics surfacing a real
      incompatibility between two roots;
    + a synthetic meta-package, named by a digest of the canonical root
      strings and depending on every distinct root name, is layered over
      the repository and concretized once through the selected backend
      ({!Backends.solve} — greedy or clauses), so shared sub-DAGs are
      merged by construction;
    + the unified DAG is split back into per-root concrete specs with
      {!Ospack_spec.Concrete.subspec} (virtual roots resolve to their
      provider node).

    The whole unified solve memoizes through the ordinary concretization
    cache when [cache] is given: the key is the canonical printed meta
    spec (digest-named, so distinct root sets never collide), and the
    entry validates per the usual Merkle fingerprint over its closure. *)

type error =
  | Root_conflict of {
      package : string;  (** the package two roots disagree on *)
      left_root : string;  (** canonical root that first constrained it *)
      right_root : string;  (** canonical root that contradicts it *)
      conflict : Ospack_spec.Constraint_ops.conflict;
    }
  | Unsat of Cerror.t  (** the unified solve itself failed *)
  | Dropped_root of string
      (** a root never materialized in the unified DAG (internal error —
          the meta-package depends on every root by name) *)

val error_to_string : error -> string

val meta_name : string list -> string
(** The synthetic root's package name for the given canonical root
    strings: ["env-roots-"] plus 12 hex chars of a SHA-256 digest. *)

val solve :
  ?cache:Ccache.t ->
  ?obs:Ospack_obs.Obs.t ->
  backend:Concretizer_intf.backend ->
  config:Ospack_config.Config.t ->
  compilers:Ospack_config.Compilers.t ->
  repo:Ospack_package.Repository.t ->
  Ospack_spec.Ast.t list ->
  (Ospack_spec.Concrete.t list, error) result
(** Concretize all roots in one pass; returns one concrete spec per root,
    in input order. Deterministic, and observationally identical with or
    without [cache] (the caller persists the cache). [solve ... []] is
    [Ok []]. *)
