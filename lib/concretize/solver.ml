module Obs = Ospack_obs.Obs
module IntSet = Set.Make (Int)

type outcome = Sat of bool array | Unsat of int list

type stats = {
  s_decisions : int;
  s_propagations : int;
  s_conflicts : int;
  s_restarts : int;
}

(* Growable array (the stdlib gains Dynarray only in 5.2). *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 4 dummy; len = 0; dummy }

  let push v x =
    if v.len = Array.length v.data then begin
      let d = Array.make (2 * Array.length v.data) v.dummy in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
  let shrink v n = v.len <- n
end

type clause = { lits : int array; origins : IntSet.t }

exception Found_sat
exception Found_unsat of IntSet.t

let dummy_clause = { lits = [||]; origins = IntSet.empty }

let solve ?(obs = Obs.disabled) ~nvars ~clauses:input ~order () =
  (* assignment state *)
  let assign = Array.make (nvars + 1) 0 in
  (* 0 unassigned, 1 true, -1 false *)
  let level = Array.make (nvars + 1) 0 in
  let reason = Array.make (nvars + 1) (-1) in
  let var_origins = Array.make (nvars + 1) IntSet.empty in
  (* transitive origin closure, maintained for level-0 assignments only *)
  let trail = Array.make (nvars + 1) 0 in
  let trail_sz = ref 0 in
  let trail_lim : int Vec.t = Vec.create 0 in
  let qhead = ref 0 in
  let clauses : clause Vec.t = Vec.create dummy_clause in
  (* watches.(lit_index l) = indices of clauses currently watching l *)
  let watches : int Vec.t array =
    Array.init (2 * (nvars + 1)) (fun _ -> Vec.create 0)
  in
  let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1 in
  let lit_value l =
    let a = assign.(abs l) in
    if a = 0 then 0 else if (l > 0) = (a > 0) then 1 else -1
  in
  let decision_level () = Vec.len trail_lim in
  let n_decisions = ref 0 in
  let n_propagations = ref 0 in
  let n_conflicts = ref 0 in
  let n_restarts = ref 0 in

  let enqueue l ci =
    let v = abs l in
    assign.(v) <- (if l > 0 then 1 else -1);
    level.(v) <- decision_level ();
    reason.(v) <- ci;
    if decision_level () = 0 && ci >= 0 then begin
      let c = Vec.get clauses ci in
      let o = ref c.origins in
      Array.iter
        (fun q -> if abs q <> v then o := IntSet.union !o var_origins.(abs q))
        c.lits;
      var_origins.(v) <- !o
    end;
    trail.(!trail_sz) <- l;
    incr trail_sz
  in

  let cancel_until lvl =
    if decision_level () > lvl then begin
      let bound = Vec.get trail_lim lvl in
      for i = !trail_sz - 1 downto bound do
        let v = abs trail.(i) in
        assign.(v) <- 0;
        reason.(v) <- -1
      done;
      trail_sz := bound;
      qhead := bound;
      Vec.shrink trail_lim lvl
    end
  in

  (* Returns the index of the conflicting clause, or -1. *)
  let propagate () =
    let confl = ref (-1) in
    while !confl < 0 && !qhead < !trail_sz do
      let p = trail.(!qhead) in
      incr qhead;
      incr n_propagations;
      let wl = watches.(lit_index (-p)) in
      let n = Vec.len wl in
      let i = ref 0 in
      let j = ref 0 in
      while !i < n do
        let ci = Vec.get wl !i in
        incr i;
        if !confl >= 0 then begin
          (* conflict already found this pass: keep remaining watches *)
          Vec.set wl !j ci;
          incr j
        end
        else begin
          let c = Vec.get clauses ci in
          let lits = c.lits in
          let false_lit = -p in
          if lits.(0) = false_lit then begin
            lits.(0) <- lits.(1);
            lits.(1) <- false_lit
          end;
          if lit_value lits.(0) = 1 then begin
            Vec.set wl !j ci;
            incr j
          end
          else begin
            let len = Array.length lits in
            let k = ref 2 in
            while !k < len && lit_value lits.(!k) = -1 do
              incr k
            done;
            if !k < len then begin
              (* found a new watch; clause leaves this list *)
              lits.(1) <- lits.(!k);
              lits.(!k) <- false_lit;
              Vec.push watches.(lit_index lits.(1)) ci
            end
            else if lit_value lits.(0) = -1 then begin
              Vec.set wl !j ci;
              incr j;
              confl := ci;
              qhead := !trail_sz
            end
            else begin
              Vec.set wl !j ci;
              incr j;
              enqueue lits.(0) ci
            end
          end
        end
      done;
      Vec.shrink wl !j
    done;
    !confl
  in

  (* 1-UIP conflict analysis. Returns (learned lits, uip first;
     backjump level; union of origins of every clause resolved). *)
  let analyze confl =
    let seen = Array.make (nvars + 1) false in
    let learnt = ref [] in
    let origins = ref IntSet.empty in
    let counter = ref 0 in
    let p = ref 0 in
    let ci = ref confl in
    let index = ref (!trail_sz - 1) in
    let btlevel = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let c = Vec.get clauses !ci in
      origins := IntSet.union !origins c.origins;
      Array.iter
        (fun q ->
          if q <> !p then begin
            let v = abs q in
            if level.(v) = 0 then
              (* dropped from the learned clause, but its level-0
                 justification is part of the refutation *)
              origins := IntSet.union !origins var_origins.(v)
            else if not seen.(v) then begin
              seen.(v) <- true;
              if level.(v) = decision_level () then incr counter
              else begin
                learnt := q :: !learnt;
                if level.(v) > !btlevel then btlevel := level.(v)
              end
            end
          end)
        c.lits;
      while not seen.(abs trail.(!index)) do
        decr index
      done;
      p := trail.(!index);
      decr index;
      seen.(abs !p) <- false;
      decr counter;
      if !counter = 0 then continue_ := false else ci := reason.(abs !p)
    done;
    (- !p :: !learnt, !btlevel, !origins)
  in

  (* conflict at level 0: walk level-0 justifications *)
  let final_origins confl =
    let c = Vec.get clauses confl in
    let o = ref c.origins in
    Array.iter (fun q -> o := IntSet.union !o var_origins.(abs q)) c.lits;
    !o
  in

  let add_clause_store lits origins =
    let ci = Vec.len clauses in
    Vec.push clauses { lits; origins };
    if Array.length lits >= 2 then begin
      Vec.push watches.(lit_index lits.(0)) ci;
      Vec.push watches.(lit_index lits.(1)) ci
    end;
    ci
  in

  let assert_unit l ci =
    match lit_value l with
    | 1 -> ()
    | 0 -> enqueue l ci
    | _ ->
        let c = Vec.get clauses ci in
        raise (Found_unsat (IntSet.union c.origins var_origins.(abs l)))
  in

  let record learnt btlevel origins =
    match learnt with
    | [] -> raise (Found_unsat origins)
    | [ l ] ->
        cancel_until 0;
        let ci = add_clause_store [| l |] origins in
        assert_unit l ci
    | l :: _ ->
        cancel_until btlevel;
        let arr = Array.of_list learnt in
        (* watch invariant: position 1 holds a highest-level literal *)
        let mi = ref 1 in
        for k = 2 to Array.length arr - 1 do
          if level.(abs arr.(k)) > level.(abs arr.(!mi)) then mi := k
        done;
        let t = arr.(1) in
        arr.(1) <- arr.(!mi);
        arr.(!mi) <- t;
        let ci = add_clause_store arr origins in
        enqueue l ci
  in

  let order_arr = Array.of_list order in
  let decide_next () =
    let rec scan i =
      if i >= Array.length order_arr then
        let rec scanv v =
          if v > nvars then None
          else if assign.(v) = 0 then Some (-v)
          else scanv (v + 1)
        in
        scanv 1
      else
        let l = order_arr.(i) in
        if assign.(abs l) = 0 then Some l else scan (i + 1)
    in
    scan 0
  in

  let result =
    try
      (* load the problem *)
      List.iter
        (fun (lits, origin) ->
          let lits = List.sort_uniq compare lits in
          let tautology = List.exists (fun l -> List.mem (-l) lits) lits in
          if not tautology then
            match lits with
            | [] -> raise (Found_unsat (IntSet.singleton origin))
            | [ l ] ->
                let ci =
                  add_clause_store [| l |] (IntSet.singleton origin)
                in
                assert_unit l ci
            | _ ->
                ignore
                  (add_clause_store (Array.of_list lits)
                     (IntSet.singleton origin)))
        input;
      let budget = ref 100 in
      let since_restart = ref 0 in
      let rec search () =
        let confl = propagate () in
        if confl >= 0 then begin
          incr n_conflicts;
          if decision_level () = 0 then
            raise (Found_unsat (final_origins confl));
          let learnt, btlevel, origins = analyze confl in
          record learnt btlevel origins;
          incr since_restart;
          if !since_restart >= !budget then begin
            incr n_restarts;
            budget := !budget * 3 / 2;
            since_restart := 0;
            cancel_until 0
          end;
          search ()
        end
        else
          match decide_next () with
          | None -> raise Found_sat
          | Some l ->
              incr n_decisions;
              Vec.push trail_lim !trail_sz;
              enqueue l (-1);
              search ()
      in
      search ()
    with
    | Found_sat ->
        let model = Array.make (nvars + 1) false in
        for v = 1 to nvars do
          model.(v) <- assign.(v) > 0
        done;
        Sat model
    | Found_unsat origins -> Unsat (IntSet.elements origins)
  in
  Obs.count obs "solver.decisions" !n_decisions;
  Obs.count obs "solver.propagations" !n_propagations;
  Obs.count obs "solver.conflicts" !n_conflicts;
  Obs.count obs "solver.restarts" !n_restarts;
  ( result,
    {
      s_decisions = !n_decisions;
      s_propagations = !n_propagations;
      s_conflicts = !n_conflicts;
      s_restarts = !n_restarts;
    } )
