module Ast = Ospack_spec.Ast
module Printer = Ospack_spec.Printer
module Concrete = Ospack_spec.Concrete
module Repository = Ospack_package.Repository
module Package = Ospack_package.Package
module Provider_index = Ospack_package.Provider_index
module Compilers = Ospack_config.Compilers
module Config = Ospack_config.Config
module Version = Ospack_version.Version
module Sha256 = Ospack_hash.Sha256
module Hex = Ospack_hash.Hex
module Json = Ospack_json.Json
module Vfs = Ospack_vfs.Vfs
module Obs = Ospack_obs.Obs
module StrSet = Set.Make (String)

(* Bump when the concretizer's semantics change: a cache produced by an
   older algorithm must not be trusted by a newer one. *)
let algorithm_version = "greedy-fixpoint-1"

(* The validation context: a base fingerprint over the inputs shared by
   every entry (algorithm+backend tag, repository name, toolchains,
   configuration — everything except package recipes), plus memoized
   per-package identity hashes and the provider index for the per-entry
   Merkle fingerprints. *)
type context = {
  cx_base : string;
  cx_repo : Repository.t;
  cx_identity : (string, string) Hashtbl.t;
  cx_providers : Provider_index.t Lazy.t;
}

type t = {
  cc_context : context;
  cc_entries : (string, Concrete.t) Hashtbl.t;
      (* authoritative: canonical abstract spec -> its concretization *)
  cc_seeds : (string, Concrete.node) Hashtbl.t;
      (* advisory: package name -> a concrete node it pinned to in some
         stored result. Seeds accelerate the fixed point (sub-DAG memo)
         but are never returned as answers — a node's parameters inside
         one DAG need not match its standalone concretization. *)
  cc_obs : Obs.t;
}

let context ?(backend = "greedy") ~repo ~compilers ~config () =
  let ctx = Sha256.init () in
  (* the backend is part of the algorithm tag: greedy and clause-solver
     entries must never cross-contaminate *)
  Sha256.feed ctx ("algorithm " ^ algorithm_version ^ "+" ^ backend ^ "\n");
  Sha256.feed ctx ("repo " ^ Repository.name repo ^ "\n");
  List.iter
    (fun tc ->
      Sha256.feed ctx
        (Printf.sprintf "compiler %s@%s cc=%s cxx=%s f77=%s fc=%s archs=%s features=%s\n"
           tc.Compilers.tc_name
           (Version.to_string tc.Compilers.tc_version)
           tc.Compilers.tc_cc tc.Compilers.tc_cxx tc.Compilers.tc_f77
           tc.Compilers.tc_fc
           (String.concat "," tc.Compilers.tc_archs)
           (String.concat "," tc.Compilers.tc_features)))
    (Compilers.all compilers);
  (* Policy functions are pure over the config, so the config's key/value
     rendering covers every policy input. *)
  List.iter
    (fun key ->
      let v = Option.value (Config.get config key) ~default:"" in
      Sha256.feed ctx (Printf.sprintf "config %s=%s\n" key v))
    (Config.keys config);
  {
    cx_base = Hex.encode (Sha256.finalize ctx);
    cx_repo = repo;
    cx_identity = Hashtbl.create 64;
    cx_providers = lazy (Provider_index.build repo);
  }

let base_fingerprint cx = cx.cx_base

let identity_hash cx name =
  match Hashtbl.find_opt cx.cx_identity name with
  | Some h -> h
  | None ->
      let h =
        match Repository.find cx.cx_repo name with
        | Some pkg ->
            let c = Sha256.init () in
            Sha256.feed c (Package.identity_string pkg);
            Hex.encode (Sha256.finalize c)
        | None -> "absent"
      in
      Hashtbl.add cx.cx_identity name h;
      h

(* The per-entry Merkle fingerprint: a hash over the identity hashes of
   exactly the packages in the entry's dependency closure, plus — for
   each virtual interface the closure uses — the identity of every
   current provider of that interface (a new, removed, or edited
   provider can change which one concretization picks, even if the
   stored DAG never contained it). Editing a recipe therefore
   invalidates only the entries whose closure (or provider set) can see
   the edit. *)
let entry_fingerprint cx concrete =
  let ctx = Sha256.init () in
  Sha256.feed ctx ("base " ^ cx.cx_base ^ "\n");
  let virtuals = ref StrSet.empty in
  List.iter
    (fun (n : Concrete.node) ->
      Sha256.feed ctx
        (Printf.sprintf "node %s %s\n" n.Concrete.name
           (identity_hash cx n.Concrete.name));
      List.iter
        (fun (v, _) -> virtuals := StrSet.add v !virtuals)
        n.Concrete.provided)
    (Concrete.nodes concrete);
  StrSet.iter
    (fun v ->
      let providers =
        Provider_index.providers (Lazy.force cx.cx_providers) v
        |> List.map (fun (e : Provider_index.entry) ->
               e.Provider_index.e_provider ^ "="
               ^ identity_hash cx e.Provider_index.e_provider)
      in
      Sha256.feed ctx
        (Printf.sprintf "virtual %s providers %s\n" v
           (String.concat "," providers)))
    !virtuals;
  Hex.encode (Sha256.finalize ctx)

let create ?(obs = Obs.disabled) ~context:cx () =
  {
    cc_context = cx;
    cc_entries = Hashtbl.create 64;
    cc_seeds = Hashtbl.create 64;
    cc_obs = obs;
  }

let context_of t = t.cc_context

let key_of ast = Printer.to_string ast

let lookup t ast =
  let key = key_of ast in
  match Hashtbl.find_opt t.cc_entries key with
  | Some c ->
      Obs.count t.cc_obs "ccache.hits" 1;
      Some c
  | None ->
      Obs.count t.cc_obs "ccache.misses" 1;
      None

let store t ast concrete =
  Hashtbl.replace t.cc_entries (key_of ast) concrete;
  List.iter
    (fun (n : Concrete.node) -> Hashtbl.replace t.cc_seeds n.Concrete.name n)
    (Concrete.nodes concrete)

let seeds t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cc_seeds []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let length t = Hashtbl.length t.cc_entries

let format_version = 2

let to_json t =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cc_entries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, v) ->
           Json.Obj
             [
               ("spec", Json.String k);
               ("merkle", Json.String (entry_fingerprint t.cc_context v));
               ("concrete", Concrete.to_json v);
             ])
  in
  Json.Obj
    [
      ("format", Json.Int format_version);
      ("base", Json.String t.cc_context.cx_base);
      ("entries", Json.List entries);
    ]

(* Validation is per entry: a stored entry survives iff its recorded
   Merkle fingerprint still equals the one its concrete DAG hashes to
   under the current context. [ccache.invalidations] counts evicted
   entries — one per entry under a wholesale base/format mismatch too,
   so the counter always means "entries lost". Seeds are harvested only
   from surviving entries. *)
let of_json ?(obs = Obs.disabled) ~context:cx json =
  let open Json in
  let entries =
    match Option.bind (member "entries" json) to_list with
    | Some l -> l
    | None -> []
  in
  let t = create ~obs ~context:cx () in
  (match
     ( Option.bind (member "format" json) get_int,
       Option.bind (member "base" json) get_string )
   with
  | Some fmt, Some base when fmt = format_version && base = cx.cx_base ->
      List.iter
        (fun e ->
          let evict () = Obs.count obs "ccache.invalidations" 1 in
          match
            ( Option.bind (member "spec" e) get_string,
              Option.bind (member "merkle" e) get_string,
              member "concrete" e )
          with
          | Some key, Some merkle, Some cj -> (
              match Concrete.of_json cj with
              | Ok c when entry_fingerprint cx c = merkle ->
                  Hashtbl.replace t.cc_entries key c;
                  List.iter
                    (fun (n : Concrete.node) ->
                      Hashtbl.replace t.cc_seeds n.Concrete.name n)
                    (Concrete.nodes c)
              | Ok _ | Error _ -> evict ())
          | _ -> evict ())
        entries
  | _ ->
      (* wrong format or base context: every stored entry is lost *)
      Obs.count obs "ccache.invalidations" (max 1 (List.length entries)));
  t

let load ?(obs = Obs.disabled) ~context:cx fs ~path =
  match Vfs.read_file fs path with
  | Error _ -> create ~obs ~context:cx ()
  | Ok contents -> (
      match Json.of_string contents with
      | Error _ ->
          Obs.count obs "ccache.invalidations" 1;
          create ~obs ~context:cx ()
      | Ok json -> of_json ~obs ~context:cx json)

let save t fs ~path =
  let tmp = path ^ ".tmp" in
  let rendered = Json.to_string ~indent:2 (to_json t) in
  match Vfs.write_file fs tmp rendered with
  | Error e -> Error (Vfs.error_to_string e)
  | Ok () -> (
      match Vfs.rename fs ~src:tmp ~dst:path with
      | Error e -> Error (Vfs.error_to_string e)
      | Ok () -> Ok ())
