module Ast = Ospack_spec.Ast
module Printer = Ospack_spec.Printer
module Concrete = Ospack_spec.Concrete
module Repository = Ospack_package.Repository
module Package = Ospack_package.Package
module Compilers = Ospack_config.Compilers
module Config = Ospack_config.Config
module Version = Ospack_version.Version
module Sha256 = Ospack_hash.Sha256
module Hex = Ospack_hash.Hex
module Json = Ospack_json.Json
module Vfs = Ospack_vfs.Vfs
module Obs = Ospack_obs.Obs

(* Bump when the concretizer's semantics change: a cache produced by an
   older algorithm must not be trusted by a newer one. *)
let algorithm_version = "greedy-fixpoint-1"

type t = {
  cc_fingerprint : string;
  cc_entries : (string, Concrete.t) Hashtbl.t;
      (* authoritative: canonical abstract spec -> its concretization *)
  cc_seeds : (string, Concrete.node) Hashtbl.t;
      (* advisory: package name -> a concrete node it pinned to in some
         stored result. Seeds accelerate the fixed point (sub-DAG memo)
         but are never returned as answers — a node's parameters inside
         one DAG need not match its standalone concretization. *)
  cc_obs : Obs.t;
}

let fingerprint ?(backend = "greedy") ~repo ~compilers ~config () =
  let ctx = Sha256.init () in
  (* the backend is part of the algorithm tag: greedy and clause-solver
     entries must never cross-contaminate *)
  Sha256.feed ctx ("algorithm " ^ algorithm_version ^ "+" ^ backend ^ "\n");
  Sha256.feed ctx ("repo " ^ Repository.name repo ^ "\n");
  List.iter
    (fun pkg -> Sha256.feed ctx (Package.identity_string pkg))
    (Repository.all_packages repo);
  List.iter
    (fun tc ->
      Sha256.feed ctx
        (Printf.sprintf "compiler %s@%s cc=%s cxx=%s f77=%s fc=%s archs=%s features=%s\n"
           tc.Compilers.tc_name
           (Version.to_string tc.Compilers.tc_version)
           tc.Compilers.tc_cc tc.Compilers.tc_cxx tc.Compilers.tc_f77
           tc.Compilers.tc_fc
           (String.concat "," tc.Compilers.tc_archs)
           (String.concat "," tc.Compilers.tc_features)))
    (Compilers.all compilers);
  (* Policy functions are pure over the config, so the config's key/value
     rendering covers every policy input. *)
  List.iter
    (fun key ->
      let v = Option.value (Config.get config key) ~default:"" in
      Sha256.feed ctx (Printf.sprintf "config %s=%s\n" key v))
    (Config.keys config);
  Hex.encode (Sha256.finalize ctx)

let create ?(obs = Obs.disabled) ~fingerprint () =
  {
    cc_fingerprint = fingerprint;
    cc_entries = Hashtbl.create 64;
    cc_seeds = Hashtbl.create 64;
    cc_obs = obs;
  }

let fingerprint_of t = t.cc_fingerprint

let key_of ast = Printer.to_string ast

let lookup t ast =
  let key = key_of ast in
  match Hashtbl.find_opt t.cc_entries key with
  | Some c ->
      Obs.count t.cc_obs "ccache.hits" 1;
      Some c
  | None ->
      Obs.count t.cc_obs "ccache.misses" 1;
      None

let store t ast concrete =
  Hashtbl.replace t.cc_entries (key_of ast) concrete;
  List.iter
    (fun (n : Concrete.node) -> Hashtbl.replace t.cc_seeds n.Concrete.name n)
    (Concrete.nodes concrete)

let seeds t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cc_seeds []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let length t = Hashtbl.length t.cc_entries

let format_version = 1

let to_json t =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cc_entries []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, v) ->
           Json.Obj [ ("spec", Json.String k); ("concrete", Concrete.to_json v) ])
  in
  Json.Obj
    [
      ("format", Json.Int format_version);
      ("fingerprint", Json.String t.cc_fingerprint);
      ("entries", Json.List entries);
    ]

let of_json ?(obs = Obs.disabled) ~fingerprint json =
  let invalid () =
    Obs.count obs "ccache.invalidations" 1;
    create ~obs ~fingerprint ()
  in
  let open Json in
  match
    ( Option.bind (member "format" json) get_int,
      Option.bind (member "fingerprint" json) get_string,
      Option.bind (member "entries" json) to_list )
  with
  | Some fmt, Some fp, Some entries
    when fmt = format_version && fp = fingerprint -> (
      let t = create ~obs ~fingerprint () in
      try
        List.iter
          (fun e ->
            match
              ( Option.bind (member "spec" e) get_string,
                member "concrete" e )
            with
            | Some key, Some cj -> (
                match Concrete.of_json cj with
                | Ok c ->
                    Hashtbl.replace t.cc_entries key c;
                    List.iter
                      (fun (n : Concrete.node) ->
                        Hashtbl.replace t.cc_seeds n.Concrete.name n)
                      (Concrete.nodes c)
                | Error _ -> raise Exit)
            | _ -> raise Exit)
          entries;
        t
      with Exit -> invalid ())
  | _ -> invalid ()

let load ?(obs = Obs.disabled) ~fingerprint fs ~path =
  match Vfs.read_file fs path with
  | Error _ -> create ~obs ~fingerprint ()
  | Ok contents -> (
      match Json.of_string contents with
      | Error _ ->
          Obs.count obs "ccache.invalidations" 1;
          create ~obs ~fingerprint ()
      | Ok json -> of_json ~obs ~fingerprint json)

let save t fs ~path =
  let tmp = path ^ ".tmp" in
  let rendered = Json.to_string ~indent:2 (to_json t) in
  match Vfs.write_file fs tmp rendered with
  | Error e -> Error (Vfs.error_to_string e)
  | Ok () -> (
      match Vfs.rename fs ~src:tmp ~dst:path with
      | Error e -> Error (Vfs.error_to_string e)
      | Ok () -> Ok ())
