type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

(* ---- float rendering ----
   Fixed-point decimals only: never exponent notation (which some
   downstream trace consumers reject and which breaks golden diffs when
   the crossover point differs), never locale-dependent separators
   (OCaml's printf is locale-independent), and always containing a '.'
   so a reparse yields a Float, not an Int. The mantissa is the shortest
   of %.15g/%.16g/%.17g that round-trips, so values like 0.0002 print as
   "0.0002", not "0.00020000000000000001". *)

let expand_exponent s =
  (* "d[.ddd]e±EE" -> plain decimal notation *)
  match
    String.index_opt s 'e'
    |> (function None -> String.index_opt s 'E' | some -> some)
  with
  | None -> s
  | Some epos ->
      let mantissa = String.sub s 0 epos in
      let exp =
        int_of_string (String.sub s (epos + 1) (String.length s - epos - 1))
      in
      let sign, mantissa =
        if mantissa.[0] = '-' then
          ("-", String.sub mantissa 1 (String.length mantissa - 1))
        else ("", mantissa)
      in
      let int_part, frac_part =
        match String.index_opt mantissa '.' with
        | None -> (mantissa, "")
        | Some dot ->
            ( String.sub mantissa 0 dot,
              String.sub mantissa (dot + 1) (String.length mantissa - dot - 1)
            )
      in
      let digits = int_part ^ frac_part in
      (* decimal point sits after [point] digits of [digits] *)
      let point = String.length int_part + exp in
      let buf = Buffer.create (String.length digits + abs exp + 4) in
      Buffer.add_string buf sign;
      if point <= 0 then begin
        Buffer.add_string buf "0.";
        Buffer.add_string buf (String.make (-point) '0');
        Buffer.add_string buf digits
      end
      else if point >= String.length digits then begin
        Buffer.add_string buf digits;
        Buffer.add_string buf (String.make (point - String.length digits) '0');
        Buffer.add_string buf ".0"
      end
      else begin
        Buffer.add_string buf (String.sub digits 0 point);
        Buffer.add_char buf '.';
        Buffer.add_string buf
          (String.sub digits point (String.length digits - point))
      end;
      Buffer.contents buf

let float_to_string f =
  if f <> f then "null" (* nan: not representable in JSON *)
  else if f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let shortest =
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s
      else
        let s = Printf.sprintf "%.16g" f in
        if float_of_string s = f then s else Printf.sprintf "%.17g" f
    in
    let fixed = expand_exponent shortest in
    if String.contains fixed '.' then fixed else fixed ^ ".0"

(* Canonical fixed-point floats for golden artifacts: round to a decimal
   grid before wrapping, so accumulated binary noise (14.360000000000001)
   never reaches a baseline diff. Rounding to [decimals] places and then
   printing the shortest round-trip representation always yields the
   short decimal itself. *)
let fixed ?(decimals = 6) f =
  if f <> f || f = infinity || f = neg_infinity then Float f
  else
    let scale = 10.0 ** float_of_int decimals in
    Float (Float.round (f *. scale) /. scale)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(indent = 0) t =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape_string buf k;
            Buffer.add_char buf ':';
            if indent > 0 then Buffer.add_char buf ' ';
            go (depth + 1) v)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

type state = { src : string; mutable pos : int }

exception Parse_error of string

let fail st msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st (Printf.sprintf "expected %C, got %C" c x)
  | None -> fail st (Printf.sprintf "expected %C, got end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let h = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ h) with
  | Some code -> code
  | None -> fail st ("bad \\u escape " ^ h)

let utf8_of_code buf code =
  (* encode a BMP code point *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'u' ->
            advance st;
            utf8_of_code buf (parse_hex4 st);
            go ()
        | Some c -> fail st (Printf.sprintf "bad escape \\%c" c)
        | None -> fail st "truncated escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st ("bad number " ^ text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '"' -> String (parse_string st)
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)
  | None -> fail st "unexpected end of input"

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec fields acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          fields ((key, value) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, value) :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    fields []
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let rec items acc =
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          items (value :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (value :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    items []
  end

let of_string src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | value ->
      skip_ws st;
      if st.pos = String.length src then Ok value
      else Error (Printf.sprintf "trailing input at offset %d" st.pos)
  | exception Parse_error msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
