(** A minimal JSON substrate (printer + recursive-descent parser).

    Spack stores each installation's complete concrete spec as a
    structured file ([spec.yaml], paper §3.4.3) so the exact DAG can be
    restored later, independent of package-file drift. This module is the
    serialization substrate for ospack's equivalent ([spec.json]). It
    supports the JSON subset the spec format needs: objects, arrays,
    strings (with [\\uXXXX] escapes on parse, standard escapes on print),
    integers, floats, booleans, and null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion-ordered *)

val to_string : ?indent:int -> t -> string
(** Render; [indent] > 0 pretty-prints (default 0: compact). Floats are
    rendered as fixed-point decimals — the shortest representation that
    round-trips, never exponent notation, never locale-dependent, always
    containing a ['.'] so reparsing yields a [Float] — which keeps trace
    files and other golden artifacts diff-stable. Non-finite floats
    (which JSON cannot represent) render as [null]. *)

val of_string : string -> (t, string) result
(** Parse; the error message names the offending position. *)

val fixed : ?decimals:int -> float -> t
(** [fixed f] is [Float f] rounded to a fixed decimal grid
    ([decimals] places, default 6) — the canonical constructor for every
    float written to a golden or baseline artifact (BENCH files, profile
    reports). Rounding first means the printed form is the short decimal
    itself ([14.36], never [14.360000000000001]), so baselines stay
    diff-stable under unrelated recomputation. Non-finite floats pass
    through (and render as [null]). *)

(** {1 Accessors} — total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val get_string : t -> string option
val get_int : t -> int option
val get_bool : t -> bool option
