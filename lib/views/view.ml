module Vfs = Ospack_vfs.Vfs
module Concrete = Ospack_spec.Concrete
module Ast = Ospack_spec.Ast
module Config = Ospack_config.Config
module Policy = Ospack_config.Policy
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist

type rule = string

type link_report = {
  lr_link : string;
  lr_target : string;
  lr_shadowed : string list;
}

let mpi_of spec =
  List.find_map
    (fun n ->
      if List.mem_assoc "mpi" n.Concrete.provided then Some n else None)
    (Concrete.nodes spec)

let variables spec =
  let n = Concrete.root_node spec in
  let cname, cver = n.Concrete.compiler in
  let mpiname, mpiversion =
    match mpi_of spec with
    | Some m when m.Concrete.name <> n.Concrete.name ->
        (m.Concrete.name, Version.to_string m.Concrete.version)
    | _ -> ("nompi", "0")
  in
  [
    ("PACKAGE", n.Concrete.name);
    ("VERSION", Version.to_string n.Concrete.version);
    ("COMPILER", cname);
    ("COMPILER_VERSION", Version.to_string cver);
    ("ARCH", n.Concrete.arch);
    ("HASH", Concrete.root_hash spec);
    ("MPINAME", mpiname);
    ("MPIVERSION", mpiversion);
  ]

let expand_rule rule spec =
  let vars = variables spec in
  let buf = Buffer.create (String.length rule) in
  let n = String.length rule in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && rule.[i] = '$' && rule.[i + 1] = '{' then
      match String.index_from_opt rule (i + 2) '}' with
      | Some close ->
          let var = String.sub rule (i + 2) (close - i - 2) in
          (match List.assoc_opt var vars with
          | Some value -> Buffer.add_string buf value
          | None -> Buffer.add_string buf (String.sub rule i (close - i + 1)));
          go (close + 1)
      | None ->
          Buffer.add_string buf (String.sub rule i (n - i))
    else begin
      Buffer.add_char buf rule.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

(* Preference between two specs colliding on one link (§4.3.1): earlier
   compiler_order entry wins, then newer version, newer compiler, hash. *)
let preference config spec =
  let n = Concrete.root_node spec in
  let cname, cver = n.Concrete.compiler in
  let order = Policy.compiler_order config in
  let rec rank i = function
    | [] -> max_int
    | (req : Ast.compiler_req) :: rest ->
        if req.Ast.c_name = cname && Vlist.mem cver req.Ast.c_versions then i
        else rank (i + 1) rest
  in
  (rank 0 order, n.Concrete.version, cver, Concrete.root_hash spec)

let better config a b =
  let ra, va, ca, ha = preference config a
  and rb, vb, cb, hb = preference config b in
  if ra <> rb then ra < rb
  else
    match Version.compare va vb with
    | 0 -> (
        match Version.compare ca cb with
        | 0 -> ha < hb
        | c -> c > 0)
    | c -> c > 0

type merge_report = {
  mr_linked : int;
  mr_conflicts : (string * string * string) list;
}

let payload_files vfs prefix =
  Vfs.walk vfs prefix
  |> List.filter_map (fun (path, kind) ->
         match kind with
         | Vfs.Dir -> None
         | Vfs.File | Vfs.Symlink ->
             let plen = String.length prefix + 1 in
             let rel = String.sub path plen (String.length path - plen) in
             if String.length rel >= 6 && String.sub rel 0 6 = ".spack" then
               None
             else Some rel)

let merge vfs ~config ~view_root ~installed =
  (* most-preferred first, so winners claim contested paths *)
  let ordered =
    List.stable_sort
      (fun (a, _) (b, _) ->
        if better config a b then -1 else if better config b a then 1 else 0)
      installed
  in
  let owner = Hashtbl.create 64 in
  let linked = ref 0 in
  let conflicts = ref [] in
  List.iter
    (fun (_, prefix) ->
      List.iter
        (fun rel ->
          match Hashtbl.find_opt owner rel with
          | Some winner -> conflicts := (rel, winner, prefix) :: !conflicts
          | None -> (
              let link = view_root ^ "/" ^ rel in
              (match Vfs.kind_of vfs link with
              | Some Vfs.Symlink -> ignore (Vfs.remove vfs link)
              | _ -> ());
              match Vfs.symlink vfs ~target:(prefix ^ "/" ^ rel) ~link with
              | Ok () ->
                  Hashtbl.replace owner rel prefix;
                  incr linked
              | Error e -> invalid_arg ("View.merge: " ^ Vfs.error_to_string e)))
        (payload_files vfs prefix))
    ordered;
  { mr_linked = !linked; mr_conflicts = List.rev !conflicts }

let sync vfs ~config ~rules ~installed =
  (* values are a nonempty list by construction — (first, rest) — so the
     winner fold below needs no unreachable empty case *)
  let by_link = Hashtbl.create 16 in
  List.iter
    (fun rule ->
      List.iter
        (fun (spec, prefix) ->
          let link = expand_rule rule spec in
          let entry =
            match Hashtbl.find_opt by_link link with
            | None -> ((spec, prefix), [])
            | Some (first, rest) -> ((spec, prefix), first :: rest)
          in
          Hashtbl.replace by_link link entry)
        installed)
    rules;
  Hashtbl.fold
    (fun link (first, rest) acc ->
      let winner, losers =
        List.fold_left
          (fun (best, shadowed) (spec, prefix) ->
            let bspec, bprefix = best in
            if better config spec bspec then
              ((spec, prefix), bprefix :: shadowed)
            else (best, prefix :: shadowed))
          (first, []) rest
      in
      let _, target = winner in
      (match Vfs.kind_of vfs link with
      | Some Vfs.Symlink -> ignore (Vfs.remove vfs link)
      | Some _ -> ignore (Vfs.remove vfs ~recursive:true link)
      | None -> ());
      (match Vfs.symlink vfs ~target ~link with
      | Ok () -> ()
      | Error e -> invalid_arg ("View.sync: " ^ Vfs.error_to_string e));
      { lr_link = link; lr_target = target; lr_shadowed = List.sort compare losers }
      :: acc)
    by_link []
  |> List.sort (fun a b -> String.compare a.lr_link b.lr_link)
