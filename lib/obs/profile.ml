module Json = Ospack_json.Json

type node = {
  nd_id : string;
  nd_label : string;
  nd_cost : float;
  nd_deps : string list;
}

type slot = {
  st_id : string;
  st_worker : int;
  st_start : float;
  st_finish : float;
}

type input = { in_jobs : int; in_nodes : node list; in_slots : slot list }

type row = {
  r_id : string;
  r_label : string;
  r_cost : float;
  r_es : float;
  r_ef : float;
  r_ls : float;
  r_slack : float;
  r_critical : bool;
  r_worker : int option;
  r_start : float;
  r_finish : float;
}

type worker_row = {
  w_worker : int;
  w_dispatches : int;
  w_busy : float;
  w_idle : float;
  w_utilization : float;
}

type t = {
  p_jobs : int;
  p_rows : row list;
  p_workers : worker_row list;
  p_makespan : float;
  p_serial_seconds : float;
  p_cp_seconds : float;
  p_cp_nodes : string list;
  p_efficiency : float;
  p_speedup : float;
}

(* ASAP and ALAP are computed with the same additions in opposite
   directions, so rounding can leave a critical node with slack of a few
   ulps; anything below this is structurally zero. *)
let eps = 1e-9

let ( let* ) = Result.bind

(* Deterministic topological order: Kahn's algorithm with the ready set
   ordered by input position, so equal DAGs analyze identically whatever
   the caller's list order encodes. *)
let topo_order nodes =
  let n = Array.length nodes in
  let index_of = Hashtbl.create (2 * n) in
  let* () =
    let rec check i =
      if i >= n then Ok ()
      else if Hashtbl.mem index_of nodes.(i).nd_id then
        Error (Printf.sprintf "profile: duplicate node id %s" nodes.(i).nd_id)
      else begin
        Hashtbl.add index_of nodes.(i).nd_id i;
        check (i + 1)
      end
    in
    check 0
  in
  let* deps =
    let resolve nd =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | d :: rest -> (
            match Hashtbl.find_opt index_of d with
            | Some i -> go (i :: acc) rest
            | None ->
                Error
                  (Printf.sprintf "profile: %s depends on unknown node %s"
                     nd.nd_id d))
      in
      go [] nd.nd_deps
    in
    let rec all acc i =
      if i >= n then Ok (Array.of_list (List.rev acc))
      else
        let* ds = resolve nodes.(i) in
        all (ds :: acc) (i + 1)
    in
    all [] 0
  in
  let pending = Array.map List.length deps in
  let dependents = Array.make n [] in
  Array.iteri
    (fun i ds -> List.iter (fun d -> dependents.(d) <- i :: dependents.(d)) ds)
    deps;
  Array.iteri (fun i l -> dependents.(i) <- List.rev l) dependents;
  let module ISet = Set.Make (Int) in
  let ready = ref ISet.empty in
  Array.iteri (fun i p -> if p = 0 then ready := ISet.add i !ready) pending;
  let order = ref [] in
  let count = ref 0 in
  while not (ISet.is_empty !ready) do
    let i = ISet.min_elt !ready in
    ready := ISet.remove i !ready;
    order := i :: !order;
    incr count;
    List.iter
      (fun d ->
        pending.(d) <- pending.(d) - 1;
        if pending.(d) = 0 then ready := ISet.add d !ready)
      dependents.(i)
  done;
  if !count < n then Error "profile: dependency cycle among nodes"
  else Ok (List.rev !order, deps, dependents)

let analyze input =
  let nodes = Array.of_list input.in_nodes in
  let n = Array.length nodes in
  let* order, deps, dependents = topo_order nodes in
  (* ASAP pass (forward): the -j infinity schedule *)
  let es = Array.make (max n 1) 0.0 and ef = Array.make (max n 1) 0.0 in
  List.iter
    (fun i ->
      let start =
        List.fold_left (fun acc d -> Float.max acc ef.(d)) 0.0 deps.(i)
      in
      es.(i) <- start;
      ef.(i) <- start +. nodes.(i).nd_cost)
    order;
  let cp = Array.fold_left Float.max 0.0 (Array.sub ef 0 n) in
  (* ALAP pass (backward): latest start preserving the CP bound *)
  let ls = Array.make (max n 1) 0.0 and lf = Array.make (max n 1) 0.0 in
  List.iter
    (fun i ->
      let finish =
        List.fold_left (fun acc d -> Float.min acc ls.(d)) cp dependents.(i)
      in
      lf.(i) <- finish;
      ls.(i) <- finish -. nodes.(i).nd_cost)
    (List.rev order);
  let slack = Array.make (max n 1) 0.0 in
  Array.iteri
    (fun i _ ->
      let s = ls.(i) -. es.(i) in
      slack.(i) <- (if Float.abs s < eps then 0.0 else s))
    nodes;
  (* one canonical critical path: walk from the exit node that realizes
     the CP back through critical dependencies, smallest id on ties *)
  let better i best =
    match best with
    | None -> Some i
    | Some b ->
        if String.compare nodes.(i).nd_id nodes.(b).nd_id < 0 then Some i
        else best
  in
  let exit_node = ref None in
  Array.iteri
    (fun i _ ->
      if slack.(i) = 0.0 && Float.abs (ef.(i) -. cp) < eps then
        exit_node := better i !exit_node)
    nodes;
  let cp_nodes =
    let rec walk acc i =
      let acc = nodes.(i).nd_label :: acc in
      let prev =
        List.fold_left
          (fun best d ->
            if slack.(d) = 0.0 && Float.abs (ef.(d) -. es.(i)) < eps then
              better d best
            else best)
          None deps.(i)
      in
      match prev with Some d -> walk acc d | None -> acc
    in
    match !exit_node with None -> [] | Some i -> walk [] i
  in
  (* schedule attribution *)
  let slot_of = Hashtbl.create (2 * n) in
  List.iter (fun s -> Hashtbl.replace slot_of s.st_id s) input.in_slots;
  let makespan =
    List.fold_left (fun acc s -> Float.max acc s.st_finish) 0.0 input.in_slots
  in
  let serial = Array.fold_left (fun acc nd -> acc +. nd.nd_cost) 0.0 nodes in
  let n_workers =
    List.fold_left
      (fun acc s -> max acc (s.st_worker + 1))
      input.in_jobs input.in_slots
  in
  let busy = Array.make (max n_workers 1) 0.0 in
  let dispatches = Array.make (max n_workers 1) 0 in
  List.iter
    (fun s ->
      busy.(s.st_worker) <- busy.(s.st_worker) +. (s.st_finish -. s.st_start);
      dispatches.(s.st_worker) <- dispatches.(s.st_worker) + 1)
    input.in_slots;
  let workers =
    List.init n_workers (fun w ->
        {
          w_worker = w;
          w_dispatches = dispatches.(w);
          w_busy = busy.(w);
          w_idle = Float.max 0.0 (makespan -. busy.(w));
          w_utilization = (if makespan > 0.0 then busy.(w) /. makespan else 1.0);
        })
  in
  let rows =
    List.map
      (fun i ->
        let nd = nodes.(i) in
        let worker, start, finish =
          match Hashtbl.find_opt slot_of nd.nd_id with
          | Some s -> (Some s.st_worker, s.st_start, s.st_finish)
          | None -> (None, 0.0, 0.0)
        in
        {
          r_id = nd.nd_id;
          r_label = nd.nd_label;
          r_cost = nd.nd_cost;
          r_es = es.(i);
          r_ef = ef.(i);
          r_ls = ls.(i);
          r_slack = slack.(i);
          r_critical = slack.(i) = 0.0;
          r_worker = worker;
          r_start = start;
          r_finish = finish;
        })
      order
  in
  Ok
    {
      p_jobs = input.in_jobs;
      p_rows = rows;
      p_workers = workers;
      p_makespan = makespan;
      p_serial_seconds = serial;
      p_cp_seconds = cp;
      p_cp_nodes = cp_nodes;
      p_efficiency = (if makespan > 0.0 then cp /. makespan else 1.0);
      p_speedup = (if makespan > 0.0 then serial /. makespan else 1.0);
    }

(* ---------------- rendering ---------------- *)

let summary_to_string t =
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "nodes %d, workers %d (-j%d)\n" (List.length t.p_rows)
    (List.length t.p_workers) t.p_jobs;
  addf "makespan        %12.6f s\n" t.p_makespan;
  addf "serialized      %12.6f s  (speedup %.2fx)\n" t.p_serial_seconds
    t.p_speedup;
  addf "critical path   %12.6f s  (%d node(s): %s)\n" t.p_cp_seconds
    (List.length t.p_cp_nodes)
    (String.concat " -> " t.p_cp_nodes);
  addf "cp efficiency   %12.6f    (1.0 = makespan meets the CP lower bound)\n"
    t.p_efficiency;
  Buffer.contents buf

(* dispatch order: scheduled nodes by (start, id), unscheduled last by id *)
let dispatch_rows t =
  List.stable_sort
    (fun a b ->
      match (a.r_worker, b.r_worker) with
      | Some _, None -> -1
      | None, Some _ -> 1
      | _ ->
          let c = Float.compare a.r_start b.r_start in
          if c <> 0 then c else String.compare a.r_id b.r_id)
    t.p_rows

let node_table t =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "%-20s %12s %12s %12s %6s %12s %3s\n" "node" "cost(s)" "start" "finish"
    "worker" "slack(s)" "cp";
  List.iter
    (fun r ->
      addf "%-20s %12.6f %12.6f %12.6f %6s %12.6f %3s\n" r.r_label r.r_cost
        r.r_start r.r_finish
        (match r.r_worker with Some w -> string_of_int w | None -> "-")
        r.r_slack
        (if r.r_critical then "*" else ""))
    (dispatch_rows t);
  Buffer.contents buf

let worker_table t =
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "%-8s %10s %12s %12s %8s\n" "worker" "dispatches" "busy(s)" "idle(s)"
    "util";
  List.iter
    (fun w ->
      addf "%-8d %10d %12.6f %12.6f %7.1f%%\n" w.w_worker w.w_dispatches
        w.w_busy w.w_idle
        (100.0 *. w.w_utilization))
    t.p_workers;
  Buffer.contents buf

let letters =
  "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

let timeline ?(width = 64) t =
  let buf = Buffer.create 512 in
  if t.p_makespan <= 0.0 then Buffer.add_string buf "(empty schedule)\n"
  else begin
    let scheduled =
      List.filter (fun r -> r.r_worker <> None) (dispatch_rows t)
    in
    let letter i = letters.[i mod String.length letters] in
    let lanes =
      Array.init (List.length t.p_workers) (fun _ -> Bytes.make width '.')
    in
    List.iteri
      (fun i r ->
        match r.r_worker with
        | None -> ()
        | Some w ->
            let bucket x =
              min (width - 1)
                (int_of_float (Float.of_int width *. x /. t.p_makespan))
            in
            let b0 = bucket r.r_start in
            (* zero-duration slots (reused nodes) draw nothing *)
            if r.r_finish > r.r_start then
              let b1 = bucket (r.r_finish -. (t.p_makespan /. 1e9)) in
              for b = b0 to max b0 b1 do
                Bytes.set lanes.(w) b (letter i)
              done)
      scheduled;
    Array.iteri
      (fun w lane ->
        Buffer.add_string buf
          (Printf.sprintf "w%-3d |%s|\n" w (Bytes.to_string lane)))
      lanes;
    (* legend, wrapped *)
    let col = ref 0 in
    List.iteri
      (fun i r ->
        let entry = Printf.sprintf "%c=%s" (letter i) r.r_label in
        if !col = 0 then Buffer.add_string buf "  "
        else if !col + String.length entry + 2 > 70 then begin
          Buffer.add_string buf "\n  ";
          col := 0
        end
        else Buffer.add_string buf "  ";
        Buffer.add_string buf entry;
        col := !col + String.length entry + 2)
      scheduled;
    if scheduled <> [] then Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let to_string t =
  summary_to_string t ^ node_table t ^ worker_table t ^ timeline t

(* ---------------- structured export ---------------- *)

let summary_json t =
  Json.Obj
    [
      ("jobs", Json.Int t.p_jobs);
      ("nodes", Json.Int (List.length t.p_rows));
      ("makespan_seconds", Json.fixed t.p_makespan);
      ("serial_seconds", Json.fixed t.p_serial_seconds);
      ("cp_seconds", Json.fixed t.p_cp_seconds);
      ( "cp_nodes",
        Json.List (List.map (fun l -> Json.String l) t.p_cp_nodes) );
      ("efficiency", Json.fixed t.p_efficiency);
      ("speedup", Json.fixed t.p_speedup);
    ]

let node_json r =
  Json.Obj
    [
      ("id", Json.String r.r_id);
      ("label", Json.String r.r_label);
      ("cost_seconds", Json.fixed r.r_cost);
      ("earliest_start", Json.fixed r.r_es);
      ("earliest_finish", Json.fixed r.r_ef);
      ("latest_start", Json.fixed r.r_ls);
      ("slack_seconds", Json.fixed r.r_slack);
      ("critical", Json.Bool r.r_critical);
      ( "worker",
        match r.r_worker with Some w -> Json.Int w | None -> Json.Null );
      ("start", Json.fixed r.r_start);
      ("finish", Json.fixed r.r_finish);
    ]

let worker_json w =
  Json.Obj
    [
      ("worker", Json.Int w.w_worker);
      ("dispatches", Json.Int w.w_dispatches);
      ("busy_seconds", Json.fixed w.w_busy);
      ("idle_seconds", Json.fixed w.w_idle);
      ("utilization", Json.fixed w.w_utilization);
    ]

let with_ev ev = function
  | Json.Obj fields -> Json.Obj (("ev", Json.String ev) :: fields)
  | j -> j

let to_jsonl t =
  let buf = Buffer.create 1024 in
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  line (with_ev "profile.summary" (summary_json t));
  List.iter (fun r -> line (with_ev "profile.node" (node_json r))) t.p_rows;
  List.iter
    (fun w -> line (with_ev "profile.worker" (worker_json w)))
    t.p_workers;
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("summary", summary_json t);
      ("nodes", Json.List (List.map node_json t.p_rows));
      ("workers", Json.List (List.map worker_json t.p_workers));
    ]
