(** The bench regression gate: per-metric tolerance diffing of a freshly
    generated BENCH document against its committed baseline.

    The BENCH_*.json artifacts are deterministic (virtual clock), so a
    byte diff would technically work — but it cannot distinguish "the
    scheduler got 10% slower" from "a field was renamed". This module
    diffs the two documents structurally and judges every numeric leaf
    by a {e metric policy} keyed on its field name:

    - {b higher-is-worse} metrics (makespans, build seconds, solver
      iterations/conflicts, per-phase totals…) may grow by at most the
      tolerance; growth beyond it is a regression, shrinkage is an
      improvement (reported, never failing);
    - {b lower-is-worse} metrics (speedup, CP efficiency, cache/reuse
      hits) mirror that;
    - {b informational} metrics (real wall-clock [wall_ms]) are ignored
      — they are the only nondeterministic numbers in the artifacts;
    - everything else (counts, names, booleans, shapes) must match
      exactly: an unlisted change fails the gate and forces an explicit
      [bench --update-baselines].

    The default tolerance is 5% relative (with a floor of 1.0 absolute
    on the comparison base, so near-zero baselines still admit rounding
    but an injected +10% cost always fires). *)

type verdict =
  | Regression  (** worse than baseline beyond tolerance — gate fails *)
  | Shape  (** structural mismatch (missing/extra/retyped field) — fails *)
  | Improvement  (** better than baseline beyond tolerance — reported *)

type finding = {
  f_path : string;  (** JSON path, e.g. [workloads[3].jobs[2].makespan_seconds] *)
  f_verdict : verdict;
  f_message : string;
}

val tolerance : float
(** The relative tolerance applied to direction-aware metrics ([0.05]). *)

val compare_docs :
  baseline:Ospack_json.Json.t -> current:Ospack_json.Json.t -> finding list
(** All findings, in document order. *)

val regressions : finding list -> finding list
(** Only the gate-failing findings ([Regression] and [Shape]). *)

val report : finding list -> string
(** Human-readable rendering, one line per finding; ["baseline check: ok\n"]
    when the list is empty. *)
