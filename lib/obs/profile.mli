(** Post-hoc critical-path analysis of a scheduled install DAG.

    The parallel installer ({!Ospack_store.Installer.install_parallel})
    records a deterministic schedule — which worker ran which node over
    which virtual-time interval. This module replays that schedule
    against the DAG's per-node costs to answer the question the raw
    span stream cannot: {e why} is the makespan what it is?

    - the {b critical path} (CP): the longest cost-weighted dependency
      chain — the makespan lower bound no worker count can beat
      (the [-j ∞] makespan equals it exactly);
    - per-node {b slack}: how long a node could slip without growing
      the makespan lower bound (ALAP start − ASAP start; 0 exactly on
      critical nodes) — the prioritization signal for a CP-aware
      scheduler;
    - per-worker {b utilization} and idle attribution;
    - the {b efficiency ratio} CP ⁄ makespan — 1.0 means the schedule
      already achieves the structural lower bound and only more
      parallelism in the DAG itself can help.

    Everything here is a pure function of the input, so reports, JSONL
    logs, and JSON exports are byte-identical across runs. *)

type node = {
  nd_id : string;  (** unique node id (the sub-DAG hash) *)
  nd_label : string;  (** human label (the package name) *)
  nd_cost : float;  (** virtual seconds charged to this node *)
  nd_deps : string list;  (** ids of direct dependencies *)
}

type slot = {
  st_id : string;  (** node id *)
  st_worker : int;
  st_start : float;  (** virtual seconds *)
  st_finish : float;
}

type input = {
  in_jobs : int;
  in_nodes : node list;  (** any order; must be acyclic and closed *)
  in_slots : slot list;  (** the schedule actually executed *)
}

type row = {
  r_id : string;
  r_label : string;
  r_cost : float;
  r_es : float;  (** earliest (ASAP) start — the [-j ∞] schedule *)
  r_ef : float;  (** earliest finish *)
  r_ls : float;  (** latest (ALAP) start that preserves the CP bound *)
  r_slack : float;  (** [r_ls -. r_es]; exactly [0.] on critical nodes *)
  r_critical : bool;
  r_worker : int option;  (** actual placement, when scheduled *)
  r_start : float;  (** actual dispatch time ([0.] when unscheduled) *)
  r_finish : float;
}

type worker_row = {
  w_worker : int;
  w_dispatches : int;
  w_busy : float;  (** virtual seconds spent executing nodes *)
  w_idle : float;  (** makespan − busy: idle attribution *)
  w_utilization : float;  (** busy ⁄ makespan ([1.] for an empty schedule) *)
}

type t = {
  p_jobs : int;
  p_rows : row list;  (** topological order (dependencies first) *)
  p_workers : worker_row list;  (** one row per worker, ascending *)
  p_makespan : float;  (** max slot finish *)
  p_serial_seconds : float;  (** sum of node costs *)
  p_cp_seconds : float;  (** critical-path length: max earliest finish *)
  p_cp_nodes : string list;
      (** labels of one canonical critical path, execution order
          (ties broken by smallest id) *)
  p_efficiency : float;
      (** [p_cp_seconds /. p_makespan] — 1.0 when the schedule meets
          the structural lower bound *)
  p_speedup : float;  (** [p_serial_seconds /. p_makespan] *)
}

val analyze : input -> (t, string) result
(** Replay the DAG: ASAP and ALAP passes over the cost-weighted
    dependency relation, then attribution of the recorded schedule.
    Errors (never exceptions) on a dependency id that is not a node,
    a duplicate node id, or a cycle. *)

val summary_to_string : t -> string
(** The header block: nodes/jobs, makespan vs serialized (speedup),
    critical path (length and member labels), and CP efficiency. *)

val node_table : t -> string
(** The per-node slack table ([spack stats --slack]): cost, ASAP
    start/finish, actual worker/start, slack, and a [*] marker on
    critical nodes — rows in actual dispatch order (unscheduled nodes
    last, by id). *)

val worker_table : t -> string
(** Per-worker dispatches, busy, idle, and utilization percentage. *)

val timeline : ?width:int -> t -> string
(** A Gantt-style text timeline: one lane per worker, [width] buckets
    (default 64) spanning the makespan, each slot drawn with a letter
    keyed in the legend below ([.] = idle). *)

val to_string : t -> string
(** [summary ^ node_table ^ worker_table ^ timeline] — the full
    [spack profile] report. *)

val to_jsonl : t -> string
(** The analysis as JSONL structured events: one [profile.summary]
    line, one [profile.node] line per row, one [profile.worker] line
    per worker — the event types [spack trace-validate] knows. Floats
    are canonicalized through {!Ospack_json.Json.fixed}. *)

val to_json : t -> Ospack_json.Json.t
(** Structured export for the bench harness (summary + nodes + workers),
    floats canonicalized. *)
