(** Structured observability over the virtual clock.

    The paper's entire evaluation (§5, Figs. 10–13, Tables 1–3) is about
    where time goes — concretization cost, wrapper overhead, NFS metadata
    latency — and this module is the substrate that measures it:
    hierarchical spans, monotonically increasing counters, and scalar
    histograms, recorded against a {e virtual} clock so that traces are
    deterministic (two identical runs produce byte-identical traces;
    timestamps never come from wall time).

    The clock has two sources of advancement:
    - {!advance} charges simulated work — the build simulator forwards
      every virtual-clock charge (metadata ops, compile seconds, wrapper
      overhead) here, so span durations reproduce the cost model of
      Figs. 10/11;
    - every recorded event additionally ticks the clock by a fixed
      epsilon (1 virtual µs), so phases with no cost model of their own
      (e.g. concretizer iterations) still have strictly ordered,
      non-zero-duration spans.

    A disabled sink ({!disabled}) makes every operation a constant-time
    no-op that allocates nothing, so instrumentation can stay in the hot
    paths unconditionally. *)

type t

val disabled : t
(** The no-op sink: {!enabled} is [false], every operation returns
    immediately without recording or allocating. *)

val create : ?tick:float -> unit -> t
(** A fresh recording sink. [tick] is the epsilon (virtual seconds)
    added to the clock per recorded event; default [1e-6]. *)

val enabled : t -> bool

val now : t -> float
(** Current virtual-clock reading in seconds ([0.] when disabled). *)

val advance : t -> float -> unit
(** Charge simulated seconds to the virtual clock. Negative or NaN
    charges are ignored. *)

(** {1 Spans} *)

val span :
  t ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span t name f] runs [f] inside a span: a begin event before, an end
    event after — also on exception (re-raised). Spans nest. *)

val span_begin :
  t -> ?cat:string -> ?args:(string * string) list -> string -> unit

val span_end : t -> unit
(** Close the innermost open span; no-op when none is open. *)

(** {1 Counters and histograms} *)

val count : t -> string -> int -> unit
(** [count t name n] adds [n] to the named counter. *)

val counter : t -> string -> int
(** Current value ([0] when unset or disabled). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

type hist_summary = {
  h_count : int;
  h_min : float;
  h_max : float;
  h_sum : float;
}

val observe : t -> string -> float -> unit
(** Record a sample into the named histogram. *)

val histograms : t -> (string * hist_summary) list
(** All histogram summaries, sorted by name. *)

(** {1 Annotations} *)

val annotate : t -> ?cat:string -> string -> unit
(** Record an instant event — e.g. one concretizer policy decision. *)

type mark

val mark : t -> mark
(** The current position in the event stream. *)

val annotations_since : t -> ?cat:string -> mark -> string list
(** The payloads of the instant events recorded after [mark], in order,
    optionally restricted to a category. *)

(** {1 Reports} *)

type phase_row = {
  ph_name : string;
  ph_count : int;  (** spans with this name *)
  ph_total : float;  (** inclusive virtual seconds *)
  ph_self : float;  (** exclusive of child spans *)
}

val phase_rows : t -> phase_row list
(** Span durations aggregated by name, in the order each name first
    {e began} (so parents list before children even though children close
    first). Unclosed spans extend to the current clock. *)

val timings_table : t -> string
(** The human-readable [--timings] phase table. *)

val stats_table : t -> string
(** Counters and histogram summaries, the payload of [spack stats]. *)

val to_jsonl : t -> string
(** The session as a deterministic JSONL structured-event log: one JSON
    object per line — a [meta] header, then every recorded event in
    order ([span_begin]/[span_end]/[instant], timestamps in virtual
    seconds on the microsecond grid), then the [counter] and
    [histogram] summaries sorted by name. Byte-identical across
    identical runs; validated by [spack trace-validate]. *)

val to_chrome_trace : t -> Ospack_json.Json.t
(** The session as a Chrome trace-event object
    ([chrome://tracing] / Perfetto): [{"traceEvents": [...]}] with
    [B]/[E] duration events and [i] instant events, timestamps in
    virtual microseconds, plus [ospackCounters] and [ospackHistograms]
    aggregates. *)
