module Json = Ospack_json.Json

type verdict = Regression | Shape | Improvement

type finding = { f_path : string; f_verdict : verdict; f_message : string }

let tolerance = 0.05

type direction = Higher_is_worse | Lower_is_worse | Informational | Exact

(* the policy table, keyed on the leaf field name — any numeric field not
   listed here must match the baseline exactly *)
let policy_of = function
  | "makespan_seconds" | "serial_seconds" | "build_seconds" | "total_seconds"
  | "self_seconds" | "cp_seconds" | "cold_iterations" | "warm_iterations"
  | "seeded_iterations" | "iterations" | "decisions" | "propagations"
  | "conflicts" | "restarts" | "greedy_runs" ->
      Higher_is_worse
  | "speedup" | "efficiency" | "reuse_hits" | "utilization" -> Lower_is_worse
  | "wall_ms" -> Informational
  | _ -> Exact

let number_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let type_name = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Int _ | Json.Float _ -> "number"
  | Json.String _ -> "string"
  | Json.List _ -> "array"
  | Json.Obj _ -> "object"

let compare_docs ~baseline ~current =
  let findings = ref [] in
  let add path verdict message =
    findings := { f_path = path; f_verdict = verdict; f_message = message }
      :: !findings
  in
  let number path key base cur =
    match policy_of key with
    | Informational -> ()
    | Exact ->
        if base <> cur then
          add path Shape
            (Printf.sprintf "value changed %s -> %s (exact-match metric)"
               (Json.to_string (Json.fixed base))
               (Json.to_string (Json.fixed cur)))
    | (Higher_is_worse | Lower_is_worse) as dir ->
        (* relative tolerance with an absolute floor, so a 0-iteration
           or sub-second baseline still admits rounding noise but never
           an injected regression *)
        let allowed = tolerance *. Float.max (Float.abs base) 1.0 in
        let delta =
          match dir with
          | Higher_is_worse -> cur -. base
          | _ -> base -. cur
        in
        if delta > allowed then
          add path Regression
            (Printf.sprintf "%s -> %s (worse by %.1f%%, tolerance %.0f%%)"
               (Json.to_string (Json.fixed base))
               (Json.to_string (Json.fixed cur))
               (100.0 *. Float.abs delta /. Float.max (Float.abs base) 1e-9)
               (100.0 *. tolerance))
        else if -.delta > allowed then
          add path Improvement
            (Printf.sprintf "%s -> %s (better by %.1f%%)"
               (Json.to_string (Json.fixed base))
               (Json.to_string (Json.fixed cur))
               (100.0 *. Float.abs delta /. Float.max (Float.abs base) 1e-9))
  in
  let rec walk path key base cur =
    match (base, cur) with
    | Json.Obj bfields, Json.Obj cfields ->
        List.iter
          (fun (k, bv) ->
            let p = if path = "" then k else path ^ "." ^ k in
            match List.assoc_opt k cfields with
            | Some cv -> walk p k bv cv
            | None -> add p Shape "field missing from current run")
          bfields;
        List.iter
          (fun (k, _) ->
            if not (List.mem_assoc k bfields) then
              add
                (if path = "" then k else path ^ "." ^ k)
                Shape "field not present in baseline")
          cfields
    | Json.List bitems, Json.List citems ->
        let nb = List.length bitems and nc = List.length citems in
        if nb <> nc then
          add path Shape
            (Printf.sprintf "array length %d in baseline, %d now" nb nc)
        else
          List.iteri
            (fun i (bv, cv) ->
              walk (Printf.sprintf "%s[%d]" path i) key bv cv)
            (List.combine bitems citems)
    | _ -> (
        match (number_of base, number_of cur) with
        | Some b, Some c -> number path key b c
        | _ ->
            if base <> cur then
              add path Shape
                (Printf.sprintf "%s %s in baseline, %s %s now"
                   (type_name base) (Json.to_string base) (type_name cur)
                   (Json.to_string cur)))
  in
  walk "" "" baseline current;
  List.rev !findings

let regressions findings =
  List.filter
    (fun f ->
      match f.f_verdict with
      | Regression | Shape -> true
      | Improvement -> false)
    findings

let report = function
  | [] -> "baseline check: ok\n"
  | findings ->
      let buf = Buffer.create 256 in
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s: %s\n"
               (match f.f_verdict with
               | Regression -> "REGRESSION "
               | Shape -> "SHAPE      "
               | Improvement -> "improvement")
               f.f_path f.f_message))
        findings;
      Buffer.contents buf
