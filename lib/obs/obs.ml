module Json = Ospack_json.Json

(* One recorded event. End events repeat the name/cat of the span they
   close so the Chrome export and the phase aggregation need no stack
   replay guesswork for malformed streams. *)
type event =
  | Begin of {
      name : string;
      cat : string;
      ts : float;
      args : (string * string) list;
    }
  | End of { name : string; cat : string; ts : float }
  | Instant of { name : string; cat : string; ts : float }

type hist = {
  mutable h_n : int;
  mutable h_lo : float;
  mutable h_hi : float;
  mutable h_total : float;
}

type state = {
  tick : float;
  mutable clock : float;
  mutable events : event list;  (* reversed *)
  mutable n_events : int;
  mutable open_spans : (string * string) list;  (* name, cat; innermost first *)
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

type t = state option

let disabled : t = None

let create ?(tick = 1e-6) () : t =
  Some
    {
      tick;
      clock = 0.0;
      events = [];
      n_events = 0;
      open_spans = [];
      counters = Hashtbl.create 16;
      hists = Hashtbl.create 8;
    }

let enabled = function None -> false | Some _ -> true
let now = function None -> 0.0 | Some s -> s.clock

let advance t dt =
  match t with
  | None -> ()
  | Some s -> if dt > 0.0 then s.clock <- s.clock +. dt

let record s ev =
  s.events <- ev :: s.events;
  s.n_events <- s.n_events + 1

(* every event ticks the clock so timestamps are strictly increasing *)
let tick s =
  s.clock <- s.clock +. s.tick;
  s.clock

let span_begin t ?(cat = "ospack") ?(args = []) name =
  match t with
  | None -> ()
  | Some s ->
      let ts = tick s in
      s.open_spans <- (name, cat) :: s.open_spans;
      record s (Begin { name; cat; ts; args })

let span_end t =
  match t with
  | None -> ()
  | Some s -> (
      match s.open_spans with
      | [] -> ()
      | (name, cat) :: rest ->
          let ts = tick s in
          s.open_spans <- rest;
          record s (End { name; cat; ts }))

let span t ?cat ?args name f =
  match t with
  | None -> f ()
  | Some _ -> (
      span_begin t ?cat ?args name;
      match f () with
      | v ->
          span_end t;
          v
      | exception e ->
          span_end t;
          raise e)

let count t name n =
  match t with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.counters name with
      | Some r -> r := !r + n
      | None -> Hashtbl.replace s.counters name (ref n))

let counter t name =
  match t with
  | None -> 0
  | Some s -> (
      match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0)

let counters t =
  match t with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type hist_summary = {
  h_count : int;
  h_min : float;
  h_max : float;
  h_sum : float;
}

let observe t name v =
  match t with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.hists name with
      | Some h ->
          h.h_n <- h.h_n + 1;
          if v < h.h_lo then h.h_lo <- v;
          if v > h.h_hi then h.h_hi <- v;
          h.h_total <- h.h_total +. v
      | None ->
          Hashtbl.replace s.hists name
            { h_n = 1; h_lo = v; h_hi = v; h_total = v })

let histograms t =
  match t with
  | None -> []
  | Some s ->
      Hashtbl.fold
        (fun k h acc ->
          ( k,
            { h_count = h.h_n; h_min = h.h_lo; h_max = h.h_hi;
              h_sum = h.h_total } )
          :: acc)
        s.hists []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let annotate t ?(cat = "note") name =
  match t with
  | None -> ()
  | Some s ->
      let ts = tick s in
      record s (Instant { name; cat; ts })

type mark = int

let mark = function None -> 0 | Some s -> s.n_events

let events_in_order s = List.rev s.events

let annotations_since t ?cat m =
  match t with
  | None -> []
  | Some s ->
      events_in_order s
      |> List.filteri (fun i _ -> i >= m)
      |> List.filter_map (function
           | Instant { name; cat = c; _ } -> (
               match cat with
               | Some want when want <> c -> None
               | _ -> Some name)
           | Begin _ | End _ -> None)

(* ---------------- phase aggregation ---------------- *)

type phase_row = {
  ph_name : string;
  ph_count : int;
  ph_total : float;
  ph_self : float;
}

let phase_rows t =
  match t with
  | None -> []
  | Some s ->
      let rows : (string, phase_row) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      (* order is fixed by each phase's first Begin, so parents list
         before the children that close first *)
      let ensure name =
        if not (Hashtbl.mem rows name) then begin
          order := name :: !order;
          Hashtbl.replace rows name
            { ph_name = name; ph_count = 0; ph_total = 0.0; ph_self = 0.0 }
        end
      in
      let add name total self =
        ensure name;
        let r = Hashtbl.find rows name in
        Hashtbl.replace rows name
          {
            r with
            ph_count = r.ph_count + 1;
            ph_total = r.ph_total +. total;
            ph_self = r.ph_self +. self;
          }
      in
      (* replay the stream with a stack: (name, start, child_time) *)
      let stack = ref [] in
      let close name stop =
        match !stack with
        | [] -> ()
        | (n, start, child) :: rest when n = name ->
            let total = stop -. start in
            add name total (total -. child);
            stack :=
              (match rest with
              | (pn, ps, pchild) :: prest ->
                  (pn, ps, pchild +. total) :: prest
              | [] -> [])
        | _ -> ()
      in
      List.iter
        (function
          | Begin { name; ts; _ } ->
              ensure name;
              stack := (name, ts, 0.0) :: !stack
          | End { name; ts; _ } -> close name ts
          | Instant _ -> ())
        (events_in_order s);
      (* unclosed spans extend to the current clock *)
      List.iter (fun (name, _, _) -> close name s.clock) !stack;
      List.rev_map (fun name -> Hashtbl.find rows name) !order

let timings_table t =
  match phase_rows t with
  | [] -> "(no spans recorded)\n"
  | rows ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "%-40s %8s %14s %14s\n" "phase" "count" "total(s)"
           "self(s)");
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s %8d %14.6f %14.6f\n" r.ph_name r.ph_count
               r.ph_total r.ph_self))
        rows;
      Buffer.contents buf

let stats_table t =
  let buf = Buffer.create 256 in
  (match counters t with
  | [] -> Buffer.add_string buf "(no counters recorded)\n"
  | cs ->
      Buffer.add_string buf (Printf.sprintf "%-40s %12s\n" "counter" "value");
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf (Printf.sprintf "%-40s %12d\n" name v))
        cs);
  (match histograms t with
  | [] -> ()
  | hs ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s %8s %12s %12s %12s\n" "histogram" "count" "min"
           "max" "mean");
      List.iter
        (fun (name, h) ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s %8d %12.6f %12.6f %12.6f\n" name h.h_count
               h.h_min h.h_max
               (h.h_sum /. float_of_int (max 1 h.h_count))))
        hs);
  Buffer.contents buf

(* ---------------- JSONL structured-event export ---------------- *)

(* One self-describing JSON object per line, in event order, followed by
   the counter and histogram summaries. Timestamps are virtual seconds on
   the fixed-point grid (the clock ticks in whole microseconds), so the
   log is byte-identical across runs — the machine-readable sibling of
   the Chrome trace, built for line-oriented diffing and appending. *)
let jsonl_event = function
  | Begin { name; cat; ts; args } ->
      Json.Obj
        ([
           ("ev", Json.String "span_begin");
           ("ts", Json.fixed ts);
           ("name", Json.String name);
           ("cat", Json.String cat);
         ]
        @
        match args with
        | [] -> []
        | args ->
            [
              ( "args",
                Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args) );
            ])
  | End { name; cat; ts } ->
      Json.Obj
        [
          ("ev", Json.String "span_end");
          ("ts", Json.fixed ts);
          ("name", Json.String name);
          ("cat", Json.String cat);
        ]
  | Instant { name; cat; ts } ->
      Json.Obj
        [
          ("ev", Json.String "instant");
          ("ts", Json.fixed ts);
          ("name", Json.String name);
          ("cat", Json.String cat);
        ]

let to_jsonl t =
  let buf = Buffer.create 1024 in
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  (match t with
  | None -> line (Json.Obj [ ("ev", Json.String "meta"); ("format", Json.Int 1) ])
  | Some s ->
      line
        (Json.Obj
           [
             ("ev", Json.String "meta");
             ("format", Json.Int 1);
             ("clock", Json.String "virtual-seconds");
             ("events", Json.Int s.n_events);
           ]);
      List.iter (fun ev -> line (jsonl_event ev)) (events_in_order s);
      List.iter
        (fun (name, v) ->
          line
            (Json.Obj
               [
                 ("ev", Json.String "counter");
                 ("name", Json.String name);
                 ("value", Json.Int v);
               ]))
        (counters t);
      List.iter
        (fun (name, h) ->
          line
            (Json.Obj
               [
                 ("ev", Json.String "histogram");
                 ("name", Json.String name);
                 ("count", Json.Int h.h_count);
                 ("min", Json.fixed h.h_min);
                 ("max", Json.fixed h.h_max);
                 ("sum", Json.fixed h.h_sum);
               ]))
        (histograms t));
  Buffer.contents buf

(* ---------------- Chrome trace-event export ---------------- *)

let us seconds = Json.Float (seconds *. 1e6)

let to_chrome_trace t =
  match t with
  | None -> Json.Obj [ ("traceEvents", Json.List []) ]
  | Some s ->
      let common name cat ph ts =
        [
          ("name", Json.String name);
          ("cat", Json.String cat);
          ("ph", Json.String ph);
          ("ts", us ts);
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
        ]
      in
      let events =
        List.map
          (function
            | Begin { name; cat; ts; args } ->
                Json.Obj
                  (common name cat "B" ts
                  @
                  match args with
                  | [] -> []
                  | args ->
                      [
                        ( "args",
                          Json.Obj
                            (List.map (fun (k, v) -> (k, Json.String v)) args)
                        );
                      ])
            | End { name; cat; ts } -> Json.Obj (common name cat "E" ts)
            | Instant { name; cat; ts } ->
                Json.Obj (common name cat "i" ts @ [ ("s", Json.String "t") ]))
          (events_in_order s)
      in
      Json.Obj
        [
          ("traceEvents", Json.List events);
          ("displayTimeUnit", Json.String "ms");
          ( "ospackCounters",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
          ( "ospackHistograms",
            Json.Obj
              (List.map
                 (fun (k, h) ->
                   ( k,
                     Json.Obj
                       [
                         ("count", Json.Int h.h_count);
                         ("min", Json.Float h.h_min);
                         ("max", Json.Float h.h_max);
                         ("sum", Json.Float h.h_sum);
                       ] ))
                 (histograms t)) );
        ]
