module Vfs = Ospack_vfs.Vfs
module Concrete = Ospack_spec.Concrete
module Obs = Ospack_obs.Obs

(* Crash-consistency torture: run a reference install to completion,
   counting write barriers; then, for every selected barrier, replay the
   install on a fresh filesystem with a Crash-mode fault plan armed at
   that barrier, recover with a fresh installer, and check the store
   invariants. Determinism does the heavy lifting — before the injected
   barrier the replay is byte-for-byte the reference run, so barrier k is
   always reached and the post-crash state is exactly "the reference run,
   killed at its k-th durability boundary". *)

type report = {
  tr_jobs : int;
  tr_specs : int;
  tr_barriers : int;
  tr_kills : int;
  tr_orphans : int;
  tr_lost_nodes : int;
}

let report_to_string r =
  Printf.sprintf
    "torture -j%d: %d spec%s, %d barriers, %d kill point%s survived (%d \
     orphan prefix%s recovered, %d index record%s lost and reinstalled)"
    r.tr_jobs r.tr_specs
    (if r.tr_specs = 1 then "" else "s")
    r.tr_barriers r.tr_kills
    (if r.tr_kills = 1 then "" else "s")
    r.tr_orphans
    (if r.tr_orphans = 1 then "" else "es")
    r.tr_lost_nodes
    (if r.tr_lost_nodes = 1 then "" else "s")

let ( let* ) = Result.bind

(* One line per node of the store tree: kind, path, and payload (file
   content / symlink target), so two snapshots compare with (=). *)
let snapshot_tree vfs root =
  Vfs.walk vfs root
  |> List.map (fun (p, k) ->
         match k with
         | Vfs.File -> (
             match Vfs.read_file vfs p with
             | Ok c -> ("file " ^ p, c)
             | Error e ->
                 ("file " ^ p, "<unreadable: " ^ Vfs.error_to_string e ^ ">"))
         | Vfs.Dir -> ("dir " ^ p, "")
         | Vfs.Symlink -> (
             match Vfs.readlink vfs p with
             | Ok t -> ("symlink " ^ p, t)
             | Error e ->
                 ("symlink " ^ p, "<unreadable: " ^ Vfs.error_to_string e ^ ">")))

let snapshot_index db =
  Database.all db
  |> List.map (fun r -> Ospack_json.Json.to_string (Database.record_to_json r))

let under path ~prefix =
  path = prefix || String.starts_with ~prefix:(prefix ^ "/") path

let run ?(jobs = 1) ?(every = 1) ?config ~repo ~compilers specs =
  if jobs < 1 then Error "torture: jobs must be >= 1"
  else if every < 1 then Error "torture: every must be >= 1"
  else if specs = [] then Error "torture: no specs to install"
  else
    let fresh_world ?(obs = Obs.disabled) () =
      let vfs = Vfs.create () in
      (vfs, Installer.create ?config ~obs ~vfs ~repo ~compilers ())
    in
    (* -j1 uses the serial [install] path (one spec at a time, exactly
       the CLI's loop); -jN uses the virtual-time parallel scheduler. *)
    let install_all inst =
      if jobs = 1 then
        List.fold_left
          (fun acc c ->
            let* () = acc in
            match Installer.install inst c with
            | Ok _ -> Ok ()
            | Error e -> Error e)
          (Ok ()) specs
      else
        match Installer.install_parallel inst ~jobs specs with
        | Error e -> Error e
        | Ok r when r.Installer.pr_failures <> [] ->
            Error (Installer.failures_to_string r.Installer.pr_failures)
        | Ok _ -> Ok ()
    in
    (* reference run: no faults, count the durability boundaries *)
    let ref_vfs, ref_inst = fresh_world () in
    let* () =
      Result.map_error
        (fun e -> "torture: reference run failed: " ^ e)
        (install_all ref_inst)
    in
    let barriers = Vfs.write_barriers ref_vfs in
    let root = Installer.install_root ref_inst in
    let db_root = root ^ "/.spack-db" in
    let ref_index = snapshot_index (Installer.database ref_inst) in
    let ref_tree = snapshot_tree ref_vfs root in
    let ref_count = List.length ref_index in
    let fail k fmt =
      Printf.ksprintf
        (fun s -> Error (Printf.sprintf "kill point %d: %s" k s))
        fmt
    in
    let torture_at k =
      let vfs, inst = fresh_world () in
      Vfs.set_fault_plan vfs ~mode:Vfs.Crash [ k ];
      let crashed = install_all inst in
      Vfs.clear_fault_plan vfs;
      let* () =
        match crashed with
        | Ok () -> fail k "install survived an armed crash plan"
        | Error _ -> Ok ()
      in
      (* a fresh process opens the same store: load + crash recovery *)
      let recovery = Obs.create () in
      let reloaded =
        Installer.create ?config ~obs:recovery ~vfs ~repo ~compilers ()
      in
      let* (_ : int) =
        Result.map_error
          (fun e -> Printf.sprintf "kill point %d: reload: %s" k e)
          (Installer.load_index reloaded)
      in
      let loaded_index = snapshot_index (Installer.database reloaded) in
      (* invariant 1: the reloaded store is a prefix of the completed one —
         every surviving record is byte-identical to the reference's *)
      let* () =
        List.fold_left
          (fun acc r ->
            let* () = acc in
            if List.mem r ref_index then Ok ()
            else
              fail k "reloaded record is not part of the completed store: %s" r)
          (Ok ()) loaded_index
      in
      (* invariant 2: no unindexed orphans — after recovery, every file
         and symlink under the store (outside the db's own bookkeeping)
         belongs to a loaded record's prefix *)
      let prefixes =
        List.map
          (fun (r : Database.record) -> r.Database.r_prefix)
          (Database.all (Installer.database reloaded))
      in
      let* () =
        List.fold_left
          (fun acc (p, kind) ->
            let* () = acc in
            match kind with
            | Vfs.Dir -> Ok ()
            | Vfs.File | Vfs.Symlink ->
                if under p ~prefix:db_root then Ok ()
                else if
                  List.exists (fun pre -> under p ~prefix:pre) prefixes
                then Ok ()
                else fail k "unindexed orphan survived recovery: %s" p)
          (Ok ())
          (Vfs.walk vfs root)
      in
      (* invariant 3: the recovered store completes to exactly the
         reference — same index, same bytes *)
      let* () =
        Result.map_error
          (fun e -> Printf.sprintf "kill point %d: reinstall failed: %s" k e)
          (install_all reloaded)
      in
      let* () =
        if snapshot_index (Installer.database reloaded) = ref_index then Ok ()
        else fail k "completed index diverged from the reference run"
      in
      let* () =
        if snapshot_tree vfs root = ref_tree then Ok ()
        else fail k "completed store bytes diverged from the reference run"
      in
      Ok
        ( Obs.counter recovery "db.recovered_orphans",
          ref_count - List.length loaded_index )
    in
    let rec go k kills orphans lost =
      if k > barriers then
        Ok
          {
            tr_jobs = jobs;
            tr_specs = List.length specs;
            tr_barriers = barriers;
            tr_kills = kills;
            tr_orphans = orphans;
            tr_lost_nodes = lost;
          }
      else
        let* o, l = torture_at k in
        go (k + every) (kills + 1) (orphans + o) (lost + l)
    in
    go 1 0 0 0
