(** Build provenance (paper §3.4.3).

    For reproducibility, Spack stores in each installation: the package
    file that built it, a build log, and the complete concrete spec. The
    spec file "can be used later to reproduce the build, even if
    concretization preferences have changed" — {!read_spec} returns the
    stored one-line concrete spec for exactly that purpose. *)

val dir : string
(** Name of the provenance directory inside a prefix ([".spack"]). *)

val write :
  Ospack_vfs.Vfs.t ->
  prefix:string ->
  spec:Ospack_spec.Concrete.t ->
  package_source:string ->
  log:string list ->
  (unit, Ospack_vfs.Vfs.error) result
(** Write [<prefix>/.spack/spec] (one-line form), [<prefix>/.spack/spec.json]
    (the full structured DAG), [<prefix>/.spack/build.log] and
    [<prefix>/.spack/package.source]. Stops at (and returns) the first
    failing write — never raises. *)

val read_spec : Ospack_vfs.Vfs.t -> prefix:string -> string option
(** The stored concrete spec line, if present. *)

val read_spec_json :
  Ospack_vfs.Vfs.t -> prefix:string -> (Ospack_spec.Concrete.t, string) result
(** The stored structured spec, exactly as installed — restores the DAG
    without re-concretizing, so the result is immune to package-file and
    preference drift (§3.4.3: "even if concretization preferences have
    changed"). *)

val read_log : Ospack_vfs.Vfs.t -> prefix:string -> string list option
val read_package_source : Ospack_vfs.Vfs.t -> prefix:string -> string option

(** {1 Install manifests}

    Every install records an MD5 manifest of its payload files (everything
    outside [.spack/]); {!verify_manifest} re-hashes the tree and reports
    drift — the integrity check behind [spack verify]. *)

type verify_report = {
  vr_missing : string list;  (** manifested files no longer present *)
  vr_modified : string list;  (** files whose content hash changed *)
  vr_extra : string list;  (** unmanifested files that appeared *)
}

val report_clean : verify_report -> bool

val write_manifest :
  Ospack_vfs.Vfs.t -> prefix:string -> (unit, Ospack_vfs.Vfs.error) result
(** Hash every payload file of the prefix into
    [<prefix>/.spack/manifest.json]. Never raises. *)

val verify_manifest :
  Ospack_vfs.Vfs.t -> prefix:string -> (verify_report, string) result
(** Compare the tree against the stored manifest. Errors when no manifest
    exists (e.g. external vendor prefixes). *)
