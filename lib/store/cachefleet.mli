(** A simulated binary-cache mirror fleet.

    "Bridging the Gap Between Binary and Source Based Package
    Management in Spack" describes public buildcache mirrors serving
    enormous request volumes. This module models that service side on
    the virtual clock: an ordered list of mirrors (each a
    {!Buildcache.t} with its own latency and bandwidth), a deterministic
    request-trace generator (seeded zipf package popularity over many
    clients), typed retry/failover when a probe hits a transient
    {!Ospack_vfs.Vfs.Fault_injected}-shaped failure, and source-build
    fallback when no mirror carries the entry. Same seed, same trace —
    byte-identical reports, which is what the bench double-run gate
    checks. *)

type mirror = {
  m_name : string;
  m_cache : Buildcache.t;
  m_latency : float;  (** virtual seconds per probe round-trip *)
  m_byte_rate : float;  (** transfer bandwidth, bytes per virtual second *)
  mutable m_probes : int;
  mutable m_hits : int;
  mutable m_misses : int;
  mutable m_faults : int;
  mutable m_bytes : int;
}

type t

val mirror :
  ?latency:float -> ?byte_rate:float -> name:string -> Buildcache.t -> mirror
(** A mirror with zeroed accounting (defaults: 0.05 s latency, 1 MB/s). *)

val create : ?obs:Ospack_obs.Obs.t -> mirror list -> t
(** A fleet; clients walk the mirrors in the given order. *)

type config = {
  fc_seed : int;  (** PRNG seed; same seed, same trace *)
  fc_clients : int;  (** distinct client identities the trace draws from *)
  fc_requests : int;  (** total requests to generate *)
  fc_zipf_s : float;  (** zipf exponent: request popularity skew *)
  fc_fault_every : int;
      (** inject a two-probe burst of transient faults every Nth probe
          fleet-wide (0 = never), so retries and failovers both occur *)
  fc_mean_gap : float;  (** mean virtual seconds between arrivals *)
}

val default_config : config
(** seed 42, 1000 clients, 2000 requests, zipf 1.1, no faults, 10 ms
    mean gap. *)

type item = {
  it_name : string;  (** package name, for reporting *)
  it_hash : string;  (** the cache entry requested *)
  it_build_seconds : float;  (** source-build cost if no mirror has it *)
}

type report = {
  rp_requests : int;
  rp_clients : int;  (** distinct clients that issued a request *)
  rp_hits : int;
  rp_retries : int;  (** same-mirror second tries after a fault *)
  rp_failovers : int;  (** moves to the next mirror after a fault *)
  rp_fallback_builds : int;  (** requests no mirror served *)
  rp_fallback_seconds : float;
  rp_bytes : int;
  rp_elapsed : float;  (** virtual seconds the whole trace spanned *)
  rp_by_package : (string * int) list;
      (** requests per package, most-requested first *)
  rp_mirrors : mirror list;  (** in fleet order, with final accounting *)
}

val run : t -> config -> item list -> report
(** Generate and serve the trace. Items are ranked by position: the
    first is zipf rank 1, the most popular. Each request walks the
    mirror list in order; a transient fault is retried once on the same
    mirror and fails over to the next on a second fault; an entry no
    mirror carries is charged its source-build cost. Counters
    ([fleet.requests/hits/retries/failovers/fallback_builds/faults] and
    per-mirror [fleet.mirror.<name>.*]) and a [fleet.trace] span land in
    [obs]; every probe, transfer, think-time gap, and fallback build
    advances the virtual clock. Raises [Invalid_argument] on an empty
    item list. *)

val hit_rate : report -> float

val report_to_string : report -> string
(** Deterministic fleet summary + per-mirror and per-package tables. *)

val report_to_json : report -> Ospack_json.Json.t
(** The same accounting on the fixed decimal grid, for BENCH files. *)
