(** The installer: bottom-up DAG traversal, reuse, and provenance
    (paper §3.4: "At install time, Spack constructs a package object for
    each node in the spec DAG and traverses the DAG in a bottom-up
    fashion").

    Installation of a concrete spec builds each node whose sub-DAG hash is
    not yet in the database, dependencies first, into its unique prefix
    (Spack-default layout by default). Nodes whose hash already exists are
    reused — that is the sub-DAG sharing of Fig. 9 — and reported as such. *)

type t

type outcome = {
  o_record : Database.record;
  o_reused : bool;  (** true when the hash was already installed *)
  o_cached : bool;  (** true when extracted from the binary cache *)
  o_cache_miss : bool;
      (** true when a binary cache was configured but lacked the hash,
          so the node had to be built from source *)
}

type stats = {
  mutable st_built : int;  (** nodes built from source *)
  mutable st_reused : int;  (** nodes whose hash was already installed *)
  mutable st_cache_hits : int;  (** nodes extracted from the binary cache *)
  mutable st_cache_misses : int;
      (** nodes built because the configured cache lacked their hash *)
  mutable st_staging_failures : int;
      (** builds that failed in staging (mirror fetch / checksum) *)
  mutable st_externals : int;  (** vendor prefixes registered (§4.4) *)
}
(** Cumulative, typed accounting over the installer's lifetime —
    classified from the builder's typed errors and the install paths
    taken, never by string-matching messages. *)

val create :
  ?fs:Ospack_buildsim.Fsmodel.t ->
  ?scheme:Ospack_layout.Layout.scheme ->
  ?install_root:string ->
  ?stage_root:string ->
  ?use_wrappers:bool ->
  ?config:Ospack_config.Config.t ->
  ?cache:Buildcache.t ->
  ?mirror:Ospack_buildsim.Mirror.t ->
  ?obs:Ospack_obs.Obs.t ->
  vfs:Ospack_vfs.Vfs.t ->
  repo:Ospack_package.Repository.t ->
  compilers:Ospack_config.Compilers.t ->
  unit ->
  t
(** Defaults: tmpfs stage, Spack-default layout under ["/ospack/opt"],
    stage under ["/ospack/stage"], wrappers enabled, empty configuration.
    [config] supplies [externals.*] declarations (§4.4): when a node to be
    installed satisfies a declared external spec, its vendor prefix is
    registered instead of building (the prefix is populated with vendor
    artifacts on first use so downstream links resolve). [cache] enables
    pulls from a binary build cache: nodes whose hash is cached are
    extracted (with prefix relocation) instead of built. [mirror] makes
    every build stage its sources from a checksum-verified mirror archive
    (a missing or corrupted archive fails the build). [obs] (default
    {!Ospack_obs.Obs.disabled}) receives one span per installed node
    (named [install <name>], cat ["install"], with [node]/[hash] args,
    nesting the builder's phase spans), counters
    ([install.built]/[install.reused]/[install.externals],
    [buildcache.hits]/[buildcache.misses], [install.staging_failures])
    and a [build.node_seconds] histogram; it is also threaded into every
    {!Ospack_buildsim.Builder.build}. *)

val database : t -> Database.t
val vfs : t -> Ospack_vfs.Vfs.t
val install_root : t -> string

val prefix_of : t -> Ospack_spec.Concrete.t -> string -> string
(** The prefix a node of a spec installs into (deterministic, layout-based;
    does not require the node to be installed). *)

val install :
  t -> ?explicit:bool -> Ospack_spec.Concrete.t -> (outcome list, string) result
(** Install a concrete spec: one outcome per DAG node in install
    (dependencies-first) order. The root's record is marked explicit
    (unless [~explicit:false]). On a build failure nothing after the
    failing node is installed.

    Crash consistency: the on-disk index is persisted after {e every}
    node — including on the error path — so nodes that completed before
    a mid-DAG failure are never left as unindexed orphan prefixes, and a
    failed node's partial prefix is discarded. Never raises: index
    persistence failures surface as [Error] (rendered
    {!store_error_to_string}). *)

type node_error =
  | Build_failure of Ospack_buildsim.Builder.error
      (** the builder's typed error (staging / missing dep / step) *)
  | Install_failure of string
      (** non-build failure: cache extraction, missing package definition *)

val node_error_to_string : node_error -> string
(** Renders exactly the historical string errors of {!install}. *)

type failure =
  | Failed of { f_node : string; f_hash : string; f_error : node_error }
      (** the node itself failed to build / extract *)
  | Poisoned of {
      p_node : string;
      p_hash : string;
      p_failed_deps : string list;  (** sorted names of the failed causes *)
    }
      (** never attempted because a transitive dependency failed *)

type slot = {
  sl_node : string;
  sl_hash : string;
  sl_worker : int;  (** [0 .. jobs-1] *)
  sl_start : float;  (** virtual seconds *)
  sl_finish : float;
}
(** One dispatch decision of the parallel scheduler. *)

type parallel_report = {
  pr_jobs : int;
  pr_outcomes : outcome list;  (** completed nodes, completion order *)
  pr_failures : failure list;
      (** failed nodes in dispatch order, then poisoned nodes in
          priority order; empty = full success *)
  pr_schedule : slot list;  (** dispatch order *)
  pr_makespan : float;  (** virtual end-to-end seconds at [-j jobs] *)
  pr_serial_seconds : float;  (** sum of node durations ([-j1] makespan) *)
}

val install_parallel :
  t ->
  ?explicit:bool ->
  jobs:int ->
  Ospack_spec.Concrete.t list ->
  (parallel_report, string) result
(** Install one or more concrete specs on a virtual-time pool of [jobs]
    simulated workers. Node DAGs are merged by sub-DAG hash (shared
    sub-DAGs schedule once); ready nodes (all dependencies done)
    dispatch in first-occurrence topological priority order to the
    longest-idle worker, so the schedule is a pure function of the
    input and [jobs] — every [-j] level produces identical database
    records, hashes, and store bytes, and (with tracing on)
    byte-identical traces run-to-run. At [jobs = 1] the dispatch order
    is exactly {!install}'s topological order.

    Failure handling is not fail-stop: a failed node poisons only its
    transitive dependents while independent subtrees keep building, and
    all failures aggregate into the typed [pr_failures] report. The
    on-disk index is persisted after every node attempt. [Error _] is
    returned only for invalid arguments ([jobs < 1]); build failures
    land in [pr_failures].

    Observability (when [obs] is enabled): a [schedule] span (cat
    [sched], args [jobs]/[nodes]) wrapping one [worker <i>] span per
    dispatch (nesting the node's [install <name>] span), the
    [sched.ready_queue] and [sched.idle_seconds] histograms sampled at
    each dispatch, and [sched.dispatches] / [sched.failures]
    counters. *)

val failure_to_string : failure -> string

val failures_to_string : failure list -> string
(** Multi-line rendering: a header counting failed and poisoned nodes,
    then one indented line per failure. *)

val parallel_speedup : parallel_report -> float
(** [pr_serial_seconds /. pr_makespan] ([1.0] for an empty schedule). *)

val parallel_summary_to_string : parallel_report -> string
(** ["makespan X s vs Y s serialized (Zx at -jN)"]. *)

val profile_input :
  specs:Ospack_spec.Concrete.t list ->
  parallel_report ->
  Ospack_obs.Profile.input
(** Extract the cost-weighted DAG and executed schedule for
    {!Ospack_obs.Profile.analyze}: spec DAGs merged by sub-DAG hash in
    first-occurrence order (exactly the scheduler's node table), node
    ids = hashes, labels = package names, costs = recorded slot
    durations (nodes absent from the schedule — reused or external —
    cost [0.]). Pure; pairs with the [specs] actually passed to
    {!install_parallel}. *)

val uninstall : t -> hash:string -> (Database.record, string) result
(** Remove an installed record and its prefix. Fails (removing nothing)
    when other installed specs depend on it. Never raises: prefix-removal
    and index-persistence failures surface as [Error]. *)

val total_build_seconds : t -> float
(** Sum of simulated build time across everything this installer built. *)

val stats : t -> stats
(** Snapshot of the cumulative accounting (mutating the returned record
    does not affect the installer). *)

type summary = {
  s_built : int;
  s_reused : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_externals : int;
}
(** Per-install classification of {!outcome} lists, for the CLI's
    one-line install summary. *)

val summary_of_outcomes : outcome list -> summary

val summary_to_string : summary -> string
(** ["N built, M reused"] plus [", K from cache"], [", K cache misses"]
    and [", K external"] segments when nonzero. *)

val push_to_cache : t -> Buildcache.t -> (int, string) result
(** Archive every locally built (non-external) record into a cache;
    returns how many records the cache now covers from this store. *)

type splice_result = {
  sp_record : Database.record;  (** the newly registered spliced install *)
  sp_old_hash : string;
  sp_new_hash : string;
  sp_replaced : string;  (** the dependency package that was swapped *)
  sp_rewired : int;  (** binaries whose RPATHs were rewritten *)
  sp_resolved : int;  (** binaries the loader re-verified, empty env *)
}

val splice :
  t -> hash:string -> replacement:Ospack_spec.Concrete.t ->
  (splice_result, string) result
(** [spack splice]: substitute one dependency's installed prefix into
    the cached binary for [hash] without rebuilding. The spliced DAG
    comes from {!Buildcache.splice_spec} (the replacement sub-DAG
    overrides same-named nodes; every node above it recomputes its
    hash); the cached entry re-extracts into the new root prefix with
    RPATHs rewired to the replacement's installed prefixes. Replaced
    nodes must already be installed — splicing never builds. Intermediate
    nodes rehashed only because a transitive dependency changed are not
    rebuilt: they register alias records mapping the new hash onto the
    old prefix, keeping the spliced DAG fully resolvable. The operation
    is bracketed by a pending marker and accepted only when
    {!Ospack_buildsim.Loader.verify_prefix} proves every simulated ELF
    object in the new prefix resolves with an {e empty} environment —
    the paper's §3.5 relocation invariant doing new work. *)

(** {1 The sharded on-disk index}

    The database persists as hash-prefix shards
    ([<install_root>/.spack-db/index/<2-hex>.json] — first two hex
    characters of the record hash) plus a manifest listing the live
    shard set, each file written via write-then-rename. Only shards
    holding changed records are rewritten on a save, so per-node index
    cost is proportional to the change, not the store. A pending marker
    ([.spack-db/pending/<hash>]) brackets every prefix materialization;
    {!load_index} removes any prefix whose marker survived without an
    index entry, so a reloaded store is always a prefix of the completed
    one with no unindexed orphans. *)

type store_error =
  | Store_io of {
      se_action : string;  (** ["write"] / ["rename"] / ["read"] / ["remove"] *)
      se_path : string;
      se_cause : Ospack_vfs.Vfs.error;
    }
  | Store_corrupt of { se_path : string; se_reason : string }
      (** unparsable shard, manifest, or legacy index *)

val store_error_to_string : store_error -> string

val index_path : t -> string
(** Path of the legacy single-file index
    ([<install_root>/.spack-db/index.json]) — no longer written;
    {!load_index} migrates it to shards transparently. *)

val index_dir : t -> string
(** Directory holding the index shards ([<install_root>/.spack-db/index]). *)

val manifest_path : t -> string
(** The shard manifest ([<index_dir>/manifest.json]). *)

val shard_path : t -> string -> string
(** Path of one shard file by 2-hex key. *)

val shard_of_hash : string -> string
(** The shard key of a record hash (its first two hex characters). *)

val index_bytes_written : t -> int
(** Cumulative bytes this installer wrote persisting the index (shard and
    manifest payloads) — the quantity the sharding keeps proportional to
    the change. *)

val load_index : t -> (int, string) result
(** Merge the records of the on-disk index into this installer's database
    — how a fresh process picks up an existing store on the same
    filesystem. Reads every shard named by the manifest or present in the
    index directory, transparently migrates a legacy single-file
    [index.json] (rewriting it as shards and retiring the file), and runs
    pending-marker crash recovery (orphaned prefixes are deleted and
    counted on the [db.recovered_orphans] obs counter). Returns the
    number of records merged ([Ok 0] when no index exists yet). *)
