(** A binary build cache: installed trees archived by DAG hash, with
    prefix relocation on extraction.

    The paper contrasts Spack's from-source model with binary package
    managers (§2); real Spack later grew exactly this mechanism
    ([spack buildcache]). A cache entry stores the full concrete spec, the
    install root it was built under, and every file of the prefix. Pulling
    into a store with a {e different} install root rewrites embedded
    absolute paths (RPATHs in binaries, path-index files, symlink targets)
    from the old root to the new one — binary relocation, the classic
    obstacle to sharing HPC binaries.

    Entries are content-addressed under [<root>/<2-hex>/<hash>.json]
    (the store-index shard layout) with a tolerant [manifest.json]
    listing the live shard set; entries written by the old flat layout
    ([<root>/<hash>.json]) stay readable. All writes go through
    write-tmp-then-rename, so a crash leaves either no entry or a
    complete one; stray [.tmp] files are swept on listing. *)

type t

type error =
  | Cache_io of {
      io_op : string;
      io_path : string;
      io_cause : Ospack_vfs.Vfs.error;
    }
      (** the filesystem refused an operation — {!transient} when the
          cause is an injected fault *)
  | Cache_corrupt of { co_path : string; co_reason : string }
      (** the entry exists but cannot be trusted: unparseable JSON,
          missing fields, or a file list shorter than its recorded
          count *)
  | Cache_missing of string  (** no entry for the hash, on any path *)
  | Bad_prefix of { bp_prefix : string; bp_reason : string }
      (** the prefix offered for archiving is unusable *)

val error_to_string : error -> string

val transient : error -> bool
(** Worth retrying or failing over to another mirror: true exactly for
    fault-injected I/O ({!Ospack_vfs.Vfs.Fault_injected}), never for
    corruption or absence. *)

val create : Ospack_vfs.Vfs.t -> root:string -> t
(** A cache living under [root] on the given filesystem (shared caches use
    a shared filesystem). *)

val root : t -> string

val save :
  t ->
  install_root:string ->
  Database.record ->
  (unit, error) result
(** Archive an installed record's prefix (idempotent per hash). Every
    entry of the prefix walk must archive: an unreadable file or symlink
    is an error (never a silent omission), an empty or missing prefix is
    rejected, and directories are archived too so empty ones survive the
    round trip. The entry records its file count so truncation is
    detectable at extraction. The entry lands under its [.tmp] name and
    becomes visible only through an atomic rename — a crash at any write
    barrier never leaves a truncated entry behind. *)

val has : t -> hash:string -> bool

val cached_hashes : t -> string list
(** Sorted hashes present in the cache (sharded and legacy flat entries
    alike). Stray [.tmp] files from interrupted saves are swept as a side
    effect. *)

val entry_path : t -> string -> string
(** The sharded on-disk path an entry for this hash would occupy. *)

val relocate : from_root:string -> to_root:string -> string -> string
(** Path-token-boundary-aware textual relocation: an occurrence of
    [from_root] rewrites only when not embedded in a longer path token on
    either side, so [/opt/spack/bin] relocates while the distinct root
    [/opt/spack2] and the mid-path [/usr/opt/spack] are left alone.
    Boundary = any character outside [A-Za-z0-9._+-] or the text edge
    ('/' is a boundary, so path continuations match). *)

val relocate_many : pairs:(string * string) list -> string -> string
(** Several replacements in one left-to-right scan (longest source
    first, no chaining — a replacement's output is never re-matched). *)

val extract :
  t ->
  hash:string ->
  install_root:string ->
  prefix:string ->
  (Ospack_spec.Concrete.t, error) result
(** Materialize a cached build into [prefix], relocating every embedded
    occurrence of the cached install root to [install_root]. Returns the
    stored concrete spec.

    Entries whose file list does not match their recorded count are
    rejected as truncated (entries predating the count extract
    leniently). A pre-existing destination holding any path the entry
    does not list — leftovers from a different entry — is cleared
    wholesale before materializing, so stale orphans can never keep
    resolving under the loader. Re-extraction over a matching prefix is
    idempotent: an existing symlink is kept only when its target matches
    the (relocated) cached target; a stale link — or a non-link squatting
    on the path — is removed and re-created. *)

val entry_spec : t -> hash:string -> (Ospack_spec.Concrete.t, error) result
(** The concrete spec stored in an entry, without materializing it. *)

val entry_size : t -> hash:string -> int option
(** Bytes an entry occupies on disk — what a mirror transfer costs. *)

val splice_spec :
  orig:Ospack_spec.Concrete.t ->
  replacement:Ospack_spec.Concrete.t ->
  (Ospack_spec.Concrete.t * string, string) result
(** Build the spliced DAG: the replacement's nodes override the
    original's same-named nodes (bringing any new transitive
    dependencies along), edges and acyclicity re-validate, unreachable
    nodes are pruned, and — because a node's DAG hash covers its
    dependencies' hashes — every node above the replacement recomputes
    its hash automatically. Returns the spliced spec and the
    replacement's root package name. Errors when the original does not
    depend on the replacement's package, when the replacement targets
    the root itself, or when it is already the installed dependency. *)

val splice :
  t ->
  hash:string ->
  install_root:string ->
  prefix:string ->
  prefix_map:(string * string) list ->
  (int, error) result
(** Materialize the cached entry [hash] into [prefix] with its
    dependency prefixes rewired through [prefix_map]
    [(old installed prefix, new installed prefix)], on top of the usual
    root relocation. Files that parse as simulated ELF objects get a
    structured rewrite — each RPATH entry swaps on exact path-component
    boundaries — and everything else goes through the boundary-aware
    textual pass. Returns the number of binaries whose RPATHs changed. *)
