(** A binary build cache: installed trees archived by DAG hash, with
    prefix relocation on extraction.

    The paper contrasts Spack's from-source model with binary package
    managers (§2); real Spack later grew exactly this mechanism
    ([spack buildcache]). A cache entry stores the full concrete spec, the
    install root it was built under, and every file of the prefix. Pulling
    into a store with a {e different} install root rewrites embedded
    absolute paths (RPATHs in binaries, path-index files, symlink targets)
    from the old root to the new one — binary relocation, the classic
    obstacle to sharing HPC binaries. *)

type t

val create : Ospack_vfs.Vfs.t -> root:string -> t
(** A cache living under [root] on the given filesystem (shared caches use
    a shared filesystem). *)

val save :
  t ->
  install_root:string ->
  Database.record ->
  (unit, string) result
(** Archive an installed record's prefix (idempotent per hash). Every
    entry of the prefix walk must archive: an unreadable file or symlink
    is an error (never a silent omission), an empty or missing prefix is
    rejected, and directories are archived too so empty ones survive the
    round trip. The entry records its file count so truncation is
    detectable at extraction. *)

val has : t -> hash:string -> bool

val cached_hashes : t -> string list
(** Sorted hashes present in the cache. *)

val extract :
  t ->
  hash:string ->
  install_root:string ->
  prefix:string ->
  (Ospack_spec.Concrete.t, string) result
(** Materialize a cached build into [prefix], relocating every embedded
    occurrence of the cached install root to [install_root]. Returns the
    stored concrete spec.

    Entries whose file list does not match their recorded count are
    rejected as truncated. Re-extraction is idempotent: an existing
    symlink is kept only when its target matches the (relocated) cached
    target; a stale link — or a non-link squatting on the path — is
    removed and re-created. *)
