(** The install database: every installed configuration, addressed by its
    sub-DAG hash (paper §3.4.2).

    Each record's spec is the concrete sub-DAG rooted at the installed
    package, so two top-level installs that share a sub-DAG (the paper's
    Fig. 9: mpileaks with mpich, then with openmpi) share the records —
    and hence the installs — of the common subtree. *)

type record = {
  r_spec : Ospack_spec.Concrete.t;  (** sub-DAG rooted at the package *)
  r_hash : string;  (** [Concrete.root_hash r_spec] *)
  r_prefix : string;
  r_explicit : bool;  (** installed by user request, not as a dependency *)
  r_external : bool;
      (** a vendor/site install outside the store (§4.4); never built and
          its prefix is never removed by uninstall *)
  r_build_seconds : float;  (** simulated build time (0 when reused) *)
}

type t

val create : unit -> t

val add : t -> record -> unit
(** Idempotent per hash (re-adding overwrites, preserving [r_explicit] if
    either record was explicit). *)

val find_by_hash : t -> string -> record option

val find_by_name : t -> string -> record list
(** Installed configurations of one package, sorted by hash. *)

val find_satisfying : t -> Ospack_spec.Ast.t -> record list
(** Records whose spec satisfies an abstract query — the reuse check of
    §3.2.3 ("Spack will use the previously-built installation"). *)

val all : t -> record list
(** Sorted by package name, then hash. *)

val count : t -> int

val dependents_of : t -> string -> record list
(** Records whose spec contains the given hash as a {e non-root} node —
    the installs that would break if it were removed. *)

val remove : t -> string -> (record, string) result
(** Remove by hash; fails with a message naming dependents when other
    installed records still depend on it. *)

val to_json : t -> Ospack_json.Json.t
(** Serialize the whole database (records sorted by name/hash) — the
    on-disk index the installer maintains so a fresh process can pick up
    an existing store. *)

val of_json : Ospack_json.Json.t -> (t, string) result
(** Inverse of {!to_json}. *)

val record_to_json : record -> Ospack_json.Json.t
(** One record in the same shape {!to_json} uses — the unit the sharded
    index persists, so a shard file is a plain [records] list. *)

val record_of_json : Ospack_json.Json.t -> (record, string) result
(** Inverse of {!record_to_json}. *)
