module Vfs = Ospack_vfs.Vfs
module Concrete = Ospack_spec.Concrete
module Repository = Ospack_package.Repository
module Package = Ospack_package.Package
module Fsmodel = Ospack_buildsim.Fsmodel
module Builder = Ospack_buildsim.Builder
module Layout = Ospack_layout.Layout
module Policy = Ospack_config.Policy
module Config = Ospack_config.Config
module Binary = Ospack_buildsim.Binary
module Obs = Ospack_obs.Obs

type stats = {
  mutable st_built : int;
  mutable st_reused : int;
  mutable st_cache_hits : int;
  mutable st_cache_misses : int;
  mutable st_staging_failures : int;
  mutable st_externals : int;
}

type t = {
  vfs : Vfs.t;
  fs : Fsmodel.t;
  scheme : Layout.scheme;
  install_root : string;
  stage_root : string;
  use_wrappers : bool;
  config : Config.t;
  cache : Buildcache.t option;
  mirror : Ospack_buildsim.Mirror.t option;
  repo : Repository.t;
  compilers : Ospack_config.Compilers.t;
  db : Database.t;
  obs : Obs.t;
  st : stats;
  mutable total_seconds : float;
}

type outcome = {
  o_record : Database.record;
  o_reused : bool;
  o_cached : bool;
  o_cache_miss : bool;
}

let create ?(fs = Fsmodel.tmpfs) ?(scheme = Layout.Spack_default)
    ?(install_root = "/ospack/opt") ?(stage_root = "/ospack/stage")
    ?(use_wrappers = true) ?(config = Config.empty) ?cache ?mirror
    ?(obs = Obs.disabled) ~vfs ~repo ~compilers () =
  {
    vfs;
    fs;
    scheme;
    install_root;
    stage_root;
    use_wrappers;
    config;
    cache;
    mirror;
    repo;
    compilers;
    db = Database.create ();
    obs;
    st =
      {
        st_built = 0;
        st_reused = 0;
        st_cache_hits = 0;
        st_cache_misses = 0;
        st_staging_failures = 0;
        st_externals = 0;
      };
    total_seconds = 0.0;
  }

let stats t =
  (* snapshot, so callers cannot perturb the accounting *)
  {
    st_built = t.st.st_built;
    st_reused = t.st.st_reused;
    st_cache_hits = t.st.st_cache_hits;
    st_cache_misses = t.st.st_cache_misses;
    st_staging_failures = t.st.st_staging_failures;
    st_externals = t.st.st_externals;
  }

let index_path t = t.install_root ^ "/.spack-db/index.json"

let save_index t =
  let content =
    Ospack_json.Json.to_string ~indent:2 (Database.to_json t.db) ^ "\n"
  in
  match Vfs.write_file t.vfs (index_path t) content with
  | Ok () -> ()
  | Error e -> invalid_arg ("Installer: index: " ^ Vfs.error_to_string e)

let load_index t =
  match Vfs.read_file t.vfs (index_path t) with
  | Error (Vfs.Not_found _) -> Ok 0
  | Error e -> Error (Vfs.error_to_string e)
  | Ok content -> (
      match Ospack_json.Json.of_string content with
      | Error e -> Error ("db index: " ^ e)
      | Ok j -> (
          match Database.of_json j with
          | Error e -> Error e
          | Ok loaded ->
              let records = Database.all loaded in
              List.iter (Database.add t.db) records;
              Ok (List.length records)))

let database t = t.db
let vfs t = t.vfs
let install_root t = t.install_root

let prefix_of t spec name =
  Layout.node_path t.scheme ~root:t.install_root spec name

let ( let* ) = Result.bind

(* Populate a vendor prefix with minimal self-contained artifacts so that
   dependents' RPATH resolution works against it. Idempotent. *)
let ensure_external_artifacts t name prefix =
  let lib = Builder.installed_library ~prefix ~package:name in
  if not (Vfs.is_file t.vfs lib) then begin
    let write path content =
      match Vfs.write_file t.vfs path content with
      | Ok () -> ()
      | Error e ->
          invalid_arg ("Installer: external prefix: " ^ Vfs.error_to_string e)
    in
    write lib
      (Binary.serialize
         (Binary.make ~kind:Binary.Lib
            ~soname:(Binary.soname_for_package name)
            ~needed:[] ~rpaths:[]));
    write
      (Builder.installed_executable ~prefix ~package:name)
      (Binary.serialize
         (Binary.make ~kind:Binary.Exe ~soname:name
            ~needed:[ Binary.soname_for_package name ]
            ~rpaths:[ prefix ^ "/lib" ]));
    write (prefix ^ "/include/" ^ name ^ ".h") ("/* vendor " ^ name ^ " */")
  end

let external_record t sub name ~explicit =
  match Policy.external_for t.config ~package:name with
  | Some (ext_spec, prefix) when Concrete.satisfies sub ext_spec ->
      ensure_external_artifacts t name prefix;
      Some
        {
          Database.r_spec = sub;
          r_hash = Concrete.root_hash sub;
          r_prefix = prefix;
          r_explicit = explicit;
          r_external = true;
          r_build_seconds = 0.0;
        }
  | _ -> None

let install_node t spec name ~explicit =
  let sub = Concrete.subspec spec name in
  let hash = Concrete.root_hash sub in
  Obs.span t.obs ~cat:"install"
    ~args:[ ("node", name); ("hash", hash) ]
    ("install " ^ name)
  @@ fun () ->
  match Database.find_by_hash t.db hash with
  | Some record ->
      t.st.st_reused <- t.st.st_reused + 1;
      Obs.count t.obs "install.reused" 1;
      if explicit && not record.Database.r_explicit then
        Database.add t.db { record with Database.r_explicit = true };
      Ok
        {
          o_record =
            { record with
              Database.r_explicit = explicit || record.Database.r_explicit };
          o_reused = true;
          o_cached = false;
          o_cache_miss = false;
        }
  | None ->
  match external_record t sub name ~explicit with
  | Some record ->
      t.st.st_externals <- t.st.st_externals + 1;
      Obs.count t.obs "install.externals" 1;
      Database.add t.db record;
      Ok
        {
          o_record = record;
          o_reused = false;
          o_cached = false;
          o_cache_miss = false;
        }
  | None ->
  (* binary cache: extract instead of building, relocating prefixes *)
  match t.cache with
  | Some cache when Buildcache.has cache ~hash -> (
      t.st.st_cache_hits <- t.st.st_cache_hits + 1;
      Obs.count t.obs "buildcache.hits" 1;
      let prefix = prefix_of t spec name in
      match
        Buildcache.extract cache ~hash ~install_root:t.install_root ~prefix
      with
      | Error e -> Error (Printf.sprintf "buildcache %s: %s" name e)
      | Ok _stored_spec ->
          (* relocation rewrote file contents, so re-manifest the prefix *)
          Provenance.write_manifest t.vfs ~prefix;
          let record =
            {
              Database.r_spec = sub;
              r_hash = hash;
              r_prefix = prefix;
              r_explicit = explicit;
              r_external = false;
              r_build_seconds = 0.0;
            }
          in
          Database.add t.db record;
          Ok
            {
              o_record = record;
              o_reused = false;
              o_cached = true;
              o_cache_miss = false;
            })
  | _ ->
      (* a configured cache that lacks this hash is a miss we account *)
      let cache_miss = Option.is_some t.cache in
      if cache_miss then begin
        t.st.st_cache_misses <- t.st.st_cache_misses + 1;
        Obs.count t.obs "buildcache.misses" 1
      end;
      let* pkg =
        match Repository.find t.repo name with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "no package definition for %s" name)
      in
      let prefix = prefix_of t spec name in
      let dep_prefix dep =
        let dep_hash = Concrete.dag_hash sub dep in
        Option.map
          (fun r -> r.Database.r_prefix)
          (Database.find_by_hash t.db dep_hash)
      in
      let* result =
        Result.map_error
          (fun e ->
            (match e with
            | Builder.Staging _ ->
                t.st.st_staging_failures <- t.st.st_staging_failures + 1;
                Obs.count t.obs "install.staging_failures" 1
            | Builder.Missing_dep _ | Builder.Step_failed _ -> ());
            Builder.error_to_string e)
          (Builder.build ~obs:t.obs ~vfs:t.vfs ~fs:t.fs
             ~compilers:t.compilers ~use_wrappers:t.use_wrappers
             ~mirror:t.mirror ~stage_root:t.stage_root ~spec:sub ~node:name
             ~pkg ~prefix ~dep_prefix ())
      in
      Provenance.write t.vfs ~prefix ~spec:sub
        ~package_source:pkg.Package.p_source ~log:result.Builder.br_log;
      Provenance.write_manifest t.vfs ~prefix;
      let record =
        {
          Database.r_spec = sub;
          r_hash = hash;
          r_prefix = prefix;
          r_explicit = explicit;
          r_external = false;
          r_build_seconds = result.Builder.br_time;
        }
      in
      Database.add t.db record;
      t.st.st_built <- t.st.st_built + 1;
      Obs.count t.obs "install.built" 1;
      Obs.observe t.obs "build.node_seconds" result.Builder.br_time;
      t.total_seconds <- t.total_seconds +. result.Builder.br_time;
      Ok
        {
          o_record = record;
          o_reused = false;
          o_cached = false;
          o_cache_miss = cache_miss;
        }

let install t ?(explicit = true) spec =
  let order = Concrete.topological_order spec in
  let root = Concrete.root spec in
  let rec go acc = function
    | [] ->
        save_index t;
        Ok (List.rev acc)
    | name :: rest ->
        let* outcome =
          install_node t spec name ~explicit:(explicit && name = root)
        in
        go (outcome :: acc) rest
  in
  go [] order

type summary = {
  s_built : int;
  s_reused : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_externals : int;
}

let summary_of_outcomes outcomes =
  List.fold_left
    (fun s o ->
      let s =
        if o.o_reused then { s with s_reused = s.s_reused + 1 }
        else if o.o_cached then { s with s_cache_hits = s.s_cache_hits + 1 }
        else if o.o_record.Database.r_external then
          { s with s_externals = s.s_externals + 1 }
        else { s with s_built = s.s_built + 1 }
      in
      if o.o_cache_miss then { s with s_cache_misses = s.s_cache_misses + 1 }
      else s)
    {
      s_built = 0;
      s_reused = 0;
      s_cache_hits = 0;
      s_cache_misses = 0;
      s_externals = 0;
    }
    outcomes

let summary_to_string s =
  let optional n what = if n = 0 then "" else Printf.sprintf ", %d %s" n what in
  Printf.sprintf "%d built, %d reused%s%s%s" s.s_built s.s_reused
    (optional s.s_cache_hits "from cache")
    (optional s.s_cache_misses "cache misses")
    (optional s.s_externals "external")

let uninstall t ~hash =
  let* record = Database.remove t.db hash in
  (* vendor prefixes are not ours to delete *)
  if not record.Database.r_external then (
    match Vfs.remove t.vfs ~recursive:true record.Database.r_prefix with
    | Ok () | Error (Vfs.Not_found _) -> ()
    | Error e -> invalid_arg ("Installer.uninstall: " ^ Vfs.error_to_string e));
  save_index t;
  Ok record

let total_build_seconds t = t.total_seconds

let push_to_cache t cache =
  let rec go pushed = function
    | [] -> Ok pushed
    | (r : Database.record) :: rest ->
        if r.Database.r_external then go pushed rest
        else (
          match Buildcache.save cache ~install_root:t.install_root r with
          | Ok () -> go (pushed + 1) rest
          | Error e -> Error e)
  in
  go 0 (Database.all t.db)
