module Vfs = Ospack_vfs.Vfs
module Concrete = Ospack_spec.Concrete
module Repository = Ospack_package.Repository
module Package = Ospack_package.Package
module Fsmodel = Ospack_buildsim.Fsmodel
module Builder = Ospack_buildsim.Builder
module Layout = Ospack_layout.Layout
module Policy = Ospack_config.Policy
module Config = Ospack_config.Config
module Binary = Ospack_buildsim.Binary
module Obs = Ospack_obs.Obs

module SSet = Set.Make (String)

type stats = {
  mutable st_built : int;
  mutable st_reused : int;
  mutable st_cache_hits : int;
  mutable st_cache_misses : int;
  mutable st_staging_failures : int;
  mutable st_externals : int;
}

type t = {
  vfs : Vfs.t;
  fs : Fsmodel.t;
  scheme : Layout.scheme;
  install_root : string;
  stage_root : string;
  use_wrappers : bool;
  config : Config.t;
  cache : Buildcache.t option;
  mirror : Ospack_buildsim.Mirror.t option;
  repo : Repository.t;
  compilers : Ospack_config.Compilers.t;
  db : Database.t;
  obs : Obs.t;
  st : stats;
  mutable total_seconds : float;
  mutable dirty_shards : SSet.t;
      (** shards holding records changed since the last successful
          [save_index] — the only ones a save rewrites *)
  mutable manifest_shards : SSet.t;
      (** the shard set as last written to the on-disk manifest *)
  mutable index_bytes : int;
      (** cumulative bytes of index persistence (shards + manifest) *)
}

type outcome = {
  o_record : Database.record;
  o_reused : bool;
  o_cached : bool;
  o_cache_miss : bool;
}

let create ?(fs = Fsmodel.tmpfs) ?(scheme = Layout.Spack_default)
    ?(install_root = "/ospack/opt") ?(stage_root = "/ospack/stage")
    ?(use_wrappers = true) ?(config = Config.empty) ?cache ?mirror
    ?(obs = Obs.disabled) ~vfs ~repo ~compilers () =
  {
    vfs;
    fs;
    scheme;
    install_root;
    stage_root;
    use_wrappers;
    config;
    cache;
    mirror;
    repo;
    compilers;
    db = Database.create ();
    obs;
    st =
      {
        st_built = 0;
        st_reused = 0;
        st_cache_hits = 0;
        st_cache_misses = 0;
        st_staging_failures = 0;
        st_externals = 0;
      };
    total_seconds = 0.0;
    dirty_shards = SSet.empty;
    manifest_shards = SSet.empty;
    index_bytes = 0;
  }

let stats t =
  (* snapshot, so callers cannot perturb the accounting *)
  {
    st_built = t.st.st_built;
    st_reused = t.st.st_reused;
    st_cache_hits = t.st.st_cache_hits;
    st_cache_misses = t.st.st_cache_misses;
    st_staging_failures = t.st.st_staging_failures;
    st_externals = t.st.st_externals;
  }

(* ------------------------------------------------------------------ *)
(* The sharded on-disk index.

   The database persists as hash-prefix shards under
   [.spack-db/index/<2-hex>.json] plus a tiny manifest listing the live
   shard set, every file written via write-then-rename. The installer
   tracks which shards hold changed records ([dirty_shards]), so a node
   attempt rewrites only its own shard — write cost proportional to the
   change, not the store. A crash between a node's first durable write
   and its index entry is covered by a pending marker
   ([.spack-db/pending/<hash>], written before the prefix is touched and
   removed after the shard is durable): recovery at [load_index] deletes
   any prefix whose marker survived without an index entry, restoring
   the invariant that the store on disk is always a prefix of the
   completed store with no unindexed orphans. *)

module Json = Ospack_json.Json

let ( let* ) = Result.bind

type store_error =
  | Store_io of { se_action : string; se_path : string; se_cause : Vfs.error }
  | Store_corrupt of { se_path : string; se_reason : string }

let store_error_to_string = function
  | Store_io { se_action; se_path; se_cause } ->
      Printf.sprintf "db index: %s %s: %s" se_action se_path
        (Vfs.error_to_string se_cause)
  | Store_corrupt { se_path; se_reason } ->
      Printf.sprintf "db index: %s: %s" se_path se_reason

let db_root t = t.install_root ^ "/.spack-db"
let index_path t = db_root t ^ "/index.json"
let index_dir t = db_root t ^ "/index"
let manifest_path t = index_dir t ^ "/manifest.json"
let shard_path t key = index_dir t ^ "/" ^ key ^ ".json"
let pending_dir t = db_root t ^ "/pending"
let pending_path t hash = pending_dir t ^ "/" ^ hash

let shard_format = 2
let shard_of_hash hash = String.sub hash 0 2

let mark_dirty t hash =
  t.dirty_shards <- SSet.add (shard_of_hash hash) t.dirty_shards

let add_record t record =
  Database.add t.db record;
  mark_dirty t record.Database.r_hash

let index_bytes_written t = t.index_bytes

(* the shard set a fully persisted store would have right now *)
let live_shards t =
  List.fold_left
    (fun s (r : Database.record) -> SSet.add (shard_of_hash r.r_hash) s)
    SSet.empty (Database.all t.db)

let write_atomic t ~path content =
  let tmp = path ^ ".tmp" in
  match Vfs.write_file t.vfs tmp content with
  | Error e -> Error (Store_io { se_action = "write"; se_path = tmp; se_cause = e })
  | Ok () -> (
      match Vfs.rename t.vfs ~src:tmp ~dst:path with
      | Error e ->
          Error (Store_io { se_action = "rename"; se_path = path; se_cause = e })
      | Ok () ->
          t.index_bytes <- t.index_bytes + String.length content;
          Ok ())

let shard_content t key =
  let records =
    List.filter
      (fun (r : Database.record) -> shard_of_hash r.r_hash = key)
      (Database.all t.db)
  in
  Json.to_string ~indent:2
    (Json.Obj
       [
         ("format", Json.Int shard_format);
         ("records", Json.List (List.map Database.record_to_json records));
       ])
  ^ "\n"

let manifest_content shards =
  Json.to_string ~indent:2
    (Json.Obj
       [
         ("format", Json.Int shard_format);
         ("shards",
          Json.List (List.map (fun k -> Json.String k) (SSet.elements shards)));
       ])
  ^ "\n"

let save_index t =
  let live = live_shards t in
  let rec persist = function
    | [] -> Ok ()
    | key :: rest ->
        let* () =
          if SSet.mem key live then
            write_atomic t ~path:(shard_path t key) (shard_content t key)
          else (
            (* the shard's last record was uninstalled: drop the file *)
            match Vfs.remove t.vfs (shard_path t key) with
            | Ok () | Error (Vfs.Not_found _) -> Ok ()
            | Error e ->
                Error
                  (Store_io
                     { se_action = "remove"; se_path = shard_path t key;
                       se_cause = e }))
        in
        t.dirty_shards <- SSet.remove key t.dirty_shards;
        persist rest
  in
  let* () = persist (SSet.elements t.dirty_shards) in
  if SSet.equal live t.manifest_shards then Ok ()
  else
    let* () = write_atomic t ~path:(manifest_path t) (manifest_content live) in
    t.manifest_shards <- live;
    Ok ()

let parse_shard ~path content =
  match Json.of_string content with
  | Error e -> Error (Store_corrupt { se_path = path; se_reason = e })
  | Ok j -> (
      match Json.member "records" j with
      | Some (Json.List items) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
                match Database.record_of_json item with
                | Ok r -> go (r :: acc) rest
                | Error e ->
                    Error (Store_corrupt { se_path = path; se_reason = e }))
          in
          go [] items
      | _ ->
          Error
            (Store_corrupt { se_path = path; se_reason = "missing records" }))

let is_shard_name name =
  String.length name = 7
  && Filename.check_suffix name ".json"
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       (String.sub name 0 2)

(* the shard key set worth reading: the manifest's list unioned with the
   directory listing, so a crash between a new shard's rename and the
   manifest update loses nothing (and a listed-but-missing shard —
   removed before the manifest caught up — is tolerated by the reader) *)
let stored_shards t =
  let listed =
    match Vfs.ls t.vfs (index_dir t) with
    | Error _ -> SSet.empty
    | Ok names ->
        List.fold_left
          (fun s n ->
            if is_shard_name n then SSet.add (String.sub n 0 2) s else s)
          SSet.empty names
  in
  match Vfs.read_file t.vfs (manifest_path t) with
  | Error _ -> Ok listed
  | Ok content -> (
      match Json.of_string content with
      | Error e ->
          Error
            (Store_corrupt { se_path = manifest_path t; se_reason = e })
      | Ok j -> (
          match Json.member "shards" j with
          | Some (Json.List items) ->
              Ok
                (List.fold_left
                   (fun s item ->
                     match Json.get_string item with
                     | Some k -> SSet.add k s
                     | None -> s)
                   listed items)
          | _ ->
              Error
                (Store_corrupt
                   { se_path = manifest_path t; se_reason = "missing shards" })))

(* remove any prefix whose pending marker survived a crash without an
   index entry — the partially materialized node of a killed install *)
let recover_pending t =
  match Vfs.ls t.vfs (pending_dir t) with
  | Error _ -> 0
  | Ok names ->
      List.fold_left
        (fun recovered hash ->
          let marker = pending_path t hash in
          let orphan =
            match Database.find_by_hash t.db hash with
            | Some _ -> false (* indexed: the marker is a stale leftover *)
            | None -> (
                match Vfs.read_file t.vfs marker with
                | Error _ -> false
                | Ok content ->
                    let prefix = String.trim content in
                    if prefix = "" then false
                    else (
                      (match Vfs.remove t.vfs ~recursive:true prefix with
                      | Ok () | Error _ -> ());
                      true))
          in
          (match Vfs.remove t.vfs marker with Ok () | Error _ -> ());
          if orphan then recovered + 1 else recovered)
        0 names

let load_index_typed t =
  let before = Database.count t.db in
  (* 1. merge every stored shard *)
  let* shards = stored_shards t in
  let* shard_records =
    SSet.fold
      (fun key acc ->
        let* acc = acc in
        let path = shard_path t key in
        match Vfs.read_file t.vfs path with
        | Error (Vfs.Not_found _) -> Ok acc
        | Error e ->
            Error (Store_io { se_action = "read"; se_path = path; se_cause = e })
        | Ok content ->
            let* records = parse_shard ~path content in
            Ok (acc @ records))
      shards (Ok [])
  in
  List.iter (Database.add t.db) shard_records;
  t.manifest_shards <- live_shards t;
  (* 2. transparently migrate a legacy single-file index: merge its
     records, rewrite them as shards, then retire the file (idempotent —
     a crash mid-migration just re-runs it on the next load) *)
  let* () =
    match Vfs.read_file t.vfs (index_path t) with
    | Error (Vfs.Not_found _) -> Ok ()
    | Error e ->
        Error
          (Store_io
             { se_action = "read"; se_path = index_path t; se_cause = e })
    | Ok content -> (
        match Json.of_string content with
        | Error e ->
            Error (Store_corrupt { se_path = index_path t; se_reason = e })
        | Ok j -> (
            match Database.of_json j with
            | Error e ->
                Error (Store_corrupt { se_path = index_path t; se_reason = e })
            | Ok legacy ->
                let records = Database.all legacy in
                List.iter (add_record t) records;
                let* () = save_index t in
                match Vfs.remove t.vfs (index_path t) with
                | Ok () | Error (Vfs.Not_found _) -> Ok ()
                | Error e ->
                    Error
                      (Store_io
                         { se_action = "remove"; se_path = index_path t;
                           se_cause = e })))
  in
  (* 3. crash recovery: clear orphaned pending prefixes *)
  let recovered = recover_pending t in
  if recovered > 0 then Obs.count t.obs "db.recovered_orphans" recovered;
  (* 4. heal the index scaffolding: a crash between a tmp write and its
     rename strands the .tmp, and a crash between a shard rename and the
     manifest update leaves the manifest stale. Readers tolerate both
     (stored_shards unions the listing), but healing here makes a
     recovered store byte-identical to one that never crashed. *)
  let* () =
    match Vfs.ls t.vfs (index_dir t) with
    | Error _ -> Ok ()
    | Ok names ->
        List.fold_left
          (fun acc n ->
            let* () = acc in
            if not (Filename.check_suffix n ".tmp") then Ok ()
            else
              let path = index_dir t ^ "/" ^ n in
              match Vfs.remove t.vfs path with
              | Ok () | Error (Vfs.Not_found _) -> Ok ()
              | Error e ->
                  Error
                    (Store_io
                       { se_action = "remove"; se_path = path; se_cause = e }))
          (Ok ()) names
  in
  let live = live_shards t in
  let* () =
    let desired = manifest_content live in
    let stale =
      match Vfs.read_file t.vfs (manifest_path t) with
      | Ok on_disk -> on_disk <> desired
      | Error _ -> not (SSet.is_empty live)
    in
    if stale then write_atomic t ~path:(manifest_path t) desired else Ok ()
  in
  t.manifest_shards <- live;
  Ok (Database.count t.db - before)

let load_index t =
  Result.map_error store_error_to_string (load_index_typed t)

let database t = t.db
let vfs t = t.vfs
let install_root t = t.install_root

let prefix_of t spec name =
  Layout.node_path t.scheme ~root:t.install_root spec name

(* Typed per-node errors: the builder's own error type for build
   failures, a rendered message for everything else (cache extraction,
   missing package definitions, vendor-prefix and provenance writes).
   The parallel scheduler aggregates these into a multi-failure report;
   the serial path renders them to the historical strings. *)
type node_error =
  | Build_failure of Builder.error
  | Install_failure of string

let node_error_to_string = function
  | Build_failure e -> Builder.error_to_string e
  | Install_failure msg -> msg

(* Populate a vendor prefix with minimal self-contained artifacts so that
   dependents' RPATH resolution works against it. Idempotent. *)
let ensure_external_artifacts t name prefix =
  let lib = Builder.installed_library ~prefix ~package:name in
  if Vfs.is_file t.vfs lib then Ok ()
  else
    let write path content =
      Result.map_error
        (fun e ->
          Install_failure
            (Printf.sprintf "external prefix %s: %s" name
               (Vfs.error_to_string e)))
        (Vfs.write_file t.vfs path content)
    in
    let* () =
      write lib
        (Binary.serialize
           (Binary.make ~kind:Binary.Lib
              ~soname:(Binary.soname_for_package name)
              ~needed:[] ~rpaths:[]))
    in
    let* () =
      write
        (Builder.installed_executable ~prefix ~package:name)
        (Binary.serialize
           (Binary.make ~kind:Binary.Exe ~soname:name
              ~needed:[ Binary.soname_for_package name ]
              ~rpaths:[ prefix ^ "/lib" ]))
    in
    write (prefix ^ "/include/" ^ name ^ ".h") ("/* vendor " ^ name ^ " */")

let external_record t sub name ~explicit =
  match Policy.external_for t.config ~package:name with
  | Some (ext_spec, prefix) when Concrete.satisfies sub ext_spec ->
      let* () = ensure_external_artifacts t name prefix in
      Ok
        (Some
           {
             Database.r_spec = sub;
             r_hash = Concrete.root_hash sub;
             r_prefix = prefix;
             r_explicit = explicit;
             r_external = true;
             r_build_seconds = 0.0;
           })
  | _ -> Ok None

(* The pending-marker intent log: written (one atomic file) before a
   node's prefix is touched, removed only after the node's shard is
   durable. The marker body is the prefix path, so recovery can delete a
   partially materialized prefix without recomputing the layout. *)
let write_pending t ~hash ~prefix =
  Result.map_error
    (fun e ->
      Install_failure
        (Printf.sprintf "pending marker %s: %s" hash (Vfs.error_to_string e)))
    (Vfs.write_file t.vfs (pending_path t hash) (prefix ^ "\n"))

let clear_pending t ~hash =
  match Vfs.remove t.vfs (pending_path t hash) with
  | Ok () | Error _ -> ()

(* a failed attempt never leaves its partial prefix behind (under a
   crash plan these removals fail too — recovery handles it on reload) *)
let discard_partial t ~hash ~prefix =
  (match Vfs.remove t.vfs ~recursive:true prefix with
  | Ok () | Error _ -> ());
  clear_pending t ~hash

let install_node t spec name ~explicit =
  let sub = Concrete.subspec spec name in
  let hash = Concrete.root_hash sub in
  Obs.span t.obs ~cat:"install"
    ~args:[ ("node", name); ("hash", hash) ]
    ("install " ^ name)
  @@ fun () ->
  match Database.find_by_hash t.db hash with
  | Some record ->
      t.st.st_reused <- t.st.st_reused + 1;
      Obs.count t.obs "install.reused" 1;
      if explicit && not record.Database.r_explicit then
        add_record t { record with Database.r_explicit = true };
      Ok
        {
          o_record =
            { record with
              Database.r_explicit = explicit || record.Database.r_explicit };
          o_reused = true;
          o_cached = false;
          o_cache_miss = false;
        }
  | None ->
  match external_record t sub name ~explicit with
  | Error e -> Error e
  | Ok (Some record) ->
      t.st.st_externals <- t.st.st_externals + 1;
      Obs.count t.obs "install.externals" 1;
      add_record t record;
      Ok
        {
          o_record = record;
          o_reused = false;
          o_cached = false;
          o_cache_miss = false;
        }
  | Ok None ->
  (* binary cache: extract instead of building, relocating prefixes *)
  match t.cache with
  | Some cache when Buildcache.has cache ~hash -> (
      t.st.st_cache_hits <- t.st.st_cache_hits + 1;
      Obs.count t.obs "buildcache.hits" 1;
      let prefix = prefix_of t spec name in
      let* () = write_pending t ~hash ~prefix in
      match
        Buildcache.extract cache ~hash ~install_root:t.install_root ~prefix
      with
      | Error e ->
          discard_partial t ~hash ~prefix;
          Error
            (Install_failure
               (Printf.sprintf "buildcache %s: %s" name
                  (Buildcache.error_to_string e)))
      | Ok _stored_spec -> (
          (* relocation rewrote file contents, so re-manifest the prefix *)
          match Provenance.write_manifest t.vfs ~prefix with
          | Error e ->
              discard_partial t ~hash ~prefix;
              Error
                (Install_failure
                   (Printf.sprintf "provenance %s: %s" name
                      (Vfs.error_to_string e)))
          | Ok () ->
              let record =
                {
                  Database.r_spec = sub;
                  r_hash = hash;
                  r_prefix = prefix;
                  r_explicit = explicit;
                  r_external = false;
                  r_build_seconds = 0.0;
                }
              in
              add_record t record;
              Ok
                {
                  o_record = record;
                  o_reused = false;
                  o_cached = true;
                  o_cache_miss = false;
                }))
  | _ ->
      (* a configured cache that lacks this hash is a miss we account *)
      let cache_miss = Option.is_some t.cache in
      if cache_miss then begin
        t.st.st_cache_misses <- t.st.st_cache_misses + 1;
        Obs.count t.obs "buildcache.misses" 1
      end;
      let* pkg =
        match Repository.find t.repo name with
        | Some p -> Ok p
        | None ->
            Error
              (Install_failure
                 (Printf.sprintf "no package definition for %s" name))
      in
      let prefix = prefix_of t spec name in
      let dep_prefix dep =
        let dep_hash = Concrete.dag_hash sub dep in
        Option.map
          (fun r -> r.Database.r_prefix)
          (Database.find_by_hash t.db dep_hash)
      in
      let* () = write_pending t ~hash ~prefix in
      let* result =
        Result.map_error
          (fun e ->
            (match e with
            | Builder.Staging _ ->
                t.st.st_staging_failures <- t.st.st_staging_failures + 1;
                Obs.count t.obs "install.staging_failures" 1
            | Builder.Missing_dep _ | Builder.Step_failed _ -> ());
            discard_partial t ~hash ~prefix;
            Build_failure e)
          (Builder.build ~obs:t.obs ~vfs:t.vfs ~fs:t.fs
             ~compilers:t.compilers ~use_wrappers:t.use_wrappers
             ~mirror:t.mirror ~stage_root:t.stage_root ~spec:sub ~node:name
             ~pkg ~prefix ~dep_prefix ())
      in
      let* () =
        Result.map_error
          (fun e ->
            discard_partial t ~hash ~prefix;
            Install_failure
              (Printf.sprintf "provenance %s: %s" name (Vfs.error_to_string e)))
          (let* () =
             Provenance.write t.vfs ~prefix ~spec:sub
               ~package_source:pkg.Package.p_source ~log:result.Builder.br_log
           in
           Provenance.write_manifest t.vfs ~prefix)
      in
      let record =
        {
          Database.r_spec = sub;
          r_hash = hash;
          r_prefix = prefix;
          r_explicit = explicit;
          r_external = false;
          r_build_seconds = result.Builder.br_time;
        }
      in
      add_record t record;
      t.st.st_built <- t.st.st_built + 1;
      Obs.count t.obs "install.built" 1;
      Obs.observe t.obs "build.node_seconds" result.Builder.br_time;
      t.total_seconds <- t.total_seconds +. result.Builder.br_time;
      Ok
        {
          o_record = record;
          o_reused = false;
          o_cached = false;
          o_cache_miss = cache_miss;
        }

let install t ?(explicit = true) spec =
  let order = Concrete.topological_order spec in
  let root = Concrete.root spec in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
        let hash = Concrete.dag_hash spec name in
        match install_node t spec name ~explicit:(explicit && name = root) with
        | Error e ->
            (* crash consistency: the nodes that completed before the
               failure must stay visible to a fresh process, or their
               prefixes become unindexed orphans (the node error stays
               the primary report if this persist fails too) *)
            (match save_index t with Ok () -> () | Error _ -> ());
            Error (node_error_to_string e)
        | Ok outcome -> (
            match save_index t with
            | Error se -> Error (store_error_to_string se)
            | Ok () ->
                (* the node is durably indexed: retire its intent marker *)
                clear_pending t ~hash;
                go (outcome :: acc) rest))
  in
  go [] order

(* ------------------------------------------------------------------ *)
(* Deterministic parallel installation: a virtual-time worker-pool
   simulation. [jobs] simulated workers pull ready DAG nodes (all
   dependencies done) off a priority queue ordered by first-occurrence
   topological index, so the schedule — and therefore the trace — is a
   pure function of the input DAGs and [jobs]. Builds still execute
   sequentially in this process (the build simulator charges virtual
   seconds, not wall time); the scheduler overlaps those virtual
   durations across workers to compute the makespan a real [-j N]
   install would achieve. A failed node poisons only its transitive
   dependents; independent subtrees keep building, and every completed
   node is persisted to the on-disk index immediately. *)

type failure =
  | Failed of { f_node : string; f_hash : string; f_error : node_error }
  | Poisoned of {
      p_node : string;
      p_hash : string;
      p_failed_deps : string list;
    }

type slot = {
  sl_node : string;
  sl_hash : string;
  sl_worker : int;
  sl_start : float;
  sl_finish : float;
}

type parallel_report = {
  pr_jobs : int;
  pr_outcomes : outcome list;
  pr_failures : failure list;
  pr_schedule : slot list;
  pr_makespan : float;
  pr_serial_seconds : float;
}

let failure_to_string = function
  | Failed { f_node; f_error; _ } ->
      Printf.sprintf "%s: %s" f_node (node_error_to_string f_error)
  | Poisoned { p_node; p_failed_deps; _ } ->
      Printf.sprintf "%s: not built (failed dependencies: %s)" p_node
        (String.concat ", " p_failed_deps)

let failures_to_string = function
  | [] -> "no failures"
  | fs ->
      let failed =
        List.length
          (List.filter (function Failed _ -> true | Poisoned _ -> false) fs)
      in
      let poisoned = List.length fs - failed in
      let header =
        if poisoned = 0 then Printf.sprintf "%d node(s) failed" failed
        else
          Printf.sprintf
            "%d node(s) failed (%d more not built because a dependency failed)"
            failed poisoned
      in
      header ^ ":\n"
      ^ String.concat "\n" (List.map (fun f -> "  " ^ failure_to_string f) fs)

let parallel_speedup r =
  if r.pr_makespan > 0.0 then r.pr_serial_seconds /. r.pr_makespan else 1.0

let parallel_summary_to_string r =
  Printf.sprintf "makespan %.1f s vs %.1f s serialized (%.2fx at -j%d)"
    r.pr_makespan r.pr_serial_seconds (parallel_speedup r) r.pr_jobs

let profile_input ~specs (r : parallel_report) =
  let module P = Ospack_obs.Profile in
  (* node costs come from the recorded schedule: a node absent from it
     (reused, external, or never dispatched) charged nothing *)
  let slot_cost = Hashtbl.create 64 in
  List.iter
    (fun s -> Hashtbl.replace slot_cost s.sl_hash (s.sl_finish -. s.sl_start))
    r.pr_schedule;
  (* merge the spec DAGs by sub-DAG hash in first-occurrence order,
     exactly as install_parallel builds its node table *)
  let seen = Hashtbl.create 64 in
  let rev_nodes = ref [] in
  List.iter
    (fun spec ->
      List.iter
        (fun name ->
          let hash = Concrete.dag_hash spec name in
          if not (Hashtbl.mem seen hash) then begin
            Hashtbl.add seen hash ();
            let deps =
              List.map
                (fun dep -> Concrete.dag_hash spec dep)
                (Concrete.node_exn spec name).Concrete.deps
            in
            let cost =
              match Hashtbl.find_opt slot_cost hash with
              | Some c -> c
              | None -> 0.0
            in
            rev_nodes :=
              { P.nd_id = hash; nd_label = name; nd_cost = cost; nd_deps = deps }
              :: !rev_nodes
          end)
        (Concrete.topological_order spec))
    specs;
  {
    P.in_jobs = r.pr_jobs;
    in_nodes = List.rev !rev_nodes;
    in_slots =
      List.map
        (fun s ->
          {
            P.st_id = s.sl_hash;
            st_worker = s.sl_worker;
            st_start = s.sl_start;
            st_finish = s.sl_finish;
          })
        r.pr_schedule;
  }

(* one merged scheduling node; specs sharing a sub-DAG hash share it *)
type pnode = {
  pn_name : string;
  pn_hash : string;
  pn_spec : Concrete.t;  (** the spec this node is installed from *)
  mutable pn_explicit : bool;
  pn_deps : int list;  (** indices into the node table *)
}

module ISet = Set.Make (Int)

let install_parallel t ?(explicit = true) ~jobs specs =
  if jobs < 1 then
    Error (Printf.sprintf "install: jobs must be >= 1 (got %d)" jobs)
  else begin
    (* merge the spec DAGs into one table keyed by sub-DAG hash; the
       first occurrence fixes the node's deterministic dispatch priority *)
    let index_of = Hashtbl.create 64 in
    let rev_infos = ref [] in
    let n_nodes = ref 0 in
    List.iter
      (fun spec ->
        let root = Concrete.root spec in
        List.iter
          (fun name ->
            let hash = Concrete.dag_hash spec name in
            let is_explicit = explicit && name = root in
            match Hashtbl.find_opt index_of hash with
            | Some idx ->
                if is_explicit then begin
                  let nd = List.nth !rev_infos (!n_nodes - 1 - idx) in
                  nd.pn_explicit <- true
                end
            | None ->
                let deps =
                  List.map
                    (fun dep ->
                      Hashtbl.find index_of (Concrete.dag_hash spec dep))
                    (Concrete.node_exn spec name).Concrete.deps
                in
                Hashtbl.add index_of hash !n_nodes;
                rev_infos :=
                  {
                    pn_name = name;
                    pn_hash = hash;
                    pn_spec = spec;
                    pn_explicit = is_explicit;
                    pn_deps = deps;
                  }
                  :: !rev_infos;
                incr n_nodes)
          (Concrete.topological_order spec))
      specs;
    let nodes = Array.of_list (List.rev !rev_infos) in
    let n = Array.length nodes in
    let dependents = Array.make (max n 1) [] in
    Array.iteri
      (fun i nd ->
        List.iter (fun d -> dependents.(d) <- i :: dependents.(d)) nd.pn_deps)
      nodes;
    Array.iteri (fun i l -> dependents.(i) <- List.rev l) dependents;
    Obs.span t.obs ~cat:"sched"
      ~args:
        [ ("jobs", string_of_int jobs); ("nodes", string_of_int n) ]
      "schedule"
    @@ fun () ->
    let pending = Array.map (fun nd -> List.length nd.pn_deps) nodes in
    (* W(aiting) R(eady) B(uilding) D(one) F(ailed) P(oisoned) *)
    let state = Array.make (max n 1) 'W' in
    let poison_cause = Array.make (max n 1) [] in
    let node_outcome = Array.make (max n 1) None in
    let ready = ref ISet.empty in
    Array.iteri
      (fun i p ->
        if p = 0 then begin
          state.(i) <- 'R';
          ready := ISet.add i !ready
        end)
      pending;
    let worker_free = Array.make jobs 0.0 in
    let persist_error = ref None in
    let running = ref [] (* (finish, idx, worker), ascending *) in
    let now = ref 0.0 in
    let rev_outcomes = ref [] in
    let rev_slots = ref [] in
    let rev_failed = ref [] in
    let serial = ref 0.0 in
    let makespan = ref 0.0 in
    let poison idx =
      (* BFS over dependents: everything downstream of a failed node is
         skipped, charged to this failure *)
      let failed_name = nodes.(idx).pn_name in
      let rec go = function
        | [] -> ()
        | i :: rest ->
            let next =
              List.filter
                (fun d ->
                  match state.(d) with
                  | 'W' | 'P' ->
                      if not (List.mem failed_name poison_cause.(d)) then begin
                        state.(d) <- 'P';
                        poison_cause.(d) <-
                          failed_name :: poison_cause.(d);
                        true
                      end
                      else false
                  | _ -> false)
                dependents.(i)
            in
            go (rest @ next)
      in
      go [ idx ]
    in
    let pick_worker busy =
      let best = ref (-1) in
      for i = 0 to jobs - 1 do
        if not (ISet.mem i busy) then
          match !best with
          | -1 -> best := i
          | b -> if worker_free.(i) < worker_free.(b) then best := i
      done;
      !best
    in
    let dispatch () =
      let idx = ISet.min_elt !ready in
      ready := ISet.remove idx !ready;
      let nd = nodes.(idx) in
      let busy =
        List.fold_left (fun s (_, _, w) -> ISet.add w s) ISet.empty !running
      in
      let w = pick_worker busy in
      let start = !now in
      Obs.observe t.obs "sched.idle_seconds" (start -. worker_free.(w));
      Obs.observe t.obs "sched.ready_queue"
        (float_of_int (ISet.cardinal !ready + 1));
      Obs.count t.obs "sched.dispatches" 1;
      let result =
        Obs.span t.obs ~cat:"sched"
          ~args:
            [
              ("node", nd.pn_name);
              ("vstart", Printf.sprintf "%.6f" start);
            ]
          (Printf.sprintf "worker %d" w)
        @@ fun () -> install_node t nd.pn_spec nd.pn_name ~explicit:nd.pn_explicit
      in
      (* crash consistency: persist after every node, success or not; a
         failing persist is catastrophic — the scheduler stops, like the
         process it simulates *)
      (match save_index t with
      | Ok () -> clear_pending t ~hash:nd.pn_hash
      | Error se -> if !persist_error = None then persist_error := Some se);
      match result with
      | Ok o ->
          (* a reused record carries its historical build time; replaying
             it costs nothing on this install's clock *)
          let dur =
            if o.o_reused then 0.0 else o.o_record.Database.r_build_seconds
          in
          serial := !serial +. dur;
          let finish = start +. dur in
          state.(idx) <- 'B';
          node_outcome.(idx) <- Some o;
          worker_free.(w) <- finish;
          rev_slots :=
            {
              sl_node = nd.pn_name;
              sl_hash = nd.pn_hash;
              sl_worker = w;
              sl_start = start;
              sl_finish = finish;
            }
            :: !rev_slots;
          let entry = (finish, idx, w) in
          running :=
            List.merge
              (fun (f1, i1, _) (f2, i2, _) -> compare (f1, i1) (f2, i2))
              [ entry ] !running
      | Error e ->
          state.(idx) <- 'F';
          worker_free.(w) <- start;
          makespan := max !makespan start;
          Obs.count t.obs "sched.failures" 1;
          rev_failed :=
            Failed { f_node = nd.pn_name; f_hash = nd.pn_hash; f_error = e }
            :: !rev_failed;
          poison idx
    in
    let complete () =
      match !running with
      | [] -> assert false
      | (finish, idx, w) :: rest ->
          running := rest;
          now := finish;
          worker_free.(w) <- finish;
          makespan := max !makespan finish;
          state.(idx) <- 'D';
          (match node_outcome.(idx) with
          | Some o -> rev_outcomes := o :: !rev_outcomes
          | None -> assert false);
          List.iter
            (fun d ->
              if state.(d) = 'W' then begin
                pending.(d) <- pending.(d) - 1;
                if pending.(d) = 0 then begin
                  state.(d) <- 'R';
                  ready := ISet.add d !ready
                end
              end)
            dependents.(idx)
    in
    let rec loop () =
      if !persist_error <> None then ()
      else if (not (ISet.is_empty !ready)) && List.length !running < jobs
      then begin
        dispatch ();
        loop ()
      end
      else if !running <> [] then begin
        complete ();
        loop ()
      end
    in
    loop ();
    match !persist_error with
    | Some se -> Error (store_error_to_string se)
    | None ->
    let poisoned = ref [] in
    for i = n - 1 downto 0 do
      if state.(i) = 'P' then
        poisoned :=
          Poisoned
            {
              p_node = nodes.(i).pn_name;
              p_hash = nodes.(i).pn_hash;
              p_failed_deps = List.sort String.compare poison_cause.(i);
            }
          :: !poisoned
    done;
    Ok
      {
        pr_jobs = jobs;
        pr_outcomes = List.rev !rev_outcomes;
        pr_failures = List.rev !rev_failed @ !poisoned;
        pr_schedule = List.rev !rev_slots;
        pr_makespan = !makespan;
        pr_serial_seconds = !serial;
      }
  end

type summary = {
  s_built : int;
  s_reused : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_externals : int;
}

let summary_of_outcomes outcomes =
  List.fold_left
    (fun s o ->
      let s =
        if o.o_reused then { s with s_reused = s.s_reused + 1 }
        else if o.o_cached then { s with s_cache_hits = s.s_cache_hits + 1 }
        else if o.o_record.Database.r_external then
          { s with s_externals = s.s_externals + 1 }
        else { s with s_built = s.s_built + 1 }
      in
      if o.o_cache_miss then { s with s_cache_misses = s.s_cache_misses + 1 }
      else s)
    {
      s_built = 0;
      s_reused = 0;
      s_cache_hits = 0;
      s_cache_misses = 0;
      s_externals = 0;
    }
    outcomes

let summary_to_string s =
  let optional n what = if n = 0 then "" else Printf.sprintf ", %d %s" n what in
  Printf.sprintf "%d built, %d reused%s%s%s" s.s_built s.s_reused
    (optional s.s_cache_hits "from cache")
    (optional s.s_cache_misses "cache misses")
    (optional s.s_externals "external")

let uninstall t ~hash =
  let* record = Database.remove t.db hash in
  mark_dirty t hash;
  (* vendor prefixes are not ours to delete *)
  let* () =
    if record.Database.r_external then Ok ()
    else
      match Vfs.remove t.vfs ~recursive:true record.Database.r_prefix with
      | Ok () | Error (Vfs.Not_found _) -> Ok ()
      | Error e -> Error ("uninstall: " ^ Vfs.error_to_string e)
  in
  let* () = Result.map_error store_error_to_string (save_index t) in
  Ok record

let total_build_seconds t = t.total_seconds

let push_to_cache t cache =
  let rec go pushed = function
    | [] -> Ok pushed
    | (r : Database.record) :: rest ->
        if r.Database.r_external then go pushed rest
        else (
          match Buildcache.save cache ~install_root:t.install_root r with
          | Ok () -> go (pushed + 1) rest
          | Error e -> Error (Buildcache.error_to_string e))
  in
  go 0 (Database.all t.db)

(* ------------------------------------------------------------------ *)
(* Splicing (spack splice): substitute one dependency's installed
   prefix into a cached binary without rebuilding.

   The spliced DAG comes from {!Buildcache.splice_spec} (the replacement
   sub-DAG overrides the original's same-named nodes, every node above it
   recomputes its hash). The cached entry then re-extracts into the new
   root prefix with its RPATHs rewired: the replaced subtree's prefixes
   swap to the replacement's installed prefixes, everything else keeps
   pointing at the (still installed) original chain. Intermediate nodes
   whose hash changed only because a transitive dependency did are not
   rebuilt — they register alias records mapping the new hash onto the
   old prefix, so the spliced DAG stays fully resolvable in the database.
   The whole operation is bracketed by a pending marker and accepted only
   when {!Ospack_buildsim.Loader.verify_prefix} proves every simulated
   ELF object in the new prefix resolves with an empty environment — the
   paper's §3.5 relocation invariant doing new work. *)

type splice_result = {
  sp_record : Database.record;  (** the newly registered spliced install *)
  sp_old_hash : string;
  sp_new_hash : string;
  sp_replaced : string;  (** the dependency package that was swapped *)
  sp_rewired : int;  (** binaries whose RPATHs were rewritten *)
  sp_resolved : int;  (** binaries the loader re-verified, empty env *)
}

let splice t ~hash ~replacement =
  let module Loader = Ospack_buildsim.Loader in
  let module Env = Ospack_buildsim.Env in
  Obs.span t.obs ~cat:"splice" ~args:[ ("hash", hash) ] "splice"
  @@ fun () ->
  match t.cache with
  | None -> Error "splice: no build cache configured"
  | Some cache ->
      let* orig =
        Result.map_error Buildcache.error_to_string
          (Buildcache.entry_spec cache ~hash)
      in
      let* spliced, replaced = Buildcache.splice_spec ~orig ~replacement in
      let root_name = Concrete.root orig in
      let new_hash = Concrete.root_hash spliced in
      let* () =
        if Database.find_by_hash t.db new_hash <> None then
          Error
            (Printf.sprintf "splice: %s/%s is already installed" root_name
               new_hash)
        else Ok ()
      in
      let old_prefix name =
        match Database.find_by_hash t.db (Concrete.dag_hash orig name) with
        | Some r -> r.Database.r_prefix
        | None -> prefix_of t orig name
      in
      let in_orig name = Concrete.node orig name <> None in
      let in_replacement name = Concrete.node replacement name <> None in
      let hash_changed name =
        (not (in_orig name))
        || Concrete.dag_hash orig name <> Concrete.dag_hash spliced name
      in
      (* prefix rewiring pairs: every replaced-subtree node whose hash
         changed must already be installed — splicing substitutes
         prefixes, it never builds *)
      let* dep_pairs =
        List.fold_left
          (fun acc n ->
            let* acc = acc in
            let name = n.Concrete.name in
            if not (in_replacement name && hash_changed name) then Ok acc
            else
              let new_h = Concrete.dag_hash spliced name in
              match Database.find_by_hash t.db new_h with
              | None ->
                  Error
                    (Printf.sprintf
                       "splice: replacement dependency %s/%s is not \
                        installed (install it first)"
                       name new_h)
              | Some r ->
                  if in_orig name then
                    Ok ((old_prefix name, r.Database.r_prefix) :: acc)
                  else Ok acc)
          (Ok []) (Concrete.nodes spliced)
      in
      let new_prefix = prefix_of t spliced root_name in
      let prefix_map = (old_prefix root_name, new_prefix) :: dep_pairs in
      let* () =
        Result.map_error node_error_to_string
          (write_pending t ~hash:new_hash ~prefix:new_prefix)
      in
      let fail_with e =
        discard_partial t ~hash:new_hash ~prefix:new_prefix;
        Error e
      in
      match
        Buildcache.splice cache ~hash ~install_root:t.install_root
          ~prefix:new_prefix ~prefix_map
      with
      | Error e -> fail_with (Buildcache.error_to_string e)
      | Ok rewired -> (
          (* relocation rewrote file contents, so re-manifest the prefix *)
          match Provenance.write_manifest t.vfs ~prefix:new_prefix with
          | Error e ->
              fail_with
                (Printf.sprintf "provenance %s: %s" root_name
                   (Vfs.error_to_string e))
          | Ok () -> (
              (* acceptance gate before anything is registered: the new
                 prefix must fully resolve with no environment help *)
              match
                Loader.verify_prefix ~obs:t.obs t.vfs ~prefix:new_prefix
                  ~env:Env.empty
              with
              | Error (path, f) ->
                  fail_with
                    (Printf.sprintf "splice: %s: %s" path
                       (Loader.failure_to_string f))
              | Ok resolved ->
                  (* alias records: intermediate nodes rehashed only
                     because a transitive dependency changed keep their
                     existing prefixes under the new hash *)
                  List.iter
                    (fun n ->
                      let name = n.Concrete.name in
                      if
                        name <> root_name
                        && (not (in_replacement name))
                        && in_orig name && hash_changed name
                        && Database.find_by_hash t.db
                             (Concrete.dag_hash spliced name)
                           = None
                      then
                        let external_ =
                          match
                            Database.find_by_hash t.db
                              (Concrete.dag_hash orig name)
                          with
                          | Some r -> r.Database.r_external
                          | None -> false
                        in
                        add_record t
                          {
                            Database.r_spec = Concrete.subspec spliced name;
                            r_hash = Concrete.dag_hash spliced name;
                            r_prefix = old_prefix name;
                            r_explicit = false;
                            r_external = external_;
                            r_build_seconds = 0.0;
                          })
                    (Concrete.nodes spliced);
                  let record =
                    {
                      Database.r_spec = spliced;
                      r_hash = new_hash;
                      r_prefix = new_prefix;
                      r_explicit = true;
                      r_external = false;
                      r_build_seconds = 0.0;
                    }
                  in
                  add_record t record;
                  let* () =
                    Result.map_error store_error_to_string (save_index t)
                  in
                  clear_pending t ~hash:new_hash;
                  Obs.count t.obs "splice.count" 1;
                  Obs.count t.obs "splice.rewired" rewired;
                  Ok
                    {
                      sp_record = record;
                      sp_old_hash = hash;
                      sp_new_hash = new_hash;
                      sp_replaced = replaced;
                      sp_rewired = rewired;
                      sp_resolved = resolved;
                    }))
