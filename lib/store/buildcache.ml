module Vfs = Ospack_vfs.Vfs
module Concrete = Ospack_spec.Concrete
module Json = Ospack_json.Json

type t = { vfs : Vfs.t; root : string }

let create vfs ~root = { vfs; root }

let entry_path t hash = Printf.sprintf "%s/%s.json" t.root hash

let has t ~hash = Vfs.is_file t.vfs (entry_path t hash)

let cached_hashes t =
  match Vfs.ls t.vfs t.root with
  | Error _ -> []
  | Ok entries ->
      List.filter_map
        (fun e ->
          if Filename.check_suffix e ".json" then
            Some (Filename.chop_suffix e ".json")
          else None)
        entries
      |> List.sort String.compare

let ( let* ) = Result.bind

let save t ~install_root (record : Database.record) =
  if has t ~hash:record.Database.r_hash then Ok ()
  else
    let prefix = record.Database.r_prefix in
    if not (Vfs.is_dir t.vfs prefix) then
      Error
        (Printf.sprintf "buildcache: prefix %s of %s is not a directory" prefix
           record.Database.r_hash)
    else
      (* every walk entry must archive; a file we cannot read is an error,
         not a silent omission — a truncated entry would later extract
         "successfully" into a broken prefix. Directories are archived too
         so empty ones survive the round trip. *)
      let* rev_files =
        List.fold_left
          (fun acc (path, kind) ->
            let* acc = acc in
            let plen = String.length prefix + 1 in
            let rel = String.sub path plen (String.length path - plen) in
            let entry kind content =
              Json.Obj
                [
                  ("rel", Json.String rel);
                  ("kind", Json.String kind);
                  ("content", Json.String content);
                ]
            in
            match kind with
            | Vfs.Dir -> Ok (entry "dir" "" :: acc)
            | Vfs.File -> (
                match Vfs.read_file t.vfs path with
                | Ok content -> Ok (entry "file" content :: acc)
                | Error e ->
                    Error
                      (Printf.sprintf "buildcache: %s: %s" path
                         (Vfs.error_to_string e)))
            | Vfs.Symlink -> (
                match Vfs.readlink t.vfs path with
                | Ok target -> Ok (entry "link" target :: acc)
                | Error e ->
                    Error
                      (Printf.sprintf "buildcache: %s: %s" path
                         (Vfs.error_to_string e))))
          (Ok []) (Vfs.walk t.vfs prefix)
      in
      let files = List.rev rev_files in
      if files = [] then
        Error
          (Printf.sprintf "buildcache: refusing to archive empty prefix %s"
             prefix)
      else
        let entry =
          Json.Obj
            [
              ("format", Json.Int 1);
              ("install_root", Json.String install_root);
              ("prefix", Json.String prefix);
              ("spec", Concrete.to_json record.Database.r_spec);
              ("file_count", Json.Int (List.length files));
              ("files", Json.List files);
            ]
        in
        Result.map_error Vfs.error_to_string
          (Vfs.write_file t.vfs
             (entry_path t record.Database.r_hash)
             (Json.to_string entry))

(* textual relocation: every embedded occurrence of the cached install
   root becomes the target root *)
let relocate ~from_root ~to_root text =
  if from_root = to_root then text
  else begin
    let buf = Buffer.create (String.length text) in
    let flen = String.length from_root in
    let n = String.length text in
    let rec go i =
      if i >= n then ()
      else if
        i + flen <= n && String.sub text i flen = from_root
      then begin
        Buffer.add_string buf to_root;
        go (i + flen)
      end
      else begin
        Buffer.add_char buf text.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  end

let extract t ~hash ~install_root ~prefix =
  let* content =
    Result.map_error Vfs.error_to_string
      (Vfs.read_file t.vfs (entry_path t hash))
  in
  let* entry = Json.of_string content in
  let* from_root =
    match Option.bind (Json.member "install_root" entry) Json.get_string with
    | Some r -> Ok r
    | None -> Error "buildcache: entry missing install_root"
  in
  let* spec =
    match Json.member "spec" entry with
    | Some sj -> Concrete.of_json sj
    | None -> Error "buildcache: entry missing spec"
  in
  let* files =
    match Option.bind (Json.member "files" entry) Json.to_list with
    | Some items -> Ok items
    | None -> Error "buildcache: entry missing files"
  in
  (* completeness guard: an entry whose file list does not match its
     recorded count is truncated (partial write, hand-editing) and must
     not extract into a plausible-looking but incomplete prefix *)
  let* () =
    match Option.bind (Json.member "file_count" entry) Json.get_int with
    | None -> Ok () (* legacy entry predating the count *)
    | Some expected when expected = List.length files -> Ok ()
    | Some expected ->
        Error
          (Printf.sprintf
             "buildcache: truncated entry %s: %d files listed, %d expected"
             hash (List.length files) expected)
  in
  let reloc = relocate ~from_root ~to_root:install_root in
  List.fold_left
    (fun acc item ->
      let* () = acc in
      let get key =
        match Option.bind (Json.member key item) Json.get_string with
        | Some v -> Ok v
        | None -> Error "buildcache: malformed file entry"
      in
      let* rel = get "rel" in
      let* kind = get "kind" in
      let* content = get "content" in
      let dest = prefix ^ "/" ^ rel in
      match kind with
      | "dir" -> Result.map_error Vfs.error_to_string (Vfs.mkdir_p t.vfs dest)
      | "file" ->
          Result.map_error Vfs.error_to_string
            (Vfs.write_file t.vfs dest (reloc content))
      | "link" -> (
          let target = reloc content in
          let recreate () =
            let* () =
              Result.map_error Vfs.error_to_string
                (Vfs.remove t.vfs ~recursive:true dest)
            in
            Result.map_error Vfs.error_to_string
              (Vfs.symlink t.vfs ~target ~link:dest)
          in
          match Vfs.symlink t.vfs ~target ~link:dest with
          | Ok () -> Ok ()
          | Error (Vfs.Already_exists _) -> (
              (* re-extract: keep an identical link, but never a stale one
                 whose target (e.g. under a different install root) changed,
                 and never a non-link squatting on the path *)
              match Vfs.kind_of t.vfs dest with
              | Some Vfs.Symlink -> (
                  match Vfs.readlink t.vfs dest with
                  | Ok existing when existing = target -> Ok ()
                  | Ok _ | Error _ -> recreate ())
              | _ -> recreate ())
          | Error e -> Error (Vfs.error_to_string e))
      | other -> Error ("buildcache: unknown entry kind " ^ other))
    (Ok ()) files
  |> Result.map (fun () -> spec)
