module Vfs = Ospack_vfs.Vfs
module Concrete = Ospack_spec.Concrete
module Json = Ospack_json.Json
module Binary = Ospack_buildsim.Binary

type t = { vfs : Vfs.t; root : string }

(* Typed errors so callers (the installer's fallback path, the mirror
   fleet's failover logic) can distinguish a transient I/O fault from a
   corrupt or missing entry without string matching. [error_to_string]
   renders every case with the exact legacy prose. *)
type error =
  | Cache_io of { io_op : string; io_path : string; io_cause : Vfs.error }
      (** the virtual filesystem refused an operation — transient when the
          cause is an injected fault *)
  | Cache_corrupt of { co_path : string; co_reason : string }
      (** the entry exists but cannot be trusted: unparseable JSON,
          missing fields, or a file list shorter than its recorded count *)
  | Cache_missing of string  (** no entry for the hash, on any path *)
  | Bad_prefix of { bp_prefix : string; bp_reason : string }
      (** the prefix offered for archiving is unusable *)

let error_to_string = function
  | Cache_io { io_op; io_path; io_cause } ->
      Printf.sprintf "buildcache: %s %s: %s" io_op io_path
        (Vfs.error_to_string io_cause)
  | Cache_corrupt { co_reason; _ } -> "buildcache: " ^ co_reason
  | Cache_missing hash -> Printf.sprintf "buildcache: no entry for %s" hash
  | Bad_prefix { bp_reason; _ } -> "buildcache: " ^ bp_reason

(* a fault-injected op is worth retrying or failing over to another
   mirror; everything else (corruption, absence) is not *)
let transient = function
  | Cache_io { io_cause = Vfs.Fault_injected _; _ } -> true
  | Cache_io _ | Cache_corrupt _ | Cache_missing _ | Bad_prefix _ -> false

let create vfs ~root = { vfs; root }

let root t = t.root

(* Entries live under <2-hex> shard directories keyed by hash prefix —
   the PR 7 store-index layout — so a fleet-sized cache never funnels
   every entry through one directory listing. Entries written by the old
   flat layout ([<root>/<hash>.json]) stay readable forever. *)
let shard_of_hash hash =
  if String.length hash >= 2 then String.sub hash 0 2 else hash

let entry_path t hash =
  Printf.sprintf "%s/%s/%s.json" t.root (shard_of_hash hash) hash

let legacy_entry_path t hash = Printf.sprintf "%s/%s.json" t.root hash

let find_entry t hash =
  let sharded = entry_path t hash in
  if Vfs.is_file t.vfs sharded then Some sharded
  else
    let flat = legacy_entry_path t hash in
    if Vfs.is_file t.vfs flat then Some flat else None

let has t ~hash = find_entry t hash <> None

let manifest_path t = t.root ^ "/manifest.json"

let is_shard_name s =
  String.length s = 2
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let manifest_content shards =
  Json.to_string
    (Json.Obj
       [
         ("format", Json.Int 2);
         ( "shards",
           Json.List
             (List.map
                (fun s -> Json.String s)
                (List.sort_uniq String.compare shards)) );
       ])

(* tolerant manifest reader: a missing, stale, or corrupt manifest never
   hides entries — readers always union it with the directory listing *)
let manifest_shards t =
  match Vfs.read_file t.vfs (manifest_path t) with
  | Error _ -> []
  | Ok content -> (
      match Json.of_string content with
      | Error _ -> []
      | Ok j -> (
          match Option.bind (Json.member "shards" j) Json.to_list with
          | None -> []
          | Some items ->
              List.filter_map (fun s -> Json.get_string s) items))

let listed_shards t =
  match Vfs.ls t.vfs t.root with
  | Error _ -> []
  | Ok entries ->
      List.filter
        (fun e -> is_shard_name e && Vfs.is_dir t.vfs (t.root ^ "/" ^ e))
        entries

(* Healing sweep: a crash between an entry's tmp write and its rename
   strands a [.tmp] file; listing is where every reader converges, so the
   sweep lives here. Removal is not a write barrier, so torture math over
   [save] stays exact. *)
let sweep_tmp t dir entries =
  List.filter
    (fun e ->
      if Filename.check_suffix e ".tmp" then begin
        ignore (Vfs.remove t.vfs ~recursive:false (dir ^ "/" ^ e));
        false
      end
      else true)
    entries

let cached_hashes t =
  match Vfs.ls t.vfs t.root with
  | Error _ -> []
  | Ok entries ->
      let entries = sweep_tmp t t.root entries in
      let flat =
        List.filter_map
          (fun e ->
            if
              Filename.check_suffix e ".json"
              && e <> "manifest.json"
              && Vfs.is_file t.vfs (t.root ^ "/" ^ e)
            then Some (Filename.chop_suffix e ".json")
            else None)
          entries
      in
      let sharded =
        List.concat_map
          (fun shard ->
            let dir = t.root ^ "/" ^ shard in
            match Vfs.ls t.vfs dir with
            | Error _ -> []
            | Ok names ->
                List.filter_map
                  (fun n ->
                    if Filename.check_suffix n ".json" then
                      Some (Filename.chop_suffix n ".json")
                    else None)
                  (sweep_tmp t dir names))
          (List.filter is_shard_name entries
          |> List.filter (fun e -> Vfs.is_dir t.vfs (t.root ^ "/" ^ e)))
      in
      List.sort_uniq String.compare (flat @ sharded)

let ( let* ) = Result.bind

let io op path = function
  | Ok v -> Ok v
  | Error e -> Error (Cache_io { io_op = op; io_path = path; io_cause = e })

(* crash-safe entry persistence: the bytes land under a [.tmp] name and
   become visible only through the atomic rename — a kill at any barrier
   leaves either no entry or a complete one, never a truncated JSON that
   would poison later extracts *)
let write_atomic t ~path content =
  let tmp = path ^ ".tmp" in
  let* () = io "write" tmp (Vfs.write_file t.vfs tmp content) in
  io "rename" path (Vfs.rename t.vfs ~src:tmp ~dst:path)

(* keep the root manifest in step with the live shard set; staleness is
   harmless (readers union with the listing) so this runs after the entry
   rename — the entry's durability never waits on the manifest *)
let update_manifest t shard =
  let known = manifest_shards t in
  if List.mem shard known then Ok ()
  else
    write_atomic t ~path:(manifest_path t)
      (manifest_content (shard :: (known @ listed_shards t)))

let archive_prefix t ~prefix =
  (* every walk entry must archive; a file we cannot read is an error,
     not a silent omission — a truncated entry would later extract
     "successfully" into a broken prefix. Directories are archived too
     so empty ones survive the round trip. *)
  let* rev_files =
    List.fold_left
      (fun acc (path, kind) ->
        let* acc = acc in
        let plen = String.length prefix + 1 in
        let rel = String.sub path plen (String.length path - plen) in
        let entry kind content =
          Json.Obj
            [
              ("rel", Json.String rel);
              ("kind", Json.String kind);
              ("content", Json.String content);
            ]
        in
        match kind with
        | Vfs.Dir -> Ok (entry "dir" "" :: acc)
        | Vfs.File ->
            let* content = io "read" path (Vfs.read_file t.vfs path) in
            Ok (entry "file" content :: acc)
        | Vfs.Symlink ->
            let* target = io "read" path (Vfs.readlink t.vfs path) in
            Ok (entry "link" target :: acc))
      (Ok []) (Vfs.walk t.vfs prefix)
  in
  Ok (List.rev rev_files)

let save t ~install_root (record : Database.record) =
  if has t ~hash:record.Database.r_hash then Ok ()
  else
    let prefix = record.Database.r_prefix in
    if not (Vfs.is_dir t.vfs prefix) then
      Error
        (Bad_prefix
           {
             bp_prefix = prefix;
             bp_reason =
               Printf.sprintf "prefix %s of %s is not a directory" prefix
                 record.Database.r_hash;
           })
    else
      let* files = archive_prefix t ~prefix in
      if files = [] then
        Error
          (Bad_prefix
             {
               bp_prefix = prefix;
               bp_reason =
                 Printf.sprintf "refusing to archive empty prefix %s" prefix;
             })
      else
        let entry =
          Json.Obj
            [
              ("format", Json.Int 1);
              ("install_root", Json.String install_root);
              ("prefix", Json.String prefix);
              ("spec", Concrete.to_json record.Database.r_spec);
              ("file_count", Json.Int (List.length files));
              ("files", Json.List files);
            ]
        in
        let hash = record.Database.r_hash in
        let shard = shard_of_hash hash in
        let shard_dir = t.root ^ "/" ^ shard in
        let* () = io "mkdir" shard_dir (Vfs.mkdir_p t.vfs shard_dir) in
        let* () = write_atomic t ~path:(entry_path t hash) (Json.to_string entry) in
        update_manifest t shard

(* Textual relocation, path-token-boundary-aware: an occurrence of
   [from_root] rewrites only when it is not embedded inside a longer
   path token on either side — [/opt/spack/bin] relocates, the distinct
   root [/opt/spack2] and the mid-path [/usr/opt/spack] do not.
   Boundary = any character outside the path-token alphabet
   [A-Za-z0-9._+-] (or the text edge); '/' is a boundary, so path
   continuations still match. [relocate_many] applies several
   replacements in one left-to-right scan (longest source first, no
   chaining), which is what splicing needs: per-dependency prefix swaps
   must win over the blanket root swap. *)
let is_token_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '+' || c = '-'

let relocate_many ~pairs text =
  let pairs =
    List.filter (fun (f, r) -> f <> "" && f <> r) pairs
    |> List.sort (fun (a, _) (b, _) ->
           compare (String.length b) (String.length a))
  in
  if pairs = [] then text
  else begin
    let buf = Buffer.create (String.length text) in
    let n = String.length text in
    let matches_at i (from_root, _) =
      let flen = String.length from_root in
      i + flen <= n
      && String.sub text i flen = from_root
      && (i = 0 || not (is_token_char text.[i - 1]))
      && (i + flen = n || not (is_token_char text.[i + flen]))
    in
    let rec go i =
      if i >= n then ()
      else
        match List.find_opt (matches_at i) pairs with
        | Some (from_root, to_root) ->
            Buffer.add_string buf to_root;
            go (i + String.length from_root)
        | None ->
            Buffer.add_char buf text.[i];
            go (i + 1)
    in
    go 0;
    Buffer.contents buf
  end

let relocate ~from_root ~to_root text =
  relocate_many ~pairs:[ (from_root, to_root) ] text

let corrupt path reason = Error (Cache_corrupt { co_path = path; co_reason = reason })

type parsed_entry = {
  pe_path : string;
  pe_install_root : string;
  pe_spec : Concrete.t;
  pe_files : (string * string * string) list;  (** rel, kind, content *)
}

let load_entry t ~hash =
  match find_entry t hash with
  | None -> Error (Cache_missing hash)
  | Some path ->
      let* content = io "read" path (Vfs.read_file t.vfs path) in
      let* entry =
        match Json.of_string content with
        | Ok j -> Ok j
        | Error e -> corrupt path ("entry " ^ hash ^ ": " ^ e)
      in
      let* from_root =
        match Option.bind (Json.member "install_root" entry) Json.get_string with
        | Some r -> Ok r
        | None -> corrupt path "entry missing install_root"
      in
      let* spec =
        match Json.member "spec" entry with
        | Some sj -> (
            match Concrete.of_json sj with
            | Ok s -> Ok s
            | Error e -> corrupt path e)
        | None -> corrupt path "entry missing spec"
      in
      let* items =
        match Option.bind (Json.member "files" entry) Json.to_list with
        | Some items -> Ok items
        | None -> corrupt path "entry missing files"
      in
      (* completeness guard: an entry whose file list does not match its
         recorded count is truncated (partial write, hand-editing) and
         must not extract into a plausible-looking but incomplete prefix.
         Entries predating the count carry no guard — they extract
         leniently, which the format-legacy tests pin down. *)
      let* () =
        match Option.bind (Json.member "file_count" entry) Json.get_int with
        | None -> Ok () (* legacy entry predating the count *)
        | Some expected when expected = List.length items -> Ok ()
        | Some expected ->
            corrupt path
              (Printf.sprintf
                 "truncated entry %s: %d files listed, %d expected" hash
                 (List.length items) expected)
      in
      let* rev_files =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let get key =
              match Option.bind (Json.member key item) Json.get_string with
              | Some v -> Ok v
              | None -> corrupt path "malformed file entry"
            in
            let* rel = get "rel" in
            let* kind = get "kind" in
            let* content = get "content" in
            match kind with
            | "dir" | "file" | "link" -> Ok ((rel, kind, content) :: acc)
            | other -> corrupt path ("unknown entry kind " ^ other))
          (Ok []) items
      in
      Ok
        {
          pe_path = path;
          pe_install_root = from_root;
          pe_spec = spec;
          pe_files = List.rev rev_files;
        }

let entry_spec t ~hash =
  let* pe = load_entry t ~hash in
  Ok pe.pe_spec

(* the on-the-wire size of an entry — what a mirror transfer costs *)
let entry_size t ~hash =
  match find_entry t hash with
  | None -> None
  | Some path -> (
      match Vfs.read_file t.vfs path with
      | Ok content -> Some (String.length content)
      | Error _ -> None)

(* Extraction never trusts a pre-existing destination: a prefix holding
   any path the entry does not list came from a different entry (or a
   partial build) and its orphans would keep resolving under the loader.
   A mismatched prefix is cleared wholesale before materializing; a
   prefix that is a subset of the entry is overwritten in place (the
   stale-symlink re-extract path below). *)
let reconcile_prefix t ~prefix files =
  if not (Vfs.is_dir t.vfs prefix) then Ok ()
  else
    let expected = List.map (fun (rel, _, _) -> rel) files in
    let plen = String.length prefix + 1 in
    let stale =
      List.exists
        (fun (path, _) ->
          let rel = String.sub path plen (String.length path - plen) in
          not (List.mem rel expected))
        (Vfs.walk t.vfs prefix)
    in
    if stale then io "remove" prefix (Vfs.remove t.vfs ~recursive:true prefix)
    else Ok ()

let materialize t ~prefix ~reloc_file ~reloc_link files =
  List.fold_left
    (fun acc (rel, kind, content) ->
      let* () = acc in
      let dest = prefix ^ "/" ^ rel in
      match kind with
      | "dir" -> io "mkdir" dest (Vfs.mkdir_p t.vfs dest)
      | "file" -> io "write" dest (Vfs.write_file t.vfs dest (reloc_file rel content))
      | _ -> (
          let target = reloc_link content in
          let recreate () =
            let* () = io "remove" dest (Vfs.remove t.vfs ~recursive:true dest) in
            io "symlink" dest (Vfs.symlink t.vfs ~target ~link:dest)
          in
          match Vfs.symlink t.vfs ~target ~link:dest with
          | Ok () -> Ok ()
          | Error (Vfs.Already_exists _) -> (
              (* re-extract: keep an identical link, but never a stale one
                 whose target (e.g. under a different install root)
                 changed, and never a non-link squatting on the path *)
              match Vfs.kind_of t.vfs dest with
              | Some Vfs.Symlink -> (
                  match Vfs.readlink t.vfs dest with
                  | Ok existing when existing = target -> Ok ()
                  | Ok _ | Error _ -> recreate ())
              | _ -> recreate ())
          | Error e ->
              Error (Cache_io { io_op = "symlink"; io_path = dest; io_cause = e })))
    (Ok ()) files

let extract t ~hash ~install_root ~prefix =
  let* pe = load_entry t ~hash in
  let* () = reconcile_prefix t ~prefix pe.pe_files in
  let reloc = relocate ~from_root:pe.pe_install_root ~to_root:install_root in
  let* () =
    materialize t ~prefix
      ~reloc_file:(fun _rel content -> reloc content)
      ~reloc_link:reloc pe.pe_files
  in
  Ok pe.pe_spec

(* ------------------------------------------------------------------ *)
(* Splicing (spack splice): rewire a cached binary onto a different
   dependency's installed prefix without rebuilding.                   *)

(* Build the spliced DAG: the replacement's nodes override the original's
   same-named nodes (and bring any new transitive dependencies along);
   [Concrete.make] re-validates edges and acyclicity, [subspec] prunes
   nodes the new root no longer reaches, and — because a node's DAG hash
   covers its dependencies' hashes — every node above the replacement
   recomputes its hash automatically. Returns the spliced spec and the
   replacement's root package name. *)
let splice_spec ~orig ~replacement =
  let dep = Concrete.root replacement in
  match Concrete.node orig dep with
  | None ->
      Error
        (Printf.sprintf "splice: %s does not depend on %s"
           (Concrete.root orig) dep)
  | Some _ when Concrete.root orig = dep ->
      Error
        (Printf.sprintf "splice: cannot replace the root package %s itself"
           dep)
  | Some _ ->
      if Concrete.dag_hash orig dep = Concrete.root_hash replacement then
        Error
          (Printf.sprintf
             "splice: replacement %s/%s is already the installed dependency"
             dep
             (Concrete.root_hash replacement))
      else
        let replaced name = Concrete.node replacement name <> None in
        let merged =
          List.filter (fun n -> not (replaced n.Concrete.name))
            (Concrete.nodes orig)
          @ Concrete.nodes replacement
        in
        let* spliced =
          match Concrete.make ~root:(Concrete.root orig) merged with
          | Ok s -> Ok s
          | Error e ->
              Error
                (Format.asprintf "splice: invalid spliced spec: %a"
                   Concrete.pp_validation_error e)
        in
        Ok (Concrete.subspec spliced (Concrete.root orig), dep)

(* does [path] live at or under [prefix], on a path-component boundary? *)
let under ~prefix path =
  let plen = String.length prefix in
  String.length path >= plen
  && String.sub path 0 plen = prefix
  && (String.length path = plen || path.[plen] = '/')

let swap_prefix pairs path =
  match List.find_opt (fun (old_p, _) -> under ~prefix:old_p path) pairs with
  | Some (old_p, new_p) ->
      new_p ^ String.sub path (String.length old_p)
               (String.length path - String.length old_p)
  | None -> path

(* Materialize a cached entry into [prefix] with its dependency prefixes
   rewired through [prefix_map] (old installed prefix -> new installed
   prefix), on top of the usual root relocation. Files that parse as
   simulated ELF objects get a structured rewrite — each RPATH entry is
   swapped on exact prefix-component boundaries, the paper's §3.5
   relocation machinery doing new work — and everything else goes through
   the boundary-aware textual pass. Returns the number of binaries whose
   RPATHs changed. *)
let splice t ~hash ~install_root ~prefix ~prefix_map =
  let* pe = load_entry t ~hash in
  let* () = reconcile_prefix t ~prefix pe.pe_files in
  (* two passes: the blanket root relocation first (bringing the entry
     into the target store's coordinates — identity when the roots
     match), then the per-dependency prefix swaps, which are expressed in
     those target coordinates. New prefixes embed new DAG hashes, so the
     second pass can never re-match its own output. *)
  let base = relocate ~from_root:pe.pe_install_root ~to_root:install_root in
  let specific = relocate_many ~pairs:prefix_map in
  let textual content = specific (base content) in
  let rewired = ref 0 in
  let reloc_file _rel content =
    match Binary.parse content with
    | Error _ -> textual content
    | Ok bin ->
        let changed = ref false in
        let bin' =
          Binary.map_rpaths
            (fun rp ->
              let rp =
                swap_prefix [ (pe.pe_install_root, install_root) ] rp
              in
              let rp' = swap_prefix prefix_map rp in
              if rp' <> rp then changed := true;
              rp')
            bin
        in
        if !changed then incr rewired;
        Binary.serialize bin'
  in
  let* () = materialize t ~prefix ~reloc_file ~reloc_link:textual pe.pe_files in
  Ok !rewired
