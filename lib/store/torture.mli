(** Crash-consistency torture for the store.

    The harness proves the sharded index's durability story by killing an
    install at {e every} write barrier and checking that recovery restores
    the invariants:

    + a reference run installs the given concrete specs to completion on a
      fresh in-memory filesystem, counting its write barriers ({!Ospack_vfs.Vfs.write_barriers});
    + for each selected barrier [k], the install is replayed on a fresh
      filesystem with a {!Ospack_vfs.Vfs.Crash}-mode fault plan armed at
      [k] — determinism guarantees the replay matches the reference run
      byte-for-byte up to the kill, so the post-crash state is exactly
      "the reference run, dead at its k-th durability boundary";
    + a fresh installer then opens the crashed store
      ({!Installer.load_index}: shard merge + pending-marker recovery) and
      three invariants are checked — the reloaded index is a subset of
      the completed run's records (prefix-of-completed-store), no file or
      symlink outside [.spack-db] survives outside a loaded record's
      prefix (no unindexed orphans), and re-running the install converges
      to an index and store tree byte-identical to the reference.

    Any violation aborts with an [Error] naming the kill point. *)

type report = {
  tr_jobs : int;
  tr_specs : int;
  tr_barriers : int;  (** write barriers in the reference run *)
  tr_kills : int;  (** kill points exercised *)
  tr_orphans : int;  (** orphan prefixes recovery deleted, summed over kills *)
  tr_lost_nodes : int;
      (** index records lost to crashes (and reinstalled), summed over kills *)
}

val report_to_string : report -> string

val run :
  ?jobs:int ->
  ?every:int ->
  ?config:Ospack_config.Config.t ->
  repo:Ospack_package.Repository.t ->
  compilers:Ospack_config.Compilers.t ->
  Ospack_spec.Concrete.t list ->
  (report, string) result
(** Torture the install of [specs]. [jobs] (default 1) selects the serial
    {!Installer.install} path or the [-jN] parallel scheduler; [every]
    (default 1) kills at every [every]-th barrier — a sampling knob for
    smoke gates; [config] is passed through to each installer (externals
    etc.). The reference run must succeed, and every armed replay must
    fail — a crash plan that an install survives is itself an error. *)
