module Vfs = Ospack_vfs.Vfs
module Concrete = Ospack_spec.Concrete

let dir = ".spack"

let ( let* ) = Result.bind

let write vfs ~prefix ~spec ~package_source ~log =
  let base = prefix ^ "/" ^ dir in
  let* () =
    Vfs.write_file vfs (base ^ "/spec") (Concrete.to_string spec ^ "\n")
  in
  let* () =
    Vfs.write_file vfs (base ^ "/spec.json")
      (Ospack_json.Json.to_string ~indent:2 (Concrete.to_json spec) ^ "\n")
  in
  let* () =
    Vfs.write_file vfs (base ^ "/build.log") (String.concat "\n" log ^ "\n")
  in
  Vfs.write_file vfs (base ^ "/package.source") (package_source ^ "\n")

let read_line vfs path =
  match Vfs.read_file vfs path with
  | Ok content -> Some (String.trim content)
  | Error _ -> None

let read_spec vfs ~prefix = read_line vfs (prefix ^ "/" ^ dir ^ "/spec")

let read_spec_json vfs ~prefix =
  match Vfs.read_file vfs (prefix ^ "/" ^ dir ^ "/spec.json") with
  | Error e -> Error (Vfs.error_to_string e)
  | Ok content -> (
      match Ospack_json.Json.of_string content with
      | Error e -> Error ("spec.json: " ^ e)
      | Ok j -> Concrete.of_json j)

let read_log vfs ~prefix =
  match Vfs.read_file vfs (prefix ^ "/" ^ dir ^ "/build.log") with
  | Ok content ->
      Some (String.split_on_char '\n' content |> List.filter (fun l -> l <> ""))
  | Error _ -> None

let read_package_source vfs ~prefix =
  read_line vfs (prefix ^ "/" ^ dir ^ "/package.source")

(* ------------------------------------------------------------------ *)
(* install manifests                                                   *)

module Json = Ospack_json.Json
module Md5 = Ospack_hash.Md5

type verify_report = {
  vr_missing : string list;
  vr_modified : string list;
  vr_extra : string list;
}

let report_clean r =
  r.vr_missing = [] && r.vr_modified = [] && r.vr_extra = []

let manifest_path prefix = prefix ^ "/" ^ dir ^ "/manifest.json"

(* payload = every regular file and symlink outside .spack/; symlinks are
   hashed by target so retargeting is detected *)
let payload vfs prefix =
  Vfs.walk vfs prefix
  |> List.filter_map (fun (path, kind) ->
         let plen = String.length prefix + 1 in
         let rel = String.sub path plen (String.length path - plen) in
         if String.length rel >= String.length dir
            && String.sub rel 0 (String.length dir) = dir
         then None
         else
           match kind with
           | Vfs.Dir -> None
           | Vfs.File -> (
               match Vfs.read_file vfs path with
               | Ok content -> Some (rel, Md5.hex_digest content)
               | Error _ -> None)
           | Vfs.Symlink -> (
               match Vfs.readlink vfs path with
               | Ok target -> Some (rel, Md5.hex_digest ("link:" ^ target))
               | Error _ -> None))

let write_manifest vfs ~prefix =
  let entries =
    List.map (fun (rel, md5) -> (rel, Json.String md5)) (payload vfs prefix)
  in
  Vfs.write_file vfs (manifest_path prefix)
    (Json.to_string ~indent:2 (Json.Obj entries) ^ "\n")

let verify_manifest vfs ~prefix =
  match Vfs.read_file vfs (manifest_path prefix) with
  | Error _ -> Error (Printf.sprintf "no manifest under %s" prefix)
  | Ok content -> (
      match Json.of_string content with
      | Error e -> Error ("manifest: " ^ e)
      | Ok (Json.Obj fields) ->
          let manifested =
            List.filter_map
              (fun (rel, v) ->
                Option.map (fun md5 -> (rel, md5)) (Json.get_string v))
              fields
          in
          let current = payload vfs prefix in
          let missing, modified =
            List.fold_left
              (fun (missing, modified) (rel, md5) ->
                match List.assoc_opt rel current with
                | None -> (rel :: missing, modified)
                | Some now when now <> md5 -> (missing, rel :: modified)
                | Some _ -> (missing, modified))
              ([], []) manifested
          in
          let extra =
            List.filter_map
              (fun (rel, _) ->
                if List.mem_assoc rel manifested then None else Some rel)
              current
          in
          Ok
            {
              vr_missing = List.rev missing;
              vr_modified = List.rev modified;
              vr_extra = extra;
            }
      | Ok _ -> Error "manifest: expected an object")
