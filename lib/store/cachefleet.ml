(* A simulated mirror fleet in front of the binary cache: ordered
   mirrors with per-mirror latency and bandwidth, a deterministic
   zipf-popularity request trace interleaved over many clients on the
   virtual clock, typed retry/failover on transient faults, and
   source-build fallback for entries no mirror carries. Everything is
   seeded and float-grid-disciplined, so a trace replays byte-identically
   — the property the bench double-run gate and check.sh rely on. *)

module Obs = Ospack_obs.Obs
module Json = Ospack_json.Json

type mirror = {
  m_name : string;
  m_cache : Buildcache.t;
  m_latency : float;  (** virtual seconds per probe round-trip *)
  m_byte_rate : float;  (** transfer bandwidth, bytes per virtual second *)
  mutable m_probes : int;
  mutable m_hits : int;
  mutable m_misses : int;
  mutable m_faults : int;
  mutable m_bytes : int;
}

type t = { mirrors : mirror list; obs : Obs.t }

let mirror ?(latency = 0.05) ?(byte_rate = 1_000_000.0) ~name cache =
  {
    m_name = name;
    m_cache = cache;
    m_latency = latency;
    m_byte_rate = byte_rate;
    m_probes = 0;
    m_hits = 0;
    m_misses = 0;
    m_faults = 0;
    m_bytes = 0;
  }

let create ?(obs = Obs.disabled) mirrors = { mirrors; obs }

type config = {
  fc_seed : int;  (** PRNG seed; same seed, same trace *)
  fc_clients : int;  (** distinct client identities the trace draws from *)
  fc_requests : int;  (** total requests to generate *)
  fc_zipf_s : float;  (** zipf exponent: request popularity skew *)
  fc_fault_every : int;
      (** inject a two-probe burst of transient faults every Nth probe
          fleet-wide (0 = never) — the [Vfs.Fault_injected]-shaped
          failures that drive typed retry/failover *)
  fc_mean_gap : float;  (** mean virtual seconds between arrivals *)
}

let default_config =
  {
    fc_seed = 42;
    fc_clients = 1000;
    fc_requests = 2000;
    fc_zipf_s = 1.1;
    fc_fault_every = 0;
    fc_mean_gap = 0.01;
  }

type item = {
  it_name : string;  (** package name, for reporting *)
  it_hash : string;  (** the cache entry requested *)
  it_build_seconds : float;  (** source-build cost if no mirror has it *)
}

type report = {
  rp_requests : int;
  rp_clients : int;  (** distinct clients that issued a request *)
  rp_hits : int;
  rp_retries : int;  (** same-mirror second tries after a fault *)
  rp_failovers : int;  (** moves to the next mirror after a fault *)
  rp_fallback_builds : int;  (** requests no mirror served *)
  rp_fallback_seconds : float;
  rp_bytes : int;
  rp_elapsed : float;  (** virtual seconds the whole trace spanned *)
  rp_by_package : (string * int) list;
      (** requests per package, most-requested first *)
  rp_mirrors : mirror list;  (** in fleet order, with final accounting *)
}

(* ------------------------------------------------------------------ *)
(* Deterministic PRNG: a plain 31-bit LCG — quality is irrelevant,
   replayability is everything. *)

let lcg_m = 0x4000_0000 (* 2^30 *)

let lcg state = ((1103515245 * state) + 12345) land (lcg_m - 1)

(* zipf(s) over ranks 1..n: weight 1/rank^s, sampled by inverting the
   cumulative distribution. Items keep their given order, so rank 1 =
   first item = most popular. *)
let zipf_cdf s n =
  let weights =
    Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let acc = ref 0.0 in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let pick cdf u =
  let n = Array.length cdf in
  let rec go i =
    if i >= n - 1 then n - 1 else if u < cdf.(i) then i else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)

let run t config items =
  if items = [] then invalid_arg "Cachefleet.run: no items";
  let item_arr = Array.of_list items in
  let cdf = zipf_cdf config.fc_zipf_s (Array.length item_arr) in
  let state = ref (if config.fc_seed = 0 then 1 else config.fc_seed) in
  let next_u () =
    state := lcg !state;
    float_of_int !state /. float_of_int lcg_m
  in
  let elapsed = ref 0.0 in
  let advance dt =
    elapsed := !elapsed +. dt;
    Obs.advance t.obs dt
  in
  let hits = ref 0
  and retries = ref 0
  and failovers = ref 0
  and fallbacks = ref 0
  and fallback_seconds = ref 0.0
  and bytes = ref 0
  and probe_no = ref 0
  and clients = Hashtbl.create 64
  and per_pkg = Hashtbl.create 16 in
  (* one probe against one mirror; [fault] injects the transient error
     the typed failover path classifies with {!Buildcache.transient} *)
  let probe m ~hash ~fault =
    m.m_probes <- m.m_probes + 1;
    if fault then begin
      m.m_faults <- m.m_faults + 1;
      Obs.count t.obs "fleet.faults" 1;
      advance m.m_latency;
      Error
        (Buildcache.Cache_io
           {
             io_op = "read";
             io_path = Buildcache.entry_path m.m_cache hash;
             io_cause =
               Ospack_vfs.Vfs.Fault_injected
                 { fi_op = "read"; fi_path = Buildcache.root m.m_cache };
           })
    end
    else
      match Buildcache.entry_size m.m_cache ~hash with
      | Some b ->
          m.m_hits <- m.m_hits + 1;
          m.m_bytes <- m.m_bytes + b;
          advance (m.m_latency +. (float_of_int b /. m.m_byte_rate));
          Ok b
      | None ->
          m.m_misses <- m.m_misses + 1;
          advance m.m_latency;
          Error (Buildcache.Cache_missing hash)
  in
  Obs.span t.obs ~cat:"fleet"
    ~args:
      [
        ("requests", string_of_int config.fc_requests);
        ("mirrors", string_of_int (List.length t.mirrors));
      ]
    "fleet.trace"
  @@ fun () ->
  for _r = 0 to config.fc_requests - 1 do
    (* arrival: a seeded think-time gap, then a client and a package
       drawn from the same stream *)
    advance (config.fc_mean_gap *. (0.5 +. next_u ()));
    state := lcg !state;
    Hashtbl.replace clients (!state mod max 1 config.fc_clients) ();
    let item = item_arr.(pick cdf (next_u ())) in
    Hashtbl.replace per_pkg item.it_name
      (1 + try Hashtbl.find per_pkg item.it_name with Not_found -> 0);
    Obs.count t.obs "fleet.requests" 1;
    (* a two-probe fault burst every Nth probe: the first fault trips the
       retry, and when the retry lands inside the same burst the client
       fails over — so both recovery paths run on a deterministic trace *)
    let faulty () =
      incr probe_no;
      config.fc_fault_every > 0 && !probe_no mod config.fc_fault_every < 2
    in
    let served b =
      incr hits;
      bytes := !bytes + b;
      Obs.count t.obs "fleet.hits" 1
    in
    (* the fallback chain: walk mirrors in order; a transient fault is
       retried once on the same mirror, a second fault fails over to the
       next; a fully-missed entry falls back to a source build *)
    let rec walk = function
      | [] ->
          incr fallbacks;
          fallback_seconds := !fallback_seconds +. item.it_build_seconds;
          Obs.count t.obs "fleet.fallback_builds" 1;
          advance item.it_build_seconds
      | m :: rest -> (
          match probe m ~hash:item.it_hash ~fault:(faulty ()) with
          | Ok b -> served b
          | Error e when Buildcache.transient e -> (
              incr retries;
              Obs.count t.obs "fleet.retries" 1;
              match probe m ~hash:item.it_hash ~fault:(faulty ()) with
              | Ok b -> served b
              | Error e2 ->
                  if Buildcache.transient e2 then begin
                    incr failovers;
                    Obs.count t.obs "fleet.failovers" 1
                  end;
                  walk rest)
          | Error _ -> walk rest)
    in
    walk t.mirrors
  done;
  List.iter
    (fun m ->
      let pfx = "fleet.mirror." ^ m.m_name in
      Obs.count t.obs (pfx ^ ".probes") m.m_probes;
      Obs.count t.obs (pfx ^ ".hits") m.m_hits;
      Obs.count t.obs (pfx ^ ".misses") m.m_misses;
      Obs.count t.obs (pfx ^ ".faults") m.m_faults;
      Obs.count t.obs (pfx ^ ".bytes") m.m_bytes)
    t.mirrors;
  {
    rp_requests = config.fc_requests;
    rp_clients = Hashtbl.length clients;
    rp_hits = !hits;
    rp_retries = !retries;
    rp_failovers = !failovers;
    rp_fallback_builds = !fallbacks;
    rp_fallback_seconds = !fallback_seconds;
    rp_bytes = !bytes;
    rp_elapsed = !elapsed;
    rp_by_package =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_pkg []
      |> List.sort (fun (a, na) (b, nb) ->
             if na <> nb then compare nb na else String.compare a b);
    rp_mirrors = t.mirrors;
  }

let hit_rate r =
  if r.rp_requests = 0 then 0.0
  else float_of_int r.rp_hits /. float_of_int r.rp_requests

let report_to_string r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "fleet: %d requests from %d clients, %d hits (%.1f%% hit rate), %d \
        source builds, %d retries, %d failovers, %d bytes served\n"
       r.rp_requests r.rp_clients r.rp_hits
       (100.0 *. hit_rate r)
       r.rp_fallback_builds r.rp_retries r.rp_failovers r.rp_bytes);
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf
           "  mirror %-10s %6d probes  %6d hits  %6d misses  %4d faults  %9d \
            bytes\n"
           m.m_name m.m_probes m.m_hits m.m_misses m.m_faults m.m_bytes))
    r.rp_mirrors;
  List.iter
    (fun (name, n) ->
      Buffer.add_string b (Printf.sprintf "  requests %-12s %6d\n" name n))
    r.rp_by_package;
  Buffer.contents b

let report_to_json r =
  Json.Obj
    [
      ("requests", Json.Int r.rp_requests);
      ("clients", Json.Int r.rp_clients);
      ("hits", Json.Int r.rp_hits);
      ("hit_rate", Json.fixed ~decimals:4 (hit_rate r));
      ("retries", Json.Int r.rp_retries);
      ("failovers", Json.Int r.rp_failovers);
      ("fallback_builds", Json.Int r.rp_fallback_builds);
      ("fallback_seconds", Json.fixed ~decimals:3 r.rp_fallback_seconds);
      ("bytes", Json.Int r.rp_bytes);
      ("elapsed_virtual_seconds", Json.fixed ~decimals:3 r.rp_elapsed);
      ( "mirrors",
        Json.List
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("name", Json.String m.m_name);
                   ("probes", Json.Int m.m_probes);
                   ("hits", Json.Int m.m_hits);
                   ("misses", Json.Int m.m_misses);
                   ("faults", Json.Int m.m_faults);
                   ("bytes", Json.Int m.m_bytes);
                 ])
             r.rp_mirrors) );
      ( "by_package",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.rp_by_package) );
    ]
