module Ast = Ospack_spec.Ast
module Parser = Ospack_spec.Parser
module Concrete = Ospack_spec.Concrete
module Constraint_ops = Ospack_spec.Constraint_ops
module Version = Ospack_version.Version

type dep_kind = Build | Link | Run

type dep = { d_spec : Ast.t; d_when : Ast.t option; d_kind : dep_kind }
type provide = { pv_spec : Ast.node; pv_when : Ast.t option }
type patch_decl = { pt_file : string; pt_when : Ast.t option }
type conflict_decl = {
  cf_spec : Ast.node;
  cf_when : Ast.t option;
  cf_msg : string;
}

type feature_req = { fr_feature : string; fr_when : Ast.t option }

type recipe_ctx = {
  rc_spec : Concrete.t;
  rc_prefix : string;
  rc_dep_prefix : string -> string;
}

type recipe = recipe_ctx -> Build_step.t list

type t = {
  p_name : string;
  p_description : string;
  p_homepage : string;
  p_url : string option;
  p_versions : (Version.t * string option * bool) list;
  p_dependencies : dep list;
  p_provides : provide list;
  p_patches : patch_decl list;
  p_variants : Variant_decl.t list;
  p_conflicts : conflict_decl list;
  p_compiler_features : feature_req list;
  p_extends : string option;
  p_build_model : Build_model.t;
  p_install : recipe;
  p_install_special : (Ast.t * recipe) list;
  p_source : string;
}

type directive =
  | Dversion of { version : string; md5 : string option; preferred : bool }
  | Ddep of { spec : string; when_ : string option; kind : dep_kind }
  | Dprovides of { spec : string; when_ : string option }
  | Dvariant of Variant_decl.t
  | Dpatch of { file : string; when_ : string option }
  | Dconflicts of { spec : string; when_ : string option; msg : string }
  | Dfeature of { feature : string; when_ : string option }
  | Dextends of string
  | Dhomepage of string
  | Durl of string
  | Dbuild_model of Build_model.t
  | Dinstall of recipe
  | Dinstall_when of { when_ : string; recipe : recipe }

let version ?md5 ?(preferred = false) v =
  Dversion { version = v; md5; preferred }

let depends_on ?when_ ?(kind = Link) spec = Ddep { spec; when_; kind }
let provides ?when_ spec = Dprovides { spec; when_ }
let variant ?default ~descr name = Dvariant (Variant_decl.make ?default ~descr name)
let patch ?when_ file = Dpatch { file; when_ }
let conflicts ?when_ ?(msg = "") spec = Dconflicts { spec; when_; msg }
let requires_compiler_feature ?when_ feature = Dfeature { feature; when_ }
let extends name = Dextends name
let homepage h = Dhomepage h
let url u = Durl u
let build_model m = Dbuild_model m
let install r = Dinstall r
let install_when when_ recipe = Dinstall_when { when_; recipe }

let configure args = Build_step.Configure args
let cmake args = Build_step.Cmake args
let make args = Build_step.Make args
let python_setup args = Build_step.Python_setup args
let dep_prefix ctx name = ctx.rc_dep_prefix name

let parse_err pkg what src msg =
  invalid_arg (Printf.sprintf "package %s: bad %s %S: %s" pkg what src msg)

let parse_spec pkg what src =
  match Parser.parse src with
  | Ok t -> t
  | Error e -> parse_err pkg what src e

let parse_node pkg what src =
  match Parser.parse_node src with
  | Ok n -> n
  | Error e -> parse_err pkg what src e

let parse_when pkg = Option.map (parse_spec pkg "when predicate")

let default_recipe : recipe =
 fun ctx ->
  [
    Build_step.Configure [ "--prefix=" ^ ctx.rc_prefix ];
    Build_step.Make [];
    Build_step.Make [ "install" ];
  ]

let apply_directive pkg acc directive =
  match directive with
  | Dversion { version = v; md5; preferred } ->
      let parsed = Version.of_string v in
      if
        List.exists (fun (v', _, _) -> Version.equal parsed v') acc.p_versions
      then
        invalid_arg
          (Printf.sprintf "package %s: duplicate version %s" pkg v)
      else
        { acc with p_versions = (parsed, md5, preferred) :: acc.p_versions }
  | Ddep { spec; when_; kind } ->
      let d_spec = parse_spec pkg "depends_on spec" spec in
      if d_spec.Ast.root.Ast.name = "" then
        parse_err pkg "depends_on spec" spec "dependency must be named";
      let d = { d_spec; d_when = parse_when pkg when_; d_kind = kind } in
      { acc with p_dependencies = d :: acc.p_dependencies }
  | Dprovides { spec; when_ } ->
      let pv_spec = parse_node pkg "provides spec" spec in
      if pv_spec.Ast.name = "" then
        parse_err pkg "provides spec" spec "virtual name required";
      let p = { pv_spec; pv_when = parse_when pkg when_ } in
      { acc with p_provides = p :: acc.p_provides }
  | Dvariant v ->
      if
        List.exists
          (fun v' -> v'.Variant_decl.v_name = v.Variant_decl.v_name)
          acc.p_variants
      then
        invalid_arg
          (Printf.sprintf "package %s: duplicate variant %s" pkg
             v.Variant_decl.v_name)
      else { acc with p_variants = v :: acc.p_variants }
  | Dpatch { file; when_ } ->
      let p = { pt_file = file; pt_when = parse_when pkg when_ } in
      { acc with p_patches = p :: acc.p_patches }
  | Dconflicts { spec; when_; msg } ->
      let c =
        {
          cf_spec = parse_node pkg "conflicts spec" spec;
          cf_when = parse_when pkg when_;
          cf_msg = msg;
        }
      in
      { acc with p_conflicts = c :: acc.p_conflicts }
  | Dfeature { feature; when_ } ->
      let f = { fr_feature = feature; fr_when = parse_when pkg when_ } in
      { acc with p_compiler_features = f :: acc.p_compiler_features }
  | Dextends name -> { acc with p_extends = Some name }
  | Dhomepage h -> { acc with p_homepage = h }
  | Durl u -> { acc with p_url = Some u }
  | Dbuild_model m -> { acc with p_build_model = m }
  | Dinstall r -> { acc with p_install = r }
  | Dinstall_when { when_; recipe } ->
      let pred = parse_spec pkg "install predicate" when_ in
      { acc with p_install_special = (pred, recipe) :: acc.p_install_special }

let sort_versions vs =
  List.sort (fun (a, _, _) (b, _, _) -> Version.compare b a) vs

let make_pkg ?(description = "") ?(source = "builtin") name directives =
  let empty =
    {
      p_name = name;
      p_description = description;
      p_homepage = "";
      p_url = None;
      p_versions = [];
      p_dependencies = [];
      p_provides = [];
      p_patches = [];
      p_variants = [];
      p_conflicts = [];
      p_compiler_features = [];
      p_extends = None;
      p_build_model = Build_model.default_for name;
      p_install = default_recipe;
      p_install_special = [];
      p_source = source;
    }
  in
  let pkg = List.fold_left (apply_directive name) empty directives in
  {
    pkg with
    p_versions = sort_versions pkg.p_versions;
    p_dependencies = List.rev pkg.p_dependencies;
    p_provides = List.rev pkg.p_provides;
    p_patches = List.rev pkg.p_patches;
    p_variants = List.rev pkg.p_variants;
    p_conflicts = List.rev pkg.p_conflicts;
    p_compiler_features = List.rev pkg.p_compiler_features;
    (* declaration order = precedence order for specialized recipes *)
    p_install_special = List.rev pkg.p_install_special;
  }

let override base directives =
  let pkg = List.fold_left (apply_directive base.p_name) base directives in
  { pkg with p_versions = sort_versions pkg.p_versions }

let with_source t source = { t with p_source = source }

let known_versions t = List.map (fun (v, _, _) -> v) t.p_versions

let preferred_versions t =
  List.filter_map (fun (v, _, p) -> if p then Some v else None) t.p_versions

let checksum_for t v =
  List.find_map
    (fun (v', md5, _) -> if Version.equal v v' then md5 else None)
    t.p_versions

let find_variant t name =
  List.find_opt (fun v -> v.Variant_decl.v_name = name) t.p_variants

let variant_defaults t =
  List.map
    (fun v -> (v.Variant_decl.v_name, v.Variant_decl.v_default))
    t.p_variants

(* The concretization-cache fingerprint needs a stable rendering of every
   field that can influence concretization. Recipes are closures and cannot
   be hashed, but they also cannot change what gets concretized — only how
   it builds — so they are summarized by count/predicate. *)
let identity_string t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let spec_str = Ospack_spec.Printer.to_string in
  let node_str = Ospack_spec.Printer.node_to_string in
  let when_str = function None -> "" | Some w -> " when=" ^ spec_str w in
  add "package %s\n" t.p_name;
  add "description %s\n" t.p_description;
  add "homepage %s\n" t.p_homepage;
  (match t.p_url with None -> () | Some u -> add "url %s\n" u);
  List.iter
    (fun (v, md5, pref) ->
      add "version %s md5=%s%s\n" (Version.to_string v)
        (Option.value md5 ~default:"-")
        (if pref then " preferred" else ""))
    t.p_versions;
  List.iter
    (fun d ->
      let kind =
        match d.d_kind with Build -> "build" | Link -> "link" | Run -> "run"
      in
      add "depends_on %s kind=%s%s\n" (spec_str d.d_spec) kind
        (when_str d.d_when))
    t.p_dependencies;
  List.iter
    (fun p -> add "provides %s%s\n" (node_str p.pv_spec) (when_str p.pv_when))
    t.p_provides;
  List.iter
    (fun p -> add "patch %s%s\n" p.pt_file (when_str p.pt_when))
    t.p_patches;
  List.iter
    (fun v ->
      add "variant %s default=%b descr=%s\n" v.Variant_decl.v_name
        v.Variant_decl.v_default v.Variant_decl.v_description)
    t.p_variants;
  List.iter
    (fun c ->
      add "conflicts %s%s msg=%s\n" (node_str c.cf_spec) (when_str c.cf_when)
        c.cf_msg)
    t.p_conflicts;
  List.iter
    (fun f -> add "compiler_feature %s%s\n" f.fr_feature (when_str f.fr_when))
    t.p_compiler_features;
  (match t.p_extends with None -> () | Some e -> add "extends %s\n" e);
  let bm = t.p_build_model in
  let system =
    match bm.Build_model.system with
    | Build_model.Autotools -> "autotools"
    | Build_model.Cmake -> "cmake"
    | Build_model.Makefile_only -> "makefile"
    | Build_model.Python_setup -> "python"
  in
  add "build_model %s src=%d hdr=%d cfg=%d link=%d cs=%g inst=%d\n" system
    bm.Build_model.source_files bm.Build_model.headers_per_compile
    bm.Build_model.configure_checks bm.Build_model.link_steps
    bm.Build_model.compile_seconds bm.Build_model.install_files;
  List.iter
    (fun (pred, _) -> add "install_when %s\n" (spec_str pred))
    t.p_install_special;
  add "source %s\n" t.p_source;
  Buffer.contents buf

(* Predicate evaluation against the package's own node in a concrete spec:
   node-local constraints check the node itself; ^dep constraints check the
   rest of the DAG. *)
let concrete_matches spec name (pred : Ast.t) =
  match Concrete.node spec name with
  | None -> false
  | Some node ->
      Concrete.node_satisfies node pred.Ast.root
      && Ast.Smap.for_all
           (fun _ c ->
             List.exists
               (fun n -> Concrete.node_satisfies n c)
               (Concrete.nodes spec))
           pred.Ast.deps

let patches_for t spec =
  List.filter_map
    (fun p ->
      match p.pt_when with
      | None -> Some p.pt_file
      | Some pred ->
          if concrete_matches spec t.p_name pred then Some p.pt_file else None)
    t.p_patches

let recipe_for t spec =
  let matching =
    List.find_opt
      (fun (pred, _) -> concrete_matches spec t.p_name pred)
      t.p_install_special
  in
  match matching with Some (_, r) -> r | None -> t.p_install
