(** The package DSL (paper §3.1, Fig. 1).

    A Spack package is a Python class with directives ([version],
    [depends_on], [provides], [patch], [variant]) and an [install] method.
    Here a package is a value built by folding a list of {!directive}s:

    {[
      let mpileaks =
        Package.make "mpileaks"
          ~description:"Tool to detect and report leaked MPI objects."
          ~homepage:"https://github.com/hpc/mpileaks"
          [
            version "1.0" ~md5:"8838c574b39202a57d7c2d68692718aa";
            version "1.1" ~md5:"4282eddb08ad8d36df15b06d4be38bcb";
            depends_on "mpi";
            depends_on "callpath";
            variant "debug" ~descr:"Build with debugging symbols";
            install (fun ctx ->
                [ configure [ "--with-callpath=" ^ dep_prefix ctx "callpath" ];
                  make []; make [ "install" ] ]);
          ]
    ]}

    Directives accept spec syntax in string form, including conditional
    [?when_] predicates (§3.2.4), and are parsed eagerly: a malformed spec
    raises [Invalid_argument] when the package value is constructed, the
    analogue of a Python syntax error in a package file.

    Build specialization (§3.2.5, Fig. 4) is expressed with
    {!install_when}: the first specialized recipe whose predicate matches
    the concrete spec wins, falling back to the default [install]. *)

type dep_kind = Build | Link | Run

type dep = { d_spec : Ospack_spec.Ast.t; d_when : Ospack_spec.Ast.t option; d_kind : dep_kind }
type provide = { pv_spec : Ospack_spec.Ast.node; pv_when : Ospack_spec.Ast.t option }
type patch_decl = { pt_file : string; pt_when : Ospack_spec.Ast.t option }
type conflict_decl = {
  cf_spec : Ospack_spec.Ast.node;
  cf_when : Ospack_spec.Ast.t option;
  cf_msg : string;
}

type feature_req = { fr_feature : string; fr_when : Ospack_spec.Ast.t option }
(** A compiler-feature requirement (paper §4.5 future work): the package
    only builds with toolchains supporting the feature (e.g. ["cxx11"]). *)

type recipe_ctx = {
  rc_spec : Ospack_spec.Concrete.t;  (** the concrete spec being installed *)
  rc_prefix : string;  (** unique install prefix for this configuration *)
  rc_dep_prefix : string -> string;
      (** install prefix of a direct or transitive dependency, by name;
          raises [Not_found] for packages outside the DAG *)
}

type recipe = recipe_ctx -> Build_step.t list

type t = private {
  p_name : string;
  p_description : string;
  p_homepage : string;
  p_url : string option;
  p_versions : (Ospack_version.Version.t * string option * bool) list;
      (** (version, md5 checksum, preferred); newest first *)
  p_dependencies : dep list;
  p_provides : provide list;
  p_patches : patch_decl list;
  p_variants : Variant_decl.t list;
  p_conflicts : conflict_decl list;
  p_compiler_features : feature_req list;
  p_extends : string option;  (** the package this one extends (§4.2) *)
  p_build_model : Build_model.t;
  p_install : recipe;
  p_install_special : (Ospack_spec.Ast.t * recipe) list;
  p_source : string;  (** provenance id: which repository defined it *)
}

type directive

(** {1 Directives} *)

val version : ?md5:string -> ?preferred:bool -> string -> directive
val depends_on : ?when_:string -> ?kind:dep_kind -> string -> directive

val provides : ?when_:string -> string -> directive
(** Versioned virtual interface, e.g.
    [provides "mpi@:2.2" ~when_:"@1.9"] (paper §3.3, Fig. 5). *)

val variant : ?default:bool -> descr:string -> string -> directive
val patch : ?when_:string -> string -> directive
val conflicts : ?when_:string -> ?msg:string -> string -> directive

val requires_compiler_feature : ?when_:string -> string -> directive
(** Constrain concretization to toolchains supporting a feature,
    optionally only under a condition
    (e.g. [requires_compiler_feature "cxx11" ~when_:"@8.2:"]). *)

val extends : string -> directive
val homepage : string -> directive
val url : string -> directive
val build_model : Build_model.t -> directive

val install : recipe -> directive
(** The default build recipe. At most one per package. *)

val install_when : string -> recipe -> directive
(** A specialized recipe used when the concrete spec satisfies the
    predicate — the paper's [@when] decorator (Fig. 4). Earlier
    declarations take precedence. *)

(** {1 Recipe helpers} *)

val configure : string list -> Build_step.t
val cmake : string list -> Build_step.t
val make : string list -> Build_step.t
val python_setup : string list -> Build_step.t
val dep_prefix : recipe_ctx -> string -> string

(** {1 Construction and queries} *)

val make_pkg :
  ?description:string -> ?source:string -> string -> directive list -> t
(** Build a package from directives. Raises [Invalid_argument] on
    malformed directive specs, duplicate versions, or duplicate variant
    declarations. *)

val override : t -> directive list -> t
(** A copy of the package with extra directives applied on top — the
    site-repository mechanism of §4.3.2 (a site package class inheriting
    from the built-in one). New versions/deps/provides are appended; a new
    [install] replaces the default recipe; [install_when] recipes stack in
    front of inherited ones. *)

val with_source : t -> string -> t
(** A copy with [p_source] replaced (set by {!Repository.create} to record
    which repository defined the package). *)

val known_versions : t -> Ospack_version.Version.t list
(** Declared versions, newest first. *)

val preferred_versions : t -> Ospack_version.Version.t list
(** Versions flagged [~preferred], newest first. *)

val checksum_for : t -> Ospack_version.Version.t -> string option

val find_variant : t -> string -> Variant_decl.t option

val variant_defaults : t -> (string * bool) list

val recipe_for : t -> Ospack_spec.Concrete.t -> recipe
(** Dispatch per {!install_when} against the package's node in the
    concrete spec, falling back to the default recipe. *)

val patches_for : t -> Ospack_spec.Concrete.t -> string list
(** Patch files whose [when=] predicate matches the package's node in the
    concrete spec (e.g. the BG/Q Python patches of §3.2.4), in declaration
    order — applied by the builder at staging time. *)

val identity_string : t -> string
(** A stable, line-oriented rendering of every declarative field that can
    influence concretization (versions, dependencies, provides, variants,
    conflicts, patches, compiler features, extends, build model, specialized
    recipe predicates). Two packages with equal [identity_string]s
    concretize identically; any edit that could change a concretization
    changes the string. Feeds the concretization-cache context fingerprint
    ({!Ospack_concretize.Ccache}). Install recipes are closures and are
    summarized by their predicates only — they affect builds, not
    concretization. *)
