module Smap = Map.Make (String)

type t = string Smap.t

let empty = Smap.empty

let of_assoc bindings =
  List.fold_left (fun e (k, v) -> Smap.add k v e) Smap.empty bindings

let to_assoc t = Smap.bindings t
let get t name = Smap.find_opt name t
let set t name value = Smap.add name value t

let path_list t name =
  match Smap.find_opt name t with
  | None | Some "" -> []
  | Some v -> String.split_on_char ':' v |> List.filter (fun c -> c <> "")

let prepend_path t name dir =
  match path_list t name with
  | [] -> Smap.add name dir t
  | components -> Smap.add name (String.concat ":" (dir :: components)) t

let set_path t name dirs =
  match dirs with
  | [] -> t
  | _ -> Smap.add name (String.concat ":" dirs) t

let for_build ~dep_prefixes ~wrapper_dir ~base =
  let under suffix = List.map (fun p -> p ^ suffix) dep_prefixes in
  let env =
    (* dependency bin dirs go ahead of whatever the base environment had *)
    List.fold_left
      (fun e dir -> prepend_path e "PATH" dir)
      base
      (List.rev (under "/bin"))
  in
  let env = set env "CC" (wrapper_dir ^ "/cc") in
  let env = set env "CXX" (wrapper_dir ^ "/cxx") in
  let env = set env "F77" (wrapper_dir ^ "/f77") in
  let env = set env "FC" (wrapper_dir ^ "/fc") in
  (* library and build-system search paths are rebuilt from the DAG alone:
     inherited values are exactly the contamination §3.5.1 guards against *)
  let env = Smap.remove "LD_LIBRARY_PATH" env in
  let env = set_path env "LD_LIBRARY_PATH" (under "/lib") in
  let env = set_path env "CMAKE_PREFIX_PATH" dep_prefixes in
  let env = set_path env "PKG_CONFIG_PATH" (under "/lib/pkgconfig") in
  env
