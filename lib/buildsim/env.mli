(** Isolated build environments (paper §3.5.1).

    Spack builds in a dedicated process whose environment is
    constructed from scratch: [PATH] holds the dependencies' [bin]
    directories (so configure finds the right tools), [CC]/[CXX]/
    [F77]/[FC] point at the compiler wrappers, and
    [CMAKE_PREFIX_PATH]/[PKG_CONFIG_PATH] steer build systems at
    dependency prefixes. An environment here is an immutable map from
    variable names to colon-separated string values. *)

type t

val empty : t

val of_assoc : (string * string) list -> t
(** Later bindings win over earlier ones for the same name. *)

val to_assoc : t -> (string * string) list
(** Bindings sorted by variable name. *)

val get : t -> string -> string option
val set : t -> string -> string -> t

val prepend_path : t -> string -> string -> t
(** [prepend_path env var dir] prepends [dir] to the colon-separated
    list in [var] (creating the variable if unset). *)

val path_list : t -> string -> string list
(** The colon-separated components of a variable; [[]] when unset or
    empty. *)

val for_build :
  dep_prefixes:string list -> wrapper_dir:string -> base:t -> t
(** The paper's isolated build environment: starting from [base],
    - [PATH] gains each dependency's [<prefix>/bin], in order, ahead of
      anything inherited;
    - [CC]/[CXX]/[F77]/[FC] are pointed at the wrapper scripts in
      [wrapper_dir];
    - [LD_LIBRARY_PATH] is rebuilt from the dependencies' [lib]
      directories (inherited values are dropped — they are exactly the
      contamination §3.5.1 guards against);
    - [CMAKE_PREFIX_PATH] and [PKG_CONFIG_PATH] list the dependency
      prefixes and their [lib/pkgconfig] directories. *)
