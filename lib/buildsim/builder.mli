(** The build simulator (paper §3.5.3).

    A build stages sources (optionally from a {!Mirror}, with checksum
    verification), constructs the isolated environment of §3.5.1,
    interprets the package's recipe step by step against the virtual
    filesystem, and charges a virtual clock from the package's
    {!Ospack_package.Build_model} and the staging filesystem's
    {!Fsmodel}:

    - each configure/cmake probe costs {e 0.02 s} of work plus
      {e 6} metadata operations;
    - each compile costs the model's [compile_seconds] plus one
      metadata operation per header opened;
    - each link costs {e 0.4 s} plus {e 4} metadata operations;
    - installation costs {e 2} metadata operations per installed file;
    - when wrappers are enabled, every compiler invocation (probe,
      compile, or link) pays {e 4 ms} of wrapper script overhead.

    A metadata operation costs [fs_meta_seconds] of the staging
    filesystem — 0.2 ms on tmpfs, 2 ms on NFS — which reproduces the
    overhead bands of the paper's Figs. 10/11.

    Installation always produces the package's payload triple
    [bin/<name>], [lib/lib<name>.so], [include/<name>.h]; the binaries
    carry NEEDED entries for the spec's link dependencies and, when
    built with wrappers, RPATHs to their prefixes — the mechanism
    behind the paper's claim 2. *)

type result = {
  br_log : string list;  (** the simulated build log, in order *)
  br_time : float;  (** virtual-clock seconds the build took *)
  br_invocations : int;
      (** compiler invocations: configure probes + compiles + links *)
}

type error =
  | Staging of { node : string; reason : string }
      (** mirror fetch / checksum verification failed *)
  | Missing_dep of { node : string; dep : string }
      (** a spec dependency has no installed prefix *)
  | Step_failed of { node : string; reason : string }
      (** a recipe step failed (e.g. a VFS write error) *)

val error_to_string : error -> string
(** Render an error exactly as the historical string errors read, so
    messages shown to users are unchanged. *)

val installed_library : prefix:string -> package:string -> string
(** [<prefix>/lib/lib<package>.so] (keeping an existing [lib] prefix). *)

val installed_executable : prefix:string -> package:string -> string
(** [<prefix>/bin/<package>]. *)

val build :
  ?obs:Ospack_obs.Obs.t ->
  vfs:Ospack_vfs.Vfs.t ->
  fs:Fsmodel.t ->
  compilers:Ospack_config.Compilers.t ->
  use_wrappers:bool ->
  mirror:Mirror.t option ->
  stage_root:string ->
  spec:Ospack_spec.Concrete.t ->
  node:string ->
  pkg:Ospack_package.Package.t ->
  prefix:string ->
  dep_prefix:(string -> string option) ->
  unit ->
  (result, error) Stdlib.result
(** Build [node] of [spec] into [prefix]. Fails without touching the
    prefix when a spec dependency has no installed prefix
    ([dep_prefix] returns [None]) or when mirror staging fails
    checksum verification.

    When [obs] is an enabled sink (default
    {!Ospack_obs.Obs.disabled}), the build records spans for each
    phase ([build.stage], [build.configure], [build.compile],
    [build.link], [build.install], [build.patch]) and counters for
    metadata operations, wrapper invocations, mirror fetches and RPATH
    rewrites. Every virtual-clock charge is mirrored onto the obs
    clock in the same order and amount, so traces are deterministic
    and [br_time] — computed from the builder's own clock — is
    unaffected by instrumentation. *)
