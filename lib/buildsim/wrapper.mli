(** Compiler wrapper argv rewriting (paper §3.5.2).

    Spack puts wrapper scripts named [cc], [cxx], [f77], [fc] in the
    build [PATH]; each forwards to the real vendor driver after adding
    [-I]/[-L] flags for every dependency prefix and [-Wl,-rpath] flags
    so the resulting binary finds its libraries with no environment at
    all (the paper's claim 2). This module is the pure rewriting core:
    a wrapper invocation maps an argv to the argv actually executed. *)

type lang = C | Cxx | F77 | Fc

type mode =
  | Compile  (** producing an object: header paths only *)
  | Link  (** producing an executable or library: lib paths + rpaths *)

val driver_name : Ospack_config.Compilers.toolchain -> lang -> string
(** The real driver the wrapper execs, e.g. [gcc]/[g++]/[gfortran] for
    the gcc toolchain, [xlf]/[xlf90] for xl Fortran. *)

val rewrite :
  toolchain:Ospack_config.Compilers.toolchain ->
  lang:lang ->
  mode:mode ->
  dep_prefixes:string list ->
  string list ->
  string list
(** [rewrite ~toolchain ~lang ~mode ~dep_prefixes argv] is the command
    actually executed: the real driver, the injected dependency flags
    ([-I <prefix>/include] when compiling; [-L<prefix>/lib] and
    [-Wl,-rpath,<prefix>/lib] when linking), then the caller's [argv]
    unchanged. *)

val rpaths_of_argv : string list -> string list
(** RPATH directories requested by an argv, in order and without
    duplicates. Understands the combined [-Wl,-rpath,/dir] form, the
    split [-Wl,-rpath -Wl,/dir] form, and plain [-rpath /dir] as passed
    to some vendor linkers. *)
