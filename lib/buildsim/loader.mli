(** A model of the dynamic loader (paper §2 and §3.5.2).

    HPC builds break at run time when [ld.so] resolves a NEEDED entry
    against the wrong library. The model reproduces the search order
    that matters for the paper's claim 2: each binary's own RPATH
    first, then [LD_LIBRARY_PATH], then the system directories. A
    Spack-built binary carries RPATHs for its whole link closure, so
    resolution succeeds with an empty environment; a native build in a
    nonstandard prefix does not. *)

type failure = {
  f_missing : string;  (** the soname that could not be resolved *)
  f_needed_by : string;  (** soname (or path) of the requesting binary *)
  f_searched : string list;  (** every directory tried, in order *)
}

val failure_to_string : failure -> string

val system_dirs : string list
(** The default trusted directories, searched last (["/lib"],
    ["/usr/lib"]). *)

val resolve :
  ?obs:Ospack_obs.Obs.t ->
  Ospack_vfs.Vfs.t ->
  path:string ->
  env:Env.t ->
  ((string * string) list, failure) result
(** [resolve vfs ~path ~env] loads the binary at [path] and resolves
    its NEEDED closure transitively, returning each distinct library
    once as [(soname, path)]. Every library's own RPATH takes effect
    for its own NEEDED entries, mirroring per-object DT_RPATH.
    Mutually-needing libraries terminate (each is resolved once).

    When [obs] is enabled, each call counts one [loader.resolutions],
    adds every candidate-path probe to [loader.probes], and records the
    per-call probe count in the [loader.probes_per_resolution]
    histogram. *)

val can_run :
  ?obs:Ospack_obs.Obs.t ->
  Ospack_vfs.Vfs.t ->
  path:string ->
  env:Env.t ->
  bool
(** Does the whole closure resolve? False when the binary itself is
    missing or unparseable. *)

val verify_prefix :
  ?obs:Ospack_obs.Obs.t ->
  Ospack_vfs.Vfs.t ->
  prefix:string ->
  env:Env.t ->
  (int, string * failure) result
(** Resolve every simulated ELF object found under [prefix] — the splice
    acceptance check: after rewiring RPATHs the whole prefix must still
    load with no environment help. Returns the number of objects
    resolved; the first failure wins, tagged with the path of the object
    that failed. *)
