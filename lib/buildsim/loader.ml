module Vfs = Ospack_vfs.Vfs
module Obs = Ospack_obs.Obs

type failure = {
  f_missing : string;
  f_needed_by : string;
  f_searched : string list;
}

let failure_to_string f =
  Printf.sprintf "%s: cannot open shared object file %s (searched: %s)"
    f.f_needed_by f.f_missing
    (String.concat ", " f.f_searched)

let system_dirs = [ "/lib"; "/usr/lib" ]

let read_binary vfs path =
  match Vfs.read_file vfs path with
  | Error _ -> Error ("no such binary: " ^ path)
  | Ok content -> Binary.parse content

let resolve ?(obs = Obs.disabled) vfs ~path ~env =
  Obs.count obs "loader.resolutions" 1;
  let probes = ref 0 in
  let ld_dirs = Env.path_list env "LD_LIBRARY_PATH" in
  let finish r =
    Obs.count obs "loader.probes" !probes;
    Obs.observe obs "loader.probes_per_resolution" (float_of_int !probes);
    r
  in
  match read_binary vfs path with
  | Error _ ->
      finish (Error { f_missing = path; f_needed_by = path; f_searched = [] })
  | Ok root ->
      let resolved = ref [] in
      let visited = Hashtbl.create 16 in
      (* depth-first over NEEDED; each object's own RPATH applies to its
         own entries (per-object DT_RPATH), then the process-wide
         LD_LIBRARY_PATH, then the trusted system directories *)
      let rec load (requester : Binary.t) =
        let search = requester.Binary.b_rpaths @ ld_dirs @ system_dirs in
        let rec needed_one = function
          | [] -> Ok ()
          | soname :: rest ->
              if Hashtbl.mem visited soname then needed_one rest
              else begin
                Hashtbl.add visited soname ();
                match
                  List.find_map
                    (fun dir ->
                      let candidate = dir ^ "/" ^ soname in
                      incr probes;
                      match read_binary vfs candidate with
                      | Ok b when b.Binary.b_soname = soname ->
                          Some (candidate, b)
                      | Ok _ | Error _ -> None)
                    search
                with
                | None ->
                    Error
                      {
                        f_missing = soname;
                        f_needed_by = requester.Binary.b_soname;
                        f_searched = search;
                      }
                | Some (lib_path, lib) -> (
                    resolved := (soname, lib_path) :: !resolved;
                    match load lib with
                    | Error _ as e -> e
                    | Ok () -> needed_one rest)
              end
        in
        needed_one requester.Binary.b_needed
      in
      (match load root with
      | Error f -> finish (Error f)
      | Ok () -> finish (Ok (List.rev !resolved)))

let can_run ?obs vfs ~path ~env = Result.is_ok (resolve ?obs vfs ~path ~env)

(* Resolve every simulated ELF object under [prefix] — the splice
   acceptance check: after rewiring RPATHs the whole prefix must still
   load with no environment help. Returns the number of objects resolved;
   the first failure wins, tagged with the object that failed. *)
let verify_prefix ?obs vfs ~prefix ~env =
  let binaries =
    List.filter_map
      (fun (path, kind) ->
        match kind with
        | Vfs.File -> (
            match Vfs.read_file vfs path with
            | Ok content when Result.is_ok (Binary.parse content) -> Some path
            | Ok _ | Error _ -> None)
        | Vfs.Dir | Vfs.Symlink -> None)
      (Vfs.walk vfs prefix)
  in
  let rec go n = function
    | [] -> Ok n
    | path :: rest -> (
        match resolve ?obs vfs ~path ~env with
        | Ok _ -> go (n + 1) rest
        | Error f -> Error (path, f))
  in
  go 0 binaries
