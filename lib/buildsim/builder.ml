module Vfs = Ospack_vfs.Vfs
module Compilers = Ospack_config.Compilers
module Concrete = Ospack_spec.Concrete
module Ast = Ospack_spec.Ast
module Version = Ospack_version.Version
module Package = Ospack_package.Package
module Build_model = Ospack_package.Build_model
module Build_step = Ospack_package.Build_step
module Obs = Ospack_obs.Obs

type result = { br_log : string list; br_time : float; br_invocations : int }

(* Typed failures so callers (the installer's accounting, observability
   counters) can classify without string-matching the message. *)
type error =
  | Staging of { node : string; reason : string }
  | Missing_dep of { node : string; dep : string }
  | Step_failed of { node : string; reason : string }

let error_to_string = function
  | Staging { node; reason } -> Printf.sprintf "%s: staging: %s" node reason
  | Missing_dep { node; dep } ->
      Printf.sprintf "%s: dependency %s is not installed" node dep
  | Step_failed { reason; _ } -> reason

(* the calibrated virtual-clock constants (see builder.mli) *)
let probe_cpu_seconds = 0.02
let probe_meta_ops = 6
let link_cpu_seconds = 0.4
let link_meta_ops = 4
let install_meta_ops_per_file = 2
let wrapper_seconds_per_invocation = 0.004

let installed_library ~prefix ~package =
  prefix ^ "/lib/" ^ Binary.soname_for_package package

let installed_executable ~prefix ~package = prefix ^ "/bin/" ^ package

(* Mutable per-build accounting: the virtual clock and the invocation
   counter the wrapper overhead is charged against. Every charge is
   mirrored to the obs sink (same amounts, same order), so enabled
   traces reproduce the cost model exactly while [br_time] — the number
   behind Figs. 10/11 — keeps coming from the local clock alone. *)
type clock = {
  fs : Fsmodel.t;
  use_wrappers : bool;
  obs : Obs.t;
  mutable seconds : float;
  mutable invocations : int;
}

let charge_meta clock ops =
  let dt = float_of_int ops *. clock.fs.Fsmodel.fs_meta_seconds in
  clock.seconds <- clock.seconds +. dt;
  Obs.advance clock.obs dt;
  Obs.count clock.obs "fs.meta_ops" ops

let charge_invocations clock ~count ~cpu_each ~meta_ops_each =
  clock.invocations <- clock.invocations + count;
  clock.seconds <- clock.seconds +. (float_of_int count *. cpu_each);
  Obs.advance clock.obs (float_of_int count *. cpu_each);
  charge_meta clock (count * meta_ops_each);
  if clock.use_wrappers then begin
    clock.seconds <-
      clock.seconds
      +. (float_of_int count *. wrapper_seconds_per_invocation);
    Obs.advance clock.obs
      (float_of_int count *. wrapper_seconds_per_invocation);
    Obs.count clock.obs "wrapper.invocations" count
  end

let probe_phase clock (model : Build_model.t) =
  Obs.span clock.obs ~cat:"build" "build.configure" (fun () ->
      charge_invocations clock ~count:model.Build_model.configure_checks
        ~cpu_each:probe_cpu_seconds ~meta_ops_each:probe_meta_ops)

let compile_phase clock (model : Build_model.t) =
  Obs.span clock.obs ~cat:"build" "build.compile" (fun () ->
      charge_invocations clock ~count:model.Build_model.source_files
        ~cpu_each:model.Build_model.compile_seconds
        ~meta_ops_each:model.Build_model.headers_per_compile);
  Obs.span clock.obs ~cat:"build" "build.link" (fun () ->
      charge_invocations clock ~count:model.Build_model.link_steps
        ~cpu_each:link_cpu_seconds ~meta_ops_each:link_meta_ops)

let install_phase clock (model : Build_model.t) =
  charge_meta clock
    (model.Build_model.install_files * install_meta_ops_per_file)

(* Which of the spec node's dependencies are link dependencies? A spec dep
   matches a package declaration either by name or through a virtual
   interface it provides (mvapich2 satisfies [depends_on "mpi"]). A dep
   whose every matching declaration is build-only stays out of NEEDED and
   RPATH (paper §3.5.2). *)
let is_link_dep (pkg : Package.t) (dep_node : Concrete.node) =
  let kinds =
    List.filter_map
      (fun (d : Package.dep) ->
        let declared = d.Package.d_spec.Ast.root.Ast.name in
        if
          declared = dep_node.Concrete.name
          || List.mem_assoc declared dep_node.Concrete.provided
        then Some d.Package.d_kind
        else None)
      pkg.Package.p_dependencies
  in
  match kinds with
  | [] -> true (* unknown provenance: link conservatively *)
  | ks -> List.exists (fun k -> k = Package.Link) ks

let ( let* ) = Stdlib.Result.bind

let write_file vfs path content =
  Stdlib.Result.map_error
    (fun e -> Printf.sprintf "%s: %s" path (Vfs.error_to_string e))
    (Vfs.write_file vfs path content)

let build ?(obs = Obs.disabled) ~vfs ~fs ~compilers ~use_wrappers ~mirror
    ~stage_root ~spec ~node ~pkg ~prefix ~dep_prefix () =
  (* all write failures below this point are step failures of this node *)
  let write_file vfs path content =
    Stdlib.Result.map_error
      (fun reason -> Step_failed { node; reason })
      (write_file vfs path content)
  in
  let node_info = Concrete.node_exn spec node in
  (* every spec dependency must already have an installed prefix *)
  let* deps =
    List.fold_left
      (fun acc dep_name ->
        let* acc = acc in
        match dep_prefix dep_name with
        | Some p -> Ok ((Concrete.node_exn spec dep_name, p) :: acc)
        | None -> Error (Missing_dep { node; dep = dep_name }))
      (Ok []) node_info.Concrete.deps
  in
  let deps = List.rev deps in
  let dep_prefixes = List.map snd deps in
  let link_deps =
    List.filter (fun (dn, _) -> is_link_dep pkg dn) deps
  in
  let link_prefixes = List.map snd link_deps in
  let link_sonames =
    List.map
      (fun ((dn : Concrete.node), _) ->
        Binary.soname_for_package dn.Concrete.name)
      link_deps
  in
  let link_libdirs = List.map (fun p -> p ^ "/lib") link_prefixes in
  let cname, cver = node_info.Concrete.compiler in
  let toolchain =
    match Compilers.find compilers ~name:cname ~version:cver with
    | Some tc -> tc
    | None -> Compilers.toolchain cname (Version.to_string cver)
  in
  let version = node_info.Concrete.version in
  let stage =
    Printf.sprintf "%s/%s-%s" stage_root node (Version.to_string version)
  in
  let wrapper_dir = stage ^ "/wrappers" in
  let log = ref [] in
  let logf fmt = Printf.ksprintf (fun l -> log := l :: !log) fmt in
  logf "==> staging %s@%s in %s (%s)" node (Version.to_string version) stage
    fs.Fsmodel.fs_name;
  (* stage the sources: from the mirror (checksum-verified) when one is
     configured, otherwise straight from upstream *)
  let* () =
    Obs.span obs ~cat:"build" "build.stage" (fun () ->
        match mirror with
        | None ->
            logf "==> fetching %s from upstream"
              (Mirror.archive_rel ~name:node ~version);
            Ok ()
        | Some m -> (
            match Mirror.fetch m ~name:node ~version with
            | Error e -> Error (Staging { node; reason = e })
            | Ok (content, md5) ->
                Obs.count obs "mirror.fetches" 1;
                logf "==> fetched %s from %s (md5 verified: %s)"
                  (Mirror.archive_rel ~name:node ~version)
                  (Mirror.root m) md5;
                write_file vfs
                  (stage ^ "/" ^ Mirror.archive_rel ~name:node ~version)
                  content))
  in
  (* the isolated environment of §3.5.1 *)
  let env =
    Env.for_build ~dep_prefixes ~wrapper_dir
      ~base:(Env.of_assoc [ ("PATH", "/usr/bin:/bin") ])
  in
  let* () =
    if not use_wrappers then Ok ()
    else
      List.fold_left
        (fun acc (wrapper, lang) ->
          let* () = acc in
          let driver = Wrapper.driver_name toolchain lang in
          write_file vfs
            (wrapper_dir ^ "/" ^ wrapper)
            (Printf.sprintf "#!/bin/sh\n# ospack wrapper\nexec %s \"$@\"\n"
               driver))
        (Ok ())
        [ ("cc", Wrapper.C); ("cxx", Wrapper.Cxx); ("f77", Wrapper.F77);
          ("fc", Wrapper.Fc) ]
  in
  (match Env.get env "CC" with
  | Some cc -> logf "==> CC=%s (-> %s)" cc (Wrapper.driver_name toolchain Wrapper.C)
  | None -> ());
  let clock = { fs; use_wrappers; obs; seconds = 0.0; invocations = 0 } in
  let model = pkg.Package.p_build_model in
  (* binaries carry NEEDED for the link deps; only wrapper builds burn in
     RPATHs (the paper's claim 2 distinction) *)
  let lib_binary =
    Binary.make ~kind:Binary.Lib
      ~soname:(Binary.soname_for_package node)
      ~needed:link_sonames
      ~rpaths:(if use_wrappers then link_libdirs else [])
  in
  let exe_binary =
    Binary.make ~kind:Binary.Exe ~soname:node ~needed:link_sonames
      ~rpaths:(if use_wrappers then (prefix ^ "/lib") :: link_libdirs else [])
  in
  (* wrapper builds burn one RPATH entry per link libdir into the
     library plus prefix/lib + link libdirs into the executable *)
  let rpath_rewrites =
    if use_wrappers then (2 * List.length link_libdirs) + 1 else 0
  in
  let install_artifacts () =
    Obs.span obs ~cat:"build" "build.install" (fun () ->
        install_phase clock model;
        Obs.count obs "build.rpath_rewrites" rpath_rewrites;
        let* () =
          write_file vfs
            (installed_library ~prefix ~package:node)
            (Binary.serialize lib_binary)
        in
        let* () =
          write_file vfs
            (installed_executable ~prefix ~package:node)
            (Binary.serialize exe_binary)
        in
        write_file vfs
          (prefix ^ "/include/" ^ node ^ ".h")
          (Printf.sprintf "/* %s %s */\n" node (Version.to_string version)))
  in
  let log_sample_compile () =
    if use_wrappers then
      let compile =
        Wrapper.rewrite ~toolchain ~lang:Wrapper.C ~mode:Wrapper.Compile
          ~dep_prefixes [ "-c"; node ^ ".c" ]
      in
      let link =
        Wrapper.rewrite ~toolchain ~lang:Wrapper.C ~mode:Wrapper.Link
          ~dep_prefixes:link_prefixes
          [ "-o"; node ]
      in
      List.iter (fun argv -> logf "    %s" (String.concat " " argv))
        [ compile; link ]
  in
  let run_step step =
    match (step : Build_step.t) with
    | Build_step.Configure args ->
        logf "==> ./configure %s" (String.concat " " args);
        probe_phase clock model;
        Ok ()
    | Build_step.Cmake args ->
        logf "==> cmake %s" (String.concat " " args);
        probe_phase clock model;
        Ok ()
    | Build_step.Make args when List.mem "install" args ->
        logf "==> make %s" (String.concat " " args);
        install_artifacts ()
    | Build_step.Make args ->
        logf "==> make %s" (String.concat " " args);
        log_sample_compile ();
        compile_phase clock model;
        Ok ()
    | Build_step.Python_setup args ->
        logf "==> python setup.py %s" (String.concat " " args);
        let* () =
          if List.mem "build" args then begin
            probe_phase clock model;
            compile_phase clock model;
            Ok ()
          end
          else Ok ()
        in
        if List.exists (fun a -> a = "install") args then install_artifacts ()
        else Ok ()
    | Build_step.Apply_patch file ->
        logf "==> patch -p1 < %s" file;
        Obs.span obs ~cat:"build" "build.patch" (fun () ->
            charge_meta clock 2);
        Ok ()
    | Build_step.Install_file { rel; content } ->
        logf "==> install %s" rel;
        charge_meta clock install_meta_ops_per_file;
        write_file vfs (prefix ^ "/" ^ rel) content
    | Build_step.Set_env (name, value) ->
        logf "==> export %s=%s" name value;
        write_file vfs (prefix ^ "/.ospack/env/" ^ name) value
    | Build_step.Note text ->
        logf "# %s" text;
        Ok ()
  in
  (* staging-time patches (§3.2.4), then the dispatched recipe *)
  let* () =
    List.fold_left
      (fun acc patch ->
        let* () = acc in
        run_step (Build_step.Apply_patch patch))
      (Ok ())
      (Package.patches_for pkg spec)
  in
  let recipe = Package.recipe_for pkg spec in
  let ctx =
    {
      Package.rc_spec = spec;
      rc_prefix = prefix;
      rc_dep_prefix =
        (fun name ->
          match dep_prefix name with
          | Some p -> p
          | None -> raise Not_found);
    }
  in
  let* () =
    List.fold_left
      (fun acc step ->
        let* () = acc in
        run_step step)
      (Ok ()) (recipe ctx)
  in
  logf "==> %s@%s installed to %s (%.1f simulated s, %d compiler invocations)"
    node (Version.to_string version) prefix clock.seconds clock.invocations;
  Ok
    {
      br_log = List.rev !log;
      br_time = clock.seconds;
      br_invocations = clock.invocations;
    }
