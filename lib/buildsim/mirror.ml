module Vfs = Ospack_vfs.Vfs
module Md5 = Ospack_hash.Md5
module Version = Ospack_version.Version
module Repository = Ospack_package.Repository
module Package = Ospack_package.Package

type t = { vfs : Vfs.t; root : string }

let create vfs ~root = { vfs; root }
let root t = t.root

let archive_rel ~name ~version =
  Printf.sprintf "%s-%s.tar.gz" name (Version.to_string version)

let archive_content ~name ~version =
  Printf.sprintf "source archive: %s %s\n" name (Version.to_string version)

let archive_path t ~name ~version = t.root ^ "/" ^ archive_rel ~name ~version

(* checksums live in a sidecar next to each archive, the way real mirrors
   publish <archive>.md5 files *)
let checksum_path t ~name ~version = archive_path t ~name ~version ^ ".md5"

let write_exn t path content =
  match Vfs.write_file t.vfs path content with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mirror: " ^ Vfs.error_to_string e)

let add t ~name ~version =
  let content = archive_content ~name ~version in
  write_exn t (archive_path t ~name ~version) content;
  write_exn t (checksum_path t ~name ~version) (Md5.hex_digest content)

let populate t repo =
  List.fold_left
    (fun count pkg ->
      List.fold_left
        (fun count version ->
          add t ~name:pkg.Package.p_name ~version;
          count + 1)
        count
        (Package.known_versions pkg))
    0
    (Repository.all_packages repo)

let fetch t ~name ~version =
  let rel = archive_rel ~name ~version in
  match Vfs.read_file t.vfs (archive_path t ~name ~version) with
  | Error _ ->
      Error
        (Printf.sprintf "no archive %s for %s@%s in mirror %s" rel name
           (Version.to_string version) t.root)
  | Ok content -> (
      match Vfs.read_file t.vfs (checksum_path t ~name ~version) with
      | Error _ -> Error (Printf.sprintf "no archive checksum for %s" rel)
      | Ok expected ->
          let actual = Md5.hex_digest content in
          if actual = expected then Ok (content, actual)
          else
            Error
              (Printf.sprintf "checksum mismatch for %s: expected %s, got %s"
                 rel expected actual))
