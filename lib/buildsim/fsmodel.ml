type t = { fs_name : string; fs_meta_seconds : float }

let tmpfs = { fs_name = "tmpfs"; fs_meta_seconds = 0.0002 }
let nfs = { fs_name = "nfs"; fs_meta_seconds = 0.002 }

let pp ppf t =
  Format.fprintf ppf "%s (%.1f ms/metadata op)" t.fs_name
    (1000.0 *. t.fs_meta_seconds)
