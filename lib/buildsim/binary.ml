type kind = Exe | Lib

type t = {
  b_kind : kind;
  b_soname : string;
  b_needed : string list;
  b_rpaths : string list;
}

let magic = "!ospack-binary 1"

let make ~kind ~soname ~needed ~rpaths =
  { b_kind = kind; b_soname = soname; b_needed = needed; b_rpaths = rpaths }

let kind_to_string = function Exe -> "exe" | Lib -> "lib"

let serialize t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("kind " ^ kind_to_string t.b_kind ^ "\n");
  Buffer.add_string buf ("soname " ^ t.b_soname ^ "\n");
  List.iter (fun n -> Buffer.add_string buf ("needed " ^ n ^ "\n")) t.b_needed;
  List.iter (fun r -> Buffer.add_string buf ("rpath " ^ r ^ "\n")) t.b_rpaths;
  Buffer.contents buf

let parse content =
  let lines =
    String.split_on_char '\n' content |> List.filter (fun l -> l <> "")
  in
  match lines with
  | m :: fields when m = magic ->
      let kind = ref None
      and soname = ref None
      and needed = ref []
      and rpaths = ref []
      and err = ref None in
      List.iter
        (fun line ->
          if !err = None then
            match String.index_opt line ' ' with
            | None -> err := Some ("malformed field: " ^ line)
            | Some i -> (
                let key = String.sub line 0 i in
                let value =
                  String.sub line (i + 1) (String.length line - i - 1)
                in
                match key with
                | "kind" -> (
                    match value with
                    | "exe" -> kind := Some Exe
                    | "lib" -> kind := Some Lib
                    | k -> err := Some ("unknown binary kind: " ^ k))
                | "soname" -> soname := Some value
                | "needed" -> needed := value :: !needed
                | "rpath" -> rpaths := value :: !rpaths
                | k -> err := Some ("unknown field: " ^ k)))
        fields;
      (match (!err, !kind, !soname) with
      | Some e, _, _ -> Error e
      | None, None, _ -> Error "missing kind field"
      | None, _, None -> Error "missing soname field"
      | None, Some kind, Some soname ->
          Ok
            {
              b_kind = kind;
              b_soname = soname;
              b_needed = List.rev !needed;
              b_rpaths = List.rev !rpaths;
            })
  | _ -> Error "not an ospack binary (missing magic line)"

(* rewrite every RPATH entry in place — the splice primitive: swapping a
   dependency's installed prefix for another without touching NEEDED *)
let map_rpaths f t = { t with b_rpaths = List.map f t.b_rpaths }

let soname_for_package name =
  let prefixed =
    if String.length name >= 3 && String.sub name 0 3 = "lib" then name
    else "lib" ^ name
  in
  prefixed ^ ".so"
