(** Source mirrors (paper §3.4.3 / §4.1).

    Sites without outside connectivity stage builds from a local
    mirror: a directory of source archives named
    [<package>-<version>.tar.gz], each with a recorded checksum. The
    builder fetches the staged archive from the mirror and verifies
    its md5 before unpacking — a tampered or truncated archive fails
    the build at staging time, never at run time. *)

type t

val create : Ospack_vfs.Vfs.t -> root:string -> t
(** A mirror rooted at a directory of the virtual filesystem. *)

val root : t -> string

val archive_rel : name:string -> version:Ospack_version.Version.t -> string
(** The mirror-relative archive name: [<name>-<version>.tar.gz]. *)

val archive_content :
  name:string -> version:Ospack_version.Version.t -> string
(** The canonical (deterministic) archive payload for a package
    version — the simulator's stand-in for a real tarball. *)

val populate : t -> Ospack_package.Repository.t -> int
(** Mirror every declared version of every package in the repository,
    recording each archive's md5 in the mirror's checksum index.
    Returns the number of archives written. *)

val add : t -> name:string -> version:Ospack_version.Version.t -> unit
(** Mirror a single package version. *)

val fetch :
  t ->
  name:string ->
  version:Ospack_version.Version.t ->
  (string * string, string) result
(** [fetch t ~name ~version] reads the archive and verifies it against
    the recorded checksum, returning [(content, md5)]. Errors are
    human-readable: ["no archive ..."] when the file (or its recorded
    checksum) is absent, ["checksum mismatch ..."] when verification
    fails. *)
