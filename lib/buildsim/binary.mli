(** The simulated binary format.

    A "binary" in the virtual filesystem is a small text file carrying
    exactly the ELF dynamic-section fields the paper's claims depend
    on: the soname, the NEEDED list, and the RPATH — enough for
    {!Loader} to model [ld.so] and for the buildcache's textual
    prefix relocation to retarget RPATHs on extraction. *)

type kind = Exe | Lib

type t = {
  b_kind : kind;
  b_soname : string;  (** for an executable, its program name *)
  b_needed : string list;  (** DT_NEEDED: sonames of direct deps *)
  b_rpaths : string list;  (** DT_RPATH: search dirs burned in at link *)
}

val make :
  kind:kind -> soname:string -> needed:string list -> rpaths:string list -> t

val serialize : t -> string
(** A line-oriented rendering with a magic first line; RPATH entries
    appear verbatim so prefix relocation works by plain text
    substitution. *)

val parse : string -> (t, string) result
(** Inverts {!serialize} exactly; content without the magic line (or
    with malformed fields) is rejected. *)

val map_rpaths : (string -> string) -> t -> t
(** Rewrite every RPATH entry in place — the splice primitive: swap a
    dependency's installed prefix for another without touching NEEDED. *)

val soname_for_package : string -> string
(** The soname convention used throughout the simulator:
    [lib<name>.so], keeping an existing [lib] prefix
    ([soname_for_package "libelf" = "libelf.so"]). *)
