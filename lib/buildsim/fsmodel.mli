(** Filesystem cost models for the build simulator (paper §3.5.3).

    The paper's Fig. 10 compares builds staged on NFS against builds
    staged on node-local tmp. The difference is almost entirely
    metadata latency: configure probes, header opens, and install-time
    file creation each pay one small-operation round trip. A model is
    just a name and that per-operation latency; the builder multiplies
    it by the operation counts of the package's {!Ospack_package.Build_model}. *)

type t = {
  fs_name : string;  (** ["tmpfs"] or ["nfs"] — shown in logs *)
  fs_meta_seconds : float;
      (** simulated latency of one metadata operation (stat, open,
          create, byte-compile write) *)
}

val tmpfs : t
(** Node-local temporary storage: metadata ops are essentially free
    (0.2 ms). *)

val nfs : t
(** Parallel/network filesystem: each metadata op pays a network round
    trip (2 ms) — an order of magnitude over {!tmpfs}, matching the
    overhead band of the paper's Fig. 11. *)

val pp : Format.formatter -> t -> unit
