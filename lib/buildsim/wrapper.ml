module Compilers = Ospack_config.Compilers

type lang = C | Cxx | F77 | Fc
type mode = Compile | Link

let driver_name (tc : Compilers.toolchain) = function
  | C -> tc.Compilers.tc_cc
  | Cxx -> tc.Compilers.tc_cxx
  | F77 -> tc.Compilers.tc_f77
  | Fc -> tc.Compilers.tc_fc

let rewrite ~toolchain ~lang ~mode ~dep_prefixes argv =
  let injected =
    List.concat_map
      (fun prefix ->
        match mode with
        | Compile -> [ "-I"; prefix ^ "/include" ]
        | Link ->
            let lib = prefix ^ "/lib" in
            [ "-L" ^ lib; "-Wl,-rpath," ^ lib ])
      dep_prefixes
  in
  (driver_name toolchain lang :: injected) @ argv

let rpaths_of_argv argv =
  let strip_prefix ~prefix s =
    let pl = String.length prefix in
    if String.length s >= pl && String.sub s 0 pl = prefix then
      Some (String.sub s pl (String.length s - pl))
    else None
  in
  let rec collect acc = function
    | [] -> List.rev acc
    | arg :: rest -> (
        match strip_prefix ~prefix:"-Wl,-rpath," arg with
        | Some dir -> collect (dir :: acc) rest
        | None -> (
            match arg with
            | "-Wl,-rpath" | "-rpath" -> (
                (* split form: the directory is the next argument, itself
                   possibly wrapped for the linker *)
                match rest with
                | [] -> List.rev acc
                | next :: rest' ->
                    let dir =
                      match strip_prefix ~prefix:"-Wl," next with
                      | Some d -> d
                      | None -> next
                    in
                    collect (dir :: acc) rest')
            | _ -> collect acc rest))
  in
  let seen = Hashtbl.create 8 in
  collect [] argv
  |> List.filter (fun d ->
         if Hashtbl.mem seen d then false
         else begin
           Hashtbl.add seen d ();
           true
         end)
