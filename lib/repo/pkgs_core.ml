open Ospack_package.Package
module Build_model = Ospack_package.Build_model
module Build_step = Ospack_package.Build_step

(* Build models for the seven packages of Figs. 10/11 are hand-tuned so the
   simulated build-time experiment reproduces the paper's overhead bands:
   configure-heavy autotools packages (libpng, libelf) suffer most from NFS
   latency and wrapper overhead; compile-dominated CMake builds (dyninst)
   barely notice the wrappers. *)

let autotools ~sources ~checks ~csec =
  Build_model.make ~system:Build_model.Autotools ~source_files:sources
    ~headers_per_compile:10 ~configure_checks:checks ~link_steps:2
    ~compile_seconds:csec ()

let cmake_model ~sources ~checks ~csec =
  Build_model.make ~system:Build_model.Cmake ~source_files:sources
    ~headers_per_compile:18 ~configure_checks:checks ~link_steps:3
    ~compile_seconds:csec ()

let mpileaks =
  make_pkg "mpileaks"
    ~description:"Tool to detect and report leaked MPI objects."
    [
      homepage "https://github.com/hpc/mpileaks";
      url "https://github.com/hpc/mpileaks/releases/download/v1.0/mpileaks-1.0.tar.gz";
      version "1.0" ~md5:"8838c574b39202a57d7c2d68692718aa";
      version "1.1" ~md5:"4282eddb08ad8d36df15b06d4be38bcb";
      version "1.2";
      version "1.4";
      depends_on "mpi";
      depends_on "callpath";
      variant "debug" ~descr:"Build with debug symbols and leak tracebacks";
      build_model (autotools ~sources:22 ~checks:90 ~csec:0.14);
      install
        (fun ctx ->
          [
            configure
              [
                "--prefix=" ^ ctx.rc_prefix;
                "--with-callpath=" ^ dep_prefix ctx "callpath";
              ];
            make [];
            make [ "install" ];
          ]);
    ]

let callpath =
  make_pkg "callpath"
    ~description:"Library for representing callpaths consistently in \
                  distributed-memory performance tools."
    [
      version "0.9";
      version "1.0";
      version "1.1";
      depends_on "dyninst";
      depends_on "mpi";
      variant "debug" ~descr:"Debug build";
      build_model (autotools ~sources:40 ~checks:180 ~csec:0.12);
    ]

let dyninst =
  make_pkg "dyninst"
    ~description:"API for dynamic binary instrumentation."
    [
      version "8.1.1";
      version "8.1.2";
      version "8.2";
      depends_on "libelf";
      depends_on "libdwarf";
      depends_on "boost" ~when_:"@8.2:";
      (* Fig. 10/11: dyninst's build is dominated by heavy C++ compiles,
         so wrapper overhead is in the noise *)
      build_model (cmake_model ~sources:300 ~checks:120 ~csec:0.80);
      (* paper Fig. 4: releases up to 8.1 build with autotools, newer
         releases with CMake *)
      install_when "@:8.1"
        (fun ctx ->
          [
            configure [ "--prefix=" ^ ctx.rc_prefix ];
            make [];
            make [ "install" ];
          ]);
      install
        (fun ctx ->
          [
            cmake [ "-DCMAKE_INSTALL_PREFIX=" ^ ctx.rc_prefix; ".." ];
            make [];
            make [ "install" ];
          ]);
    ]

let libdwarf =
  make_pkg "libdwarf"
    ~description:"DWARF debugging-information consumer library."
    [
      version "20130729" ~md5:"4cc5e48693f7b93b7aa0261e63c0e21d";
      version "20130207";
      depends_on "libelf";
      build_model (autotools ~sources:110 ~checks:110 ~csec:0.28);
    ]

let libelf =
  make_pkg "libelf"
    ~description:"ELF object file access library."
    [
      version "0.8.10";
      version "0.8.12";
      version "0.8.13" ~md5:"4136d7b4c04df68b686570afa26988ac";
      build_model (autotools ~sources:36 ~checks:240 ~csec:0.11);
    ]

let libpng =
  make_pkg "libpng"
    ~description:"Official PNG reference library."
    [
      version "1.6.16";
      version "1.5.13";
      depends_on "zlib";
      build_model (autotools ~sources:28 ~checks:340 ~csec:0.05);
    ]

let lapack =
  make_pkg "lapack"
    ~description:"Netlib LAPACK: linear algebra package (CMake build)."
    [
      version "3.5.0";
      version "3.4.2";
      depends_on "blas";
      provides "lapack-interface";
      build_model (cmake_model ~sources:190 ~checks:90 ~csec:0.22);
      install
        (fun ctx ->
          [
            cmake [ "-DCMAKE_INSTALL_PREFIX=" ^ ctx.rc_prefix; ".." ];
            make [];
            make [ "install" ];
          ]);
    ]

(* --- MPI implementations: the versioned virtual providers of Fig. 5 --- *)

let mpich =
  make_pkg "mpich"
    ~description:"MPICH: high-performance implementation of MPI."
    [
      version "3.0.4" ~md5:"9c5d5d4fe1e17dd12153f40bc5b6dbc0";
      version "3.0.3";
      version "1.4.1";
      provides "mpi@:3" ~when_:"@3:";
      provides "mpi@:1" ~when_:"@1:1.9";
      variant "verbs" ~descr:"Build with InfiniBand verbs support";
      build_model (autotools ~sources:260 ~checks:600 ~csec:0.25);
    ]

let mvapich2 =
  make_pkg "mvapich2"
    ~description:"MVAPICH2: MPI over InfiniBand."
    [
      version "1.9" ~md5:"5dc58ed08fd3142c260b70fe297e127c";
      version "2.0";
      provides "mpi@:2.2" ~when_:"@1.9";
      provides "mpi@:3.0" ~when_:"@2.0";
      variant "hwloc" ~descr:"Use hwloc for process binding";
      depends_on "hwloc@1.8" ~when_:"+hwloc";
      build_model (autotools ~sources:300 ~checks:650 ~csec:0.24);
    ]

let mvapich =
  make_pkg "mvapich"
    ~description:"Legacy MVAPICH 1.x."
    [ version "1.2"; provides "mpi@:1" ]

let openmpi =
  make_pkg "openmpi"
    ~description:"Open MPI: open-source MPI-2 implementation."
    [
      version "1.4.7";
      version "1.6.5";
      version "1.8.2";
      provides "mpi@:2.2";
      variant "psm" ~descr:"Build with PSM support";
      variant "hwloc" ~descr:"Use hwloc for process binding";
      depends_on "hwloc@1.9" ~when_:"+hwloc";
      build_model (autotools ~sources:340 ~checks:700 ~csec:0.23);
    ]

let bgq_mpi =
  make_pkg "bgq-mpi"
    ~description:"IBM Blue Gene/Q system MPI (vendor driver stack)."
    [
      version "1.0";
      provides "mpi@:2.2";
      conflicts "=linux-x86_64" ~msg:"BG/Q MPI only exists on BG/Q";
      conflicts "=cray_xe6" ~msg:"BG/Q MPI only exists on BG/Q";
    ]

let cray_mpi =
  make_pkg "cray-mpi"
    ~description:"Cray MPT: vendor MPI for Cray systems."
    [
      version "7.0.1";
      provides "mpi@:3.0";
      conflicts "=linux-x86_64" ~msg:"Cray MPT only exists on Cray";
      conflicts "=bgq" ~msg:"Cray MPT only exists on Cray";
    ]

(* --- BLAS providers --- *)

let atlas =
  make_pkg "atlas"
    ~description:"Automatically Tuned Linear Algebra Software."
    [ version "3.10.2"; version "3.8.4"; provides "blas" ]

let netlib_blas =
  make_pkg "netlib-blas"
    ~description:"Netlib reference BLAS."
    [ version "3.5.0"; provides "blas" ]

let mkl =
  make_pkg "mkl"
    ~description:"Intel Math Kernel Library (site-licensed binary)."
    [
      version "11.2";
      provides "blas";
      provides "lapack-interface";
      conflicts "=bgq" ~msg:"MKL does not support Blue Gene/Q";
    ]

(* --- gperftools: the combinatorial-naming use case (§4.1, Fig. 12) --- *)

let gperftools =
  make_pkg "gperftools"
    ~description:"Google performance tools: thread-safe tcmalloc and \
                  lightweight profilers."
    [
      version "2.4" ~md5:"2171cea3bbe053036fb5d5d25176a160";
      version "2.3";
      variant "libunwind" ~descr:"Unwind stacks with libunwind";
      depends_on "libunwind" ~when_:"+libunwind";
      patch "gperftools2.4_xlc.patch" ~when_:"@2.4%xl";
      build_model (autotools ~sources:90 ~checks:210 ~csec:0.30);
      install_when "=bgq%xl"
        (fun ctx ->
          [
            configure
              [ "--prefix=" ^ ctx.rc_prefix; "LDFLAGS=-qnostaticlink" ];
            make [];
            make [ "install" ];
          ]);
      install_when "=bgq"
        (fun ctx ->
          [
            configure [ "--prefix=" ^ ctx.rc_prefix; "LDFLAGS=-dynamic" ];
            make [];
            make [ "install" ];
          ]);
      install
        (fun ctx ->
          [ configure [ "--prefix=" ^ ctx.rc_prefix ]; make []; make [ "install" ] ]);
    ]

let libunwind =
  make_pkg "libunwind"
    ~description:"Call-chain unwinding API."
    [ version "1.1"; version "1.0.1" ]

(* --- common HPC dependency libraries --- *)

let simple name ~descr versions deps =
  make_pkg name ~description:descr
    (List.map (fun v -> version v) versions
    @ List.map (fun d -> depends_on d) deps)

let zlib = simple "zlib" ~descr:"Lossless compression library." [ "1.2.8"; "1.2.7" ] []
let bzip2 = simple "bzip2" ~descr:"Block-sorting compressor library." [ "1.0.6" ] []
let ncurses = simple "ncurses" ~descr:"Terminal control library." [ "5.9" ] []

let readline =
  simple "readline" ~descr:"GNU line-editing library." [ "6.3" ] [ "ncurses" ]

let sqlite = simple "sqlite" ~descr:"Embedded SQL database." [ "3.8.5" ] []

let openssl =
  simple "openssl" ~descr:"TLS/SSL and crypto library." [ "1.0.1h" ] [ "zlib" ]

let boost =
  make_pkg "boost"
    ~description:"Peer-reviewed portable C++ source libraries."
    [
      version "1.55.0";
      version "1.54.0";
      version "1.49.0";
      version "1.47.0";
      variant "mpi" ~descr:"Build Boost.MPI";
      depends_on "mpi" ~when_:"+mpi";
      build_model (cmake_model ~sources:260 ~checks:150 ~csec:0.55);
    ]

let cmake_pkg =
  simple "cmake" ~descr:"Cross-platform build-system generator."
    [ "3.0.2"; "2.8.10" ] []

let gsl = simple "gsl" ~descr:"GNU Scientific Library." [ "1.16" ] []

let hdf5 =
  make_pkg "hdf5"
    ~description:"HDF5 data model and file format."
    [
      version "1.8.13";
      version "1.8.12";
      depends_on "zlib";
      variant "mpi" ~default:true ~descr:"Enable parallel HDF5";
      depends_on "mpi" ~when_:"+mpi";
      build_model (autotools ~sources:420 ~checks:900 ~csec:0.22);
    ]

let silo =
  make_pkg "silo"
    ~description:"Mesh and field I/O library (LLNL)."
    [
      version "4.9.1";
      version "4.8";
      depends_on "hdf5";
      (* the paper's §3.5 example: --with-silo conventions differ *)
      install
        (fun ctx ->
          [
            configure
              [
                "--prefix=" ^ ctx.rc_prefix;
                "--with-hdf5=" ^ dep_prefix ctx "hdf5";
              ];
            make [];
            make [ "install" ];
          ]);
    ]

let hypre =
  make_pkg "hypre"
    ~description:"Scalable linear solvers and multigrid methods (LLNL)."
    [
      version "2.9.0b";
      version "2.8.0b";
      depends_on "mpi";
      depends_on "blas";
      depends_on "lapack";
    ]

let samrai =
  make_pkg "samrai"
    ~description:"Structured adaptive mesh refinement library (LLNL)."
    [
      version "3.8.4";
      version "3.7.3";
      depends_on "mpi";
      depends_on "hdf5";
      depends_on "boost" ~when_:"@3.8:";
    ]

let papi =
  simple "papi" ~descr:"Performance API for hardware counters." [ "5.3.0" ] []

let hwloc = simple "hwloc" ~descr:"Hardware locality library." [ "1.9"; "1.8" ] []

let global_arrays =
  make_pkg "ga"
    ~description:"Global Arrays PGAS toolkit."
    [ version "5.3"; depends_on "mpi"; depends_on "blas" ]

let tcl = simple "tcl" ~descr:"Tool Command Language." [ "8.6.2"; "8.5.15" ] []
let tk = simple "tk" ~descr:"Tk GUI toolkit." [ "8.6.2" ] [ "tcl" ]

let hpdf =
  make_pkg "hpdf"
    ~description:"libHaru PDF generation library."
    [
      version "2.3.0";
      depends_on "zlib";
      variant "png" ~descr:"PNG image embedding";
      depends_on "libpng" ~when_:"+png";
    ]

let gerris =
  make_pkg "gerris"
    ~description:"Computational fluid dynamics solver (needs MPI-2, Fig. 5)."
    [ version "1.3.2"; depends_on "mpi@2:" ]

let rose =
  make_pkg "rose"
    ~description:"ROSE source-to-source compiler framework (§3.2.4: \
                  boost version depends on the compiler)."
    [
      version "0.9.5a";
      depends_on "boost@1.47.0" ~when_:"%gcc@:4.7";
      depends_on "boost@1.55.0" ~when_:"%gcc@4.8:";
      depends_on "boost@1.55.0" ~when_:"%intel";
      depends_on "boost@1.55.0" ~when_:"%clang";
      depends_on "boost@1.55.0" ~when_:"%xl";
      depends_on "boost@1.55.0" ~when_:"%pgi";
    ]

let packages =
  [
    mpileaks; callpath; dyninst; libdwarf; libelf; libpng; lapack; mpich;
    mvapich2; mvapich; openmpi; bgq_mpi; cray_mpi; atlas; netlib_blas; mkl;
    gperftools; libunwind; zlib; bzip2; ncurses; readline; sqlite; openssl;
    boost; cmake_pkg; gsl; hdf5; silo; hypre; samrai; papi; hwloc;
    global_arrays; tcl; tk; hpdf; gerris; rose;
  ]
