(* The virtual filesystem: POSIX-ish semantics, symlink resolution, walk,
   removal, operation counters. *)

open Ospack_vfs

let err = Alcotest.testable Vfs.pp_error ( = )

let vpath_cases () =
  Alcotest.(check string) "normalize dots" "/a/b" (Vpath.normalize "/a/./b/");
  Alcotest.(check string) "normalize dotdot" "/a/c" (Vpath.normalize "/a/b/../c");
  Alcotest.(check string) "dotdot above root" "/x" (Vpath.normalize "/../../x");
  Alcotest.(check string) "duplicate slashes" "/a/b" (Vpath.normalize "//a///b");
  Alcotest.(check string) "join relative" "/a/b/c" (Vpath.join "/a/b" "c");
  Alcotest.(check string) "join absolute" "/c" (Vpath.join "/a/b" "/c");
  Alcotest.(check string) "join with updir" "/a/c" (Vpath.join "/a/b" "../c");
  Alcotest.(check string) "dirname" "/a" (Vpath.dirname "/a/b");
  Alcotest.(check string) "dirname of root" "/" (Vpath.dirname "/");
  Alcotest.(check string) "basename" "b" (Vpath.basename "/a/b")

let file_roundtrip () =
  let fs = Vfs.create () in
  Alcotest.(check (result unit err)) "write" (Ok ())
    (Vfs.write_file fs "/opt/pkg/lib/libfoo.so" "content");
  Alcotest.(check (result string err)) "read back" (Ok "content")
    (Vfs.read_file fs "/opt/pkg/lib/libfoo.so");
  Alcotest.(check (result unit err)) "overwrite" (Ok ())
    (Vfs.write_file fs "/opt/pkg/lib/libfoo.so" "v2");
  Alcotest.(check (result string err)) "overwritten" (Ok "v2")
    (Vfs.read_file fs "/opt/pkg/lib/libfoo.so");
  Alcotest.(check bool) "parents created" true (Vfs.is_dir fs "/opt/pkg");
  Alcotest.(check bool) "missing file" false (Vfs.exists fs "/opt/pkg/nope")

let error_cases () =
  let fs = Vfs.create () in
  ignore (Vfs.write_file fs "/a/file" "x");
  Alcotest.(check (result string err)) "read missing"
    (Error (Vfs.Not_found "/a/nope"))
    (Vfs.read_file fs "/a/nope");
  Alcotest.(check bool) "file in the way of mkdir" true
    (Result.is_error (Vfs.mkdir_p fs "/a/file/sub"));
  Alcotest.(check bool) "write through a file component" true
    (Result.is_error (Vfs.write_file fs "/a/file/sub/x" "y"));
  Alcotest.(check bool) "read a directory" true
    (Result.is_error (Vfs.read_file fs "/a"));
  Alcotest.(check bool) "write over a directory" true
    (Result.is_error (Vfs.write_file fs "/a" "y"))

let symlink_cases () =
  let fs = Vfs.create () in
  ignore (Vfs.write_file fs "/opt/real/bin/tool" "binary");
  Alcotest.(check (result unit err)) "make link" (Ok ())
    (Vfs.symlink fs ~target:"/opt/real" ~link:"/views/tool");
  Alcotest.(check (result string err)) "read through link" (Ok "binary")
    (Vfs.read_file fs "/views/tool/bin/tool");
  Alcotest.(check (result string err)) "readlink" (Ok "/opt/real")
    (Vfs.readlink fs "/views/tool");
  Alcotest.(check (result string err)) "resolve canonicalizes"
    (Ok "/opt/real/bin/tool")
    (Vfs.resolve fs "/views/tool/bin/tool");
  (* relative link targets resolve against the link's directory *)
  ignore (Vfs.symlink fs ~target:"real/bin" ~link:"/opt/alias");
  Alcotest.(check (result string err)) "relative target" (Ok "binary")
    (Vfs.read_file fs "/opt/alias/tool");
  (* links may dangle; resolution reports the missing target *)
  ignore (Vfs.symlink fs ~target:"/nowhere" ~link:"/views/dangling");
  Alcotest.(check bool) "dangling does not resolve" false
    (Vfs.exists fs "/views/dangling");
  Alcotest.(check bool) "kind_of sees the link" true
    (Vfs.kind_of fs "/views/dangling" = Some Vfs.Symlink);
  Alcotest.(check bool) "cannot overwrite with a link" true
    (Result.is_error (Vfs.symlink fs ~target:"/x" ~link:"/views/tool"))

let symlink_loops () =
  let fs = Vfs.create () in
  ignore (Vfs.symlink fs ~target:"/b" ~link:"/a");
  ignore (Vfs.symlink fs ~target:"/a" ~link:"/b");
  match Vfs.resolve fs "/a" with
  | Error (Vfs.Symlink_loop _) -> ()
  | Error e -> Alcotest.failf "expected loop, got %s" (Vfs.error_to_string e)
  | Ok p -> Alcotest.failf "resolved a loop to %s" p

let ls_and_walk () =
  let fs = Vfs.create () in
  ignore (Vfs.write_file fs "/p/bin/tool" "x");
  ignore (Vfs.write_file fs "/p/lib/libx.so" "y");
  ignore (Vfs.symlink fs ~target:"/p/lib/libx.so" ~link:"/p/lib/libx.so.1");
  Alcotest.(check (result (slist string compare) err)) "ls" (Ok [ "bin"; "lib" ])
    (Vfs.ls fs "/p");
  let walked = Vfs.walk fs "/p" in
  Alcotest.(check int) "walk entries" 5 (List.length walked);
  Alcotest.(check bool) "walk reports symlink kind" true
    (List.mem ("/p/lib/libx.so.1", Vfs.Symlink) walked);
  Alcotest.(check int) "walk of a file is empty" 0
    (List.length (Vfs.walk fs "/p/bin/tool"))

let removal () =
  let fs = Vfs.create () in
  ignore (Vfs.write_file fs "/p/a" "1");
  ignore (Vfs.write_file fs "/p/d/b" "2");
  Alcotest.(check bool) "refuse non-empty dir" true
    (Result.is_error (Vfs.remove fs "/p"));
  Alcotest.(check (result unit err)) "recursive remove" (Ok ())
    (Vfs.remove fs ~recursive:true "/p");
  Alcotest.(check bool) "gone" false (Vfs.exists fs "/p");
  Alcotest.(check bool) "remove missing errors" true
    (Result.is_error (Vfs.remove fs "/p"));
  (* removing a symlink leaves its target *)
  ignore (Vfs.write_file fs "/t/file" "x");
  ignore (Vfs.symlink fs ~target:"/t/file" ~link:"/l");
  ignore (Vfs.remove fs "/l");
  Alcotest.(check bool) "target survives" true (Vfs.exists fs "/t/file")

let counters () =
  let fs = Vfs.create () in
  ignore (Vfs.write_file fs "/deep/a/b/c/file" "x");
  let c = Vfs.counters fs in
  Alcotest.(check bool) "writes counted" true (c.Vfs.write > 0);
  Alcotest.(check bool) "mkdirs counted" true (c.Vfs.mkdir >= 4);
  Alcotest.(check bool) "stats counted" true (c.Vfs.stat > 0);
  Vfs.reset_counters fs;
  Alcotest.(check int) "reset" 0 (Vfs.counters fs).Vfs.write

(* property: apply writes in order; the last successful write per path is
   what reads back *)
let arb_files =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (pair
           (map
              (fun parts -> "/" ^ String.concat "/" parts)
              (list_size (int_range 1 4)
                 (oneofl [ "a"; "b"; "c"; "dir"; "f" ])))
           (string_size ~gen:printable (int_bound 20))))
  in
  QCheck.make gen

let rename_cases () =
  let fs = Vfs.create () in
  ignore (Vfs.write_file fs "/db/cache.json.tmp" "v1");
  (* plain move, parents created on demand *)
  Alcotest.(check (result unit err)) "move" (Ok ())
    (Vfs.rename fs ~src:"/db/cache.json.tmp" ~dst:"/db/deep/cache.json");
  Alcotest.(check (result string err)) "content travels" (Ok "v1")
    (Vfs.read_file fs "/db/deep/cache.json");
  Alcotest.(check bool) "source gone" false (Vfs.exists fs "/db/cache.json.tmp");
  (* the write-then-rename pattern: rename atomically replaces the
     destination, readers see old or new content, never a torn file *)
  ignore (Vfs.write_file fs "/db/deep/cache.json.tmp" "v2");
  Alcotest.(check (result unit err)) "replace existing" (Ok ())
    (Vfs.rename fs ~src:"/db/deep/cache.json.tmp" ~dst:"/db/deep/cache.json");
  Alcotest.(check (result string err)) "replaced content" (Ok "v2")
    (Vfs.read_file fs "/db/deep/cache.json");
  (* error contract mirrors POSIX rename(2) *)
  Alcotest.(check (result unit err)) "missing source"
    (Error (Vfs.Not_found "/db/nope"))
    (Vfs.rename fs ~src:"/db/nope" ~dst:"/db/x");
  ignore (Vfs.mkdir_p fs "/db/dir");
  Alcotest.(check bool) "file over directory refused" true
    (Result.is_error
       (Vfs.rename fs ~src:"/db/deep/cache.json" ~dst:"/db/dir"));
  Alcotest.(check (result string err)) "refused rename left source intact"
    (Ok "v2")
    (Vfs.read_file fs "/db/deep/cache.json");
  (* a directory can move, and may land on an empty directory *)
  ignore (Vfs.write_file fs "/db/dir/f" "x");
  ignore (Vfs.mkdir_p fs "/db/empty");
  Alcotest.(check (result unit err)) "directory over empty directory" (Ok ())
    (Vfs.rename fs ~src:"/db/dir" ~dst:"/db/empty");
  Alcotest.(check (result string err)) "tree travels" (Ok "x")
    (Vfs.read_file fs "/db/empty/f");
  Alcotest.(check bool) "directory over file refused" true
    (Result.is_error (Vfs.rename fs ~src:"/db/empty" ~dst:"/db/deep/cache.json"))

(* --- deterministic fault injection --- *)

let fault_barrier_counting () =
  let fs = Vfs.create () in
  Alcotest.(check int) "fresh fs has crossed no barriers" 0
    (Vfs.write_barriers fs);
  ignore (Vfs.write_file fs "/a" "1") (* barrier 1 *);
  ignore (Vfs.mkdir_p fs "/d") (* not a barrier *);
  ignore (Vfs.rename fs ~src:"/a" ~dst:"/d/a") (* barrier 2 *);
  ignore (Vfs.read_file fs "/d/a") (* not a barrier *);
  Alcotest.(check int) "writes and renames tick; reads and mkdirs do not" 2
    (Vfs.write_barriers fs);
  (* arming a plan resets the counter; the on_barrier hook mirrors every
     tick (how tests bridge the counter into an obs sink without vfs
     depending on obs) *)
  let ticks = ref 0 in
  Vfs.set_fault_plan fs ~on_barrier:(fun () -> incr ticks) [];
  Alcotest.(check int) "armed plan resets" 0 (Vfs.write_barriers fs);
  ignore (Vfs.write_file fs "/b" "2");
  ignore (Vfs.write_file fs "/c" "3");
  Alcotest.(check int) "hook fired per barrier" 2 !ticks;
  Alcotest.(check int) "counter agrees" 2 (Vfs.write_barriers fs);
  Vfs.clear_fault_plan fs;
  ignore (Vfs.write_file fs "/e" "4");
  Alcotest.(check int) "counter still ticks unarmed" 3 (Vfs.write_barriers fs)

let fault_fail_op () =
  let fs = Vfs.create () in
  Vfs.set_fault_plan fs [ 2; 3 ];
  Alcotest.(check (result unit err)) "barrier 1 passes" (Ok ())
    (Vfs.write_file fs "/w/one" "1");
  (* a planned write fails before mutating anything *)
  Alcotest.(check (result unit err)) "barrier 2 write fails"
    (Error (Vfs.Fault_injected { fi_op = "write"; fi_path = "/w/two" }))
    (Vfs.write_file fs "/w/two" "2");
  Alcotest.(check bool) "failed write left nothing" false
    (Vfs.exists fs "/w/two");
  (* a planned rename fails naming the destination, and moves nothing *)
  Alcotest.(check (result unit err)) "barrier 3 rename fails"
    (Error (Vfs.Fault_injected { fi_op = "rename"; fi_path = "/w/moved" }))
    (Vfs.rename fs ~src:"/w/one" ~dst:"/w/moved");
  Alcotest.(check (result string err)) "refused rename left source intact"
    (Ok "1")
    (Vfs.read_file fs "/w/one");
  (* Fail_op faults are transient: the plan exhausted, later ops succeed *)
  Alcotest.(check (result unit err)) "barrier 4 passes" (Ok ())
    (Vfs.rename fs ~src:"/w/one" ~dst:"/w/moved");
  Alcotest.(check int) "four barriers crossed" 4 (Vfs.write_barriers fs)

let fault_crash_mode () =
  let fs = Vfs.create () in
  ignore (Vfs.write_file fs "/pre/keep" "safe");
  Vfs.set_fault_plan fs ~mode:Vfs.Crash [ 2 ];
  Alcotest.(check (result unit err)) "barrier 1 passes" (Ok ())
    (Vfs.write_file fs "/w/a" "1");
  Alcotest.(check (result unit err)) "barrier 2 is the kill"
    (Error (Vfs.Fault_injected { fi_op = "write"; fi_path = "/w/b" }))
    (Vfs.write_file fs "/w/b" "2");
  (* the process is dead at that boundary: every subsequent mutating
     operation fails, not just the planned ones... *)
  Alcotest.(check bool) "write dead" true
    (Result.is_error (Vfs.write_file fs "/w/c" "3"));
  Alcotest.(check bool) "rename dead" true
    (Result.is_error (Vfs.rename fs ~src:"/w/a" ~dst:"/w/z"));
  Alcotest.(check bool) "mkdir dead" true
    (Result.is_error (Vfs.mkdir_p fs "/w/dir"));
  Alcotest.(check bool) "symlink dead" true
    (Result.is_error (Vfs.symlink fs ~target:"/w/a" ~link:"/w/l"));
  Alcotest.(check bool) "remove dead" true
    (Result.is_error (Vfs.remove fs "/pre/keep"));
  (* ...while the pre-crash bytes stay readable, exactly like a disk *)
  Alcotest.(check (result string err)) "pre-crash bytes intact" (Ok "safe")
    (Vfs.read_file fs "/pre/keep");
  Alcotest.(check (result string err)) "barrier-1 write intact" (Ok "1")
    (Vfs.read_file fs "/w/a");
  (* disarming is the fresh process reopening the same disk *)
  Vfs.clear_fault_plan fs;
  Alcotest.(check (result unit err)) "alive again after clear" (Ok ())
    (Vfs.write_file fs "/w/c" "3")

let write_read_consistent =
  QCheck.Test.make ~name:"last write wins for every path" ~count:100 arb_files
    (fun files ->
      let fs = Vfs.create () in
      let applied =
        List.filter
          (fun (path, content) ->
            Result.is_ok (Vfs.write_file fs path content))
          files
      in
      let last = Hashtbl.create 16 in
      List.iter
        (fun (path, content) ->
          Hashtbl.replace last (Vpath.normalize path) content)
        applied;
      Hashtbl.fold
        (fun path content ok -> ok && Vfs.read_file fs path = Ok content)
        last true)

let () =
  Alcotest.run "vfs"
    [
      ("vpath", [ Alcotest.test_case "path algebra" `Quick vpath_cases ]);
      ( "vfs",
        [
          Alcotest.test_case "file round-trip" `Quick file_roundtrip;
          Alcotest.test_case "errors" `Quick error_cases;
          Alcotest.test_case "symlinks" `Quick symlink_cases;
          Alcotest.test_case "symlink loops" `Quick symlink_loops;
          Alcotest.test_case "ls and walk" `Quick ls_and_walk;
          Alcotest.test_case "removal" `Quick removal;
          Alcotest.test_case "rename" `Quick rename_cases;
          Alcotest.test_case "operation counters" `Quick counters;
          Alcotest.test_case "fault: barrier counting" `Quick
            fault_barrier_counting;
          Alcotest.test_case "fault: transient failures" `Quick fault_fail_op;
          Alcotest.test_case "fault: crash mode" `Quick fault_crash_mode;
          QCheck_alcotest.to_alcotest write_read_consistent;
        ] );
    ]
