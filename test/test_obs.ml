(* The observability substrate: deterministic spans, counters, and
   histograms over the virtual clock — the measurement layer behind the
   paper's evaluation (§5). *)

module Obs = Ospack_obs.Obs
module Json = Ospack_json.Json
module Vfs = Ospack_vfs.Vfs
module Installer = Ospack_store.Installer
module Concretizer = Ospack_concretize.Concretizer
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Build_model = Ospack_package.Build_model
open Ospack_package.Package

let near = Alcotest.float 1e-9

let span_nesting () =
  let obs = Obs.create () in
  Obs.span obs "outer" (fun () ->
      Obs.advance obs 1.0;
      Obs.span obs "inner" (fun () -> Obs.advance obs 2.0);
      Obs.span obs "inner" (fun () -> Obs.advance obs 3.0));
  (try Obs.span obs "boom" (fun () -> failwith "x") with Failure _ -> ());
  let rows = Obs.phase_rows obs in
  Alcotest.(check (list string))
    "first-occurrence order"
    [ "outer"; "inner"; "boom" ]
    (List.map (fun r -> r.Obs.ph_name) rows);
  let row name = List.find (fun r -> r.Obs.ph_name = name) rows in
  Alcotest.(check int) "outer count" 1 (row "outer").Obs.ph_count;
  Alcotest.(check int) "inner count" 2 (row "inner").Obs.ph_count;
  Alcotest.(check int) "raising span still closed" 1 (row "boom").Obs.ph_count;
  (* inner spans cover their advances plus one epsilon tick per enclosed
     event; outer additionally covers its own 1.0 s advance *)
  Alcotest.(check bool) "inner total covers charges" true
    (let t = (row "inner").Obs.ph_total in
     t > 5.0 && t < 5.001);
  Alcotest.(check bool) "outer total covers everything" true
    (let t = (row "outer").Obs.ph_total in
     t > 6.0 && t < 6.001);
  (* self time excludes children exactly *)
  Alcotest.check near "outer self = total - children"
    ((row "outer").Obs.ph_total -. (row "inner").Obs.ph_total)
    (row "outer").Obs.ph_self;
  Alcotest.check near "leaf self = leaf total" (row "inner").Obs.ph_total
    (row "inner").Obs.ph_self

let counters_and_histograms () =
  let obs = Obs.create () in
  Obs.span obs "a" (fun () ->
      Obs.count obs "z.ops" 2;
      Obs.span obs "b" (fun () ->
          Obs.count obs "z.ops" 3;
          Obs.count obs "a.ops" 1));
  Alcotest.(check int) "aggregated across child spans" 5
    (Obs.counter obs "z.ops");
  Alcotest.(check int) "unset counter" 0 (Obs.counter obs "nope");
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("a.ops", 1); ("z.ops", 5) ]
    (Obs.counters obs);
  Obs.observe obs "h" 1.0;
  Obs.observe obs "h" 3.0;
  (match Obs.histograms obs with
  | [ ("h", s) ] ->
      Alcotest.(check int) "h count" 2 s.Obs.h_count;
      Alcotest.check near "h min" 1.0 s.Obs.h_min;
      Alcotest.check near "h max" 3.0 s.Obs.h_max;
      Alcotest.check near "h sum" 4.0 s.Obs.h_sum
  | other -> Alcotest.failf "unexpected histograms (%d)" (List.length other))

(* the disabled sink must be free: no recording, no allocation, so the
   instrumentation can stay unconditionally in every hot path *)
let disabled_is_free () =
  let obs = Obs.disabled in
  let nothing = fun () -> () in
  Alcotest.(check bool) "disabled" false (Obs.enabled obs);
  (* warm up any one-time allocation *)
  for _ = 1 to 100 do
    Obs.span obs "x" nothing;
    Obs.count obs "c" 1;
    Obs.advance obs 0.25;
    Obs.annotate obs "note";
    Obs.observe obs "h" 0.25
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.span obs "x" nothing;
    Obs.count obs "c" 1;
    Obs.advance obs 0.25;
    Obs.annotate obs "note";
    Obs.observe obs "h" 0.25
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "zero allocation (%.0f minor words for 50k ops)" dw)
    true (dw < 256.0);
  Alcotest.check near "clock stays at zero" 0.0 (Obs.now obs);
  Alcotest.(check (list (pair string int))) "no counters" [] (Obs.counters obs);
  Alcotest.(check string) "empty timings table" "(no spans recorded)\n"
    (Obs.timings_table obs)

(* --- golden Chrome trace for a 3-package install ------------------- *)

let tiny_model =
  Build_model.make ~source_files:1 ~headers_per_compile:0 ~configure_checks:1
    ~link_steps:1 ~compile_seconds:0.1 ~install_files:1 ()

let chain_repo () =
  let pkg name deps =
    make_pkg name
      ([
         version "1.0";
         build_model tiny_model;
         install (fun ctx ->
             [
               configure [ "--prefix=" ^ ctx.rc_prefix ];
               make [];
               make [ "install" ];
             ]);
       ]
      @ List.map (fun d -> depends_on d) deps)
  in
  Repository.create
    [ pkg "liba" []; pkg "midb" [ "liba" ]; pkg "appc" [ "midb" ] ]

let render_chain_trace () =
  let obs = Obs.create () in
  let repo = chain_repo () in
  let compilers = Compilers.create [ Compilers.toolchain "gcc" "4.9.2" ] in
  let cctx = Concretizer.make_ctx ~obs ~compilers repo in
  let spec =
    match
      Obs.span obs ~cat:"concretize" "concretize" (fun () ->
          Concretizer.concretize_string cctx "appc")
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "concretize: %s" e
  in
  let inst = Installer.create ~obs ~vfs:(Vfs.create ()) ~repo ~compilers () in
  (match Installer.install inst spec with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "install: %s" e);
  Json.to_string ~indent:2 (Obs.to_chrome_trace obs)

let golden_expected =
  {golden|{
  "traceEvents": [
    {
      "name": "concretize",
      "cat": "concretize",
      "ph": "B",
      "ts": 1.0,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "concretize.iteration",
      "cat": "concretize",
      "ph": "B",
      "ts": 2.0,
      "pid": 1,
      "tid": 1,
      "args": {
        "iteration": "1"
      }
    },
    {
      "name": "concretize.iteration",
      "cat": "concretize",
      "ph": "E",
      "ts": 3.0,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "concretize.iteration",
      "cat": "concretize",
      "ph": "B",
      "ts": 4.0,
      "pid": 1,
      "tid": 1,
      "args": {
        "iteration": "2"
      }
    },
    {
      "name": "concretize.iteration",
      "cat": "concretize",
      "ph": "E",
      "ts": 5.0,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "concretize.finalize",
      "cat": "concretize",
      "ph": "B",
      "ts": 5.999999999999999,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "concretize.finalize",
      "cat": "concretize",
      "ph": "E",
      "ts": 6.999999999999999,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "concretize",
      "cat": "concretize",
      "ph": "E",
      "ts": 8.0,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "install liba",
      "cat": "install",
      "ph": "B",
      "ts": 9.0,
      "pid": 1,
      "tid": 1,
      "args": {
        "node": "liba",
        "hash": "05bcb082"
      }
    },
    {
      "name": "build.stage",
      "cat": "build",
      "ph": "B",
      "ts": 10.0,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.stage",
      "cat": "build",
      "ph": "E",
      "ts": 11.000000000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.configure",
      "cat": "build",
      "ph": "B",
      "ts": 12.000000000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.configure",
      "cat": "build",
      "ph": "E",
      "ts": 25213.000000000004,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.compile",
      "cat": "build",
      "ph": "B",
      "ts": 25214.000000000004,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.compile",
      "cat": "build",
      "ph": "E",
      "ts": 129215.00000000003,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.link",
      "cat": "build",
      "ph": "B",
      "ts": 129216.00000000003,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.link",
      "cat": "build",
      "ph": "E",
      "ts": 534017.0000000001,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.install",
      "cat": "build",
      "ph": "B",
      "ts": 534018.0000000001,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.install",
      "cat": "build",
      "ph": "E",
      "ts": 534419.0000000001,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "install liba",
      "cat": "install",
      "ph": "E",
      "ts": 534420.0000000001,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "install midb",
      "cat": "install",
      "ph": "B",
      "ts": 534421.0000000001,
      "pid": 1,
      "tid": 1,
      "args": {
        "node": "midb",
        "hash": "931c8419"
      }
    },
    {
      "name": "build.stage",
      "cat": "build",
      "ph": "B",
      "ts": 534422.0000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.stage",
      "cat": "build",
      "ph": "E",
      "ts": 534423.0000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.configure",
      "cat": "build",
      "ph": "B",
      "ts": 534424.0000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.configure",
      "cat": "build",
      "ph": "E",
      "ts": 559625.0000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.compile",
      "cat": "build",
      "ph": "B",
      "ts": 559626.0000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.compile",
      "cat": "build",
      "ph": "E",
      "ts": 663627.0000000003,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.link",
      "cat": "build",
      "ph": "B",
      "ts": 663628.0000000003,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.link",
      "cat": "build",
      "ph": "E",
      "ts": 1068429.0000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.install",
      "cat": "build",
      "ph": "B",
      "ts": 1068430.0000000002,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.install",
      "cat": "build",
      "ph": "E",
      "ts": 1068831.0,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "install midb",
      "cat": "install",
      "ph": "E",
      "ts": 1068832.0,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "install appc",
      "cat": "install",
      "ph": "B",
      "ts": 1068833.0,
      "pid": 1,
      "tid": 1,
      "args": {
        "node": "appc",
        "hash": "d9a7756a"
      }
    },
    {
      "name": "build.stage",
      "cat": "build",
      "ph": "B",
      "ts": 1068833.9999999998,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.stage",
      "cat": "build",
      "ph": "E",
      "ts": 1068834.9999999998,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.configure",
      "cat": "build",
      "ph": "B",
      "ts": 1068835.9999999998,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.configure",
      "cat": "build",
      "ph": "E",
      "ts": 1094036.9999999998,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.compile",
      "cat": "build",
      "ph": "B",
      "ts": 1094037.9999999995,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.compile",
      "cat": "build",
      "ph": "E",
      "ts": 1198038.9999999995,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.link",
      "cat": "build",
      "ph": "B",
      "ts": 1198039.9999999995,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.link",
      "cat": "build",
      "ph": "E",
      "ts": 1602840.9999999995,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.install",
      "cat": "build",
      "ph": "B",
      "ts": 1602841.9999999995,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "build.install",
      "cat": "build",
      "ph": "E",
      "ts": 1603242.9999999993,
      "pid": 1,
      "tid": 1
    },
    {
      "name": "install appc",
      "cat": "install",
      "ph": "E",
      "ts": 1603243.9999999993,
      "pid": 1,
      "tid": 1
    }
  ],
  "displayTimeUnit": "ms",
  "ospackCounters": {
    "build.rpath_rewrites": 7,
    "concretize.iterations": 2,
    "fs.meta_ops": 36,
    "install.built": 3,
    "wrapper.invocations": 9
  },
  "ospackHistograms": {
    "build.node_seconds": {
      "count": 3,
      "min": 0.5344,
      "max": 0.5344,
      "sum": 1.6032
    }
  }
}|golden}

let golden_chrome_trace () =
  let actual = render_chain_trace () in
  if actual <> golden_expected then begin
    let oc = open_out "obs_trace.actual" in
    output_string oc actual;
    close_out oc;
    Alcotest.failf
      "golden trace mismatch (%d bytes expected, %d actual; actual written \
       to obs_trace.actual)"
      (String.length golden_expected)
      (String.length actual)
  end

let trace_deterministic () =
  Alcotest.(check string)
    "two identical runs, byte-identical traces" (render_chain_trace ())
    (render_chain_trace ())

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "span nesting and ordering" `Quick span_nesting;
          Alcotest.test_case "counters and histograms" `Quick
            counters_and_histograms;
          Alcotest.test_case "disabled sink is free" `Quick disabled_is_free;
          Alcotest.test_case "golden Chrome trace (3-package chain)" `Quick
            golden_chrome_trace;
          Alcotest.test_case "trace determinism" `Quick trace_deterministic;
        ] );
    ]
