(* The build environment (paper §3.5): isolation, wrapper argv rewriting,
   RPATH enforcement, the dynamic-loader model, and the cost model that
   drives Figs. 10/11. *)

module Env = Ospack_buildsim.Env
module Wrapper = Ospack_buildsim.Wrapper
module Binary = Ospack_buildsim.Binary
module Loader = Ospack_buildsim.Loader
module Builder = Ospack_buildsim.Builder
module Fsmodel = Ospack_buildsim.Fsmodel
module Vfs = Ospack_vfs.Vfs
module Compilers = Ospack_config.Compilers
module Concrete = Ospack_spec.Concrete
module Version = Ospack_version.Version
open Ospack_package.Package
module Build_model = Ospack_package.Build_model

let gcc = Compilers.toolchain "gcc" "4.9.2"
let compilers = Compilers.create [ gcc ]

(* --- environment isolation (§3.5.1) --- *)

let env_isolation () =
  let env =
    Env.for_build
      ~dep_prefixes:[ "/opt/a"; "/opt/b" ]
      ~wrapper_dir:"/w"
      ~base:(Env.of_assoc [ ("PATH", "/usr/bin") ])
  in
  Alcotest.(check (option string)) "CC is the wrapper" (Some "/w/cc")
    (Env.get env "CC");
  Alcotest.(check (option string)) "FC is the wrapper" (Some "/w/fc")
    (Env.get env "FC");
  Alcotest.(check (list string)) "PATH has dep bins first"
    [ "/opt/a/bin"; "/opt/b/bin"; "/usr/bin" ]
    (Env.path_list env "PATH");
  Alcotest.(check (list string)) "LD_LIBRARY_PATH from deps"
    [ "/opt/a/lib"; "/opt/b/lib" ]
    (Env.path_list env "LD_LIBRARY_PATH");
  Alcotest.(check (list string)) "CMAKE_PREFIX_PATH"
    [ "/opt/a"; "/opt/b" ]
    (Env.path_list env "CMAKE_PREFIX_PATH")

let env_paths () =
  let e = Env.empty in
  Alcotest.(check (list string)) "unset is empty" [] (Env.path_list e "X");
  let e = Env.prepend_path e "X" "/b" in
  let e = Env.prepend_path e "X" "/a" in
  Alcotest.(check (list string)) "prepend order" [ "/a"; "/b" ]
    (Env.path_list e "X")

let env_no_deps () =
  (* a leaf package builds in an environment with no dependency paths *)
  let env =
    Env.for_build ~dep_prefixes:[] ~wrapper_dir:"/w"
      ~base:(Env.of_assoc [ ("PATH", "/usr/bin") ])
  in
  Alcotest.(check (option string)) "CC still the wrapper" (Some "/w/cc")
    (Env.get env "CC");
  Alcotest.(check (list string)) "PATH is just the base" [ "/usr/bin" ]
    (Env.path_list env "PATH");
  Alcotest.(check (list string)) "no LD_LIBRARY_PATH" []
    (Env.path_list env "LD_LIBRARY_PATH");
  Alcotest.(check (list string)) "no CMAKE_PREFIX_PATH" []
    (Env.path_list env "CMAKE_PREFIX_PATH")

(* --- wrappers (§3.5.2) --- *)

let wrapper_rewrite () =
  let deps = [ "/opt/libelf"; "/opt/zlib" ] in
  let argv =
    Wrapper.rewrite ~toolchain:gcc ~lang:Wrapper.C ~mode:Wrapper.Compile
      ~dep_prefixes:deps [ "-c"; "foo.c" ]
  in
  Alcotest.(check string) "real driver first" "gcc" (List.hd argv);
  Alcotest.(check bool) "-I injected" true
    (List.mem "/opt/libelf/include" argv);
  Alcotest.(check bool) "no -L when compiling" true
    (not (List.exists (fun a -> a = "-L/opt/libelf/lib") argv));
  Alcotest.(check bool) "original args kept" true
    (List.mem "foo.c" argv);
  let link =
    Wrapper.rewrite ~toolchain:gcc ~lang:Wrapper.Cxx ~mode:Wrapper.Link
      ~dep_prefixes:deps [ "-o"; "out" ]
  in
  Alcotest.(check string) "c++ driver" "g++" (List.hd link);
  Alcotest.(check bool) "-L injected" true (List.mem "-L/opt/zlib/lib" link);
  Alcotest.(check (list string)) "rpaths extracted in order"
    [ "/opt/libelf/lib"; "/opt/zlib/lib" ]
    (Wrapper.rpaths_of_argv link)

let wrapper_rpath_forms () =
  (* the combined -Wl,-rpath,/dir form *)
  Alcotest.(check (list string)) "comma form" [ "/a/lib" ]
    (Wrapper.rpaths_of_argv [ "gcc"; "-Wl,-rpath,/a/lib"; "-o"; "x" ]);
  (* the split -Wl,-rpath -Wl,/dir form some build systems emit *)
  Alcotest.(check (list string)) "split form" [ "/b/lib" ]
    (Wrapper.rpaths_of_argv [ "gcc"; "-Wl,-rpath"; "-Wl,/b/lib"; "-o"; "x" ]);
  (* both forms mixed in one command line, order preserved, no dupes *)
  Alcotest.(check (list string)) "mixed forms in order"
    [ "/a/lib"; "/b/lib" ]
    (Wrapper.rpaths_of_argv
       [
         "gcc"; "-Wl,-rpath,/a/lib"; "-Wl,-rpath"; "-Wl,/b/lib";
         "-Wl,-rpath,/a/lib"; "foo.o";
       ])

(* --- binaries --- *)

let binary_roundtrip () =
  let b =
    Binary.make ~kind:Binary.Lib ~soname:"libcallpath.so"
      ~needed:[ "libdyninst.so"; "libmpi.so" ]
      ~rpaths:[ "/opt/dyninst/lib"; "/opt/mpi/lib" ]
  in
  Alcotest.(check bool) "parse inverts serialize" true
    (Binary.parse (Binary.serialize b) = Ok b);
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Binary.parse "not a binary"));
  Alcotest.(check string) "soname convention" "libfoo.so"
    (Binary.soname_for_package "foo");
  Alcotest.(check string) "lib-prefixed kept" "libelf.so"
    (Binary.soname_for_package "libelf")

let binary_roundtrip_prop =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let name = oneofl [ "liba.so"; "libb.so"; "tool"; "libx-1.so" ] in
        let dir = oneofl [ "/a/lib"; "/opt/x/lib"; "/usr/lib" ] in
        let* kind = oneofl [ Binary.Exe; Binary.Lib ] in
        let* soname = name in
        let* needed = list_size (int_bound 4) name in
        let* rpaths = list_size (int_bound 4) dir in
        return (Binary.make ~kind ~soname ~needed ~rpaths))
  in
  QCheck.Test.make ~name:"binary serialize/parse round-trip" ~count:200 arb
    (fun b -> Binary.parse (Binary.serialize b) = Ok b)

(* --- the loader (§2, §3.5.2) --- *)

let write_binary vfs path b =
  match Vfs.write_file vfs path (Binary.serialize b) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "vfs: %s" (Vfs.error_to_string e)

let loader_search_order () =
  let vfs = Vfs.create () in
  (* the same soname exists in three places *)
  let lib dir =
    write_binary vfs (dir ^ "/libdep.so")
      (Binary.make ~kind:Binary.Lib ~soname:"libdep.so" ~needed:[] ~rpaths:[])
  in
  lib "/rpath/lib";
  lib "/ld/lib";
  lib "/usr/lib";
  let exe rpaths =
    let b =
      Binary.make ~kind:Binary.Exe ~soname:"app" ~needed:[ "libdep.so" ] ~rpaths
    in
    write_binary vfs "/app/bin/app" b
  in
  let resolve env =
    match Loader.resolve vfs ~path:"/app/bin/app" ~env with
    | Ok [ (_, path) ] -> path
    | Ok other -> Alcotest.failf "expected 1 lib, got %d" (List.length other)
    | Error f -> Alcotest.failf "load failed: %s" (Loader.failure_to_string f)
  in
  let ld = Env.of_assoc [ ("LD_LIBRARY_PATH", "/ld/lib") ] in
  exe [ "/rpath/lib" ];
  Alcotest.(check string) "rpath beats LD_LIBRARY_PATH" "/rpath/lib/libdep.so"
    (resolve ld);
  ignore (Vfs.remove vfs "/app/bin/app");
  exe [];
  Alcotest.(check string) "LD_LIBRARY_PATH beats system" "/ld/lib/libdep.so"
    (resolve ld);
  Alcotest.(check string) "system fallback" "/usr/lib/libdep.so"
    (resolve Env.empty)

let loader_transitive_and_missing () =
  let vfs = Vfs.create () in
  write_binary vfs "/opt/b/lib/libb.so"
    (Binary.make ~kind:Binary.Lib ~soname:"libb.so" ~needed:[] ~rpaths:[]);
  write_binary vfs "/opt/a/lib/liba.so"
    (Binary.make ~kind:Binary.Lib ~soname:"liba.so" ~needed:[ "libb.so" ]
       ~rpaths:[ "/opt/b/lib" ]);
  write_binary vfs "/opt/app/bin/app"
    (Binary.make ~kind:Binary.Exe ~soname:"app" ~needed:[ "liba.so" ]
       ~rpaths:[ "/opt/a/lib" ]);
  (match Loader.resolve vfs ~path:"/opt/app/bin/app" ~env:Env.empty with
  | Ok libs ->
      Alcotest.(check int) "transitive closure" 2 (List.length libs);
      Alcotest.(check bool) "libb found via liba's rpath" true
        (List.mem_assoc "libb.so" libs)
  | Error f -> Alcotest.failf "unexpected: %s" (Loader.failure_to_string f));
  (* break the chain: remove libb *)
  ignore (Vfs.remove vfs "/opt/b/lib/libb.so");
  match Loader.resolve vfs ~path:"/opt/app/bin/app" ~env:Env.empty with
  | Ok _ -> Alcotest.fail "should miss libb"
  | Error f ->
      Alcotest.(check string) "missing soname" "libb.so" f.Loader.f_missing;
      Alcotest.(check bool) "searched dirs reported" true
        (List.mem "/opt/b/lib" f.Loader.f_searched)

let loader_circular_needed () =
  (* mutually-needing libraries must not loop the resolver *)
  let vfs = Vfs.create () in
  write_binary vfs "/l/liba.so"
    (Binary.make ~kind:Binary.Lib ~soname:"liba.so" ~needed:[ "libb.so" ]
       ~rpaths:[ "/l" ]);
  write_binary vfs "/l/libb.so"
    (Binary.make ~kind:Binary.Lib ~soname:"libb.so" ~needed:[ "liba.so" ]
       ~rpaths:[ "/l" ]);
  write_binary vfs "/l/app"
    (Binary.make ~kind:Binary.Exe ~soname:"app" ~needed:[ "liba.so" ]
       ~rpaths:[ "/l" ]);
  match Loader.resolve vfs ~path:"/l/app" ~env:Env.empty with
  | Ok libs ->
      Alcotest.(check int) "each resolved once" 2 (List.length libs)
  | Error f -> Alcotest.failf "unexpected: %s" (Loader.failure_to_string f)

let loader_no_needed () =
  (* a static-style executable with an empty NEEDED list always runs *)
  let vfs = Vfs.create () in
  write_binary vfs "/opt/static/bin/tool"
    (Binary.make ~kind:Binary.Exe ~soname:"tool" ~needed:[] ~rpaths:[]);
  (match Loader.resolve vfs ~path:"/opt/static/bin/tool" ~env:Env.empty with
  | Ok libs -> Alcotest.(check int) "closure is empty" 0 (List.length libs)
  | Error f -> Alcotest.failf "unexpected: %s" (Loader.failure_to_string f));
  Alcotest.(check bool) "runs with empty env" true
    (Loader.can_run vfs ~path:"/opt/static/bin/tool" ~env:Env.empty)

(* --- building (§3.5.3) --- *)

let simple_pkg name ~model =
  make_pkg name
    [
      version "1.0";
      build_model model;
      install
        (fun ctx ->
          [ configure [ "--prefix=" ^ ctx.rc_prefix ]; make []; make [ "install" ] ]);
    ]

let concrete_one name =
  match
    Concrete.make ~root:name
      [
        {
          Concrete.name;
          version = Version.of_string "1.0";
          compiler = ("gcc", Version.of_string "4.9.2");
          variants = Concrete.Smap.empty;
          arch = "linux-x86_64";
          deps = [];
          provided = [];
        };
      ]
  with
  | Ok c -> c
  | Error _ -> Alcotest.fail "bad spec"

let run_build ?(use_wrappers = true) ?(fs = Fsmodel.tmpfs) pkg name =
  match
    Builder.build ~vfs:(Vfs.create ()) ~fs ~compilers ~use_wrappers ~mirror:None
      ~stage_root:"/stage" ~spec:(concrete_one name) ~node:name ~pkg
      ~prefix:("/opt/" ^ name)
      ~dep_prefix:(fun _ -> None)
      ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "build failed: %s" (Builder.error_to_string e)

let build_produces_artifacts () =
  let vfs = Vfs.create () in
  let pkg = simple_pkg "widget" ~model:(Build_model.make ()) in
  let r =
    match
      Builder.build ~vfs ~fs:Fsmodel.tmpfs ~compilers ~use_wrappers:true ~mirror:None
        ~stage_root:"/stage" ~spec:(concrete_one "widget") ~node:"widget"
        ~pkg ~prefix:"/opt/widget"
        ~dep_prefix:(fun _ -> None)
      ()
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "build failed: %s" (Builder.error_to_string e)
  in
  Alcotest.(check bool) "library installed" true
    (Vfs.is_file vfs "/opt/widget/lib/libwidget.so");
  Alcotest.(check bool) "executable installed" true
    (Vfs.is_file vfs "/opt/widget/bin/widget");
  Alcotest.(check bool) "header installed" true
    (Vfs.is_file vfs "/opt/widget/include/widget.h");
  Alcotest.(check bool) "log mentions configure" true
    (List.exists
       (fun l -> Astring.String.is_infix ~affix:"./configure" l)
       r.Builder.br_log);
  Alcotest.(check bool) "positive simulated time" true (r.Builder.br_time > 0.0);
  Alcotest.(check bool) "invocations counted" true (r.Builder.br_invocations > 0)

let nfs_slower_than_tmp () =
  let model = Build_model.make ~configure_checks:300 ~source_files:40 () in
  let pkg = simple_pkg "p" ~model in
  let tmp = run_build ~fs:Fsmodel.tmpfs pkg "p" in
  let nfs = run_build ~fs:Fsmodel.nfs pkg "p" in
  Alcotest.(check bool) "NFS slower" true
    (nfs.Builder.br_time > tmp.Builder.br_time);
  let overhead = (nfs.Builder.br_time /. tmp.Builder.br_time -. 1.0) *. 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "NFS overhead %.1f%% within the paper's band" overhead)
    true
    (overhead > 3.0 && overhead < 120.0)

let wrappers_cost_something () =
  let model = Build_model.make ~configure_checks:250 ~source_files:30 () in
  let pkg = simple_pkg "p" ~model in
  let wrapped = run_build ~use_wrappers:true pkg "p" in
  let bare = run_build ~use_wrappers:false pkg "p" in
  let overhead = (wrapped.Builder.br_time /. bare.Builder.br_time -. 1.0) *. 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "wrapper overhead %.1f%% is the paper's ~10%%" overhead)
    true
    (overhead > 1.0 && overhead < 25.0)

(* the paper's claim 2 as an executable property: Spack-built binaries run
   with an empty environment; native builds in nonstandard prefixes don't *)
let rpath_claim () =
  let vfs = Vfs.create () in
  (* dependency first *)
  let dep_pkg = simple_pkg "depx" ~model:(Build_model.make ()) in
  (match
     Builder.build ~vfs ~fs:Fsmodel.tmpfs ~compilers ~use_wrappers:true ~mirror:None
       ~stage_root:"/stage" ~spec:(concrete_one "depx") ~node:"depx"
       ~pkg:dep_pkg ~prefix:"/opt/depx"
       ~dep_prefix:(fun _ -> None)
      ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "dep build failed: %s" (Builder.error_to_string e));
  let spec =
    match
      Concrete.make ~root:"app"
        [
          {
            Concrete.name = "app";
            version = Version.of_string "1.0";
            compiler = ("gcc", Version.of_string "4.9.2");
            variants = Concrete.Smap.empty;
            arch = "linux-x86_64";
            deps = [ "depx" ];
            provided = [];
          };
          {
            Concrete.name = "depx";
            version = Version.of_string "1.0";
            compiler = ("gcc", Version.of_string "4.9.2");
            variants = Concrete.Smap.empty;
            arch = "linux-x86_64";
            deps = [];
            provided = [];
          };
        ]
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "bad spec"
  in
  let app_pkg = simple_pkg "app" ~model:(Build_model.make ()) in
  let build ~use_wrappers prefix =
    match
      Builder.build ~vfs ~fs:Fsmodel.tmpfs ~compilers ~use_wrappers ~mirror:None
        ~stage_root:"/stage" ~spec ~node:"app" ~pkg:app_pkg ~prefix
        ~dep_prefix:(function "depx" -> Some "/opt/depx" | _ -> None)
        ()
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "app build failed: %s" (Builder.error_to_string e)
  in
  build ~use_wrappers:true "/opt/app-spack";
  build ~use_wrappers:false "/opt/app-native";
  (* Spack-built: runs with NO environment at all *)
  Alcotest.(check bool) "spack-built runs with empty env" true
    (Loader.can_run vfs ~path:"/opt/app-spack/bin/app" ~env:Env.empty);
  (* native build: fails with empty env, works with LD_LIBRARY_PATH *)
  Alcotest.(check bool) "native build needs the env" false
    (Loader.can_run vfs ~path:"/opt/app-native/bin/app" ~env:Env.empty);
  Alcotest.(check bool) "native build works with LD_LIBRARY_PATH" true
    (Loader.can_run vfs ~path:"/opt/app-native/bin/app"
       ~env:(Env.of_assoc [ ("LD_LIBRARY_PATH", "/opt/depx/lib") ]))

let step_details () =
  (* python_setup, Set_env, Install_file, and invocation accounting *)
  let vfs = Vfs.create () in
  let pkg =
    make_pkg "pypkg"
      [
        version "1.0";
        build_model
          (Build_model.make ~configure_checks:10 ~source_files:4
             ~link_steps:1 ());
        install
          (fun ctx ->
            [
              Ospack_package.Build_step.Set_env ("PYTHONDONTWRITEBYTECODE", "1");
              python_setup [ "build" ];
              python_setup [ "install"; "--prefix=" ^ ctx.rc_prefix ];
              Ospack_package.Build_step.Install_file
                { rel = "share/data.txt"; content = "payload" };
              Ospack_package.Build_step.Note "done";
            ]);
      ]
  in
  (match
     Builder.build ~vfs ~fs:Fsmodel.tmpfs ~compilers ~use_wrappers:true ~mirror:None
       ~stage_root:"/stage" ~spec:(concrete_one "pypkg") ~node:"pypkg" ~pkg
       ~prefix:"/opt/pypkg"
       ~dep_prefix:(fun _ -> None)
      ()
   with
  | Ok r ->
      Alcotest.(check bool) "env recorded" true
        (Vfs.is_file vfs "/opt/pypkg/.ospack/env/PYTHONDONTWRITEBYTECODE");
      Alcotest.(check bool) "custom file installed" true
        (Vfs.read_file vfs "/opt/pypkg/share/data.txt" = Ok "payload");
      Alcotest.(check bool) "note in log" true
        (List.exists (fun l -> l = "# done") r.Builder.br_log);
      Alcotest.(check bool) "artifacts from setup.py install" true
        (Vfs.is_file vfs "/opt/pypkg/lib/libpypkg.so")
  | Error e -> Alcotest.failf "build: %s" (Builder.error_to_string e));
  (* invocation accounting for a plain autotools build: probes + compiles
     + links *)
  let model =
    Build_model.make ~configure_checks:10 ~source_files:4 ~link_steps:2 ()
  in
  let plain = simple_pkg "plain" ~model in
  let r = run_build plain "plain" in
  Alcotest.(check int) "invocations = probes + sources + links" (10 + 4 + 2)
    r.Builder.br_invocations

let wrapper_fortran_drivers () =
  let xl = Compilers.toolchain "xl" "12.1" in
  Alcotest.(check string) "f77" "xlf" (Wrapper.driver_name xl Wrapper.F77);
  Alcotest.(check string) "fc" "xlf90" (Wrapper.driver_name xl Wrapper.Fc);
  Alcotest.(check string) "unknown vendor pattern" "weirdcc"
    (Wrapper.driver_name (Compilers.toolchain "weird" "1.0") Wrapper.C)

(* build-only dependencies never end up in NEEDED or RPATH *)
let build_dep_kinds () =
  let vfs = Vfs.create () in
  let dep_pkg name = simple_pkg name ~model:(Build_model.make ()) in
  let one name deps =
    {
      Concrete.name;
      version = Version.of_string "1.0";
      compiler = ("gcc", Version.of_string "4.9.2");
      variants = Concrete.Smap.empty;
      arch = "linux-x86_64";
      deps;
      provided = [];
    }
  in
  (* install the two dependencies *)
  List.iter
    (fun name ->
      match
        Builder.build ~vfs ~fs:Fsmodel.tmpfs ~compilers ~use_wrappers:true ~mirror:None
          ~stage_root:"/stage"
          ~spec:(match Concrete.make ~root:name [ one name [] ] with
                | Ok c -> c
                | Error _ -> assert false)
          ~node:name ~pkg:(dep_pkg name) ~prefix:("/opt/" ^ name)
          ~dep_prefix:(fun _ -> None)
      ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" name (Builder.error_to_string e))
    [ "buildtool"; "linklib" ];
  let app_pkg =
    make_pkg "app"
      [
        version "1.0";
        depends_on "buildtool" ~kind:Build;
        depends_on "linklib";
        install
          (fun ctx ->
            [ configure [ "--prefix=" ^ ctx.rc_prefix ]; make [];
              make [ "install" ] ]);
      ]
  in
  let spec =
    match
      Concrete.make ~root:"app"
        [ one "app" [ "buildtool"; "linklib" ]; one "buildtool" [];
          one "linklib" [] ]
    with
    | Ok c -> c
    | Error _ -> assert false
  in
  (match
     Builder.build ~vfs ~fs:Fsmodel.tmpfs ~compilers ~use_wrappers:true ~mirror:None
       ~stage_root:"/stage" ~spec ~node:"app" ~pkg:app_pkg ~prefix:"/opt/app"
       ~dep_prefix:(function
         | "buildtool" -> Some "/opt/buildtool"
         | "linklib" -> Some "/opt/linklib"
         | _ -> None)
       ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "app: %s" (Builder.error_to_string e));
  match Vfs.read_file vfs "/opt/app/bin/app" with
  | Error _ -> Alcotest.fail "binary missing"
  | Ok content -> (
      match Binary.parse content with
      | Error e -> Alcotest.failf "unparseable binary: %s" e
      | Ok b ->
          Alcotest.(check bool) "link dep in NEEDED" true
            (List.mem "liblinklib.so" b.Binary.b_needed);
          Alcotest.(check bool) "build dep not in NEEDED" false
            (List.mem "libbuildtool.so" b.Binary.b_needed);
          Alcotest.(check bool) "build dep not in RPATH" false
            (List.mem "/opt/buildtool/lib" b.Binary.b_rpaths);
          Alcotest.(check bool) "link dep in RPATH" true
            (List.mem "/opt/linklib/lib" b.Binary.b_rpaths))

let missing_dep_fails () =
  let pkg = simple_pkg "app" ~model:(Build_model.make ()) in
  let spec =
    match
      Concrete.make ~root:"app"
        [
          {
            Concrete.name = "app";
            version = Version.of_string "1.0";
            compiler = ("gcc", Version.of_string "4.9.2");
            variants = Concrete.Smap.empty;
            arch = "linux-x86_64";
            deps = [ "ghost" ];
            provided = [];
          };
          {
            Concrete.name = "ghost";
            version = Version.of_string "1.0";
            compiler = ("gcc", Version.of_string "4.9.2");
            variants = Concrete.Smap.empty;
            arch = "linux-x86_64";
            deps = [];
            provided = [];
          };
        ]
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "bad spec"
  in
  match
    Builder.build ~vfs:(Vfs.create ()) ~fs:Fsmodel.tmpfs ~compilers
      ~use_wrappers:true ~mirror:None ~stage_root:"/stage" ~spec ~node:"app" ~pkg
      ~prefix:"/opt/app"
      ~dep_prefix:(fun _ -> None)
      ()
  with
  | Ok _ -> Alcotest.fail "should fail on uninstalled dependency"
  | Error e ->
      Alcotest.(check bool) "names the dependency" true
        (Astring.String.is_infix ~affix:"ghost" (Builder.error_to_string e))

let () =
  Alcotest.run "buildsim"
    [
      ( "env",
        [
          Alcotest.test_case "isolation (§3.5.1)" `Quick env_isolation;
          Alcotest.test_case "path variables" `Quick env_paths;
          Alcotest.test_case "no dependencies" `Quick env_no_deps;
        ] );
      ( "wrapper",
        [
          Alcotest.test_case "argv rewriting (§3.5.2)" `Quick wrapper_rewrite;
          Alcotest.test_case "rpath flag forms" `Quick wrapper_rpath_forms;
        ] );
      ( "binary",
        [
          Alcotest.test_case "serialization" `Quick binary_roundtrip;
          QCheck_alcotest.to_alcotest binary_roundtrip_prop;
        ] );
      ( "loader",
        [
          Alcotest.test_case "search order" `Quick loader_search_order;
          Alcotest.test_case "transitive + missing" `Quick
            loader_transitive_and_missing;
          Alcotest.test_case "circular NEEDED terminates" `Quick
            loader_circular_needed;
          Alcotest.test_case "empty NEEDED" `Quick loader_no_needed;
        ] );
      ( "builder",
        [
          Alcotest.test_case "artifacts and log" `Quick build_produces_artifacts;
          Alcotest.test_case "NFS slower than tmpfs (Fig. 10)" `Quick
            nfs_slower_than_tmp;
          Alcotest.test_case "wrapper overhead (Fig. 11)" `Quick
            wrappers_cost_something;
          Alcotest.test_case "RPATH makes env irrelevant (claim 2)" `Quick
            rpath_claim;
          Alcotest.test_case "build vs link dependency kinds" `Quick
            build_dep_kinds;
          Alcotest.test_case "step details and accounting" `Quick step_details;
          Alcotest.test_case "fortran wrapper drivers" `Quick
            wrapper_fortran_drivers;
          Alcotest.test_case "missing dependency fails" `Quick missing_dep_fails;
        ] );
    ]
