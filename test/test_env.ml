(* Environments: unified solve, fingerprinted lockfiles, parallel
   install, env-scoped views, crash safety. *)

module Environment = Ospack.Environment
module Context = Ospack.Context
module Ast = Ospack_spec.Ast
module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Vfs = Ospack_vfs.Vfs
module Json = Ospack_json.Json
module Sha256 = Ospack_hash.Sha256
module Package = Ospack_package.Package
module Repository = Ospack_package.Repository
module Config = Ospack_config.Config
module Universe = Ospack_repo.Universe

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" e

let ok_lock = function
  | Ok x -> x
  | Error e ->
      Alcotest.failf "unexpected lock error: %s"
        (Environment.lock_error_to_string e)

(* every file and symlink under a root, with content/target — the
   byte-identity probe; the ccache is excluded because only a solving
   context writes one *)
let snapshot ctx root =
  Vfs.walk ctx.Context.vfs root
  |> List.filter_map (fun (path, kind) ->
         if path = "/ospack/opt/.spack-db/ccache.json" then None
         else
           match kind with
           | Vfs.File ->
               Some (path ^ " F " ^ Result.get_ok (Vfs.read_file ctx.Context.vfs path))
           | Vfs.Symlink ->
               Some (path ^ " L " ^ Result.get_ok (Vfs.readlink ctx.Context.vfs path))
           | Vfs.Dir -> Some (path ^ " D"))

let db_json ctx =
  Json.to_string ~indent:2
    (Database.to_json (Installer.database ctx.Context.installer))

let copy_lock src dst name =
  let content =
    Result.get_ok (Vfs.read_file src.Context.vfs (Environment.lock_path name))
  in
  ok
    (Result.map_error Vfs.error_to_string
       (Vfs.write_file dst.Context.vfs (Environment.lock_path name) content))

(* ------------------------------------------------------------------ *)

let manifest_lifecycle () =
  let ctx = Context.create () in
  Alcotest.(check (list string)) "no envs yet" [] (Environment.list_envs ctx);
  let env = ok (Environment.create ctx ~name:"tools" ()) in
  Alcotest.(check (list string)) "listed" [ "tools" ] (Environment.list_envs ctx);
  Alcotest.(check bool) "duplicate name rejected" true
    (Result.is_error (Environment.create ctx ~name:"tools" ()));
  Alcotest.(check bool) "bad name rejected" true
    (Result.is_error (Environment.create ctx ~name:"to ols" ()));
  let env = ok (Environment.add ctx env "mpileaks ^mvapich2@1.9") in
  let env = ok (Environment.add ctx env "gsl") in
  Alcotest.(check bool) "duplicate root rejected" true
    (Result.is_error (Environment.add ctx env "gsl"));
  Alcotest.(check bool) "bad spec rejected" true
    (Result.is_error (Environment.add ctx env "a b"));
  (* persistence: reload sees the same manifest *)
  let reloaded = ok (Environment.load ctx ~name:"tools") in
  Alcotest.(check (list string)) "roots persisted (canonical)"
    [ "mpileaks ^mvapich2@1.9"; "gsl" ]
    reloaded.Environment.env_roots;
  let env = ok (Environment.remove_root ctx env "gsl") in
  Alcotest.(check (list string)) "root removed"
    [ "mpileaks ^mvapich2@1.9" ]
    env.Environment.env_roots;
  Alcotest.(check bool) "unknown env load fails" true
    (Result.is_error (Environment.load ctx ~name:"nope"))

let canonical_roots () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"canon" ()) in
  let env = ok (Environment.add ctx env "libelf@0.8.12") in
  (* same root, different spelling: whitespace before the constraint *)
  Alcotest.(check bool) "respelled duplicate rejected" true
    (Result.is_error (Environment.add ctx env "libelf @0.8.12"));
  let reloaded = ok (Environment.load ctx ~name:"canon") in
  Alcotest.(check (list string)) "stored canonically" [ "libelf@0.8.12" ]
    reloaded.Environment.env_roots;
  (* removal accepts any spelling of the same root *)
  let env = ok (Environment.remove_root ctx env "libelf @0.8.12") in
  Alcotest.(check (list string)) "removed via respelling" []
    env.Environment.env_roots

let unified_solve_shares_subdags () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"uni" ()) in
  let env = ok (Environment.add ctx env "dyninst") in
  let env = ok (Environment.add ctx env "libdwarf") in
  let pairs = ok (Environment.concretize_roots ctx env) in
  (match pairs with
  | [ ("dyninst", dyn); ("libdwarf", dw) ] ->
      (* one pass over a shared constraint context: the libdwarf sub-DAG
         inside dyninst IS the libdwarf root's DAG, hash for hash *)
      Alcotest.(check string) "sub-DAG shared by hash"
        (Concrete.root_hash dw)
        (Concrete.dag_hash dyn "libdwarf")
  | _ -> Alcotest.fail "expected two roots in order");
  let report = ok (Environment.install ~jobs:2 ctx env) in
  let hashes =
    List.map
      (fun (o : Installer.outcome) -> o.Installer.o_record.Database.r_hash)
      report.Environment.er_report.Installer.pr_outcomes
  in
  Alcotest.(check int) "merged DAG installs each node once"
    (List.length (List.sort_uniq String.compare hashes))
    (List.length hashes);
  (match Environment.status ctx env with
  | [ (_, true); (_, true) ] -> ()
  | _ -> Alcotest.fail "both roots installed")

let conflicting_roots_error () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"bad" ()) in
  let env = ok (Environment.add ctx env "libdwarf ^libelf@0.8.12") in
  let env = ok (Environment.add ctx env "dyninst ^libelf@0.8.13") in
  (match Environment.install ctx env with
  | Ok _ -> Alcotest.fail "conflicting roots must not solve"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "conflict names the package (%s)" e)
        true
        (Astring.String.is_infix ~affix:"libelf" e));
  Alcotest.(check bool) "no lockfile written on conflict" false
    (Vfs.exists ctx.Context.vfs (Environment.lock_path "bad"));
  (* two roots forcing different providers of one virtual cannot unify *)
  let env2 = ok (Environment.create ctx ~name:"twompi" ()) in
  let env2 = ok (Environment.add ctx env2 "mpileaks ^mvapich2@1.9") in
  let env2 = ok (Environment.add ctx env2 "mpileaks@2.3 ^openmpi") in
  Alcotest.(check bool) "two MPI providers for one DAG rejected" true
    (Result.is_error (Environment.install ctx env2))

let locked_replay_byte_identical () =
  (* context A: fresh unified solve, serial install; context B: lockfile
     replay at -j4 — store, index, and view must be byte-identical *)
  let a = Context.create () in
  let env_a = ok (Environment.create a ~name:"prod" ~view:"/opt/prod" ()) in
  let env_a = ok (Environment.add a env_a "mpileaks ^mvapich2@1.9") in
  let env_a = ok (Environment.add a env_a "libdwarf") in
  let report_a = ok (Environment.install a env_a) in
  Alcotest.(check bool) "view linked" true (report_a.Environment.er_linked > 0);
  let b = Context.create () in
  let env_b = ok (Environment.create b ~name:"prod" ~view:"/opt/prod" ()) in
  let env_b = ok (Environment.add b env_b "mpileaks ^mvapich2@1.9") in
  let env_b = ok (Environment.add b env_b "libdwarf") in
  copy_lock a b "prod";
  let report_b =
    match Environment.install_locked ~jobs:4 b env_b with
    | Ok r -> r
    | Error e ->
        Alcotest.failf "locked replay failed: %s"
          (Environment.locked_error_to_string e)
  in
  Alcotest.(check (list string)) "store and index byte-identical"
    (snapshot a "/ospack/opt") (snapshot b "/ospack/opt");
  Alcotest.(check (list string)) "view byte-identical"
    (snapshot a "/opt/prod") (snapshot b "/opt/prod");
  Alcotest.(check string) "database json byte-identical" (db_json a) (db_json b);
  Alcotest.(check int) "same link count" report_a.Environment.er_linked
    report_b.Environment.er_linked;
  (* install over a valid lock re-solves and asserts agreement *)
  let report_a2 = ok (Environment.install ~jobs:2 a env_a) in
  List.iter2
    (fun (_, c1) (_, c2) ->
      Alcotest.(check string) "re-install agrees with lock"
        (Concrete.root_hash c1) (Concrete.root_hash c2))
    report_a.Environment.er_roots report_a2.Environment.er_roots

let locked_replay_survives_drift () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"locked" ()) in
  let env = ok (Environment.add ctx env "libdwarf") in
  let report = ok (Environment.install ctx env) in
  let original_hash =
    Concrete.root_hash (snd (List.hd report.Environment.er_roots))
  in
  (* wipe the store, keeping the filesystem (and hence the lockfile) *)
  ignore (ok (Ospack.uninstall ctx "libdwarf"));
  ignore (ok (Ospack.gc ctx));
  Alcotest.(check int) "store drained" 0
    (Database.count (Installer.database ctx.Context.installer));
  let replay =
    match Environment.install_locked ctx env with
    | Ok r -> r
    | Error e ->
        Alcotest.failf "replay: %s" (Environment.locked_error_to_string e)
  in
  Alcotest.(check string) "locked hash reproduced" original_hash
    (Concrete.root_hash (snd (List.hd replay.Environment.er_roots)));
  (* an environment without a lockfile refuses locked replay, typed *)
  let bare = ok (Environment.create ctx ~name:"bare" ()) in
  match Environment.install_locked ctx bare with
  | Error (Environment.Locked_lock Environment.Lock_missing) -> ()
  | Error e ->
      Alcotest.failf "expected Lock_missing, got %s"
        (Environment.locked_error_to_string e)
  | Ok _ -> Alcotest.fail "no lockfile must not replay"

(* ------------------------------------------------------------------ *)
(* Lockfile lifecycle                                                 *)

let lock_roundtrip () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"rt" ()) in
  let env = ok (Environment.add ctx env "libdwarf") in
  let pairs = ok (Environment.concretize_roots ctx env) in
  ok (Environment.write_lock ctx env pairs);
  let lock = ok_lock (Environment.read_lock ctx env) in
  Alcotest.(check (list string)) "roots round-trip" [ "libdwarf" ]
    lock.Environment.lk_roots;
  List.iter2
    (fun (r1, c1) (r2, c2) ->
      Alcotest.(check string) "root" r1 r2;
      Alcotest.(check bool) "concrete round-trips" true (Concrete.equal c1 c2))
    pairs lock.Environment.lk_specs

let lock_migration_v1 () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"old" ()) in
  let env = ok (Environment.add ctx env "libdwarf") in
  let c = ok (Ospack.spec ctx "libdwarf") in
  (* a legacy format-1 lockfile: bare spec list, nothing else *)
  let v1 =
    Json.to_string ~indent:2
      (Json.Obj
         [
           ("format", Json.Int 1);
           ("specs", Json.List [ Concrete.to_json c ]);
         ])
    ^ "\n"
  in
  ok
    (Result.map_error Vfs.error_to_string
       (Vfs.write_file ctx.Context.vfs (Environment.lock_path "old") v1));
  let lock = ok_lock (Environment.read_lock ctx env) in
  Alcotest.(check bool) "migrated specs intact" true
    (Concrete.equal c (snd (List.hd lock.Environment.lk_specs)));
  (* the file on disk is now format 2, fingerprinted and checksummed *)
  let content =
    Result.get_ok (Vfs.read_file ctx.Context.vfs (Environment.lock_path "old"))
  in
  let j = Result.get_ok (Json.of_string content) in
  Alcotest.(check (option int)) "migrated to format 2"
    (Some Environment.lock_format)
    (Option.bind (Json.member "format" j) Json.get_int);
  Alcotest.(check bool) "migrated file carries a checksum" true
    (Json.member "checksum" j <> None);
  (* and replays *)
  match Environment.install_locked ctx env with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "migrated lock replay: %s"
        (Environment.locked_error_to_string e)

(* rebuild a tampered lock's checksum so only the targeted inconsistency
   shows — tampering without re-signing is caught by the checksum *)
let resign fields =
  let payload = List.filter (fun (k, _) -> k <> "checksum") fields in
  let checksum =
    Sha256.hex_digest (Json.to_string ~indent:2 (Json.Obj payload))
  in
  match payload with
  | format :: rest ->
      Json.Obj (format :: ("checksum", Json.String checksum) :: rest)
  | [] -> assert false

let with_lock_json ctx name f =
  let path = Environment.lock_path name in
  let content = Result.get_ok (Vfs.read_file ctx.Context.vfs path) in
  let fields =
    match Result.get_ok (Json.of_string content) with
    | Json.Obj fields -> fields
    | _ -> Alcotest.fail "lock is not an object"
  in
  let j = f fields in
  ok
    (Result.map_error Vfs.error_to_string
       (Vfs.write_file ctx.Context.vfs path
          (Json.to_string ~indent:2 j ^ "\n")))

let expect_corrupt what = function
  | Error (Environment.Lock_corrupt _) -> ()
  | Error e ->
      Alcotest.failf "%s: expected Lock_corrupt, got %s" what
        (Environment.lock_error_to_string e)
  | Ok _ -> Alcotest.failf "%s: tampered lock accepted" what

let lock_tampering_rejected () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"sig" ()) in
  let env = ok (Environment.add ctx env "libdwarf") in
  let _ = ok (Environment.install ctx env) in
  let path = Environment.lock_path "sig" in
  let pristine = Result.get_ok (Vfs.read_file ctx.Context.vfs path) in
  (* 1. any unsigned edit fails the checksum *)
  with_lock_json ctx "sig" (fun fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = "roots" then (k, Json.List [ Json.String "libelf" ])
             else (k, v))
           fields));
  expect_corrupt "unsigned edit" (Environment.read_lock ctx env);
  (* 2. a re-signed edit with an inconsistent hash is still corrupt *)
  ignore (Vfs.write_file ctx.Context.vfs path pristine);
  with_lock_json ctx "sig" (fun fields ->
      resign
        (List.map
           (fun (k, v) ->
             match (k, v) with
             | "specs", Json.List [ Json.Obj spec ] ->
                 ( k,
                   Json.List
                     [
                       Json.Obj
                         (List.map
                            (fun (sk, sv) ->
                              if sk = "hash" then (sk, Json.String "deadbeef")
                              else (sk, sv))
                            spec);
                     ] )
             | _ -> (k, v))
           fields));
  expect_corrupt "hash flip" (Environment.read_lock ctx env);
  (* 3. a concrete DAG missing a dependency node (a "missing dep hash")
     is rejected before any install happens *)
  ignore (Vfs.write_file ctx.Context.vfs path pristine);
  with_lock_json ctx "sig" (fun fields ->
      resign
        (List.map
           (fun (k, v) ->
             match (k, v) with
             | "specs", Json.List [ Json.Obj spec ] ->
                 ( k,
                   Json.List
                     [
                       Json.Obj
                         (List.map
                            (fun (sk, sv) ->
                              match (sk, sv) with
                              | "concrete", cj -> (
                                  match Json.member "nodes" cj with
                                  | Some (Json.List nodes) ->
                                      let keep =
                                        List.filter
                                          (fun n ->
                                            Option.bind (Json.member "name" n)
                                              Json.get_string
                                            <> Some "libelf")
                                          nodes
                                      in
                                      ( sk,
                                        Json.Obj
                                          [
                                            ("format", Json.Int 1);
                                            ( "root",
                                              Json.String "libdwarf" );
                                            ("nodes", Json.List keep);
                                          ] )
                                  | _ -> (sk, sv))
                              | _ -> (sk, sv))
                            spec);
                     ] )
             | _ -> (k, v))
           fields));
  (match Environment.install_locked ctx env with
  | Error (Environment.Locked_lock (Environment.Lock_corrupt _)) -> ()
  | Error e ->
      Alcotest.failf "missing dep: expected corrupt, got %s"
        (Environment.locked_error_to_string e)
  | Ok _ -> Alcotest.fail "missing dep node accepted");
  (* pristine file still replays *)
  ignore (Vfs.write_file ctx.Context.vfs path pristine);
  ignore (ok_lock (Environment.read_lock ctx env))

let stale_fingerprint_resolves () =
  let a = Context.create () in
  let env_a = ok (Environment.create a ~name:"stale" ()) in
  let env_a = ok (Environment.add a env_a "libdwarf") in
  let _ = ok (Environment.install a env_a) in
  (* a context with a different site configuration: base fingerprint
     drifts, the lock is typed stale, never silently replayed *)
  let config =
    Config.layer [ Config.parse_exn "site.name = cluster-b"; Universe.default_config ]
  in
  let b = Context.create ~config () in
  let env_b = ok (Environment.create b ~name:"stale" ()) in
  let env_b = ok (Environment.add b env_b "libdwarf") in
  copy_lock a b "stale";
  (match Environment.read_lock b env_b with
  | Error (Environment.Lock_stale { lock_fp; current_fp; _ }) ->
      Alcotest.(check bool) "fingerprints differ" true (lock_fp <> current_fp)
  | Error e ->
      Alcotest.failf "expected Lock_stale, got %s"
        (Environment.lock_error_to_string e)
  | Ok _ -> Alcotest.fail "stale lock accepted");
  (match Environment.install_locked b env_b with
  | Error (Environment.Locked_lock (Environment.Lock_stale _)) -> ()
  | _ -> Alcotest.fail "stale lock must fail install_locked, typed");
  Alcotest.(check int) "no partial install from a stale lock" 0
    (Database.count (Installer.database b.Context.installer));
  (* env install re-solves at the new fingerprint and rewrites the lock *)
  let _ = ok (Environment.install b env_b) in
  ignore (ok_lock (Environment.read_lock b env_b))

let recipe_drift_is_stale () =
  let a = Context.create () in
  let env_a = ok (Environment.create a ~name:"drift" ()) in
  let env_a = ok (Environment.add a env_a "libdwarf") in
  let _ = ok (Environment.install a env_a) in
  (* same repo name, same config, one edited recipe in the locked
     closure: the base fingerprint matches but the per-spec Merkle
     fingerprint catches the drift *)
  let repo = Universe.repository () in
  let edited =
    Repository.create ~name:(Repository.name repo)
      (List.map
         (fun (p : Package.t) ->
           if p.Package.p_name = "libelf" then
             Package.override p [ Package.version "99.9" ]
           else p)
         (Repository.all_packages repo))
  in
  let b = Context.create ~repo:edited () in
  let env_b = ok (Environment.create b ~name:"drift" ()) in
  let env_b = ok (Environment.add b env_b "libdwarf") in
  copy_lock a b "drift";
  match Environment.read_lock b env_b with
  | Error (Environment.Lock_stale { reason; _ }) ->
      Alcotest.(check bool)
        (Printf.sprintf "reason mentions drift (%s)" reason)
        true
        (Astring.String.is_infix ~affix:"drifted" reason)
  | Error e ->
      Alcotest.failf "expected Lock_stale, got %s"
        (Environment.lock_error_to_string e)
  | Ok _ -> Alcotest.fail "recipe drift accepted"

(* ------------------------------------------------------------------ *)
(* Env-scoped views                                                   *)

let targets ctx root =
  Vfs.walk ctx.Context.vfs root
  |> List.filter_map (fun (path, kind) ->
         match kind with
         | Vfs.Symlink -> Some (Result.get_ok (Vfs.readlink ctx.Context.vfs path))
         | _ -> None)

let disjoint_views_share_store () =
  let ctx = Context.create () in
  let a = ok (Environment.create ctx ~name:"enva" ~view:"/views/a" ()) in
  let a = ok (Environment.add ctx a "libdwarf") in
  let b = ok (Environment.create ctx ~name:"envb" ~view:"/views/b" ()) in
  let b = ok (Environment.add ctx b "gsl") in
  let ra = ok (Environment.install ctx a) in
  let rb = ok (Environment.install ctx b) in
  Alcotest.(check bool) "both views linked" true
    (ra.Environment.er_linked > 0 && rb.Environment.er_linked > 0);
  (* one store holds both closures *)
  let db = Installer.database ctx.Context.installer in
  Alcotest.(check bool) "one shared store" true
    (Database.count db
    >= Concrete.node_count (snd (List.hd ra.Environment.er_roots))
       + Concrete.node_count (snd (List.hd rb.Environment.er_roots)));
  (* each view links exactly its environment's closure — never the whole
     store (the old sync_view bug) *)
  let closure_prefixes report =
    List.concat_map
      (fun (_, c) ->
        List.map (fun (n : Concrete.node) ->
            let h = Concrete.dag_hash c n.Concrete.name in
            match Database.find_by_hash db h with
            | Some r -> r.Database.r_prefix
            | None -> Alcotest.failf "%s/%s not installed" n.Concrete.name h)
          (Concrete.nodes c))
      report.Environment.er_roots
  in
  let in_prefixes prefixes target =
    List.exists
      (fun p -> Astring.String.is_prefix ~affix:(p ^ "/") target)
      prefixes
  in
  let pa = closure_prefixes ra and pb = closure_prefixes rb in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "a-view target inside a-closure (%s)" t)
        true (in_prefixes pa t);
      Alcotest.(check bool)
        (Printf.sprintf "a-view target outside b-closure (%s)" t)
        false (in_prefixes pb t))
    (targets ctx "/views/a");
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "b-view target inside b-closure (%s)" t)
        true (in_prefixes pb t))
    (targets ctx "/views/b");
  Alcotest.(check bool) "views non-empty" true
    (targets ctx "/views/a" <> [] && targets ctx "/views/b" <> [])

(* ------------------------------------------------------------------ *)
(* Crash safety                                                       *)

let atomic_manifest_and_lock () =
  let ctx = Context.create () in
  let env = ok (Environment.create ctx ~name:"atomic" ()) in
  let env = ok (Environment.add ctx env "libelf") in
  let manifest_before =
    Result.get_ok
      (Vfs.read_file ctx.Context.vfs (Environment.manifest_path "atomic"))
  in
  (* kill the tmp write, then the rename: the previous manifest must
     survive both *)
  List.iter
    (fun barrier ->
      Vfs.set_fault_plan ctx.Context.vfs ~mode:Vfs.Fail_op [ barrier ];
      Alcotest.(check bool) "add fails at the barrier" true
        (Result.is_error (Environment.add ctx env "gsl"));
      Vfs.clear_fault_plan ctx.Context.vfs;
      Alcotest.(check string) "manifest intact" manifest_before
        (Result.get_ok
           (Vfs.read_file ctx.Context.vfs (Environment.manifest_path "atomic"))))
    [ 1; 2 ];
  (* same protocol for the lockfile *)
  let pairs = ok (Environment.concretize_roots ctx env) in
  ok (Environment.write_lock ctx env pairs);
  let lock_before =
    Result.get_ok (Vfs.read_file ctx.Context.vfs (Environment.lock_path "atomic"))
  in
  List.iter
    (fun barrier ->
      Vfs.set_fault_plan ctx.Context.vfs ~mode:Vfs.Fail_op [ barrier ];
      Alcotest.(check bool) "write_lock fails at the barrier" true
        (Result.is_error (Environment.write_lock ctx env pairs));
      Vfs.clear_fault_plan ctx.Context.vfs;
      Alcotest.(check string) "lockfile intact" lock_before
        (Result.get_ok
           (Vfs.read_file ctx.Context.vfs (Environment.lock_path "atomic"))))
    [ 1; 2 ]

let torture_sweep () =
  match Environment.torture ~name:"t" ~view:"/views/t" ~roots:[ "libelf" ] () with
  | Error e -> Alcotest.failf "env torture: %s" e
  | Ok r ->
      Alcotest.(check bool) "swept some barriers" true (r.Environment.et_barriers > 0);
      Alcotest.(check int) "killed at every barrier" r.Environment.et_barriers
        r.Environment.et_kills;
      Alcotest.(check bool) "saw intact manifests mid-lifecycle" true
        (r.Environment.et_manifest_intact > 0)

let () =
  Alcotest.run "env"
    [
      ( "environment",
        [
          Alcotest.test_case "manifest lifecycle" `Quick manifest_lifecycle;
          Alcotest.test_case "roots are canonicalized" `Quick canonical_roots;
          Alcotest.test_case "unified solve shares sub-DAGs" `Quick
            unified_solve_shares_subdags;
          Alcotest.test_case "conflicting roots fail typed" `Quick
            conflicting_roots_error;
          Alcotest.test_case "locked replay is byte-identical" `Quick
            locked_replay_byte_identical;
          Alcotest.test_case "locked replay survives drift" `Quick
            locked_replay_survives_drift;
        ] );
      ( "lockfile",
        [
          Alcotest.test_case "format-2 round-trip" `Quick lock_roundtrip;
          Alcotest.test_case "format-1 migration" `Quick lock_migration_v1;
          Alcotest.test_case "tampering rejected typed" `Quick
            lock_tampering_rejected;
          Alcotest.test_case "stale fingerprint forces re-solve" `Quick
            stale_fingerprint_resolves;
          Alcotest.test_case "recipe drift is stale" `Quick
            recipe_drift_is_stale;
        ] );
      ( "views",
        [
          Alcotest.test_case "two envs, one store, disjoint views" `Quick
            disjoint_views_share_store;
        ] );
      ( "crash",
        [
          Alcotest.test_case "manifest and lock write-then-rename" `Quick
            atomic_manifest_and_lock;
          Alcotest.test_case "torture sweep converges" `Quick torture_sweep;
        ] );
    ]
